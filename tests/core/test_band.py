"""Tests for speed bands (workload-fluctuation envelopes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, SpeedBand
from repro.core.band import constant_width_schedule, linear_width_schedule
from tests.conftest import make_pwl


class TestWidthSchedules:
    def test_linear_interpolates(self):
        w = linear_width_schedule(0.40, 0.06, 100.0, 1000.0)
        assert w(100.0) == pytest.approx(0.40)
        assert w(1000.0) == pytest.approx(0.06)
        assert w(550.0) == pytest.approx(0.23)

    def test_linear_clamps_outside(self):
        w = linear_width_schedule(0.40, 0.06, 100.0, 1000.0)
        assert w(1.0) == pytest.approx(0.40)
        assert w(1e9) == pytest.approx(0.06)

    def test_linear_rejects_bad_widths(self):
        with pytest.raises(ConfigurationError):
            linear_width_schedule(0.06, 0.40, 100.0, 1000.0)  # inverted
        with pytest.raises(ConfigurationError):
            linear_width_schedule(1.2, 0.1, 100.0, 1000.0)

    def test_linear_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            linear_width_schedule(0.4, 0.1, 1000.0, 100.0)

    def test_constant(self):
        w = constant_width_schedule(0.07)
        np.testing.assert_allclose(w(np.array([1.0, 1e6])), [0.07, 0.07])

    def test_constant_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            constant_width_schedule(1.0)


class TestSpeedBand:
    def test_envelopes_straddle_midline(self):
        band = SpeedBand(make_pwl(100.0), 0.2)
        x = 1e4
        mid = band.midline.speed(x)
        assert band.lower_speed(x) == pytest.approx(mid * 0.9)
        assert band.upper_speed(x) == pytest.approx(mid * 1.1)

    def test_width_at(self):
        band = SpeedBand(make_pwl(100.0), 0.3)
        assert float(np.asarray(band.width_at(1e4))) == pytest.approx(0.3)

    def test_contains(self):
        band = SpeedBand(make_pwl(100.0), 0.2)
        mid = float(band.midline.speed(1e4))
        assert band.contains(1e4, mid)
        assert band.contains(1e4, mid * 1.09)
        assert not band.contains(1e4, mid * 1.2)

    def test_contains_slack(self):
        band = SpeedBand(make_pwl(100.0), 0.2)
        mid = float(band.midline.speed(1e4))
        assert band.contains(1e4, mid * 1.2, slack=0.15)

    def test_sample_inside_band(self, rng):
        band = SpeedBand(make_pwl(100.0), 0.4)
        for _ in range(10):
            sf = band.sample(rng)
            xs = np.geomspace(1e3, 2e6, 30)
            lo = band.lower_speed(xs) - 1e-9
            hi = band.upper_speed(xs) + 1e-9
            s = sf.speed(xs)
            assert np.all(s >= lo) and np.all(s <= hi)

    def test_sample_deterministic_with_seed(self):
        band = SpeedBand(make_pwl(100.0), 0.4)
        a = band.sample(np.random.default_rng(5))
        b = band.sample(np.random.default_rng(5))
        np.testing.assert_allclose(a.knot_speeds, b.knot_speeds)

    def test_sampled_function_is_valid(self, rng):
        band = SpeedBand(make_pwl(100.0), 0.4)
        sf = band.sample(rng)
        sf.check_single_intersection()

    def test_materialised_envelopes_valid(self):
        band = SpeedBand(make_pwl(100.0), 0.3)
        band.lower_function().check_single_intersection()
        band.upper_function().check_single_intersection()

    def test_zero_width_band_sample_is_midline(self, rng):
        band = SpeedBand(make_pwl(100.0), 0.0)
        sf = band.sample(rng)
        xs = np.geomspace(1e3, 2e6, 20)
        np.testing.assert_allclose(sf.speed(xs), band.midline.speed(xs), rtol=1e-12)

    def test_shifted_preserves_absolute_width(self):
        band = SpeedBand(make_pwl(100.0), 0.2)
        shifted = band.shifted(5.0)
        x = 1e4
        old_abs = float(band.upper_speed(x) - band.lower_speed(x))
        new_abs = float(shifted.upper_speed(x) - shifted.lower_speed(x))
        assert new_abs == pytest.approx(old_abs, rel=1e-6)

    def test_shifted_lowers_midline(self):
        band = SpeedBand(make_pwl(100.0), 0.2)
        shifted = band.shifted(5.0)
        assert float(shifted.midline.speed(1e4)) == pytest.approx(
            float(band.midline.speed(1e4)) - 5.0, rel=1e-6
        )

    def test_shifted_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            SpeedBand(make_pwl(100.0), 0.2).shifted(-1.0)

    def test_max_size_inherited(self):
        band = SpeedBand(make_pwl(100.0), 0.2)
        assert band.max_size == make_pwl(100.0).max_size

"""Tests for the fine-tuning procedures."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import ConstantSpeedFunction, InfeasiblePartitionError, makespan
from repro.core.geometry import allocations, initial_bracket
from repro.core.refine import refine_greedy, refine_paper
from tests.conftest import make_pwl


def brute_force_best(n, sfs):
    """Exhaustive optimal makespan for tiny instances."""
    p = len(sfs)
    best = float("inf")
    for combo in itertools.product(range(n + 1), repeat=p - 1):
        if sum(combo) > n:
            continue
        alloc = list(combo) + [n - sum(combo)]
        if any(a > sf.max_size for a, sf in zip(alloc, sfs)):
            continue
        best = min(best, makespan(sfs, alloc))
    return best


class TestMakespan:
    def test_max_of_times(self, two_processors):
        alloc = [1000, 2000]
        expected = max(sf.time(a) for sf, a in zip(two_processors, alloc))
        assert makespan(two_processors, alloc) == pytest.approx(expected)


class TestRefineGreedy:
    def test_sums_to_n(self, heterogeneous_trio):
        n = 123_457
        region = initial_bracket(heterogeneous_trio, n)
        base = allocations(heterogeneous_trio, region.upper)
        alloc = refine_greedy(n, heterogeneous_trio, base)
        assert alloc.sum() == n
        assert np.all(alloc >= 0)

    def test_optimal_small_constant(self):
        sfs = [ConstantSpeedFunction(2.0), ConstantSpeedFunction(5.0)]
        alloc = refine_greedy(7, sfs, [0.0, 0.0])
        assert makespan(sfs, alloc) == pytest.approx(brute_force_best(7, sfs))

    def test_optimal_small_functional(self):
        sfs = [
            ConstantSpeedFunction(3.0, max_size=20),
            ConstantSpeedFunction(1.0, max_size=20),
        ]
        n = 13
        alloc = refine_greedy(n, sfs, [0.0, 0.0])
        assert makespan(sfs, alloc) == pytest.approx(brute_force_best(n, sfs))

    def test_respects_bounds(self):
        sfs = [
            ConstantSpeedFunction(100.0, max_size=3),
            ConstantSpeedFunction(1.0, max_size=100),
        ]
        alloc = refine_greedy(10, sfs, [0.0, 0.0])
        assert alloc[0] <= 3
        assert alloc.sum() == 10

    def test_infeasible_bounds(self):
        sfs = [ConstantSpeedFunction(1.0, max_size=2)] * 2
        with pytest.raises(InfeasiblePartitionError):
            refine_greedy(10, sfs, [0.0, 0.0])

    def test_rejects_overfull_base(self, two_processors):
        with pytest.raises(InfeasiblePartitionError):
            refine_greedy(5, two_processors, [10.0, 10.0])

    def test_exact_base_untouched(self, two_processors):
        alloc = refine_greedy(30, two_processors, [10.0, 20.0])
        np.testing.assert_array_equal(alloc, [10, 20])


class TestRefinePaper:
    def test_sums_to_n(self, heterogeneous_trio):
        n = 200_001
        region = initial_bracket(heterogeneous_trio, n)
        low = allocations(heterogeneous_trio, region.upper)
        high = allocations(heterogeneous_trio, region.lower)
        alloc = refine_paper(n, heterogeneous_trio, low, high)
        assert alloc.sum() == n

    def test_falls_back_when_candidates_insufficient(self, two_processors):
        # High candidates cannot reach n: the greedy fallback must kick in.
        alloc = refine_paper(1000, two_processors, [1.0, 2.0], [2.0, 3.0])
        assert alloc.sum() == 1000

    def test_close_to_greedy_quality(self):
        sfs = [make_pwl(100.0), make_pwl(250.0), make_pwl(40.0)]
        n = 777_777
        region = initial_bracket(sfs, n)
        low = allocations(sfs, region.upper)
        high = allocations(sfs, region.lower)
        t_paper = makespan(sfs, refine_paper(n, sfs, low, high))
        t_greedy = makespan(sfs, refine_greedy(n, sfs, low))
        # The paper procedure selects from boundary candidates only; it may
        # be marginally worse but never by more than one element's worth.
        assert t_paper >= t_greedy * (1 - 1e-12)
        assert t_paper <= t_greedy * 1.01


class TestPackPathEquality:
    """The pack= fast path must be bit-identical to the scalar path."""

    def test_makespan_identical(self, heterogeneous_trio):
        from repro.core.vectorized import pack_speed_functions

        pack = pack_speed_functions(heterogeneous_trio)
        rng = np.random.default_rng(1)
        for _ in range(50):
            alloc = rng.integers(0, 2_000_000, size=3)
            assert makespan(heterogeneous_trio, alloc, pack=pack) == makespan(
                heterogeneous_trio, alloc
            )

    def test_refine_greedy_identical(self, heterogeneous_trio):
        from repro.core.vectorized import pack_speed_functions

        pack = pack_speed_functions(heterogeneous_trio)
        rng = np.random.default_rng(2)
        for _ in range(10):
            n = int(rng.integers(10, 30_000))
            region = initial_bracket(heterogeneous_trio, n)
            base = allocations(heterogeneous_trio, region.upper)
            a = refine_greedy(n, heterogeneous_trio, base)
            b = refine_greedy(n, heterogeneous_trio, base, pack=pack)
            np.testing.assert_array_equal(a, b)

    def test_refine_paper_identical(self, heterogeneous_trio):
        from repro.core.vectorized import pack_speed_functions

        pack = pack_speed_functions(heterogeneous_trio)
        rng = np.random.default_rng(3)
        for _ in range(10):
            n = int(rng.integers(10, 30_000))
            region = initial_bracket(heterogeneous_trio, n)
            low = allocations(heterogeneous_trio, region.upper)
            high = allocations(heterogeneous_trio, region.lower)
            a = refine_paper(n, heterogeneous_trio, low, high)
            b = refine_paper(n, heterogeneous_trio, low, high, pack=pack)
            np.testing.assert_array_equal(a, b)

"""Tests for the vectorised piecewise-linear intersection fast path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import ConstantSpeedFunction, PiecewiseLinearSpeedFunction
from repro.core.vectorized import PiecewiseLinearSet, make_allocator
from tests.conftest import make_hump_pwl, make_increasing_pwl, make_pwl


@pytest.fixture
def functions():
    return [
        make_pwl(100.0),
        make_hump_pwl(250.0),
        make_increasing_pwl(80.0),
        make_pwl(40.0, scale=3.0),
    ]


class TestPiecewiseLinearSet:
    @pytest.mark.parametrize("slope", [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1.0])
    def test_matches_scalar_path(self, functions, slope):
        packed = PiecewiseLinearSet(functions)
        expected = np.array([sf.intersect_ray(slope) for sf in functions])
        np.testing.assert_allclose(packed.allocations(slope), expected, rtol=1e-12)

    def test_total(self, functions):
        packed = PiecewiseLinearSet(functions)
        assert packed.total(1e-4) == pytest.approx(
            sum(sf.intersect_ray(1e-4) for sf in functions)
        )

    def test_mixed_knot_counts(self):
        sfs = [
            PiecewiseLinearSpeedFunction([10.0, 100.0], [50.0, 20.0]),
            make_pwl(100.0),  # 6 knots
        ]
        packed = PiecewiseLinearSet(sfs)
        for slope in [1e-4, 1e-2, 0.3, 5.0]:
            expected = np.array([sf.intersect_ray(slope) for sf in sfs])
            np.testing.assert_allclose(packed.allocations(slope), expected, rtol=1e-12)

    def test_single_function(self):
        packed = PiecewiseLinearSet([make_pwl(10.0)])
        assert packed.p == 1
        assert packed.allocations(1e-4)[0] == pytest.approx(
            make_pwl(10.0).intersect_ray(1e-4)
        )

    @settings(max_examples=50, deadline=None)
    @given(
        slope=st.floats(min_value=1e-8, max_value=1e3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_agreement(self, slope, seed):
        rng = np.random.default_rng(seed)
        sfs = []
        for _ in range(rng.integers(2, 6)):
            k = int(rng.integers(2, 7))
            xs = np.sort(rng.choice(np.arange(1, 100_000), size=k, replace=False)).astype(float)
            gs = np.sort(rng.uniform(1e-4, 1e2, size=k))[::-1]
            ss = gs * xs
            if np.any(np.diff(ss / xs) >= 0):
                continue
            sfs.append(PiecewiseLinearSpeedFunction(xs, ss))
        assume(len(sfs) >= 2)
        packed = PiecewiseLinearSet(sfs)
        expected = np.array([sf.intersect_ray(slope) for sf in sfs])
        np.testing.assert_allclose(packed.allocations(slope), expected, rtol=1e-9)


class TestMakeAllocator:
    def test_fast_path_for_uniform_pwl(self, functions):
        alloc = make_allocator(functions)
        # Bound method of a PiecewiseLinearSet.
        assert getattr(alloc, "__self__", None).__class__ is PiecewiseLinearSet

    def test_generic_path_for_mixed_types(self):
        sfs = [make_pwl(10.0), ConstantSpeedFunction(5.0)]
        alloc = make_allocator(sfs)
        np.testing.assert_allclose(
            alloc(1e-3), [sf.intersect_ray(1e-3) for sf in sfs]
        )

    def test_generic_path_for_single_function(self):
        alloc = make_allocator([make_pwl(10.0)])
        assert alloc(1e-3)[0] == pytest.approx(make_pwl(10.0).intersect_ray(1e-3))

    def test_algorithms_unchanged_by_fast_path(self, functions):
        from repro import partition

        n = 1_000_000
        fast = partition(n, functions)  # uniform pwl -> fast path
        mixed = list(functions) + [ConstantSpeedFunction(1e-6, max_size=1.0)]
        # Adding a negligible constant processor forces the generic path;
        # makespan must agree (it gets ~0 or 1 elements).
        slow = partition(n, mixed)
        assert fast.makespan == pytest.approx(slow.makespan, rel=1e-3)

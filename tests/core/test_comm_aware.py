"""Tests for communication-aware effective speed functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CommAwareSpeedFunction,
    ConfigurationError,
    ConstantSpeedFunction,
    partition,
    partition_exact,
)
from tests.conftest import make_pwl


class TestTotalTime:
    def test_formula(self):
        base = ConstantSpeedFunction(10.0)
        sf = CommAwareSpeedFunction(base, startup_s=2.0, seconds_per_element=0.5)
        # t(x) = x/10 + 2 + 0.5x
        assert sf.total_time(20) == pytest.approx(20 / 10 + 2 + 10)
        assert sf.time(20) == pytest.approx(sf.total_time(20))

    def test_zero_allocation_free(self):
        sf = CommAwareSpeedFunction(
            ConstantSpeedFunction(10.0), startup_s=5.0, seconds_per_element=1.0
        )
        assert sf.total_time(0) == 0.0
        assert sf.time(0) == 0.0

    def test_no_comm_reduces_to_base(self):
        base = make_pwl(100.0)
        sf = CommAwareSpeedFunction(base)
        xs = np.array([1e3, 1e5, 1e6])
        np.testing.assert_allclose(sf.time(xs), base.time(xs))
        np.testing.assert_allclose(sf.speed(xs), base.speed(xs))

    def test_rejects_negative_params(self):
        with pytest.raises(ConfigurationError):
            CommAwareSpeedFunction(make_pwl(10.0), startup_s=-1.0)

    def test_time_inf_beyond_bound(self):
        sf = CommAwareSpeedFunction(make_pwl(10.0), startup_s=1.0)
        assert sf.time(1e12) == float("inf")


class TestGeometry:
    def test_g_strictly_decreasing(self):
        sf = CommAwareSpeedFunction(
            make_pwl(100.0), startup_s=0.1, seconds_per_element=1e-6
        )
        xs = np.geomspace(1.0, sf.max_size, 300)
        gs = sf.g(xs)
        assert np.all(np.diff(gs) < 0)

    def test_g_bounded_by_inverse_startup(self):
        sf = CommAwareSpeedFunction(make_pwl(100.0), startup_s=0.5)
        assert sf.g(1e-6) <= 2.0 + 1e-9

    def test_intersect_solves_time_equation(self):
        sf = CommAwareSpeedFunction(
            make_pwl(100.0), startup_s=0.2, seconds_per_element=1e-5
        )
        for slope in [1e-5, 1e-4, 1e-3]:
            x = sf.intersect_ray(slope)
            if 0 < x < sf.max_size:
                assert sf.total_time(x) == pytest.approx(1.0 / slope, rel=1e-6)

    def test_priced_out_returns_zero(self):
        sf = CommAwareSpeedFunction(make_pwl(100.0), startup_s=10.0)
        # A ray implying a 1-second budget cannot afford the 10s startup.
        assert sf.intersect_ray(1.0) == 0.0

    def test_clamps_at_bound(self):
        sf = CommAwareSpeedFunction(make_pwl(100.0), startup_s=0.1)
        assert sf.intersect_ray(1e-12) == pytest.approx(sf.max_size)


class TestCommAwarePartitioning:
    def test_algorithms_agree(self):
        sfs = [
            CommAwareSpeedFunction(
                make_pwl(100.0), startup_s=0.5, seconds_per_element=2e-6
            ),
            CommAwareSpeedFunction(
                make_pwl(250.0), startup_s=0.1, seconds_per_element=1e-6
            ),
        ]
        n = 700_000
        exact = partition_exact(n, sfs).makespan
        for algo in ("bisection", "modified", "combined"):
            r = partition(n, sfs, algorithm=algo)
            assert int(r.allocation.sum()) == n
            assert r.makespan == pytest.approx(exact, rel=1e-6)

    def test_slow_link_shifts_work_away(self):
        fast_link = CommAwareSpeedFunction(
            make_pwl(100.0), seconds_per_element=1e-7
        )
        slow_link = CommAwareSpeedFunction(
            make_pwl(100.0), seconds_per_element=5e-4
        )
        r = partition(500_000, [fast_link, slow_link])
        assert r.allocation[0] > r.allocation[1]

    def test_startup_starves_tiny_shares(self):
        # With a huge startup on one machine and a small problem, the
        # optimal allocation gives that machine nothing at all.
        costly = CommAwareSpeedFunction(
            ConstantSpeedFunction(1000.0, max_size=1e7), startup_s=1e6
        )
        cheap = CommAwareSpeedFunction(ConstantSpeedFunction(10.0, max_size=1e7))
        r = partition_exact(1_000, [costly, cheap])
        assert r.allocation[0] == 0
        assert r.allocation[1] == 1_000

    def test_comm_aware_beats_compute_only_under_comm(self):
        """The point of the extension: account for links when they differ."""
        bases = [make_pwl(100.0), make_pwl(100.0)]
        betas = [1e-7, 3e-4]  # identical compute, wildly different links
        aware = [
            CommAwareSpeedFunction(b, seconds_per_element=bt)
            for b, bt in zip(bases, betas)
        ]
        n = 800_000
        alloc_aware = partition(n, aware).allocation
        alloc_blind = partition(n, bases).allocation

        def realized(alloc):
            return max(
                float(b.time(int(x))) + bt * int(x)
                for b, bt, x in zip(bases, betas, alloc)
            )

        assert realized(alloc_aware) < realized(alloc_blind)

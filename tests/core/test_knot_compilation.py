"""Knot compilation: every model family lowers into the shared pack.

The compilation protocol (``SpeedFunction.as_knots``) promises that a
pack built from *any* mix of compilable models evaluates bit-identically
to the per-object path — except comm-aware rows, whose closed-form
segment solve replaces the per-object bisection and is documented to the
1e-9 class.  These tests pin that contract per family, for every pack
entry point (``allocations``, ``allocations_many``, ``speeds``,
``times``, ``time_one``), plus the O(p) rescale clone and the
fallback/fast-path counters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AnalyticSpeedFunction,
    ConstantSpeedFunction,
    PiecewiseLinearSpeedFunction,
)
from repro.core.bounded import TruncatedSpeedFunction
from repro.core.comm_aware import CommAwareSpeedFunction
from repro.core.bisection import partition_bisection
from repro.core.step_model import StepSpeedFunction
from repro.core.vectorized import (
    PiecewiseLinearSet,
    pack_speed_functions,
    packing_disabled,
)
from repro.planner import Fleet
from tests.conftest import make_hump_pwl, make_pwl

SLOPES = [1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 1e3]


@pytest.fixture
def fresh_obs():
    """Throwaway obs registry/tracer so counter tests never leak state."""
    from repro import obs

    previous_registry = obs.set_registry(obs.MetricsRegistry())
    previous_tracer = obs.set_tracer(obs.Tracer())
    obs.disable()
    try:
        yield obs
    finally:
        obs.disable()
        obs.set_registry(previous_registry)
        obs.set_tracer(previous_tracer)


def _reference_allocations(sfs, slope):
    return np.array([sf.intersect_ray(slope) for sf in sfs], dtype=float)


def _reference_speeds(sfs, xs):
    return np.array([sf.speed(float(x)) for sf, x in zip(sfs, xs)], dtype=float)


def _reference_times(sfs, xs):
    return np.array([sf.time(float(x)) for sf, x in zip(sfs, xs)], dtype=float)


def _probe_sizes(pack):
    """Per-row probe sizes spanning zero, interior and the bound."""
    caps = np.where(np.isfinite(pack.max_sizes), pack.max_sizes, 4e6)
    return [
        np.zeros(pack.p),
        caps * 0.001,
        caps * 0.37,
        caps * 0.999,
        np.floor(caps),
    ]


def assert_pack_matches(sfs, *, exact=True, rtol=0.0):
    """The family contract: every pack entry point vs the object path."""
    pack = pack_speed_functions(sfs)
    assert pack is not None, "fleet unexpectedly failed to compile"
    assert pack.exact == exact

    for slope in SLOPES:
        got = pack.allocations(slope)
        want = _reference_allocations(sfs, slope)
        if exact:
            np.testing.assert_array_equal(got, want)
        else:
            np.testing.assert_allclose(got, want, rtol=rtol, atol=rtol)

    # Batched rows are bitwise the sequential single-slope answers.
    many = pack.allocations_many(np.asarray(SLOPES))
    for i, slope in enumerate(SLOPES):
        np.testing.assert_array_equal(many[i], pack.allocations(slope))

    for xs in _probe_sizes(pack):
        np.testing.assert_array_equal(pack.speeds(xs), _reference_speeds(sfs, xs))
        got_t = pack.times(xs)
        np.testing.assert_array_equal(got_t, _reference_times(sfs, xs))
        for i in range(pack.p):
            assert pack.time_one(i, float(xs[i])) == got_t[i]
    return pack


class TestPerFamilyConformance:
    def test_constant(self):
        assert_pack_matches([
            make_pwl(100.0),
            ConstantSpeedFunction(70.0, max_size=3e6),
            ConstantSpeedFunction(55.0),  # unbounded memory
        ])

    def test_step(self):
        assert_pack_matches([
            make_pwl(90.0),
            StepSpeedFunction([1e4, 1e5, 2e6], [120.0, 60.0, 6.0]),
            StepSpeedFunction([5e5], [80.0]),  # single segment
        ])

    def test_analytic_tabulated(self):
        def f(x):
            x = np.asarray(x, dtype=float)
            return 150.0 / (1.0 + x / 2e5)

        analytic = AnalyticSpeedFunction(f, max_size=2e6)
        tab = analytic.tabulate(np.geomspace(1e3, 2e6, 24))
        assert_pack_matches([make_pwl(100.0), tab])

    def test_truncated(self):
        assert_pack_matches([
            TruncatedSpeedFunction(make_pwl(100.0), 4.2e5),
            TruncatedSpeedFunction(StepSpeedFunction([1e4, 1e6], [90.0, 9.0]), 7e5),
            TruncatedSpeedFunction(ConstantSpeedFunction(60.0), 1e5),
            make_hump_pwl(200.0),
        ])

    def test_truncated_nonbinding_bound_adds_no_cap(self):
        sf = TruncatedSpeedFunction(make_pwl(100.0), 1e9)
        row = sf.as_knots()
        assert row.x_cap is None and row.s_cap is None and row.exact

    def test_scaled(self):
        assert_pack_matches([
            make_pwl(100.0).scaled(1.75),
            StepSpeedFunction([2e4, 5e5], [100.0, 20.0]).scaled(0.4),
            ConstantSpeedFunction(80.0, max_size=1e6).scaled(3.0),
        ])

    def test_comm_aware_is_1e9_class(self):
        sfs = [
            CommAwareSpeedFunction(
                make_pwl(100.0), startup_s=2e-4, seconds_per_element=3e-7
            ),
            CommAwareSpeedFunction(ConstantSpeedFunction(50.0, max_size=2e6),
                                   seconds_per_element=1e-6),
            make_pwl(150.0),
        ]
        pack = pack_speed_functions(sfs)
        assert pack is not None and pack.exact is False
        for slope in SLOPES:
            np.testing.assert_allclose(
                pack.allocations(slope),
                _reference_allocations(sfs, slope),
                rtol=1e-9, atol=1e-9,
            )
        many = pack.allocations_many(np.asarray(SLOPES))
        for i, slope in enumerate(SLOPES):
            np.testing.assert_array_equal(many[i], pack.allocations(slope))
        for xs in _probe_sizes(pack):
            np.testing.assert_allclose(
                pack.speeds(xs), _reference_speeds(sfs, xs), rtol=1e-12
            )
            np.testing.assert_allclose(
                pack.times(xs), _reference_times(sfs, xs), rtol=1e-12
            )

    def test_comm_over_comm_blocks_compilation(self):
        inner = CommAwareSpeedFunction(make_pwl(100.0), startup_s=1e-4)
        outer = CommAwareSpeedFunction(inner, seconds_per_element=1e-7)
        assert outer.as_knots() is None
        assert pack_speed_functions([outer, make_pwl(50.0)]) is None

    def test_analytic_blocks_compilation(self):
        analytic = AnalyticSpeedFunction(
            lambda x: 100.0 / (1.0 + np.asarray(x, dtype=float) / 1e5),
            max_size=1e6,
        )
        assert pack_speed_functions([analytic, make_pwl(50.0)]) is None


class TestPropertyConformance:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_mixed_fleet_bit_identity(self, seed):
        rng = np.random.default_rng(seed)
        sfs = []
        for _ in range(int(rng.integers(2, 7))):
            roll = rng.random()
            peak = float(10.0 ** rng.uniform(1.0, 2.5))
            if roll < 0.25:
                sfs.append(make_pwl(peak, scale=float(rng.uniform(0.5, 4.0))))
            elif roll < 0.45:
                m = int(rng.integers(1, 5))
                bs = np.sort(10.0 ** rng.uniform(3.0, 6.5, m))
                while np.any(np.diff(bs) <= 0):
                    bs = np.sort(10.0 ** rng.uniform(3.0, 6.5, m))
                ss = peak * np.sort(rng.uniform(0.05, 1.0, m))[::-1]
                while np.any(np.diff(ss) >= 0):
                    ss = peak * np.sort(rng.uniform(0.05, 1.0, m))[::-1]
                sfs.append(StepSpeedFunction(bs, ss))
            elif roll < 0.65:
                base = make_pwl(peak)
                sfs.append(
                    TruncatedSpeedFunction(base, float(rng.uniform(2e3, 1.9e6)))
                )
            elif roll < 0.85:
                sfs.append(make_pwl(peak).scaled(float(rng.uniform(0.2, 5.0))))
            else:
                cap = float(10.0 ** rng.uniform(4.0, 6.5)) if rng.random() < 0.7 else np.inf
                sfs.append(
                    ConstantSpeedFunction(peak, max_size=cap)
                    if np.isfinite(cap)
                    else ConstantSpeedFunction(peak)
                )
        pack = pack_speed_functions(sfs)
        assert pack is not None
        for slope in 10.0 ** rng.uniform(-7, 2, 8):
            np.testing.assert_array_equal(
                pack.allocations(float(slope)),
                _reference_allocations(sfs, float(slope)),
            )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=3_000_000),
    )
    def test_end_to_end_solver_matches_per_object_oracle(self, seed, n):
        rng = np.random.default_rng(seed)
        sfs = [
            make_pwl(float(rng.uniform(20.0, 200.0))),
            StepSpeedFunction([1e4, 1e5, 2e6], [110.0, 55.0, 5.0]),
            ConstantSpeedFunction(float(rng.uniform(10.0, 90.0)), max_size=3e6),
            TruncatedSpeedFunction(make_hump_pwl(180.0), 9e5),
        ]
        packed = partition_bisection(n, sfs)
        with packing_disabled():
            pure = partition_bisection(n, sfs)
        np.testing.assert_array_equal(packed.allocation, pure.allocation)
        assert float(packed.makespan) == float(pure.makespan)


class TestRescaleClone:
    def test_rescaled_pack_matches_scaled_objects(self):
        sfs = [make_pwl(100.0), StepSpeedFunction([1e5, 1e6], [90.0, 9.0]),
               ConstantSpeedFunction(40.0, max_size=2e6)]
        pack = pack_speed_functions(sfs)
        factors = np.array([1.25, 0.8, 2.0])
        clone = pack.rescaled(factors)
        scaled = [sf.scaled(float(f)) for sf, f in zip(sfs, factors)]
        for slope in SLOPES:
            np.testing.assert_array_equal(
                clone.allocations(slope), _reference_allocations(scaled, slope)
            )
        for xs in _probe_sizes(clone):
            np.testing.assert_array_equal(
                clone.speeds(xs), _reference_speeds(scaled, xs)
            )
            np.testing.assert_array_equal(
                clone.times(xs), _reference_times(scaled, xs)
            )

    def test_rescaled_rejects_bad_factors(self):
        pack = pack_speed_functions([make_pwl(100.0), make_pwl(50.0)])
        with pytest.raises(ValueError):
            pack.rescaled(np.array([1.0]))
        with pytest.raises(ValueError):
            pack.rescaled(np.array([1.0, -2.0]))

    def test_rescaled_comm_rows_refuse(self):
        sfs = [CommAwareSpeedFunction(make_pwl(100.0), startup_s=1e-4),
               make_pwl(60.0)]
        pack = pack_speed_functions(sfs)
        with pytest.raises(ValueError):
            pack.rescaled(np.array([2.0, 1.0]))

    def test_fingerprint_changes_with_scale_only(self):
        pack = pack_speed_functions([make_pwl(100.0), make_pwl(50.0)])
        same = pack.rescaled(np.array([1.0, 1.0]))
        other = pack.rescaled(np.array([2.0, 1.0]))
        assert same.fingerprint == pack.fingerprint
        assert other.fingerprint != pack.fingerprint


class TestCounters:
    def test_fast_path_and_fallback_labels(self, fresh_obs):
        from repro import obs

        obs.enable()
        pack_speed_functions([make_pwl(100.0), StepSpeedFunction([1e5], [50.0])])
        analytic = AnalyticSpeedFunction(
            lambda x: 100.0 / (1.0 + np.asarray(x, dtype=float) / 1e5),
            max_size=1e6,
        )
        pack_speed_functions([make_pwl(100.0), analytic])
        pack_speed_functions([make_pwl(100.0)])  # fleet of one: fallback

        reg = obs.get_registry()
        assert reg.get("core.pack.fast_path", None).value == 1
        assert reg.get(
            "core.pack.fallback", {"blocked_by": "AnalyticSpeedFunction"}
        ).value == 1
        assert reg.get(
            "core.pack.fallback", {"blocked_by": "fleet_too_small"}
        ).value == 1

    def test_drift_rescale_is_o_p_not_a_repack(self, fresh_obs):
        """adapt-style drift correction must clone, never rebuild."""
        from repro import obs
        from repro.adapt.replanner import Replanner

        sfs = [make_pwl(100.0), make_pwl(60.0), make_pwl(30.0)]
        obs.enable()
        rp = Replanner(sfs)  # builds the base fleet: exactly one pack build
        reg = obs.get_registry()
        builds_after_init = reg.get("core.pack.build", None).value
        assert builds_after_init >= 1

        rp.planner_for([1.1, 0.9, 1.0])
        rp.planner_for([1.3, 0.7, 1.0])
        rp.planner_for([1.1, 0.9, 1.0])  # LRU hit: no new fleet at all

        assert reg.get("core.pack.build", None).value == builds_after_init
        assert reg.get("core.pack.rescale", None).value == 2

    def test_fleet_rescaled_reuses_pack(self):
        fleet = Fleet([make_pwl(100.0), make_pwl(60.0)])
        scaled = fleet.rescaled([2.0, 1.0])
        assert scaled.pack is not None
        assert scaled.pack is not fleet.pack
        # The knot arrays are shared, only the scale vector is new.
        assert scaled.pack._xs is fleet.pack._xs
        np.testing.assert_array_equal(scaled.pack.scales, [2.0, 1.0])

"""Tests for the 2-D rectangle partitioning extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConstantSpeedFunction,
    InfeasiblePartitionError,
    Rectangle,
    partition_rectangles,
)
from tests.conftest import make_pwl


class TestRectangle:
    def test_geometry(self):
        r = Rectangle(2, 5, 10, 14)
        assert r.height == 3
        assert r.width == 4
        assert r.area == 12
        assert r.half_perimeter == 7


class TestPartitionRectangles:
    def test_tiles_exactly(self):
        sfs = [make_pwl(s) for s in (50.0, 120.0, 200.0, 80.0)]
        rp = partition_rectangles(200, sfs)
        rp.verify_cover()
        assert int(rp.areas.sum()) == 200 * 200

    def test_single_processor_whole_matrix(self):
        rp = partition_rectangles(50, [make_pwl(10.0)])
        assert rp.rectangles[0] == Rectangle(0, 50, 0, 50)

    def test_constant_speeds_proportional_areas(self):
        sfs = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(3.0)]
        rp = partition_rectangles(120, sfs, columns=1)
        rp.verify_cover()
        assert rp.areas[1] == pytest.approx(3 * rp.areas[0], rel=0.05)

    def test_columns_default_sqrt(self):
        sfs = [ConstantSpeedFunction(1.0)] * 9
        rp = partition_rectangles(90, sfs)
        rp.verify_cover()
        # 9 equal processors in a 3x3 grid: all areas equal.
        assert rp.areas.max() == rp.areas.min()

    def test_explicit_columns(self):
        sfs = [ConstantSpeedFunction(1.0)] * 4
        rp = partition_rectangles(64, sfs, columns=4)
        rp.verify_cover()
        # 4 columns: every rectangle is a full-height stripe.
        for r in rp.rectangles:
            assert r.height == 64

    def test_functional_speeds_shrink_paging_processor(self):
        pager = make_pwl(300.0, scale=0.01)  # fast, collapses ~2e4 elements
        steady = make_pwl(100.0, scale=10.0)
        rp = partition_rectangles(300, [pager, steady], columns=1)
        rp.verify_cover()
        # Despite its 3x peak speed, the paging processor must get the
        # smaller rectangle (its speed at a large area would collapse).
        assert rp.areas[0] < rp.areas[1]

    def test_makespan_consistent(self):
        sfs = [make_pwl(60.0), make_pwl(140.0)]
        rp = partition_rectangles(150, sfs, columns=1)
        times = [sf.time(int(a)) for sf, a in zip(sfs, rp.areas)]
        assert rp.makespan == pytest.approx(max(times))

    def test_2d_beats_1d_on_communication(self):
        sfs = [make_pwl(100.0)] * 16
        two_d = partition_rectangles(160, sfs)
        one_d = partition_rectangles(160, sfs, columns=1)
        two_d.verify_cover()
        one_d.verify_cover()
        assert two_d.half_perimeter_sum < one_d.half_perimeter_sum

    def test_rejects_bad_inputs(self):
        with pytest.raises(InfeasiblePartitionError):
            partition_rectangles(0, [make_pwl(10.0)])
        with pytest.raises(InfeasiblePartitionError):
            partition_rectangles(10, [])
        with pytest.raises(InfeasiblePartitionError):
            partition_rectangles(10, [make_pwl(10.0)], columns=2)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=120),
        peaks=st.lists(
            st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=7
        ),
    )
    def test_property_cover_and_total(self, n, peaks):
        sfs = [ConstantSpeedFunction(s) for s in peaks]
        rp = partition_rectangles(n, sfs)
        rp.verify_cover()
        assert int(rp.areas.sum()) == n * n

"""Tests for the high-level partition() dispatcher and PartitionResult."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ALGORITHMS,
    ConfigurationError,
    InvalidSpeedFunctionError,
    PartitionResult,
    partition,
)
from tests.conftest import make_pwl


class TestPartitionDispatcher:
    def test_default_algorithm_is_combined(self, heterogeneous_trio):
        r = partition(10_000, heterogeneous_trio)
        assert r.algorithm == "combined"

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_every_registered_algorithm_runs(self, name, heterogeneous_trio):
        r = partition(5_000, heterogeneous_trio, algorithm=name)
        assert int(r.allocation.sum()) == 5_000

    def test_unknown_algorithm(self, heterogeneous_trio):
        with pytest.raises(ConfigurationError):
            partition(10, heterogeneous_trio, algorithm="quantum")

    def test_kwargs_forwarded(self, heterogeneous_trio):
        r = partition(
            10_000, heterogeneous_trio, algorithm="bisection", keep_trace=True
        )
        assert len(r.trace) == r.iterations

    def test_validate_flag(self):
        class Liar(make_pwl(10.0).__class__):
            pass

        # A function violating g-monotonicity via validate=False sneaks in;
        # partition(validate=True) must catch it.
        bad = make_pwl(10.0).__class__(
            [10.0, 11.0], [50.0, 100.0], validate=False
        )
        with pytest.raises(InvalidSpeedFunctionError):
            partition(100, [bad], validate=True)


class TestPartitionResult:
    def test_n_and_p(self):
        r = PartitionResult(
            allocation=np.array([3, 4]), makespan=1.0, algorithm="test"
        )
        assert r.n == 7
        assert r.p == 2

    def test_allocation_coerced_to_int64(self):
        r = PartitionResult(
            allocation=[1.0, 2.0], makespan=0.5, algorithm="test"
        )
        assert r.allocation.dtype == np.int64

    def test_summary_mentions_algorithm(self):
        r = PartitionResult(
            allocation=np.array([1]), makespan=2.5, algorithm="bisection"
        )
        assert "bisection" in r.summary()
        assert "n=1" in r.summary()

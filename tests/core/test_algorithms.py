"""Tests for the bisection, modified, combined and exact partitioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConstantSpeedFunction,
    ConvergenceError,
    InfeasiblePartitionError,
    PiecewiseLinearSpeedFunction,
    makespan,
    partition_bisection,
    partition_combined,
    partition_constant,
    partition_exact,
    partition_modified,
)
from tests.conftest import make_hump_pwl, make_increasing_pwl, make_pwl

ALGOS = [partition_bisection, partition_modified, partition_combined, partition_exact]


@pytest.fixture(params=ALGOS, ids=["bisection", "modified", "combined", "exact"])
def algo(request):
    return request.param


class TestCommonBehaviour:
    def test_sums_to_n(self, algo, heterogeneous_trio):
        for n in [1, 2, 1000, 123_456, 999_999]:
            r = algo(n, heterogeneous_trio)
            assert int(r.allocation.sum()) == n, f"n={n}"
            assert np.all(r.allocation >= 0)

    def test_zero_elements(self, algo, heterogeneous_trio):
        r = algo(0, heterogeneous_trio)
        assert r.allocation.sum() == 0
        assert r.makespan == 0.0

    def test_single_processor_gets_all(self, algo):
        sfs = [make_pwl(100.0)]
        r = algo(1_000_000, sfs)
        assert r.allocation[0] == 1_000_000

    def test_constant_speeds_proportional(self, algo):
        sfs = [ConstantSpeedFunction(100.0), ConstantSpeedFunction(300.0)]
        r = algo(1000, sfs)
        baseline = partition_constant(1000, [100.0, 300.0])
        assert r.makespan == pytest.approx(baseline.makespan, rel=1e-9)

    def test_identical_processors_near_even(self, algo):
        sfs = [make_pwl(100.0) for _ in range(4)]
        r = algo(100_000, sfs)
        assert r.allocation.max() - r.allocation.min() <= 1

    def test_infeasible_raises(self, algo):
        sfs = [make_pwl(100.0)]  # capacity 2e6
        with pytest.raises(InfeasiblePartitionError):
            algo(5_000_000, sfs)

    def test_makespan_reported_consistent(self, algo, heterogeneous_trio):
        r = algo(500_000, heterogeneous_trio)
        assert r.makespan == pytest.approx(
            makespan(heterogeneous_trio, r.allocation)
        )

    def test_faster_processor_gets_more(self, algo):
        sfs = [make_pwl(50.0), make_pwl(200.0)]
        r = algo(100_000, sfs)
        assert r.allocation[1] > r.allocation[0]

    @pytest.mark.parametrize(
        "factory", [make_pwl, make_increasing_pwl, make_hump_pwl]
    )
    def test_all_figure5_shapes(self, algo, factory):
        sfs = [factory(100.0), factory(37.0), factory(260.0)]
        n = 600_000
        r = algo(n, sfs)
        assert int(r.allocation.sum()) == n


class TestAgreementWithExact:
    @pytest.mark.parametrize("n", [100, 5_000, 314_159, 1_000_000])
    def test_geometric_algorithms_are_optimal(self, heterogeneous_trio, n):
        t_exact = partition_exact(n, heterogeneous_trio).makespan
        for fn in (partition_bisection, partition_modified, partition_combined):
            t = fn(n, heterogeneous_trio).makespan
            assert t == pytest.approx(t_exact, rel=1e-9), fn.__name__

    def test_mixed_constant_and_functional(self):
        sfs = [
            ConstantSpeedFunction(120.0, max_size=5e6),
            make_pwl(300.0),
            make_increasing_pwl(90.0),
        ]
        n = 750_000
        t_exact = partition_exact(n, sfs).makespan
        for fn in (partition_bisection, partition_modified, partition_combined):
            assert fn(n, sfs).makespan == pytest.approx(t_exact, rel=1e-9)


class TestBisectionSpecifics:
    def test_angle_mode_matches_tangent(self, heterogeneous_trio):
        n = 424_242
        a = partition_bisection(n, heterogeneous_trio, mode="tangent")
        b = partition_bisection(n, heterogeneous_trio, mode="angle")
        assert a.makespan == pytest.approx(b.makespan, rel=1e-9)

    def test_paper_refine_close(self, heterogeneous_trio):
        n = 300_000
        greedy = partition_bisection(n, heterogeneous_trio, refine="greedy")
        paper = partition_bisection(n, heterogeneous_trio, refine="paper")
        assert int(paper.allocation.sum()) == n
        assert paper.makespan <= greedy.makespan * 1.01

    def test_unknown_refine_rejected(self, heterogeneous_trio):
        with pytest.raises(ValueError):
            partition_bisection(100, heterogeneous_trio, refine="magic")

    def test_trace_recorded(self, heterogeneous_trio):
        r = partition_bisection(100_000, heterogeneous_trio, keep_trace=True)
        assert len(r.trace) == r.iterations
        # Every trace entry is (slope, total) with positive slope.
        assert all(s > 0 for s, _ in r.trace)

    def test_iteration_cap(self, heterogeneous_trio):
        with pytest.raises(ConvergenceError):
            partition_bisection(500_000, heterogeneous_trio, max_iterations=1)

    def test_iterations_logarithmic(self):
        # O(log n) behaviour: steps grow roughly linearly in log2(n).
        sfs = [make_pwl(100.0, scale=100.0), make_pwl(250.0, scale=100.0)]
        small = partition_bisection(10_000, sfs).iterations
        large = partition_bisection(100_000_000, sfs).iterations
        assert large <= small + 40  # ~log2(1e4) extra bisections at most


class TestModifiedSpecifics:
    def test_iterations_bounded_by_plogn(self, heterogeneous_trio):
        n = 1_000_000
        r = partition_modified(n, heterogeneous_trio)
        p = len(heterogeneous_trio)
        assert r.iterations <= p * np.log2(n) + p

    def test_trace_recorded(self, heterogeneous_trio):
        r = partition_modified(77_777, heterogeneous_trio, keep_trace=True)
        assert len(r.trace) == r.iterations


class TestCombinedSpecifics:
    def test_flat_tail_switches_to_modified(self):
        # A nearly flat plateau followed by collapse: the basic bisection
        # makes slow x-progress, so the combined algorithm must still finish
        # quickly and correctly.
        xs = np.array([1e3, 1e6, 1.001e6])
        ss = np.array([100.0, 99.0, 0.01])
        sfs = [PiecewiseLinearSpeedFunction(xs, ss) for _ in range(3)]
        n = 2_500_000
        r = partition_combined(n, sfs)
        assert int(r.allocation.sum()) == n
        t_exact = partition_exact(n, sfs).makespan
        assert r.makespan == pytest.approx(t_exact, rel=1e-6)


class TestExactSpecifics:
    def test_optimal_vs_bruteforce_tiny(self):
        import itertools

        sfs = [
            PiecewiseLinearSpeedFunction([1.0, 10.0, 20.0], [5.0, 4.0, 1.0]),
            PiecewiseLinearSpeedFunction([1.0, 10.0, 20.0], [9.0, 6.0, 2.0]),
        ]
        for n in range(1, 30):
            best = min(
                makespan(sfs, [a, n - a])
                for a in range(n + 1)
                if a <= 20 and n - a <= 20
            )
            r = partition_exact(n, sfs)
            assert r.makespan == pytest.approx(best, rel=1e-9), f"n={n}"

    def test_bounded_capacity_edge(self):
        sfs = [
            ConstantSpeedFunction(10.0, max_size=5),
            ConstantSpeedFunction(1.0, max_size=100),
        ]
        r = partition_exact(50, sfs)
        assert r.allocation[0] <= 5
        assert int(r.allocation.sum()) == 50

"""Tests for composite group speed functions and two-level partitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConstantSpeedFunction,
    InfeasiblePartitionError,
    group_speed_function,
    partition,
    partition_hierarchical,
)
from tests.conftest import make_hump_pwl, make_increasing_pwl, make_pwl


class TestGroupSpeedFunction:
    def test_single_member_reproduces_member(self):
        sf = make_pwl(100.0)
        comp = group_speed_function([sf], num=200)
        xs = np.geomspace(1e4, sf.max_size * 0.9, 30)
        np.testing.assert_allclose(comp.speed(xs), sf.speed(xs), rtol=0.05)

    def test_composite_valid(self):
        comp = group_speed_function([make_pwl(100.0), make_hump_pwl(250.0)])
        comp.check_single_intersection()

    def test_composite_of_constants_adds_speeds(self):
        members = [
            ConstantSpeedFunction(10.0, max_size=1e6),
            ConstantSpeedFunction(30.0, max_size=1e6),
        ]
        comp = group_speed_function(members)
        # Optimal split over constant speeds: group speed = sum of speeds.
        assert float(comp.speed(5e5)) == pytest.approx(40.0, rel=0.01)

    def test_capacity_is_sum(self):
        comp = group_speed_function([make_pwl(10.0), make_pwl(20.0)])
        assert comp.max_size == pytest.approx(4e6, rel=0.01)

    def test_rejects_empty_group(self):
        with pytest.raises(InfeasiblePartitionError):
            group_speed_function([])

    def test_rejects_unbounded_member(self):
        with pytest.raises(InfeasiblePartitionError):
            group_speed_function([ConstantSpeedFunction(5.0)])

    def test_rejects_tiny_num(self):
        with pytest.raises(InfeasiblePartitionError):
            group_speed_function([make_pwl(1.0)], num=1)

    def test_composite_time_matches_inner_optimum(self):
        members = [make_pwl(100.0), make_pwl(250.0)]
        comp = group_speed_function(members, num=200)
        x = 1_500_000
        inner = partition(x, members)
        assert float(comp.time(x)) == pytest.approx(inner.makespan, rel=0.02)


class TestPartitionHierarchical:
    def test_totals_sum_to_n(self):
        groups = [[make_pwl(100.0)], [make_pwl(50.0), make_pwl(75.0)]]
        h = partition_hierarchical(1_000_000, groups)
        assert int(h.group_totals.sum()) == 1_000_000
        for total, alloc in zip(h.group_totals, h.allocations):
            assert int(alloc.sum()) == int(total)

    def test_matches_flat_partition(self):
        g1 = [make_pwl(100.0), make_pwl(250.0)]
        g2 = [make_hump_pwl(150.0), make_increasing_pwl(80.0)]
        n = 1_500_000
        h = partition_hierarchical(n, [g1, g2])
        flat = partition(n, g1 + g2)
        assert h.makespan == pytest.approx(flat.makespan, rel=0.02)

    def test_three_levels_of_heterogeneity(self):
        groups = [
            [make_pwl(300.0), make_pwl(280.0)],   # fast site
            [make_pwl(60.0)],                     # lone slow box
            [make_pwl(120.0), make_pwl(90.0), make_pwl(100.0)],
        ]
        n = 3_000_000
        h = partition_hierarchical(n, groups)
        # The fast site carries the most work.
        assert int(np.argmax(h.group_totals)) == 0
        assert int(h.flat_allocation().sum()) == n

    def test_empty_group_total_allowed(self):
        # A uselessly slow site may legitimately receive ~nothing.
        fast = [make_pwl(1000.0, scale=10.0)]
        slow = [make_pwl(0.001)]
        h = partition_hierarchical(100_000, [fast, slow])
        assert int(h.group_totals.sum()) == 100_000
        assert h.group_totals[0] > h.group_totals[1]

    def test_rejects_no_groups(self):
        with pytest.raises(InfeasiblePartitionError):
            partition_hierarchical(10, [])

    def test_flat_allocation_order(self):
        groups = [[make_pwl(10.0)], [make_pwl(20.0), make_pwl(30.0)]]
        h = partition_hierarchical(90_000, groups)
        flat = h.flat_allocation()
        assert flat.size == 3
        assert flat[0] == h.allocations[0][0]

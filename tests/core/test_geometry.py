"""Tests for ray-graph geometry and initial bracketing."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConstantSpeedFunction, InfeasiblePartitionError
from repro.core.geometry import (
    SlopeRegion,
    allocations,
    ensure_bracket,
    initial_bracket,
    total_allocation,
)
from tests.conftest import make_hump_pwl, make_increasing_pwl, make_pwl


class TestAllocations:
    def test_matches_individual_intersections(self, heterogeneous_trio):
        slope = 1e-4
        out = allocations(heterogeneous_trio, slope)
        expected = [sf.intersect_ray(slope) for sf in heterogeneous_trio]
        np.testing.assert_allclose(out, expected)

    def test_total_is_sum(self, heterogeneous_trio):
        slope = 2e-4
        assert total_allocation(heterogeneous_trio, slope) == pytest.approx(
            float(allocations(heterogeneous_trio, slope).sum())
        )

    def test_total_monotone_nonincreasing_in_slope(self, heterogeneous_trio):
        slopes = np.geomspace(1e-6, 1e-1, 60)
        totals = [total_allocation(heterogeneous_trio, float(c)) for c in slopes]
        assert all(a >= b - 1e-9 for a, b in zip(totals, totals[1:]))


class TestInitialBracket:
    def test_brackets_the_target(self, heterogeneous_trio):
        n = 1_000_000
        region = initial_bracket(heterogeneous_trio, n)
        assert total_allocation(heterogeneous_trio, region.upper) <= n
        assert total_allocation(heterogeneous_trio, region.lower) >= n

    def test_constant_speeds_bracket_collapses(self):
        sfs = [ConstantSpeedFunction(100.0), ConstantSpeedFunction(100.0)]
        region = initial_bracket(sfs, 1000)
        # Equal speeds at n/p: both probe lines coincide.
        assert region.upper == pytest.approx(region.lower)

    def test_infeasible_raises(self):
        sfs = [make_pwl(100.0)]  # max_size = 2e6
        with pytest.raises(InfeasiblePartitionError):
            initial_bracket(sfs, 3_000_000)

    def test_feasible_at_capacity_boundary(self):
        sfs = [make_pwl(100.0), make_pwl(50.0)]
        region = initial_bracket(sfs, int(2e6 + 2e6) - 1)
        assert region.lower > 0

    def test_rejects_empty(self):
        with pytest.raises(InfeasiblePartitionError):
            initial_bracket([], 10)

    def test_rejects_nonpositive_n(self, two_processors):
        with pytest.raises(InfeasiblePartitionError):
            initial_bracket(two_processors, 0)

    @pytest.mark.parametrize("factory", [make_pwl, make_increasing_pwl, make_hump_pwl])
    def test_all_shapes_bracket(self, factory):
        sfs = [factory(100.0), factory(40.0)]
        n = 500_000
        region = initial_bracket(sfs, n)
        assert total_allocation(sfs, region.upper) <= n
        assert total_allocation(sfs, region.lower) >= n


class TestSlopeRegion:
    def test_tangent_midpoint(self):
        r = SlopeRegion(upper=4.0, lower=2.0)
        assert r.midpoint("tangent") == pytest.approx(3.0)

    def test_angle_midpoint_between_bounds(self):
        r = SlopeRegion(upper=4.0, lower=0.5)
        mid = r.midpoint("angle")
        assert 0.5 < mid < 4.0
        # Angle bisection differs from tangent bisection for wide regions.
        assert mid != pytest.approx(r.midpoint("tangent"))

    def test_angle_midpoint_exact(self):
        import math

        r = SlopeRegion(upper=math.tan(1.0), lower=math.tan(0.5))
        assert r.midpoint("angle") == pytest.approx(math.tan(0.75))

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            SlopeRegion(upper=2.0, lower=1.0).midpoint("golden")

    def test_width(self):
        assert SlopeRegion(upper=5.0, lower=2.0).width() == pytest.approx(3.0)

    def test_replace_bounds(self):
        r = SlopeRegion(upper=5.0, lower=2.0)
        assert r.replace_upper(4.0).upper == 4.0
        assert r.replace_lower(3.0).lower == 3.0

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            SlopeRegion(upper=1.0, lower=2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SlopeRegion(upper=1.0, lower=0.0)


class TestEnsureBracket:
    def test_valid_region_untouched(self, heterogeneous_trio):
        n = 1_000_000
        region = initial_bracket(heterogeneous_trio, n)
        repaired, probes = ensure_bracket(region, n, heterogeneous_trio)
        assert repaired == region
        assert probes == 2

    def test_repairs_region_for_larger_n(self, heterogeneous_trio):
        small = initial_bracket(heterogeneous_trio, 10_000)
        big_n = 3_000_000
        repaired, probes = ensure_bracket(small, big_n, heterogeneous_trio)
        assert total_allocation(heterogeneous_trio, repaired.upper) <= big_n
        assert total_allocation(heterogeneous_trio, repaired.lower) >= big_n
        assert probes >= 2

    def test_repairs_region_for_smaller_n(self, heterogeneous_trio):
        big = initial_bracket(heterogeneous_trio, 3_000_000)
        small_n = 10_000
        repaired, _ = ensure_bracket(big, small_n, heterogeneous_trio)
        assert total_allocation(heterogeneous_trio, repaired.upper) <= small_n
        assert total_allocation(heterogeneous_trio, repaired.lower) >= small_n

    def test_probe_count_scales_logarithmically(self, heterogeneous_trio):
        near = initial_bracket(heterogeneous_trio, 1_000_000)
        _, probes_near = ensure_bracket(near, 1_100_000, heterogeneous_trio)
        _, probes_far = ensure_bracket(near, 4_500_000, heterogeneous_trio)
        cold_probes = 2 + 60  # the figure-18 doubling search is much longer
        assert probes_near <= probes_far <= cold_probes

    def test_nonpositive_n_rejected(self, heterogeneous_trio):
        region = initial_bracket(heterogeneous_trio, 1000)
        with pytest.raises(InfeasiblePartitionError):
            ensure_bracket(region, 0, heterogeneous_trio)

    def test_over_capacity_rejected(self):
        sfs = [ConstantSpeedFunction(10.0, max_size=100) for _ in range(2)]
        region = initial_bracket(sfs, 100)
        with pytest.raises(InfeasiblePartitionError):
            ensure_bracket(region, 10_000, sfs)

    def test_custom_allocator_used(self, heterogeneous_trio):
        from repro.core.vectorized import pack_speed_functions

        pack = pack_speed_functions(heterogeneous_trio)
        region = initial_bracket(heterogeneous_trio, 50_000)
        via_pack, _ = ensure_bracket(
            region, 2_000_000, heterogeneous_trio, allocator=pack.allocations
        )
        via_scalar, _ = ensure_bracket(region, 2_000_000, heterogeneous_trio)
        assert via_pack == via_scalar

"""Edge cases for the exact reference partitioner and bounded partitions.

Includes regression tests for two integer-overflow bugs found by the
differential harness (``repro verify``): unbounded processors used to
report real allocations past ``2**63`` at shallow slopes, and the
``float -> int64`` cast wrapped to ``INT64_MIN`` — making ``exact``
mislabel feasible instances infeasible and handing ``modified`` negative
candidate counts.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.band import SpeedBand, constant_width_schedule
from repro.core.bisection import partition_bisection
from repro.core.bounded import partition_bounded
from repro.core.exact import partition_exact
from repro.core.modified import partition_modified
from repro.core.speed_function import ConstantSpeedFunction
from repro.exceptions import InfeasiblePartitionError
from repro.verify import check_allocation
from tests.conftest import make_pwl


@pytest.fixture
def trio():
    return [make_pwl(100.0), make_pwl(220.0), make_pwl(320.0, scale=1.5)]


class TestExactEdges:
    def test_n_zero(self, trio):
        result = partition_exact(0, trio)
        assert result.makespan == 0.0
        assert np.array_equal(result.allocation, np.zeros(3, dtype=np.int64))

    def test_single_processor(self, trio):
        result = partition_exact(123_456, trio[:1])
        assert result.allocation.tolist() == [123_456]
        assert result.makespan == pytest.approx(trio[0].time(123_456))

    def test_fewer_elements_than_processors(self, trio):
        result = partition_exact(2, trio)
        assert int(result.allocation.sum()) == 2
        assert np.all(result.allocation >= 0)
        assert check_allocation(result.allocation, trio, n=2).ok

    def test_all_equal_speeds_split_evenly(self):
        fleet = [ConstantSpeedFunction(10.0) for _ in range(4)]
        result = partition_exact(1001, fleet)
        assert int(result.allocation.sum()) == 1001
        assert int(result.allocation.max() - result.allocation.min()) <= 1

    def test_single_dominant_processor(self):
        fleet = [ConstantSpeedFunction(1000.0)] + [
            ConstantSpeedFunction(1.0) for _ in range(3)
        ]
        result = partition_exact(10_000, fleet)
        assert int(result.allocation[0]) > 9_000
        assert result.makespan == pytest.approx(
            partition_bisection(10_000, fleet).makespan, rel=1e-9
        )

    def test_matches_bisection_makespan(self, trio):
        for n in (1, 17, 5_000, 1_700_000):
            exact = partition_exact(n, trio)
            bisect = partition_bisection(n, trio)
            assert int(exact.allocation.sum()) == n
            # exact is the reference optimum: never worse, and bisection
            # is known-optimal on these fleets.
            assert exact.makespan == pytest.approx(bisect.makespan, rel=1e-9)

    def test_infeasible_past_total_capacity(self, trio):
        capacity = int(sum(sf.max_size for sf in trio))
        with pytest.raises(InfeasiblePartitionError):
            partition_exact(capacity + 10, trio)


class TestOverflowRegressions:
    """An unbounded constant processor used to overflow int64 casts."""

    @pytest.fixture
    def with_unbounded(self):
        return [
            ConstantSpeedFunction(3.0),  # max_size = inf
            make_pwl(250.0),
            make_pwl(90.0, scale=0.5),
        ]

    def test_exact_solves_unbounded_fleet(self, with_unbounded):
        n = 4_362_708  # found by `repro verify --seed 0`
        result = partition_exact(n, with_unbounded)
        assert int(result.allocation.sum()) == n
        assert result.makespan == pytest.approx(
            partition_bisection(n, with_unbounded).makespan, rel=1e-9
        )

    def test_modified_solves_unbounded_fleet(self, with_unbounded):
        n = 4_362_708
        result = partition_modified(n, with_unbounded)
        assert int(result.allocation.sum()) == n
        assert result.makespan == pytest.approx(
            partition_bisection(n, with_unbounded).makespan, rel=1e-9
        )


class TestBoundedEdges:
    def test_n_zero(self, trio):
        result = partition_bounded(0, trio, [100, 100, 100])
        assert int(result.allocation.sum()) == 0

    def test_bounds_respected(self, trio):
        bounds = [50_000, math.inf, 400_000]
        result = partition_bounded(600_000, trio, bounds)
        assert int(result.allocation.sum()) == 600_000
        assert result.allocation[0] <= 50_000
        assert result.allocation[2] <= 400_000

    def test_tight_bounds_force_the_split(self, trio):
        result = partition_bounded(30, trio, [10, 10, 10])
        assert result.allocation.tolist() == [10, 10, 10]

    def test_infeasible_bounds_raise(self, trio):
        with pytest.raises(InfeasiblePartitionError):
            partition_bounded(31, trio, [10, 10, 10])

    def test_infinite_bounds_match_unbounded(self, trio):
        plain = partition_bisection(900_000, trio)
        bounded = partition_bounded(
            900_000, trio, [math.inf] * 3, algorithm="bisection"
        )
        assert np.array_equal(bounded.allocation, plain.allocation)
        assert bounded.makespan == plain.makespan

    def test_single_processor_at_its_bound(self, trio):
        result = partition_bounded(77, trio[:1], [77])
        assert result.allocation.tolist() == [77]


class TestZeroWidthBands:
    def test_degenerate_band_collapses_to_midline(self, trio):
        band = SpeedBand(trio[0], constant_width_schedule(0.0))
        rng = np.random.default_rng(5)
        sampled = band.sample(rng)
        for x in (1.0, 1e4, 5e5, 1.9e6):
            assert sampled.speed(x) == pytest.approx(trio[0].speed(x), rel=1e-12)

    def test_partition_on_degenerate_band_samples(self, trio):
        rng = np.random.default_rng(9)
        fleet = [
            SpeedBand(sf, constant_width_schedule(0.0)).sample(rng) for sf in trio
        ]
        n = 800_000
        sampled = partition_exact(n, fleet)
        midline = partition_exact(n, trio)
        assert int(sampled.allocation.sum()) == n
        assert sampled.makespan == pytest.approx(midline.makespan, rel=1e-6)

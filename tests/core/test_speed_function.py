"""Unit tests for the speed-function representations."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    AnalyticSpeedFunction,
    ConstantSpeedFunction,
    InvalidSpeedFunctionError,
    PiecewiseLinearSpeedFunction,
    validate_speed_functions,
)
from tests.conftest import make_hump_pwl, make_increasing_pwl, make_pwl


class TestConstantSpeedFunction:
    def test_speed_is_constant(self):
        sf = ConstantSpeedFunction(42.0)
        assert sf.speed(1) == 42.0
        assert sf.speed(1e9) == 42.0

    def test_speed_vectorised(self):
        sf = ConstantSpeedFunction(5.0)
        out = sf.speed(np.array([1.0, 10.0, 100.0]))
        np.testing.assert_allclose(out, [5.0, 5.0, 5.0])

    def test_time_linear(self):
        sf = ConstantSpeedFunction(10.0)
        assert sf.time(100) == pytest.approx(10.0)
        assert sf.time(0) == 0.0

    def test_intersect_ray(self):
        sf = ConstantSpeedFunction(50.0)
        # 50 = c * x  =>  x = 50 / c
        assert sf.intersect_ray(2.0) == pytest.approx(25.0)

    def test_intersect_ray_clamps_to_max_size(self):
        sf = ConstantSpeedFunction(50.0, max_size=10.0)
        assert sf.intersect_ray(0.001) == pytest.approx(10.0)

    def test_g_decreasing(self):
        sf = ConstantSpeedFunction(7.0)
        assert sf.g(10) > sf.g(20) > sf.g(40)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(InvalidSpeedFunctionError):
            ConstantSpeedFunction(0.0)
        with pytest.raises(InvalidSpeedFunctionError):
            ConstantSpeedFunction(-3.0)

    def test_rejects_infinite_speed(self):
        with pytest.raises(InvalidSpeedFunctionError):
            ConstantSpeedFunction(math.inf)

    def test_rejects_bad_max_size(self):
        with pytest.raises(InvalidSpeedFunctionError):
            ConstantSpeedFunction(1.0, max_size=0.0)

    def test_scaled(self):
        sf = ConstantSpeedFunction(10.0).scaled(3.0)
        assert sf.speed(5) == pytest.approx(30.0)
        assert sf.intersect_ray(1.0) == pytest.approx(30.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(InvalidSpeedFunctionError):
            ConstantSpeedFunction(10.0).scaled(0.0)

    def test_intersect_ray_rejects_nonpositive_slope(self):
        with pytest.raises(ValueError):
            ConstantSpeedFunction(10.0).intersect_ray(0.0)


class TestPiecewiseLinearSpeedFunction:
    def test_interpolates_knots(self):
        sf = PiecewiseLinearSpeedFunction([10.0, 100.0], [50.0, 20.0])
        assert sf.speed(10) == pytest.approx(50.0)
        assert sf.speed(100) == pytest.approx(20.0)
        assert sf.speed(55) == pytest.approx(35.0)

    def test_constant_extension_below_first_knot(self):
        sf = PiecewiseLinearSpeedFunction([10.0, 100.0], [50.0, 20.0])
        assert sf.speed(1) == pytest.approx(50.0)
        assert sf.speed(0) == pytest.approx(50.0)

    def test_max_size_is_last_knot(self):
        sf = make_pwl(100.0)
        assert sf.max_size == pytest.approx(2e6)

    def test_time_inf_beyond_bound(self):
        sf = PiecewiseLinearSpeedFunction([10.0, 100.0], [50.0, 20.0])
        assert sf.time(101) == math.inf
        assert sf.time(100) == pytest.approx(5.0)

    def test_time_zero_at_zero(self):
        assert make_pwl(10.0).time(0) == 0.0

    def test_time_vectorised_matches_scalar(self):
        sf = make_pwl(100.0)
        xs = np.array([0.0, 1e3, 1e5, 2e6])
        vec = sf.time(xs)
        for x, t in zip(xs, vec):
            assert sf.time(float(x)) == pytest.approx(t)

    @pytest.mark.parametrize(
        "factory", [make_pwl, make_increasing_pwl, make_hump_pwl]
    )
    def test_intersect_ray_solves_equation(self, factory):
        sf = factory(100.0)
        for slope in [1e-5, 1e-4, 1e-3, 1e-2]:
            x = sf.intersect_ray(slope)
            if x < sf.max_size:  # not clamped
                assert slope * x == pytest.approx(sf.speed(x), rel=1e-9)

    def test_intersect_ray_clamps_shallow_rays(self):
        sf = make_pwl(100.0)
        shallow = 0.5 * sf.g(sf.max_size)
        assert sf.intersect_ray(shallow) == pytest.approx(sf.max_size)

    def test_intersect_ray_steep_hits_constant_extension(self):
        sf = PiecewiseLinearSpeedFunction([10.0, 100.0], [50.0, 20.0])
        # Steeper than g(10)=5: intersects the constant extension s=50.
        assert sf.intersect_ray(10.0) == pytest.approx(5.0)

    def test_intersect_ray_monotone_in_slope(self):
        sf = make_hump_pwl(100.0)
        slopes = np.geomspace(1e-6, 1.0, 50)
        xs = [sf.intersect_ray(float(c)) for c in slopes]
        assert all(a >= b for a, b in zip(xs, xs[1:]))

    def test_rejects_unsorted_sizes(self):
        with pytest.raises(InvalidSpeedFunctionError):
            PiecewiseLinearSpeedFunction([100.0, 10.0], [20.0, 50.0])

    def test_rejects_duplicate_sizes(self):
        with pytest.raises(InvalidSpeedFunctionError):
            PiecewiseLinearSpeedFunction([10.0, 10.0], [50.0, 20.0])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(InvalidSpeedFunctionError):
            PiecewiseLinearSpeedFunction([0.0, 10.0], [50.0, 20.0])

    def test_rejects_negative_speed(self):
        with pytest.raises(InvalidSpeedFunctionError):
            PiecewiseLinearSpeedFunction([10.0, 20.0], [50.0, -1.0])

    def test_rejects_zero_interior_speed(self):
        with pytest.raises(InvalidSpeedFunctionError):
            PiecewiseLinearSpeedFunction([10.0, 20.0, 30.0], [50.0, 0.0, 0.0])

    def test_last_knot_speed_may_be_zero(self):
        sf = PiecewiseLinearSpeedFunction([10.0, 20.0], [50.0, 0.0])
        assert sf.speed(20) == 0.0

    def test_rejects_increasing_g(self):
        # Speed doubling while size grows only 10%: g increases.
        with pytest.raises(InvalidSpeedFunctionError):
            PiecewiseLinearSpeedFunction([10.0, 11.0], [50.0, 100.0])

    def test_accepts_sublinear_increase(self):
        # Speed rising slower than size keeps g decreasing.
        sf = PiecewiseLinearSpeedFunction([10.0, 100.0], [50.0, 80.0])
        assert sf.g(10) > sf.g(100)

    def test_mismatched_lengths(self):
        with pytest.raises(InvalidSpeedFunctionError):
            PiecewiseLinearSpeedFunction([10.0, 20.0], [50.0])

    def test_from_points_sorts(self):
        sf = PiecewiseLinearSpeedFunction.from_points([(100.0, 20.0), (10.0, 50.0)])
        np.testing.assert_allclose(sf.knot_sizes, [10.0, 100.0])

    def test_from_points_empty(self):
        with pytest.raises(InvalidSpeedFunctionError):
            PiecewiseLinearSpeedFunction.from_points([])

    def test_knot_views_readonly(self):
        sf = make_pwl(10.0)
        with pytest.raises(ValueError):
            sf.knot_sizes[0] = 1.0

    def test_num_knots(self):
        assert make_pwl(10.0).num_knots == 6

    def test_check_single_intersection_passes(self):
        make_pwl(10.0).check_single_intersection()

    def test_g_strictly_decreasing_everywhere(self):
        sf = make_hump_pwl(100.0)
        xs = np.geomspace(1.0, sf.max_size, 300)
        gs = sf.g(xs)
        assert np.all(np.diff(gs) < 0)

    def test_scaled_preserves_intersections(self):
        sf = make_pwl(100.0)
        scaled = sf.scaled(2.0)
        # Doubling speeds doubles the intersection slope for the same x.
        x = sf.intersect_ray(1e-4)
        assert scaled.intersect_ray(2e-4) == pytest.approx(x, rel=1e-9)


class TestAnalyticSpeedFunction:
    def test_speed_matches_callable(self, analytic_processor):
        assert analytic_processor.speed(1000.0) == pytest.approx(
            200.0 * (1000.0 / 1500.0) / (1.0 + (1000.0 / 8e5) ** 2)
        )

    def test_intersect_ray_solves_equation(self, analytic_processor):
        for slope in [1e-4, 1e-3, 1e-2]:
            x = analytic_processor.intersect_ray(slope)
            assert slope * x == pytest.approx(
                analytic_processor.speed(x), rel=1e-6
            )

    def test_intersect_ray_clamps(self, analytic_processor):
        g_end = analytic_processor.g(analytic_processor.max_size)
        assert analytic_processor.intersect_ray(0.5 * g_end) == pytest.approx(
            analytic_processor.max_size
        )

    def test_requires_finite_max_size(self):
        with pytest.raises(InvalidSpeedFunctionError):
            AnalyticSpeedFunction(lambda x: np.ones_like(x), max_size=math.inf)

    def test_validation_grid(self):
        def bad(x):
            return np.asarray(x, dtype=float) ** 2  # superlinear: g increases

        with pytest.raises(InvalidSpeedFunctionError):
            AnalyticSpeedFunction(bad, max_size=100.0, validate_sizes=[1, 10, 100])

    def test_tabulate_matches(self, analytic_processor):
        tab = analytic_processor.tabulate(np.geomspace(10, 5e6, 160))
        # Compare where the curve is still meaningfully fast; linear
        # interpolation of the deep collapse is relatively poor by design.
        xs = np.geomspace(20, 8e5, 17)
        np.testing.assert_allclose(
            tab.speed(xs), analytic_processor.speed(xs), rtol=0.05
        )


class TestValidateSpeedFunctions:
    def test_empty_rejected(self):
        with pytest.raises(InvalidSpeedFunctionError):
            validate_speed_functions([])

    def test_non_speed_function_rejected(self):
        with pytest.raises(InvalidSpeedFunctionError):
            validate_speed_functions([lambda x: x])  # type: ignore[list-item]

    def test_valid_collection(self, heterogeneous_trio):
        validate_speed_functions(
            heterogeneous_trio, sample_sizes=np.geomspace(10, 1e6, 50)
        )

"""Tests for the general-problem variants: bounds, weights, two parameters."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    ConstantSpeedFunction,
    InfeasiblePartitionError,
    SpeedSurface,
    partition,
    partition_2d_fixed,
    partition_bounded,
    partition_weighted,
)
from repro.core.bounded import TruncatedSpeedFunction
from tests.conftest import make_pwl


class TestTruncatedSpeedFunction:
    def test_speed_matches_base_inside(self):
        base = make_pwl(100.0)
        t = TruncatedSpeedFunction(base, 1e5)
        assert t.speed(5e4) == pytest.approx(base.speed(5e4))

    def test_max_size_is_min(self):
        base = make_pwl(100.0)  # max 2e6
        assert TruncatedSpeedFunction(base, 1e5).max_size == 1e5
        assert TruncatedSpeedFunction(base, 1e9).max_size == 2e6

    def test_intersect_clamped(self):
        base = make_pwl(100.0)
        t = TruncatedSpeedFunction(base, 1e4)
        assert t.intersect_ray(1e-9) == pytest.approx(1e4)

    def test_rejects_bad_bound(self):
        with pytest.raises(InfeasiblePartitionError):
            TruncatedSpeedFunction(make_pwl(10.0), 0.0)


class TestPartitionBounded:
    def test_respects_bounds(self, heterogeneous_trio):
        bounds = [50_000, 1e9, 1e9]
        r = partition_bounded(500_000, heterogeneous_trio, bounds)
        assert r.allocation[0] <= 50_000
        assert int(r.allocation.sum()) == 500_000

    def test_bound_binds_only_when_needed(self, heterogeneous_trio):
        loose = partition_bounded(100_000, heterogeneous_trio, [1e9, 1e9, 1e9])
        free = partition(100_000, heterogeneous_trio)
        assert loose.makespan == pytest.approx(free.makespan, rel=1e-9)

    def test_infeasible(self, heterogeneous_trio):
        with pytest.raises(InfeasiblePartitionError):
            partition_bounded(500_000, heterogeneous_trio, [10, 10, 10])

    def test_mismatched_bounds(self, heterogeneous_trio):
        with pytest.raises(InfeasiblePartitionError):
            partition_bounded(100, heterogeneous_trio, [10])

    def test_inf_bound_allowed(self, heterogeneous_trio):
        r = partition_bounded(
            100_000, heterogeneous_trio, [float("inf")] * 3
        )
        assert int(r.allocation.sum()) == 100_000

    def test_algorithm_tag(self, heterogeneous_trio):
        r = partition_bounded(1000, heterogeneous_trio, [1e9] * 3)
        assert r.algorithm.endswith("+bounded")

    def test_tight_bounds_force_slow_processor(self):
        fast = ConstantSpeedFunction(100.0)
        slow = ConstantSpeedFunction(1.0)
        r = partition_bounded(100, [fast, slow], [60, 1000])
        assert r.allocation[0] == 60
        assert r.allocation[1] == 40


class TestPartitionWeighted:
    def test_unit_weights_match_cardinality_balance(self):
        sfs = [ConstantSpeedFunction(2.0), ConstantSpeedFunction(6.0)]
        res = partition_weighted(np.ones(80), sfs)
        # Constant speeds and unit weights: loads proportional to speeds.
        assert res.counts[1] == pytest.approx(60, abs=2)
        assert res.counts.sum() == 80

    def test_assignment_consistent_with_counts(self, rng):
        sfs = [make_pwl(50.0), make_pwl(150.0)]
        w = rng.uniform(0.5, 2.0, 120)
        res = partition_weighted(w, sfs)
        for i in range(2):
            assert (res.assignment == i).sum() == res.counts[i]
            assert res.loads[i] == pytest.approx(w[res.assignment == i].sum())

    def test_makespan_definition(self, rng):
        sfs = [make_pwl(50.0), make_pwl(150.0)]
        w = rng.uniform(0.5, 2.0, 60)
        res = partition_weighted(w, sfs)
        times = [
            res.loads[i] / sfs[i].speed(int(res.counts[i]))
            for i in range(2)
            if res.counts[i]
        ]
        assert res.makespan == pytest.approx(max(times))

    def test_heavy_element_to_fast_processor(self):
        sfs = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(100.0)]
        res = partition_weighted([1000.0, 1.0, 1.0], sfs)
        assert res.assignment[0] == 1

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(InfeasiblePartitionError):
            partition_weighted([1.0, -1.0], [ConstantSpeedFunction(1.0)])

    def test_rejects_no_processors(self):
        with pytest.raises(InfeasiblePartitionError):
            partition_weighted([1.0], [])

    def test_respects_element_bounds(self):
        sfs = [
            ConstantSpeedFunction(100.0, max_size=2),
            ConstantSpeedFunction(1.0, max_size=100),
        ]
        res = partition_weighted(np.ones(10), sfs)
        assert res.counts[0] <= 2
        assert res.counts.sum() == 10

    def test_infeasible_bounds(self):
        sfs = [ConstantSpeedFunction(1.0, max_size=1)] * 2
        with pytest.raises(InfeasiblePartitionError):
            partition_weighted(np.ones(5), sfs)

    def test_local_search_never_worsens(self, rng):
        sfs = [make_pwl(30.0), make_pwl(90.0), make_pwl(160.0)]
        w = rng.uniform(0.1, 5.0, 200)
        base = partition_weighted(w, sfs, local_search_passes=0)
        improved = partition_weighted(w, sfs, local_search_passes=8)
        assert improved.makespan <= base.makespan * (1 + 1e-12)


def _flat_surface(value: float) -> SpeedSurface:
    g = np.array([10.0, 100.0, 1000.0])
    return SpeedSurface(g, g, np.full((3, 3), value))


class TestSpeedSurface:
    def test_bilinear_exact_at_grid(self):
        g = np.array([10.0, 100.0])
        sp = np.array([[40.0, 30.0], [20.0, 10.0]])
        surf = SpeedSurface(g, g, sp)
        assert surf.speed(10, 10) == pytest.approx(40.0)
        assert surf.speed(100, 100) == pytest.approx(10.0)

    def test_bilinear_midpoint(self):
        g = np.array([0.5, 1.5])
        sp = np.array([[4.0, 2.0], [2.0, 0.0]])
        surf = SpeedSurface(g, g, sp)
        assert surf.speed(1.0, 1.0) == pytest.approx(2.0)

    def test_clamping_outside_grid(self):
        surf = _flat_surface(5.0)
        assert surf.speed(1e9, 1e9) == pytest.approx(5.0)

    def test_shape_validation(self):
        g = np.array([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            SpeedSurface(g, g, np.zeros((3, 2)))

    def test_grid_validation(self):
        bad = np.array([2.0, 1.0])
        with pytest.raises(ConfigurationError):
            SpeedSurface(bad, bad, np.ones((2, 2)))

    def test_slices_are_valid_speed_functions(self):
        g = np.array([10.0, 100.0, 1000.0])
        sp = np.array([[50.0, 45.0, 40.0], [48.0, 42.0, 30.0], [40.0, 30.0, 10.0]])
        surf = SpeedSurface(g, g, sp)
        surf.slice_fixed_n2(100.0).check_single_intersection()
        surf.slice_fixed_n1(100.0).check_single_intersection()

    def test_slice_size_axis_is_elements(self):
        surf = _flat_surface(7.0)
        sf = surf.slice_fixed_n2(100.0)
        # n1 grid 10..1000 with n2=100 -> element axis 1e3..1e5.
        assert sf.max_size == pytest.approx(1000.0 * 100.0)


class TestPartition2DFixed:
    def test_equal_surfaces_split_evenly(self):
        surfs = [_flat_surface(5.0), _flat_surface(5.0)]
        r = partition_2d_fixed(100 * 100, surfs, 100.0)
        assert abs(int(r.allocation[0]) - int(r.allocation[1])) <= 1

    def test_faster_surface_gets_more(self):
        surfs = [_flat_surface(5.0), _flat_surface(20.0)]
        r = partition_2d_fixed(100 * 100, surfs, 100.0)
        assert r.allocation[1] > 3 * r.allocation[0] * 0.9

    def test_fixed_param_n1(self):
        surfs = [_flat_surface(5.0), _flat_surface(10.0)]
        r = partition_2d_fixed(50 * 100, surfs, 50.0, fixed_param="n1")
        assert int(r.allocation.sum()) == 5000

    def test_unknown_param(self):
        with pytest.raises(ConfigurationError):
            partition_2d_fixed(100, [_flat_surface(1.0)], 10.0, fixed_param="n3")

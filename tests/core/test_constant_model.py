"""Tests for the single-number baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import InfeasiblePartitionError, partition_constant, partition_even
from repro.core.constant_model import partition_constant_naive, single_number_speeds
from tests.conftest import make_pwl


class TestPartitionConstant:
    def test_proportional_exact(self):
        r = partition_constant(1000, [100.0, 300.0])
        np.testing.assert_array_equal(r.allocation, [250, 750])

    def test_sums_to_n(self):
        r = partition_constant(1001, [3.0, 5.0, 7.0])
        assert r.allocation.sum() == 1001

    def test_zero_elements(self):
        r = partition_constant(0, [1.0, 2.0])
        np.testing.assert_array_equal(r.allocation, [0, 0])
        assert r.makespan == 0.0

    def test_single_processor(self):
        r = partition_constant(42, [7.0])
        np.testing.assert_array_equal(r.allocation, [42])

    def test_remainder_goes_to_fastest(self):
        # 10 over speeds (1, 1, 8): shares 1, 1, 8 exactly; 11 gives the
        # extra to the fast processor (its finish time grows least).
        r = partition_constant(11, [1.0, 1.0, 8.0])
        assert r.allocation[2] == 9

    def test_makespan_is_max_time(self):
        r = partition_constant(100, [10.0, 30.0])
        times = r.allocation / np.array([10.0, 30.0])
        assert r.makespan == pytest.approx(times.max())

    def test_rejects_negative_n(self):
        with pytest.raises(InfeasiblePartitionError):
            partition_constant(-1, [1.0])

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(InfeasiblePartitionError):
            partition_constant(10, [1.0, 0.0])

    def test_rejects_empty_speeds(self):
        with pytest.raises(InfeasiblePartitionError):
            partition_constant(10, [])

    def test_makespan_optimal_vs_bruteforce(self):
        speeds = [2.0, 3.0, 5.0]
        n = 17
        best = min(
            max(a / 2.0, b / 3.0, (n - a - b) / 5.0)
            for a in range(n + 1)
            for b in range(n + 1 - a)
        )
        r = partition_constant(n, speeds)
        assert r.makespan == pytest.approx(best)


class TestPartitionConstantNaive:
    @pytest.mark.parametrize("n", [0, 1, 7, 100, 999])
    def test_matches_heap_version(self, n):
        speeds = [2.0, 3.0, 5.0, 11.0]
        a = partition_constant(n, speeds)
        b = partition_constant_naive(n, speeds)
        assert a.makespan == pytest.approx(b.makespan)
        assert b.allocation.sum() == n


class TestPartitionEven:
    def test_even_split(self):
        r = partition_even(10, 5)
        np.testing.assert_array_equal(r.allocation, [2, 2, 2, 2, 2])

    def test_remainder_spread(self):
        r = partition_even(11, 3)
        assert sorted(r.allocation.tolist()) == [3, 4, 4]
        assert r.allocation.sum() == 11

    def test_rejects_bad_p(self):
        with pytest.raises(InfeasiblePartitionError):
            partition_even(10, 0)

    def test_rejects_negative_n(self):
        with pytest.raises(InfeasiblePartitionError):
            partition_even(-5, 2)


class TestSingleNumberSpeeds:
    def test_probes_at_size(self):
        sfs = [make_pwl(100.0), make_pwl(200.0)]
        s = single_number_speeds(sfs, 1e3)
        np.testing.assert_allclose(s, [100.0, 200.0])

    def test_probe_beyond_bound_clamps(self):
        sfs = [make_pwl(100.0)]
        s = single_number_speeds(sfs, 1e12)
        assert s[0] == pytest.approx(sfs[0].speed(sfs[0].max_size))

    def test_probe_size_changes_relative_speeds(self):
        # The core failure mode of the single-number model: relative speeds
        # measured at different sizes disagree.
        fast_small = make_pwl(100.0, scale=0.1)  # small memory, pages early
        steady = make_pwl(60.0, scale=10.0)
        small = single_number_speeds([fast_small, steady], 1e3)
        large = single_number_speeds([fast_small, steady], 1e6)
        assert small[0] / small[1] > large[0] / large[1]

"""Tests for the piecewise-constant (Drozdowski-Wolniewicz) speed model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    InvalidSpeedFunctionError,
    StepSpeedFunction,
    partition,
    partition_exact,
)


@pytest.fixture
def step():
    # Cache / RAM / swap regimes.
    return StepSpeedFunction([1_000, 100_000, 1_000_000], [80.0, 50.0, 4.0])


class TestConstruction:
    def test_segment_lookup(self, step):
        assert step.speed(500) == 80.0
        assert step.speed(1_000) == 80.0  # boundary belongs to the left
        assert step.speed(1_001) == 50.0
        assert step.speed(1_000_000) == 4.0

    def test_vectorised(self, step):
        np.testing.assert_allclose(
            step.speed(np.array([1.0, 5e4, 5e5])), [80.0, 50.0, 4.0]
        )

    def test_max_size(self, step):
        assert step.max_size == 1_000_000

    def test_rejects_increasing_speeds(self):
        with pytest.raises(InvalidSpeedFunctionError):
            StepSpeedFunction([10, 20], [5.0, 6.0])

    def test_rejects_equal_speeds(self):
        with pytest.raises(InvalidSpeedFunctionError):
            StepSpeedFunction([10, 20], [5.0, 5.0])

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(InvalidSpeedFunctionError):
            StepSpeedFunction([20, 10], [5.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(InvalidSpeedFunctionError):
            StepSpeedFunction([], [])

    def test_from_memory_levels(self):
        sf = StepSpeedFunction.from_memory_levels([100, 1000], [60.0, 30.0, 1.0], 5000)
        assert sf.num_segments == 3
        assert sf.max_size == 5000

    def test_check_single_intersection(self, step):
        step.check_single_intersection()


class TestIntersectRay:
    def test_on_flat_segment(self, step):
        # Ray hits the middle plateau: 50 = c * x -> x = 50 / c.
        x = step.intersect_ray(50.0 / 50_000.0)
        assert x == pytest.approx(50_000.0)

    def test_through_a_drop(self, step):
        # A ray passing between g just-right-of-boundary and just-left lands
        # exactly on the boundary.
        # Slope between g just left of the RAM/swap boundary (50/1e5) and
        # just right of it (4/1e5): the intersection is the boundary itself.
        slope = 1e-4
        x = step.intersect_ray(slope)
        assert x == pytest.approx(100_000.0)

    def test_clamps_at_capacity(self, step):
        assert step.intersect_ray(1e-9) == pytest.approx(step.max_size)

    def test_steep_ray_first_plateau(self, step):
        assert step.intersect_ray(80.0) == pytest.approx(1.0)

    def test_rejects_bad_slope(self, step):
        with pytest.raises(ValueError):
            step.intersect_ray(0.0)

    def test_sup_semantics(self, step):
        # For every slope, s(x) >= slope*x at the returned point (within
        # float tolerance) and fails just beyond it.
        for slope in [1e-5, 1e-4, 5e-4, 1e-3, 0.01, 1.0]:
            x = step.intersect_ray(slope)
            assert step.speed(x) >= slope * x * (1 - 1e-12)
            beyond = min(x * 1.01, step.max_size)
            if beyond > x:
                assert step.speed(beyond) < slope * beyond * (1 + 1e-9)


class TestPartitioningWithSteps:
    def test_all_algorithms_accept_steps(self, step):
        other = StepSpeedFunction([2_000, 500_000, 2_000_000], [120.0, 90.0, 10.0])
        n = 1_500_000
        results = {}
        for algo in ["bisection", "modified", "combined", "exact"]:
            r = partition(n, [step, other], algorithm=algo)
            assert int(r.allocation.sum()) == n
            results[algo] = r.makespan
        vals = list(results.values())
        assert max(vals) / min(vals) < 1 + 1e-9

    def test_mixed_with_linear(self, step):
        from tests.conftest import make_pwl

        sfs = [step, make_pwl(150.0)]
        n = 1_200_000
        r = partition(n, sfs)
        assert r.makespan == pytest.approx(
            partition_exact(n, sfs).makespan, rel=1e-9
        )

    def test_to_piecewise_linear_agrees(self, step):
        pwl = step.to_piecewise_linear()
        xs = np.array([500.0, 5e4, 5e5])
        np.testing.assert_allclose(pwl.speed(xs), step.speed(xs), rtol=1e-3)
        pwl.check_single_intersection()


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=1e6),
            st.floats(min_value=0.1, max_value=1e3),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_property_g_monotone(data):
    bs = sorted(set(b for b, _ in data))
    ss = sorted(set(s for _, s in data), reverse=True)
    k = min(len(bs), len(ss))
    if k == 0:
        return
    sf = StepSpeedFunction(bs[:k], ss[:k])
    xs = np.linspace(bs[0] * 0.5, sf.max_size, 200)
    gs = sf.g(xs)
    assert np.all(np.diff(gs) <= 1e-12)

"""Property-based tests (hypothesis) for the core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import (
    ConstantSpeedFunction,
    PiecewiseLinearSpeedFunction,
    makespan,
    partition_bisection,
    partition_combined,
    partition_constant,
    partition_exact,
    partition_modified,
)
from repro.core.refine import refine_greedy


@st.composite
def valid_pwl(draw, max_knots: int = 6):
    """Random piecewise-linear speed function with strictly decreasing g.

    Built constructively: pick decreasing ray slopes g_k at increasing
    sizes x_k and set s_k = g_k * x_k, which satisfies the invariant by
    construction.
    """
    k = draw(st.integers(min_value=2, max_value=max_knots))
    # Strictly increasing sizes on a coarse lattice.
    xs = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=10_000),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
    )
    # Strictly decreasing g values.
    gs = sorted(
        draw(
            st.lists(
                st.floats(
                    min_value=1e-4,
                    max_value=1e3,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=k,
                max_size=k,
                unique=True,
            )
        ),
        reverse=True,
    )
    xs_arr = np.array(xs, dtype=float)
    ss_arr = np.array(gs, dtype=float) * xs_arr
    # Nearly-equal g values can collide after the s = g*x round trip;
    # discard such draws rather than constructing an invalid function.
    assume(np.all(np.diff(ss_arr / xs_arr) < 0))
    return PiecewiseLinearSpeedFunction(xs_arr, ss_arr)


@st.composite
def processor_set(draw, max_p: int = 4):
    p = draw(st.integers(min_value=1, max_value=max_p))
    return [draw(valid_pwl()) for _ in range(p)]


@settings(max_examples=60, deadline=None)
@given(sfs=processor_set(), frac=st.floats(min_value=0.01, max_value=0.95))
def test_partition_sums_and_bounds(sfs, frac):
    capacity = int(sum(sf.max_size for sf in sfs))
    n = max(1, int(frac * capacity))
    r = partition_combined(n, sfs)
    assert int(r.allocation.sum()) == n
    assert np.all(r.allocation >= 0)
    for x, sf in zip(r.allocation, sfs):
        assert x <= sf.max_size


@settings(max_examples=40, deadline=None)
@given(sfs=processor_set(), frac=st.floats(min_value=0.05, max_value=0.9))
def test_algorithms_agree_on_makespan(sfs, frac):
    capacity = int(sum(sf.max_size for sf in sfs))
    n = max(1, int(frac * capacity))
    results = [
        fn(n, sfs).makespan
        for fn in (partition_bisection, partition_modified, partition_combined)
    ]
    exact = partition_exact(n, sfs).makespan
    for t in results:
        # Geometric algorithms with greedy refinement are optimal.
        assert t == pytest.approx(exact, rel=1e-9, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    speeds=st.lists(
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=6,
    ),
    n=st.integers(min_value=0, max_value=10_000),
)
def test_constant_partition_properties(speeds, n):
    r = partition_constant(n, speeds)
    assert int(r.allocation.sum()) == n
    assert np.all(r.allocation >= 0)
    if n > 0:
        s = np.asarray(speeds)
        # Proportionality within one element of the fractional share.
        shares = n * s / s.sum()
        assert np.all(np.abs(r.allocation - shares) < len(speeds))


@settings(max_examples=40, deadline=None)
@given(
    speeds=st.lists(
        st.integers(min_value=1, max_value=9), min_size=2, max_size=3
    ),
    n=st.integers(min_value=1, max_value=25),
)
def test_greedy_refinement_optimal_bruteforce(speeds, n):
    import itertools

    sfs = [ConstantSpeedFunction(float(s), max_size=100) for s in speeds]
    alloc = refine_greedy(n, sfs, [0.0] * len(sfs))
    best = min(
        makespan(sfs, combo + (n - sum(combo),))
        for combo in itertools.product(range(n + 1), repeat=len(sfs) - 1)
        if sum(combo) <= n
    )
    assert makespan(sfs, alloc) == pytest.approx(best, rel=1e-12)


@settings(max_examples=40, deadline=None)
@given(sfs=processor_set(max_p=3), n=st.integers(min_value=1, max_value=40))
def test_exact_matches_bruteforce_small(sfs, n):
    import itertools

    assume(sum(sf.max_size for sf in sfs) >= n)
    p = len(sfs)
    best = float("inf")
    for combo in itertools.product(range(n + 1), repeat=p - 1):
        if sum(combo) > n:
            continue
        alloc = list(combo) + [n - sum(combo)]
        if any(a > sf.max_size for a, sf in zip(alloc, sfs)):
            continue
        best = min(best, makespan(sfs, alloc))
    r = partition_exact(n, sfs)
    assert r.makespan == pytest.approx(best, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(sf=valid_pwl(), slope=st.floats(min_value=1e-6, max_value=1e4))
def test_intersect_ray_invariants(sf, slope):
    x = sf.intersect_ray(slope)
    assert 0 < x <= sf.max_size
    if x < sf.max_size:
        # On the graph: s(x) == slope * x (up to float error).
        assert float(sf.speed(x)) == pytest.approx(slope * x, rel=1e-6, abs=1e-9)
    else:
        # Clamped: the ray passes below the graph end.
        assert slope <= sf.g(sf.max_size) * (1 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(sf=valid_pwl())
def test_g_monotone_on_random_functions(sf):
    xs = np.linspace(1.0, sf.max_size, 100)
    gs = sf.g(xs)
    assert np.all(np.diff(gs) <= 1e-12)

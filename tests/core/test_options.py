"""PartitionOptions and the uniform unsupported-option rejection."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ALGORITHMS,
    SUPPORTED_OPTIONS,
    ConfigurationError,
    PartitionOptions,
    partition,
    partition_bisection,
    partition_combined,
    partition_constant,
    partition_exact,
    partition_hierarchical,
    partition_modified,
    partition_weighted,
)
from repro.core.constant_model import partition_constant_naive
from repro.core.options import reject_unknown_options
from repro.core.speed_function import ConstantSpeedFunction

from ..conftest import make_pwl


@pytest.fixture
def trio():
    return [make_pwl(100.0), make_pwl(300.0), make_pwl(200.0)]


class TestPartitionOptionsDataclass:
    def test_defaults(self):
        opts = PartitionOptions()
        assert opts.mode == "tangent"
        assert opts.refine == "greedy"
        assert opts.non_default() == {}

    def test_replace_returns_a_modified_copy(self):
        opts = PartitionOptions()
        other = opts.replace(mode="angle", keep_trace=True)
        assert other.mode == "angle"
        assert other.keep_trace is True
        assert opts.mode == "tangent"  # original untouched (frozen)

    def test_non_default_lists_only_changed_fields(self):
        opts = PartitionOptions(refine="paper", max_iterations=9)
        assert opts.non_default() == {"refine": "paper", "max_iterations": 9}

    def test_field_names_cover_the_documented_surface(self):
        assert PartitionOptions.field_names() >= {
            "mode", "refine", "max_iterations", "keep_trace",
            "region", "pack", "bounds", "validate",
        }

    def test_algorithm_kwargs_forwards_supported_fields(self):
        opts = PartitionOptions(mode="angle", refine="paper")
        kwargs = opts.algorithm_kwargs(
            "bisection", SUPPORTED_OPTIONS["bisection"]
        )
        assert kwargs == {"mode": "angle", "refine": "paper"}

    def test_algorithm_kwargs_rejects_unsupported_naming_the_algorithm(self):
        opts = PartitionOptions(mode="angle")
        with pytest.raises(ConfigurationError, match="'modified'"):
            opts.algorithm_kwargs("modified", SUPPORTED_OPTIONS["modified"])

    def test_front_door_options_are_never_forwarded(self):
        opts = PartitionOptions(bounds=[100.0, 100.0], validate=True)
        assert opts.algorithm_kwargs("exact", SUPPORTED_OPTIONS["exact"]) == {}


class TestPartitionFrontDoor:
    def test_options_equal_loose_keywords(self, trio):
        n = 30_000
        via_options = partition(
            n, trio, algorithm="bisection",
            options=PartitionOptions(mode="angle", refine="paper"),
        )
        via_keywords = partition(
            n, trio, algorithm="bisection", mode="angle", refine="paper"
        )
        assert via_options.allocation.tolist() == via_keywords.allocation.tolist()

    def test_mixing_options_and_keywords_is_rejected(self, trio):
        with pytest.raises(ConfigurationError, match="both"):
            partition(
                1000, trio, options=PartitionOptions(mode="angle"), mode="angle"
            )

    def test_unsupported_core_option_names_the_algorithm(self, trio):
        with pytest.raises(ConfigurationError, match="'modified'"):
            partition(1000, trio, algorithm="modified", mode="angle")

    def test_unknown_algorithm(self, trio):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            partition(1000, trio, algorithm="nope")

    def test_bounds_via_options(self, trio):
        n = 30_000
        bounds = [8_000.0, float("inf"), float("inf")]
        out = partition(n, trio, options=PartitionOptions(bounds=bounds))
        assert out.allocation[0] <= 8_000
        assert int(out.allocation.sum()) == n
        assert out.algorithm.endswith("+bounded")

    def test_every_registered_algorithm_has_an_option_surface(self):
        assert set(SUPPORTED_OPTIONS) == set(ALGORITHMS)


class TestUniformRejection:
    """Every partition_* rejects unknown keywords the same way."""

    @pytest.mark.parametrize(
        "fn, name",
        [
            (partition_bisection, "bisection"),
            (partition_combined, "combined"),
            (partition_modified, "modified"),
            (partition_exact, "exact"),
        ],
    )
    def test_functional_partitioners(self, fn, name, trio):
        with pytest.raises(ConfigurationError, match=f"'{name}'"):
            fn(1000, trio, definitely_not_an_option=1)

    def test_constant_partitioners(self):
        with pytest.raises(ConfigurationError, match="'constant'"):
            partition_constant(100, [1.0, 2.0], definitely_not_an_option=1)
        with pytest.raises(ConfigurationError, match="'constant-naive'"):
            partition_constant_naive(100, [1.0, 2.0], definitely_not_an_option=1)

    def test_weighted_partitioner(self, trio):
        with pytest.raises(ConfigurationError, match="'weighted'"):
            partition_weighted([1.0, 1.0, 1.0], trio, definitely_not_an_option=1)

    def test_hierarchical_partitioner(self, trio):
        with pytest.raises(ConfigurationError, match="'hierarchical'"):
            partition_hierarchical(
                1000, [trio[:2], trio[2:]], definitely_not_an_option=1
            )

    def test_reject_unknown_options_helper(self):
        reject_unknown_options("anything", {})  # empty extras pass
        with pytest.raises(ConfigurationError) as exc_info:
            reject_unknown_options("myalgo", {"b_opt": 1, "a_opt": 2})
        # Sorted names, algorithm named.
        assert "a_opt, b_opt" in str(exc_info.value)
        assert "'myalgo'" in str(exc_info.value)


class TestConstantModelSpeedFunctions:
    """Constant partitioners accept SpeedFunctions sampled at a probe size."""

    def test_speed_functions_are_sampled_at_the_even_share(self):
        sfs = [ConstantSpeedFunction(100.0, 1e6), ConstantSpeedFunction(300.0, 1e6)]
        via_functions = partition_constant(10_000, sfs)
        via_numbers = partition_constant(10_000, [100.0, 300.0])
        assert via_functions.allocation.tolist() == via_numbers.allocation.tolist()

    def test_probe_size_controls_the_sampling_point(self):
        sfs = [make_pwl(100.0), make_pwl(300.0)]
        n = 100_000
        at_small = partition_constant(n, sfs, probe_size=1e3)
        expected = partition_constant(
            n, [float(sf.speed(1e3)) for sf in sfs]
        )
        assert at_small.allocation.tolist() == expected.allocation.tolist()

    def test_mixed_numbers_and_functions(self):
        out = partition_constant(9_000, [ConstantSpeedFunction(200.0, 1e6), 100.0])
        assert int(out.allocation.sum()) == 9_000
        assert out.allocation[0] == 2 * out.allocation[1]

    def test_naive_variant_accepts_functions_too(self):
        sfs = [ConstantSpeedFunction(100.0, 1e6), ConstantSpeedFunction(300.0, 1e6)]
        out = partition_constant_naive(10_000, sfs)
        assert int(out.allocation.sum()) == 10_000

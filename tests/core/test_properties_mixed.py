"""Property tests over mixed speed-function families.

The geometric algorithms must not care which concrete representation a
processor uses — piecewise linear, constant, step, comm-wrapped, or a
composite group.  These tests draw heterogeneous collections and check the
universal invariants.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import (
    CommAwareSpeedFunction,
    ConstantSpeedFunction,
    PiecewiseLinearSpeedFunction,
    StepSpeedFunction,
    makespan,
    partition_combined,
    partition_exact,
)


@st.composite
def any_speed_function(draw):
    kind = draw(st.sampled_from(["constant", "pwl", "step", "comm"]))
    if kind == "constant":
        return ConstantSpeedFunction(
            draw(st.floats(min_value=0.1, max_value=1e3)),
            max_size=draw(st.integers(min_value=50, max_value=10_000)),
        )
    if kind == "step":
        k = draw(st.integers(min_value=1, max_value=4))
        bs = sorted(
            draw(
                st.lists(
                    st.integers(min_value=10, max_value=10_000),
                    min_size=k,
                    max_size=k,
                    unique=True,
                )
            )
        )
        ss = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.1, max_value=1e3),
                    min_size=k,
                    max_size=k,
                    unique=True,
                )
            ),
            reverse=True,
        )
        return StepSpeedFunction(bs, ss)
    # piecewise linear via decreasing-g construction
    k = draw(st.integers(min_value=2, max_value=5))
    xs = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=10_000),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
    )
    gs = sorted(
        draw(
            st.lists(
                st.floats(min_value=1e-3, max_value=1e2),
                min_size=k,
                max_size=k,
                unique=True,
            )
        ),
        reverse=True,
    )
    pwl = PiecewiseLinearSpeedFunction(
        np.array(xs, dtype=float), np.array(gs) * np.array(xs, dtype=float)
    )
    if kind == "comm":
        return CommAwareSpeedFunction(
            pwl,
            startup_s=draw(st.floats(min_value=0.0, max_value=1.0)),
            seconds_per_element=draw(st.floats(min_value=0.0, max_value=0.01)),
        )
    return pwl


@settings(max_examples=60, deadline=None)
@given(
    sfs=st.lists(any_speed_function(), min_size=1, max_size=4),
    frac=st.floats(min_value=0.05, max_value=0.9),
)
def test_mixed_families_partition_invariants(sfs, frac):
    capacity = int(sum(sf.max_size for sf in sfs))
    n = max(1, int(frac * capacity))
    r = partition_combined(n, sfs)
    assert int(r.allocation.sum()) == n
    assert np.all(r.allocation >= 0)
    for x, sf in zip(r.allocation, sfs):
        assert x <= sf.max_size
    assert r.makespan == pytest.approx(makespan(sfs, r.allocation))


@settings(max_examples=40, deadline=None)
@given(
    sfs=st.lists(any_speed_function(), min_size=1, max_size=3),
    frac=st.floats(min_value=0.1, max_value=0.8),
)
def test_mixed_families_near_optimal(sfs, frac):
    capacity = int(sum(sf.max_size for sf in sfs))
    n = max(1, int(frac * capacity))
    combined = partition_combined(n, sfs).makespan
    exact = partition_exact(n, sfs).makespan
    # Combined matches the optimal reference (ray-aligned step segments can
    # produce families of equivalent optima; compare times, not allocations).
    assert combined == pytest.approx(exact, rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(sf=any_speed_function(), slope=st.floats(min_value=1e-6, max_value=1e3))
def test_mixed_families_intersect_semantics(sf, slope):
    x = sf.intersect_ray(slope)
    assert 0 <= x <= sf.max_size
    if x > 0:
        # sup semantics: the graph is on or above the ray at the point...
        assert sf.g(x) >= slope * (1 - 1e-6) or x == sf.max_size
    # ...and below just beyond it.
    beyond = min(x * 1.01 + 1e-9, sf.max_size)
    if beyond > x:
        assert sf.g(beyond) <= slope * (1 + 1e-6)

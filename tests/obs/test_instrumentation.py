"""Instrumented hot paths: the metrics must agree with the results.

The 'never disagree' property: every number ``repro stats`` exports is
read from the same objects the code itself counts with (cache stats,
solver iteration counts, simulator traces), so these tests cross-check
metrics against the authoritative return values.
"""

from __future__ import annotations

import pytest

from repro import ConstantSpeedFunction, obs
from repro.core.bisection import partition_bisection, partition_bisection_many
from repro.core.combined import partition_combined
from repro.kernels import variable_group_block
from repro.planner import Fleet, Planner
from repro.simulate.lu_executor import simulate_lu

N = 1_000_000


def _counter_value(name, **labels):
    metric = obs.get_registry().get(name, labels or None)
    return 0 if metric is None else metric.value


class TestSolverMetrics:
    def test_bisection_counts_match_result(self, fresh_obs, heterogeneous_trio):
        obs.enable()
        result = partition_bisection(N, heterogeneous_trio)
        assert _counter_value("core.solve.calls", algorithm="bisection") == 1
        assert (
            _counter_value("core.solve.iterations.total", algorithm="bisection")
            == result.iterations
        )
        hist = obs.get_registry().get(
            "core.solve.iterations", {"algorithm": "bisection"}
        )
        assert hist.count == 1
        assert hist.sum == result.iterations

    def test_combined_labelled_separately(self, fresh_obs, heterogeneous_trio):
        obs.enable()
        partition_combined(N, heterogeneous_trio)
        assert _counter_value("core.solve.calls", algorithm="combined") == 1
        assert _counter_value("core.solve.calls", algorithm="bisection") == 0

    def test_batch_metrics(self, fresh_obs, heterogeneous_trio):
        obs.enable()
        sizes = [N, N + 1000, N + 2000]
        results = partition_bisection_many(sizes, heterogeneous_trio)
        assert len(results) == len(sizes)
        assert _counter_value("core.batch.calls") == 1
        assert _counter_value("core.batch.sizes.total") == len(sizes)
        assert _counter_value("core.batch.steps.total") >= 1
        # Each batched solve is also accounted as a bisection solve.
        assert _counter_value("core.solve.calls", algorithm="bisection") == len(sizes)

    def test_disabled_mode_records_nothing(self, fresh_obs, heterogeneous_trio):
        assert not obs.is_enabled()
        partition_bisection(N, heterogeneous_trio)
        partition_bisection_many([N, N + 1000], heterogeneous_trio)
        assert obs.get_registry().get("core.solve.calls", {"algorithm": "bisection"}) is None
        assert obs.get_registry().get("core.batch.calls") is None


class TestPlannerMetrics:
    def test_cache_stats_and_registry_are_one_source(self, fresh_obs, heterogeneous_trio):
        planner = Planner(Fleet(heterogeneous_trio, name="obs-test"))
        planner.plan(N)
        planner.plan(N)          # hit
        planner.plan(N + 500)    # miss (warm start)
        stats = planner.cache.stats()
        cache = planner.cache.name
        assert stats.hits == _counter_value("planner.cache.hits", cache=cache) == 1
        assert stats.misses == _counter_value("planner.cache.misses", cache=cache) == 2

    def test_warm_and_cold_plans_counted_without_enable(self, fresh_obs, heterogeneous_trio):
        # Structural counters are always on — no obs.enable() here.
        planner = Planner(Fleet(heterogeneous_trio, name="obs-test"))
        planner.plan(N)
        planner.plan(N + 500)
        planner.plan(N + 1000)
        stats = planner.stats()
        assert stats.cold_plans == 1
        assert stats.warm_plans == 2
        assert stats.warm_rate == pytest.approx(2 / 3)

    def test_enabled_planner_emits_solve_spans(self, fresh_obs, heterogeneous_trio):
        planner = Planner(Fleet(heterogeneous_trio, name="obs-test"))
        obs.enable()
        planner.plan(N)
        planner.plan(N)  # cache hit: deliberately span-free
        roots = obs.get_tracer().roots()
        assert [r.name for r in roots] == ["planner.solve"]
        assert roots[0].attrs["warm"] is False
        hist = obs.get_registry().get("planner.solve.seconds")
        assert hist.count == 1

    def test_two_planners_do_not_share_counters(self, fresh_obs, heterogeneous_trio):
        a = Planner(Fleet(heterogeneous_trio, name="obs-test"))
        b = Planner(Fleet(heterogeneous_trio, name="obs-test"))
        a.plan(N)
        assert a.cache.stats().misses == 1
        assert b.cache.stats().misses == 0
        assert a.cache.name != b.cache.name


class TestSimulatorMetrics:
    def test_lu_spans_match_simulation_trace(self, fresh_obs):
        sfs = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(3.0)]
        dist = variable_group_block(256, 32, sfs)
        obs.enable()
        sim = simulate_lu(dist, sfs)
        (root,) = obs.get_tracer().roots()
        assert root.name == "simulate.lu"
        steps = [s for s in root.walk() if s.name == "simulate.lu.step"]
        assert len(steps) == len(sim.trace) == sim.steps
        modelled = sum(s.seconds for s in steps)
        assert modelled == pytest.approx(sim.total_seconds)
        # Each step decomposes into panel/comm/update sim children.
        names = {c.name for c in steps[0].children}
        assert names == {"simulate.lu.panel", "simulate.lu.comm", "simulate.lu.update"}
        assert _counter_value("simulate.lu.calls") == 1
        assert _counter_value("simulate.lu.steps.total") == sim.steps

    def test_lu_disabled_keeps_simulation_identical(self, fresh_obs):
        sfs = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(3.0)]
        dist = variable_group_block(256, 32, sfs)
        baseline = simulate_lu(dist, sfs)
        with obs.enabled(True):
            instrumented = simulate_lu(dist, sfs)
        assert instrumented.total_seconds == baseline.total_seconds
        assert obs.get_registry().get("simulate.lu.calls").value == 1

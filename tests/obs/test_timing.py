"""The shared best-of-repeats wall timer."""

from __future__ import annotations

import pytest

from repro.obs.timing import TimedResult, Timer, best_of


class TestBestOf:
    def test_returns_result_and_positive_time(self):
        timed = best_of(lambda: 42, repeats=3)
        assert isinstance(timed, TimedResult)
        assert timed.result == 42
        assert timed.seconds >= 0.0

    def test_warmup_calls_happen(self):
        calls = []
        best_of(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5

    def test_minimum_is_taken(self):
        import time

        delays = iter([0.02, 0.0, 0.02])
        timed = best_of(lambda: time.sleep(next(delays)), repeats=3)
        assert timed.seconds < 0.015

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            best_of(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            best_of(lambda: None, repeats=1, warmup=-1)


class TestTimer:
    def test_times_a_block(self):
        with Timer() as t:
            sum(range(1000))
        assert t.seconds > 0.0

    def test_exception_still_stops_clock(self):
        with pytest.raises(RuntimeError):
            with Timer() as t:
                raise RuntimeError
        assert t.seconds >= 0.0

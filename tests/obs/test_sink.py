"""FleetTelemetrySink: banding, aggregation cells, drift-detector bridge."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.sink import FleetTelemetrySink, Observation, StepObservation, size_band


class TestSizeBand:
    @pytest.mark.parametrize(
        "n, lo, hi",
        [
            (0, 0.0, 1.0),
            (0.5, 0.0, 1.0),
            (1, 1.0, 2.0),
            (2, 2.0, 4.0),
            (3, 2.0, 4.0),
            (1023, 512.0, 1024.0),
            (1024, 1024.0, 2048.0),
            (2_000_000_000, float(2**30), float(2**31)),
        ],
    )
    def test_powers_of_two(self, n, lo, hi):
        assert size_band(n) == (lo, hi)

    def test_band_contains_its_input(self):
        for n in (1, 7, 100, 12345, 10**9):
            lo, hi = size_band(n)
            assert lo <= n < hi


class TestObservation:
    def test_kinds(self):
        assert Observation(machine=-1, size=10, duration=0.5).kind == "solve"
        assert Observation(machine=0, size=10, speed=1.0).kind == "step"

    def test_coercion_and_time_alias(self):
        o = Observation(machine="2", size="100", speed="5.5", timestamp="7")
        assert o.machine == 2 and o.size == 100.0 and o.speed == 5.5
        assert o.time == o.timestamp == 7.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"machine": -2, "size": 10},
            {"machine": 0, "size": 0},
            {"machine": 0, "size": float("nan")},
            {"machine": 0, "size": 10, "duration": -1.0},
            {"machine": 0, "size": 10, "speed": float("inf")},
            {"machine": 0, "size": 10, "timestamp": float("nan")},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Observation(**kwargs)

    def test_wire_roundtrip(self):
        o = Observation(machine=3, size=1e5, speed=42.0, timestamp=9.0, source="sim")
        assert Observation.from_wire(o.to_wire()) == o

    def test_from_wire_accepts_legacy_time_key(self):
        o = Observation.from_wire({"machine": 1, "size": 10, "speed": 2.0, "time": 5.0})
        assert o.timestamp == 5.0

    def test_from_step_adapter(self):
        o = Observation.from_step(1, 100.0, 50.0, time=3.0)
        assert (o.machine, o.size, o.speed, o.time) == (1, 100.0, 50.0, 3.0)
        assert o.kind == "step" and o.source == "step"

    def test_exported_at_top_level(self):
        import repro
        from repro.adapt import Observation as AdaptObservation

        assert repro.Observation is Observation
        assert AdaptObservation is Observation


class TestUnifiedObserve:
    def test_observe_routes_by_machine(self, fresh_obs):
        sink = FleetTelemetrySink()
        sink.observe("fp", Observation(machine=-1, size=1000, duration=0.01))
        sink.observe("fp", Observation(machine=0, size=1000, speed=10.0))
        kinds = [r["kind"] for r in sink.rows("fp")]
        assert kinds == ["solve", "step"]

    def test_solve_records_never_land_in_recent(self, fresh_obs):
        sink = FleetTelemetrySink()
        sink.observe("fp", Observation(machine=-1, size=1000, duration=0.01))
        sink.observe("fp", Observation(machine=0, size=1000, speed=10.0))
        recent = sink.recent("fp")
        assert len(recent) == 1 and recent[0].machine == 0

    def test_recent_returns_observations(self, fresh_obs):
        sink = FleetTelemetrySink()
        for i in range(4):
            sink.observe_step("fp", machine=i, size=10, speed=1.0, time=float(i))
        recent = sink.recent("fp", limit=2)
        assert all(isinstance(o, Observation) for o in recent)
        assert [o.machine for o in recent] == [2, 3]

    def test_clear_recent_keeps_aggregates(self, fresh_obs):
        sink = FleetTelemetrySink()
        sink.observe_step("fp", machine=0, size=10, speed=1.0)
        sink.clear_recent("fp")
        assert sink.recent("fp") == []
        assert len(sink) == 1
        assert sink.rows("fp")[0]["count"] == 1

    def test_legacy_adapters_share_the_pipeline(self, fresh_obs):
        sink = FleetTelemetrySink()
        sink.observe_step("fp", machine=0, size=10, speed=3.0, time=1.0)
        assert sink.recent_steps("fp") == [StepObservation(0, 10.0, 3.0, 1.0)]
        assert sink.recent("fp")[0].speed == 3.0


class TestAggregation:
    def test_solve_cells_key_by_band(self, fresh_obs):
        sink = FleetTelemetrySink()
        sink.observe_solve("fp", n=1000, seconds=0.010)
        sink.observe_solve("fp", n=1010, seconds=0.030)   # same band
        sink.observe_solve("fp", n=5000, seconds=0.020)   # different band
        assert len(sink) == 2
        (row_a, row_b) = sink.rows("fp")
        assert row_a["kind"] == "solve"
        assert row_a["machine"] is None                   # solve rows have no machine
        assert row_a["count"] == 2
        assert row_a["mean"] == pytest.approx(0.020)
        assert row_a["min"] == 0.010 and row_a["max"] == 0.030
        assert row_a["last"] == 0.030
        assert row_b["count"] == 1

    def test_step_cells_key_by_machine(self, fresh_obs):
        sink = FleetTelemetrySink()
        sink.observe_step("fp", machine=0, size=1000, speed=100.0)
        sink.observe_step("fp", machine=1, size=1000, speed=200.0)
        rows = sink.rows()
        assert [r["machine"] for r in rows] == [0, 1]
        assert [r["last"] for r in rows] == [100.0, 200.0]

    def test_rows_filter_and_stable_order(self, fresh_obs):
        sink = FleetTelemetrySink()
        sink.observe_solve("b", n=10, seconds=0.1)
        sink.observe_solve("a", n=10, seconds=0.1)
        sink.observe_step("a", machine=0, size=10, speed=1.0)
        assert [r["fingerprint"] for r in sink.rows()] == ["a", "a", "b"]
        assert [r["kind"] for r in sink.rows("a")] == ["solve", "step"]
        assert sink.fingerprints() == ["a", "b"]

    def test_observation_counter(self, fresh_obs):
        sink = FleetTelemetrySink()
        sink.observe_solve("fp", n=10, seconds=0.1)
        sink.observe_step("fp", machine=0, size=10, speed=1.0)
        counter = fresh_obs.get_registry().counter("serve.telemetry.observations")
        assert counter.value == 2

    def test_clear(self, fresh_obs):
        sink = FleetTelemetrySink()
        sink.observe_step("fp", machine=0, size=10, speed=1.0)
        sink.clear()
        assert len(sink) == 0
        assert sink.recent_steps("fp") == []


class TestRecentSteps:
    def test_bounded_and_oldest_first(self, fresh_obs):
        sink = FleetTelemetrySink(recent_steps=3)
        for i in range(5):
            sink.observe_step("fp", machine=i, size=10, speed=1.0, time=float(i))
        recent = sink.recent_steps("fp")
        assert [o.machine for o in recent] == [2, 3, 4]
        assert recent[-1] == StepObservation(4, 10.0, 1.0, 4.0)
        assert [o.machine for o in sink.recent_steps("fp", limit=2)] == [3, 4]

    def test_zero_cap_keeps_no_raw_steps(self, fresh_obs):
        sink = FleetTelemetrySink(recent_steps=0)
        sink.observe_step("fp", machine=0, size=10, speed=1.0)
        assert sink.recent_steps("fp") == []
        assert len(sink) == 1    # the aggregate cell still exists

    def test_negative_cap_rejected(self, fresh_obs):
        with pytest.raises(ValueError):
            FleetTelemetrySink(recent_steps=-1)


class TestExport:
    def test_ndjson_rows(self, fresh_obs):
        sink = FleetTelemetrySink()
        sink.observe_solve("fp", n=10, seconds=0.1)
        sink.observe_step("other", machine=0, size=10, speed=1.0)
        buf = io.StringIO()
        assert sink.to_ndjson(buf, "fp") == 1
        row = json.loads(buf.getvalue())
        assert row["fingerprint"] == "fp"
        assert row["kind"] == "solve"

"""TraceContext: identity minting, parent/child links, wire round-trip."""

from __future__ import annotations

import pytest

from repro.obs.context import TraceContext, new_span_id, new_trace_id


class TestIds:
    def test_trace_id_shape(self):
        tid = new_trace_id()
        assert len(tid) == 32
        assert int(tid, 16) >= 0
        assert tid == tid.lower()

    def test_span_id_shape(self):
        sid = new_span_id()
        assert len(sid) == 16
        assert int(sid, 16) >= 0

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(100)}) == 100
        assert len({new_span_id() for _ in range(100)}) == 100


class TestContext:
    def test_new_is_a_root(self):
        ctx = TraceContext.new()
        assert ctx.parent_id is None
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16

    def test_child_keeps_trace_and_links_parent(self):
        root = TraceContext.new()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        grandchild = child.child()
        assert grandchild.trace_id == root.trace_id
        assert grandchild.parent_id == child.span_id

    def test_immutable(self):
        ctx = TraceContext.new()
        with pytest.raises(AttributeError):
            ctx.trace_id = "deadbeef"


class TestWireForm:
    def test_round_trip(self):
        ctx = TraceContext.new().child()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_root_omits_parent(self):
        assert "parent_id" not in TraceContext.new().to_dict()

    def test_foreign_hex_ids_ride_through(self):
        # Any 1..64-char lowercase hex is fine — other tracing systems'
        # ids must interoperate, not just our widths.
        ctx = TraceContext.from_dict({"trace_id": "a" * 64, "span_id": "f"})
        assert ctx.trace_id == "a" * 64
        assert ctx.span_id == "f"

    def test_missing_span_id_gets_minted(self):
        ctx = TraceContext.from_dict({"trace_id": "ab12"})
        assert ctx.trace_id == "ab12"
        assert len(ctx.span_id) == 16

    @pytest.mark.parametrize(
        "raw",
        [
            {},
            {"trace_id": "UPPER"},
            {"trace_id": "xyz"},
            {"trace_id": "a" * 65},
            {"trace_id": 123},
            {"trace_id": "ab", "span_id": "not hex"},
            {"trace_id": "ab", "parent_id": ""},
        ],
    )
    def test_malformed_raises_value_error(self, raw):
        with pytest.raises(ValueError):
            TraceContext.from_dict(raw)

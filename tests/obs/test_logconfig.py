"""Structured key=value logging."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs.logconfig import (
    KeyValueFormatter,
    configure_logging,
    verbosity_to_level,
)


@pytest.fixture
def repro_logger():
    """Hand out the 'repro' logger; strip our handlers afterwards."""
    logger = logging.getLogger("repro")
    before = list(logger.handlers)
    before_level = logger.level
    try:
        yield logger
    finally:
        for h in list(logger.handlers):
            if h not in before:
                logger.removeHandler(h)
        logger.setLevel(before_level)


def _format(msg="hello", level=logging.INFO, extra=None, name="repro.test"):
    record = logging.getLogger(name).makeRecord(
        name, level, "f.py", 1, msg, (), None, extra=extra or {}
    )
    return KeyValueFormatter().format(record)


class TestKeyValueFormatter:
    def test_core_fields(self):
        line = _format("plan solved")
        assert "level=info" in line
        assert "logger=repro.test" in line
        assert 'msg="plan solved"' in line
        assert line.startswith("ts=")

    def test_extra_fields_appended(self):
        line = _format("solved", extra={"n": 1000, "warm": True})
        assert "n=1000" in line
        assert "warm=True" in line

    def test_values_needing_quotes(self):
        line = _format("x", extra={"k": 'a "b"=c'})
        assert r'k="a \"b\"=c"' in line

    def test_unquoted_simple_message(self):
        assert "msg=solved" in _format("solved")


class TestVerbosity:
    def test_mapping(self):
        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(7) == logging.DEBUG


class TestConfigureLogging:
    def test_emits_structured_lines(self, repro_logger):
        stream = io.StringIO()
        configure_logging(logging.DEBUG, stream=stream)
        logging.getLogger("repro.planner.test").debug(
            "plan solved", extra={"n": 42}
        )
        line = stream.getvalue()
        assert "level=debug" in line
        assert "n=42" in line

    def test_idempotent(self, repro_logger):
        configure_logging(logging.INFO, stream=io.StringIO())
        configure_logging(logging.INFO, stream=io.StringIO())
        marked = [
            h for h in repro_logger.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(marked) == 1

    def test_string_levels(self, repro_logger):
        logger = configure_logging("debug", stream=io.StringIO())
        assert logger.level == logging.DEBUG
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("chatty")

"""Exporters: JSON round-trip, Prometheus text format, tree rendering."""

from __future__ import annotations

import json
import re

from repro import obs
from repro.obs.export import format_seconds, render_spans, to_prometheus


def _populate(o):
    reg = o.get_registry()
    reg.counter("planner.cache.hits", labels={"cache": "c1"}).inc(3)
    reg.counter("core.batch.sizes.total").inc(12)  # already ends in .total
    reg.gauge("fleet.capacity").set(2.5e9)
    reg.histogram("plan.seconds", buckets=(0.001, 0.01, 0.1)).observe(0.005)
    reg.histogram("plan.seconds", buckets=(0.001, 0.01, 0.1)).observe(5.0)
    return reg


def _parse_exposition(text: str) -> dict:
    """A miniature parser for the Prometheus text exposition format.

    Returns ``{(name, ((label, value), ...)): sample}`` with label values
    *unescaped*, so asserting against it proves the escaping round-trips.
    """
    unescape = {"\\\\": "\\", '\\"': '"', "\\n": "\n"}

    def _unescape(value: str) -> str:
        out, i = [], 0
        while i < len(value):
            pair = value[i : i + 2]
            if pair in unescape:
                out.append(unescape[pair])
                i += 2
            else:
                out.append(value[i])
                i += 1
        return "".join(out)

    samples: dict = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        body, _, value = line.rpartition(" ")
        if "{" in body:
            name, _, rest = body.partition("{")
            labels = []
            for k, v in re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"', rest):
                labels.append((k, _unescape(v)))
            key = (name, tuple(labels))
        else:
            key = (body, ())
        samples[key] = float(value)
    return samples


class TestJson:
    def test_round_trip(self, fresh_obs):
        _populate(fresh_obs)
        obs.enable()
        with obs.span("root"):
            obs.record("child", 0.5)
        doc = json.loads(obs.to_json())
        counters = {c["name"]: c["value"] for c in doc["metrics"]["counters"]}
        assert counters["planner.cache.hits"] == 3
        hist = next(
            h for h in doc["metrics"]["histograms"] if h["name"] == "plan.seconds"
        )
        assert hist["count"] == 2
        assert hist["counts"][-1] == 1  # the 5.0 landed in +Inf
        (root,) = doc["spans"]
        assert root["name"] == "root"
        assert root["children"][0]["name"] == "child"

    def test_write_json(self, fresh_obs, tmp_path):
        _populate(fresh_obs)
        path = tmp_path / "metrics.json"
        assert obs.write_json(str(path)) == str(path)
        doc = json.loads(path.read_text())
        assert doc["metrics"]["gauges"][0]["name"] == "fleet.capacity"

    def test_snapshot_without_spans(self, fresh_obs):
        _populate(fresh_obs)
        doc = obs.snapshot(include_spans=False)
        assert "spans" not in doc


class TestPrometheus:
    def test_counter_gets_total_suffix_once(self, fresh_obs):
        _populate(fresh_obs)
        text = to_prometheus()
        assert 'planner_cache_hits_total{cache="c1"} 3' in text
        # Names already ending in _total must not be doubled.
        assert "core_batch_sizes_total 12" in text
        assert "total_total" not in text

    def test_histogram_series(self, fresh_obs):
        _populate(fresh_obs)
        text = to_prometheus()
        assert '# TYPE plan_seconds histogram' in text
        assert 'plan_seconds_bucket{le="0.001"} 0' in text
        assert 'plan_seconds_bucket{le="0.01"} 1' in text   # cumulative
        assert 'plan_seconds_bucket{le="0.1"} 1' in text
        assert 'plan_seconds_bucket{le="+Inf"} 2' in text
        assert "plan_seconds_count 2" in text
        assert "plan_seconds_sum 5.005" in text

    def test_gauge_and_headers(self, fresh_obs):
        _populate(fresh_obs)
        text = to_prometheus()
        assert "# TYPE fleet_capacity gauge" in text
        assert "fleet_capacity 2500000000.0" in text

    def test_label_escaping(self, fresh_obs):
        fresh_obs.get_registry().counter("c", labels={"k": 'sa"id\n'}).inc()
        text = to_prometheus()
        assert r'c_total{k="sa\"id\n"} 1' in text

    def test_label_backslash_escaping(self, fresh_obs):
        fresh_obs.get_registry().counter("c", labels={"k": "a\\b"}).inc()
        assert r'c_total{k="a\\b"} 1' in to_prometheus()

    def test_help_escaping_keeps_one_line(self, fresh_obs):
        reg = fresh_obs.get_registry()
        reg.counter("c", help="first\nsecond \\ back").inc()
        text = to_prometheus()
        assert r"# HELP c_total first\nsecond \\ back" in text
        # The escaped newline must not split the HELP comment in two.
        assert all(
            line.startswith(("#", "c_total")) for line in text.splitlines()
        )

    def test_headers_once_per_family(self, fresh_obs):
        reg = fresh_obs.get_registry()
        reg.counter("fam", help="h", labels={"shard": "0"}).inc()
        reg.counter("fam", help="h", labels={"shard": "1"}).inc(2)
        text = to_prometheus()
        assert text.count("# TYPE fam_total counter") == 1
        assert text.count("# HELP fam_total h") == 1

    def test_round_trip_through_exposition_parser(self, fresh_obs):
        reg = fresh_obs.get_registry()
        nasty = 'path\\to "x"\nend'
        reg.counter("req", labels={"op": nasty}).inc(7)
        reg.gauge("depth", labels={"shard": "0"}).set(3.0)
        reg.histogram("lat", buckets=(0.1,)).observe(0.05)
        samples = _parse_exposition(to_prometheus())
        assert samples[("req_total", (("op", nasty),))] == 7.0
        assert samples[("depth", (("shard", "0"),))] == 3.0
        assert samples[("lat_bucket", (("le", "0.1"),))] == 1.0
        assert samples[("lat_bucket", (("le", "+Inf"),))] == 1.0
        assert samples[("lat_count", ())] == 1.0


class TestOpenMetrics:
    """The OpenMetrics 1.0 dialect, checked against a strict line parser."""

    # One OpenMetrics sample line: name{labels} value [# {exemplar} value ts]
    _SAMPLE = re.compile(
        r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?:\{(?P<labels>(?:\w+=\"(?:[^\"\\]|\\.)*\",?)*)\})?"
        r" (?P<value>\S+)"
        r"(?P<exemplar> # \{trace_id=\"[0-9a-f]+\"\} \S+ \d+\.\d+)?$"
    )

    def _strict_parse(self, text: str) -> dict:
        """Validate every line; returns {family: kind} and sample names."""
        lines = text.splitlines()
        assert lines[-1] == "# EOF", "OpenMetrics requires a trailing # EOF"
        families: dict[str, str] = {}
        samples: list[re.Match] = []
        for line in lines[:-1]:
            if line.startswith("# TYPE "):
                _, _, rest = line.partition("# TYPE ")
                family, kind = rest.rsplit(" ", 1)
                # Counter families must be named WITHOUT the _total suffix.
                assert not (kind == "counter" and family.endswith("_total")), line
                families[family] = kind
            elif line.startswith("# HELP "):
                continue
            elif line.startswith("#"):
                raise AssertionError(f"unexpected comment line: {line!r}")
            else:
                m = self._SAMPLE.match(line)
                assert m, f"unparseable sample line: {line!r}"
                samples.append(m)
        return {"families": families, "samples": samples}

    def test_round_trip_through_strict_parser(self, fresh_obs):
        reg = fresh_obs.get_registry()
        reg.counter("serve.requests", labels={"op": "plan"}).inc(3)
        hist = reg.histogram("serve.seconds", buckets=(0.01, 0.1))
        hist.observe(0.005, exemplar="ab12cd")
        hist.observe(5.0, exemplar="feedface")
        parsed = self._strict_parse(to_prometheus(openmetrics=True))
        assert parsed["families"]["serve_requests"] == "counter"
        assert parsed["families"]["serve_seconds"] == "histogram"
        # The counter SAMPLE keeps its _total suffix even in OpenMetrics.
        names = [m.group("name") for m in parsed["samples"]]
        assert "serve_requests_total" in names
        exemplars = [m for m in parsed["samples"] if m.group("exemplar")]
        assert len(exemplars) == 2
        assert 'trace_id="ab12cd"' in exemplars[0].group("exemplar")

    def test_exemplar_lands_on_its_bucket(self, fresh_obs):
        hist = fresh_obs.get_registry().histogram("lat", buckets=(0.01, 0.1))
        hist.observe(0.5, exemplar="cafe")     # above the last bound -> +Inf
        text = to_prometheus(openmetrics=True)
        inf_line = next(
            line for line in text.splitlines() if 'le="+Inf"' in line
        )
        assert 'trace_id="cafe"' in inf_line
        assert "cafe" not in next(
            line for line in text.splitlines() if 'le="0.01"' in line
        )

    def test_classic_exposition_never_carries_openmetrics_syntax(self, fresh_obs):
        # Exemplars and `# EOF` are ONLY legal in OpenMetrics; a 0.0.4
        # scrape must not see either even when exemplars were recorded.
        reg = fresh_obs.get_registry()
        reg.histogram("lat", buckets=(0.1,)).observe(0.05, exemplar="ab12")
        text = to_prometheus()
        assert "# EOF" not in text
        assert "trace_id" not in text
        om = to_prometheus(openmetrics=True)
        assert "# EOF" in om
        assert 'trace_id="ab12"' in om

    def test_content_type_constants(self):
        from repro.obs import OPENMETRICS_CONTENT_TYPE, PROMETHEUS_CONTENT_TYPE

        assert "application/openmetrics-text" in OPENMETRICS_CONTENT_TYPE
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")


class TestExemplarsInJson:
    def test_snapshot_carries_exemplars_only_when_recorded(self, fresh_obs):
        reg = fresh_obs.get_registry()
        plain = reg.histogram("plain.seconds", buckets=(0.1,))
        plain.observe(0.05)
        traced = reg.histogram("traced.seconds", buckets=(0.1,))
        traced.observe(0.05, exemplar="ab12")
        hists = {
            h["name"]: h for h in reg.snapshot()["histograms"]
        }
        assert "exemplars" not in hists["plain.seconds"]
        recorded = hists["traced.seconds"]["exemplars"]
        assert recorded[0]["trace_id"] == "ab12"
        assert recorded[0]["value"] == 0.05
        assert recorded[1] is None   # the untouched +Inf bucket

    def test_last_write_wins_per_bucket(self, fresh_obs):
        hist = fresh_obs.get_registry().histogram("h", buckets=(1.0,))
        hist.observe(0.5, exemplar="old")
        hist.observe(0.7, exemplar="new")
        (first, _inf) = hist.exemplars
        assert first[0] == "new"
        assert first[1] == 0.7

    def test_reset_clears_exemplars(self, fresh_obs):
        reg = fresh_obs.get_registry()
        hist = reg.histogram("h", buckets=(1.0,))
        hist.observe(0.5, exemplar="ab")
        reg.reset()
        assert hist.exemplars == (None, None)


class TestFormatSeconds:
    def test_units(self):
        assert format_seconds(2.5) == "2.5s"
        assert format_seconds(0.0025) == "2.5ms"
        assert format_seconds(2.5e-6) == "2.5µs"
        assert format_seconds(2.5e-9) == "2.5ns"


class TestRenderSpans:
    def test_tree_shape(self, fresh_obs):
        obs.enable()
        with obs.span("outer", n=4):
            with obs.span("inner"):
                pass
            obs.record("step", 0.5, attrs={"k": 0})
        text = render_spans()
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert "n=4" in lines[0]
        assert any(line.startswith("├─ inner") or line.startswith("└─ inner")
                   for line in lines)
        assert any("step" in line and "(sim)" in line for line in lines)

    def test_error_status_is_shown(self, fresh_obs):
        obs.enable()
        try:
            with obs.span("bad"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "[error: RuntimeError]" in render_spans()

    def test_elision_keeps_head_and_tail(self, fresh_obs):
        obs.enable()
        with obs.span("root"):
            for k in range(20):
                obs.record(f"step{k}", 0.001)
        text = render_spans(max_children=5)
        assert "step0" in text
        assert "step19" in text
        assert "16 more siblings elided" in text
        assert "step7" not in text

    def test_no_elision_by_default(self, fresh_obs):
        obs.enable()
        with obs.span("root"):
            for k in range(20):
                obs.record(f"step{k}", 0.001)
        assert "elided" not in render_spans()

"""Span tree: nesting, exception safety, gating, recorded durations."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.spans import _NOOP


class TestNesting:
    def test_children_nest_under_open_parent(self, fresh_obs):
        obs.enable()
        with obs.span("outer", n=3):
            with obs.span("inner.a"):
                pass
            with obs.span("inner.b"):
                pass
        roots = obs.get_tracer().roots()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert outer.attrs == {"n": 3}
        assert outer.seconds >= 0.0
        assert outer.status == "ok"

    def test_walk_is_depth_first(self, fresh_obs):
        obs.enable()
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    pass
            with obs.span("d"):
                pass
        (root,) = obs.get_tracer().roots()
        assert [s.name for s in root.walk()] == ["a", "b", "c", "d"]

    def test_sibling_roots(self, fresh_obs):
        obs.enable()
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        assert [r.name for r in obs.get_tracer().roots()] == ["first", "second"]

    def test_threads_do_not_nest_into_each_other(self, fresh_obs):
        obs.enable()
        barrier = threading.Barrier(2)

        def work(name):
            with obs.span(name):
                barrier.wait()  # both spans provably open at once

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = obs.get_tracer().roots()
        assert sorted(r.name for r in roots) == ["t0", "t1"]
        assert all(not r.children for r in roots)


class TestExceptionSafety:
    def test_span_marks_error_and_propagates(self, fresh_obs):
        obs.enable()
        with pytest.raises(KeyError):
            with obs.span("failing"):
                raise KeyError("nope")
        (root,) = obs.get_tracer().roots()
        assert root.status == "error"
        assert root.attrs["error"] == "KeyError"

    def test_stack_recovers_after_error(self, fresh_obs):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise ValueError
        with obs.span("after"):
            pass
        names = [r.name for r in obs.get_tracer().roots()]
        assert names == ["outer", "after"]  # "after" is NOT a child of outer


class TestGating:
    def test_disabled_span_is_shared_noop(self, fresh_obs):
        assert not obs.is_enabled()
        assert obs.span("x") is _NOOP
        assert obs.span("y", n=1) is obs.span("z")
        with obs.span("x"):
            pass
        assert obs.get_tracer().roots() == []
        assert len(obs.get_registry()) == 0

    def test_disabled_record_returns_none(self, fresh_obs):
        assert obs.record("x", 1.0) is None
        assert obs.get_tracer().roots() == []

    def test_enabled_span_yields_span_object(self, fresh_obs):
        obs.enable()
        with obs.span("x") as sp:
            assert sp.name == "x"


class TestRecord:
    def test_record_with_children(self, fresh_obs):
        obs.enable()
        sp = obs.record(
            "sim.step",
            1.25,
            attrs={"step": 3},
            children=[("panel", 0.25), ("update", 1.0)],
        )
        assert sp.kind == "sim"
        assert sp.seconds == 1.25
        assert [(c.name, c.seconds, c.kind) for c in sp.children] == [
            ("panel", 0.25, "sim"),
            ("update", 1.0, "sim"),
        ]
        assert obs.get_tracer().roots() == [sp]

    def test_record_nests_under_open_span(self, fresh_obs):
        obs.enable()
        with obs.span("wall.outer"):
            obs.record("sim.inner", 0.5)
        (root,) = obs.get_tracer().roots()
        assert root.kind == "wall"
        assert [c.name for c in root.children] == ["sim.inner"]
        assert root.children[0].kind == "sim"


class TestAutoHistograms:
    def test_completed_span_observes_seconds_histogram(self, fresh_obs):
        obs.enable()
        with obs.span("planner.solve"):
            pass
        obs.record("planner.solve", 0.002)
        h = obs.get_registry().get("planner.solve.seconds")
        assert h is not None
        assert h.count == 2

    def test_to_dict_round_trip(self, fresh_obs):
        obs.enable()
        with obs.span("outer", n=1):
            obs.record("inner", 0.1)
        d = obs.get_tracer().roots()[0].to_dict()
        assert d["name"] == "outer"
        assert d["attrs"] == {"n": 1}
        assert d["children"][0]["name"] == "inner"
        assert d["children"][0]["kind"] == "sim"


class TestClear:
    def test_clear_drops_roots(self, fresh_obs):
        obs.enable()
        with obs.span("x"):
            pass
        tracer = obs.get_tracer()
        assert len(tracer) == 1
        tracer.clear()
        assert tracer.roots() == []

"""Metrics primitives: counters, gauges, histograms, registry identity."""

from __future__ import annotations

import threading

import pytest

from repro.obs import registry as reg_mod
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_increment_rejected(self):
        c = Counter("x")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)
        assert c.value == 0

    def test_concurrent_increments(self):
        c = Counter("x")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(10_000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_set_and_add(self, fresh_obs):
        g = fresh_obs.get_registry().gauge("g")
        g.set(3.5)
        assert g.value == 3.5
        g.add(-1.5)
        assert g.value == 2.0
        g.set(0.25)  # last value wins
        assert g.value == 0.25


class TestHistogram:
    def test_bucket_edges_are_upper_inclusive(self):
        h = Histogram("h", buckets=(1, 2, 5))
        h.observe(1)      # == first bound  -> bucket le=1
        h.observe(1.5)    # between         -> bucket le=2
        h.observe(2)      # == second bound -> bucket le=2
        h.observe(5)      # == last bound   -> bucket le=5
        h.observe(5.0001)  # above          -> +Inf overflow
        assert h.counts == (1, 2, 1, 1)
        assert h.count == 5
        assert h.sum == pytest.approx(1 + 1.5 + 2 + 5 + 5.0001)

    def test_mean_and_quantile(self):
        h = Histogram("h", buckets=(1, 10, 100))
        for v in (0.5, 0.5, 50, 50, 50, 50, 50, 50, 50, 50):
            h.observe(v)
        assert h.mean == pytest.approx(40.1)
        assert h.quantile(0.1) == 1       # 2/10 observations in le=1
        assert h.quantile(0.9) == 100
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_histogram(self):
        h = Histogram("h", buckets=(1, 2))
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError, match="increase"):
            Histogram("h", buckets=(1, 1, 2))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", buckets=())

    def test_default_buckets_are_time_buckets(self):
        assert Histogram("h").buckets == DEFAULT_TIME_BUCKETS

    def test_concurrent_observes(self):
        h = Histogram("h", buckets=(10, 1000, 100000))
        threads = [
            threading.Thread(target=lambda: [h.observe(3) for _ in range(5_000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 40_000
        assert h.counts[0] == 40_000


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("planner.hits", labels={"cache": "c1"})
        b = reg.counter("planner.hits", labels={"cache": "c1"})
        assert a is b
        assert len(reg) == 1

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("m", labels={"a": "1", "b": "2"})
        b = reg.counter("m", labels={"b": "2", "a": "1"})
        assert a is b

    def test_distinct_labels_are_distinct_metrics(self):
        reg = MetricsRegistry()
        a = reg.counter("m", labels={"cache": "c1"})
        b = reg.counter("m", labels={"cache": "c2"})
        assert a is not b
        a.inc()
        assert b.value == 0

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("m")

    def test_get(self):
        reg = MetricsRegistry()
        c = reg.counter("m", labels={"x": "1"})
        assert reg.get("m", {"x": "1"}) is c
        assert reg.get("m") is None

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1, 2)).observe(1)
        snap = reg.snapshot()
        assert {c["name"]: c["value"] for c in snap["counters"]} == {"c": 2}
        assert snap["gauges"][0]["value"] == 1.5
        hist = snap["histograms"][0]
        assert hist["buckets"] == [1.0, 2.0]
        assert hist["counts"] == [1, 0, 0]
        assert hist["count"] == 1

    def test_reset_keeps_identity(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(7)
        reg.reset()
        assert c.value == 0
        assert reg.get("c") is c  # still exported
        c.inc()
        assert reg.snapshot()["counters"][0]["value"] == 1

    def test_clear_drops_metrics(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        reg.clear()
        assert len(reg) == 0
        c.inc()  # previously handed-out objects keep working
        assert reg.get("c") is None


class TestSwitch:
    def test_default_is_disabled(self):
        assert reg_mod.is_enabled() is False

    def test_enable_disable(self):
        reg_mod.enable()
        try:
            assert reg_mod.is_enabled() is True
        finally:
            reg_mod.disable()
        assert reg_mod.is_enabled() is False

    def test_enabled_context_restores(self):
        with reg_mod.enabled(True):
            assert reg_mod.is_enabled() is True
            with reg_mod.enabled(False):
                assert reg_mod.is_enabled() is False
            assert reg_mod.is_enabled() is True
        assert reg_mod.is_enabled() is False

    def test_enabled_context_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with reg_mod.enabled(True):
                raise RuntimeError("boom")
        assert reg_mod.is_enabled() is False

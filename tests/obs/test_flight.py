"""FlightRecorder: bounded retention policies, queries, NDJSON replay."""

from __future__ import annotations

import io

import pytest

from repro.obs.flight import FlightRecorder, RequestTrace
from repro.obs.spans import Span


def _trace(i: int, *, status: str = "ok", seconds: float = 0.001) -> RequestTrace:
    return RequestTrace(
        trace_id=f"{i:032x}", op="plan", status=status,
        fleet="fp", n=1000 + i, started=float(i), seconds=seconds,
    )


class TestRequestTrace:
    def test_summary_has_no_spans(self):
        t = _trace(1)
        t.root = Span(name="serve.plan", trace_id=t.trace_id)
        assert "spans" not in t.summary()
        assert t.summary()["trace_id"] == t.trace_id

    def test_round_trip_with_span_tree(self):
        root = Span(name="serve.plan", trace_id="ab", span_id="cd")
        root.children.append(Span(name="serve.shard.batch", parent_id="cd"))
        t = _trace(2, status="overloaded")
        t.root = root
        back = RequestTrace.from_dict(t.to_dict())
        assert back.status == "overloaded"
        assert not back.ok
        assert back.root is not None
        assert back.root.children[0].name == "serve.shard.batch"
        assert back.root.children[0].parent_id == "cd"


class TestRetention:
    def test_ring_evicts_fifo(self, fresh_obs):
        rec = FlightRecorder(capacity=4, slow_k=0)
        for i in range(6):
            rec.record(_trace(i))
        stats = rec.stats()
        assert stats["recorded"] == 6
        assert stats["evicted"] == 2
        assert stats["ring_size"] == 4
        assert rec.get(_trace(0).trace_id) is None       # rolled out
        assert rec.get(_trace(5).trace_id) is not None   # newest survives

    def test_errors_survive_ring_eviction(self, fresh_obs):
        rec = FlightRecorder(capacity=2, slow_k=0)
        bad = _trace(0, status="deadline_exceeded")
        rec.record(bad)
        for i in range(1, 10):
            rec.record(_trace(i))
        # The ring flushed it long ago, the error store still has it.
        assert rec.get(bad.trace_id) is bad
        assert rec.traces(errors_only=True) == [bad]

    def test_error_store_is_bounded(self, fresh_obs):
        rec = FlightRecorder(capacity=2, retain_capacity=3, slow_k=0)
        for i in range(5):
            rec.record(_trace(i, status="overloaded"))
        errors = rec.traces(errors_only=True)
        assert len(errors) == 3
        # Oldest failures give way; listing is most recent first.
        assert [t.started for t in errors] == [4.0, 3.0, 2.0]

    def test_slowest_survive_independently_of_recency(self, fresh_obs):
        rec = FlightRecorder(capacity=2, slow_k=2)
        whale = _trace(0, seconds=9.0)
        rec.record(whale)
        for i in range(1, 20):
            rec.record(_trace(i, seconds=0.001))
        assert rec.get(whale.trace_id) is whale
        slow = rec.traces(slow_only=True)
        assert slow[0] is whale                 # slowest first
        assert len(slow) == 2

    def test_note_sampled_counts(self, fresh_obs):
        rec = FlightRecorder()
        rec.note_sampled()
        rec.note_sampled(3)
        assert rec.stats()["sampled"] == 4

    @pytest.mark.parametrize(
        "kwargs", [{"capacity": 0}, {"retain_capacity": 0}, {"slow_k": -1}]
    )
    def test_invalid_bounds_rejected(self, fresh_obs, kwargs):
        with pytest.raises(ValueError):
            FlightRecorder(**{"capacity": 4, **kwargs})


class TestQueries:
    def test_listing_is_most_recent_first_and_limited(self, fresh_obs):
        rec = FlightRecorder(capacity=8, slow_k=0)
        for i in range(5):
            rec.record(_trace(i))
        listed = rec.traces(limit=3)
        assert [t.started for t in listed] == [4.0, 3.0, 2.0]

    def test_len_deduplicates_across_stores(self, fresh_obs):
        rec = FlightRecorder(capacity=8, slow_k=4)
        # One trace sits in the ring, the error store AND the slow store.
        rec.record(_trace(0, status="internal", seconds=5.0))
        assert len(rec) == 1

    def test_get_unknown_id(self, fresh_obs):
        assert FlightRecorder().get("feedface") is None

    def test_clear(self, fresh_obs):
        rec = FlightRecorder()
        rec.record(_trace(0, status="internal"))
        rec.clear()
        assert len(rec) == 0
        assert rec.traces() == []


class TestNdjson:
    def test_dump_and_replay(self, fresh_obs, tmp_path):
        rec = FlightRecorder(capacity=8, slow_k=0)
        traced = _trace(1)
        traced.root = Span(name="serve.plan", trace_id=traced.trace_id)
        rec.record(traced)
        rec.record(_trace(2, status="overloaded"))

        path = tmp_path / "flight.ndjson"
        assert rec.dump(str(path)) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2

        back = FlightRecorder.load_ndjson(lines)
        by_id = {t.trace_id: t for t in back}
        assert by_id[traced.trace_id].root.name == "serve.plan"
        assert by_id[_trace(2).trace_id].status == "overloaded"

    def test_to_ndjson_counts(self, fresh_obs):
        rec = FlightRecorder()
        rec.record(_trace(0))
        buf = io.StringIO()
        assert rec.to_ndjson(buf) == 1
        assert buf.getvalue().count("\n") == 1

"""Fixtures isolating the process-wide obs state per test."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture
def fresh_obs():
    """Swap in a fresh registry + tracer, disabled; restore afterwards.

    Tests that enable telemetry do so against throwaway state, so they
    never leak metrics into (or inherit metrics from) other tests.
    """
    previous_registry = obs.set_registry(obs.MetricsRegistry())
    previous_tracer = obs.set_tracer(obs.Tracer())
    obs.disable()
    try:
        yield obs
    finally:
        obs.disable()
        obs.set_registry(previous_registry)
        obs.set_tracer(previous_tracer)

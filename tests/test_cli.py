"""Tests for the command-line experiment runner."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

#: Small, fast workload arguments shared by the telemetry-command tests.
FAST_WORKLOAD = [
    "--sizes", "1000000,2000000", "--p", "4", "--trace-n", "256", "--block", "64",
]


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        for name in ["fig1", "fig2", "table2", "table3", "table4", "fig21",
                     "fig22a", "fig22b", "plan", "all"]:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(["fig21", "--repeats", "5", "--block", "32"])
        assert args.repeats == 5
        assert args.block == 32


class TestCommands:
    def test_fig1_prints_tables(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Comp1" in out
        assert "matmul_atlas" in out

    def test_fig2_prints_bands(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "width % of midline" in out

    def test_table2_prints_paging(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "X12" in out
        assert "Paging" in out

    def test_table3_runs_real_kernel(self, capsys):
        assert main(["table3", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "256x256" in out and "32x2048" in out

    def test_fig21_cost(self, capsys):
        assert main(["fig21", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "1080" in out
        assert "2000000000" in out

    def test_plan_defaults(self, capsys):
        assert main(["plan"]) == 0
        out = capsys.readouterr().out
        assert "Partition plans" in out
        assert "fleet fingerprint" in out
        assert "hit_rate" in out
        # Replaying the six default queries makes them all cache hits.
        assert "hits=6" in out

    def test_plan_custom_sizes_and_fleet(self, capsys):
        assert main([
            "plan", "--sizes", "1000,50000", "--p", "24",
            "--kernel", "lu", "--algorithm", "combined",
        ]) == 0
        out = capsys.readouterr().out
        assert "table2-lu-p24" in out
        assert "combined" in out
        assert "1000" in out and "50000" in out
        assert "cold=1 warm=1" in out


class TestTelemetryFlags:
    def test_verbose_counts(self):
        args = build_parser().parse_args(["-vv", "plan"])
        assert args.verbose == 2

    def test_log_level_choices(self):
        args = build_parser().parse_args(["plan", "--log-level", "debug"])
        assert args.log_level == "debug"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--log-level", "chatty"])

    def test_format_choices(self):
        args = build_parser().parse_args(["stats", "--format", "prom"])
        assert args.format == "prom"


class TestStatsCommand:
    def test_stats_table(self, capsys):
        assert main(["stats", *FAST_WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "core.solve.calls" in out
        assert "planner.cache.hits" in out
        assert "planner.solve.seconds" in out  # per-plan latency histogram
        assert "planner:" in out

    def test_stats_json(self, capsys):
        assert main(["stats", "--format", "json", *FAST_WORKLOAD]) == 0
        doc = json.loads(capsys.readouterr().out)
        counters = {
            (c["name"], c["labels"].get("algorithm", "")): c["value"]
            for c in doc["metrics"]["counters"]
        }
        assert counters[("core.solve.calls", "bisection")] >= 2
        assert any(s["name"] == "repro.workload" for s in doc["spans"])

    def test_stats_prometheus(self, capsys):
        assert main(["stats", "--format", "prom", *FAST_WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "# TYPE core_solve_calls_total counter" in out
        assert 'le="+Inf"' in out

    def test_stats_metrics_out(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["stats", "--metrics-out", str(path), *FAST_WORKLOAD]) == 0
        doc = json.loads(path.read_text())
        assert doc["metrics"]["counters"]
        assert f"metrics written to {path}" in capsys.readouterr().out

    def test_telemetry_disabled_after_run(self):
        from repro import obs

        assert main(["stats", *FAST_WORKLOAD]) == 0
        assert not obs.is_enabled()


class TestTraceCommand:
    def test_trace_prints_span_tree(self, capsys):
        assert main(["trace", *FAST_WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "repro.workload" in out
        assert "planner.solve" in out
        assert "simulate.lu" in out
        assert "(sim)" in out

    def test_trace_consistency_footer(self, capsys):
        assert main(["trace", *FAST_WORKLOAD]) == 0
        out = capsys.readouterr().out
        # 256/64 = 4 simulated steps, and span count == trace records.
        assert "simulated LU: 4 step spans, 4 SimulationTrace records" in out


class TestReportCommand:
    def test_report_generates_markdown(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(["report", "--out", str(out)]) == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "Figure 22(a)" in text and "Figure 22(b)" in text
        assert "Figure 21" in text
        assert "one ray" in text
        assert "report written" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_once_self_check(self, capsys):
        assert main([
            "serve", "--once", "--port", "0", "--http-port", "-1",
            "--p", "4", "--shards", "1", "--batch-window-ms", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "serving on" in out
        assert "self-check plan" in out
        assert "draining" in out

    def test_serve_http_disabled_reported(self, capsys):
        assert main([
            "serve", "--once", "--port", "0", "--http-port", "-1",
            "--p", "4", "--shards", "1",
        ]) == 0
        assert "(http disabled)" in capsys.readouterr().out


class TestServeFacingStatsAndTrace:
    @pytest.fixture
    def live_server(self):
        from repro.experiments import build_network_models, tile_speed_functions
        from repro.machines import table2_network
        from repro.serve import ServeClient, ServeConfig, start_in_thread

        config = ServeConfig(shards=1, http_port=0, batch_window=0.001)
        with start_in_thread(config) as handle:
            sfs = tile_speed_functions(
                build_network_models(table2_network(), "matmul"), 4
            )
            with ServeClient(handle.host, handle.port) as client:
                info = client.register_fleet(sfs, name="cli-test")
                resp = client.call(
                    "plan", fleet=info["fingerprint"], n=250_000, allocation=False
                )
            yield f"{handle.host}:{handle.http_port}", resp["trace_id"]

    def test_stats_serve_renders_trace_counters(self, live_server, capsys):
        addr, _ = live_server
        assert main(["stats", "--serve", addr]) == 0
        out = capsys.readouterr().out
        assert "serve.trace.recorded" in out
        assert "serve.trace.sampled" in out
        assert "cli-test" in out

    def test_stats_serve_json(self, live_server, capsys):
        addr, _ = live_server
        assert main(["stats", "--serve", addr, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["trace"]["recorded"] >= 1

    def test_trace_serve_lists_and_details(self, live_server, capsys):
        addr, trace_id = live_server
        assert main(["trace", "--serve", addr]) == 0
        assert trace_id in capsys.readouterr().out
        assert main(["trace", "--serve", addr, "--trace-id", trace_id]) == 0
        out = capsys.readouterr().out
        assert "serve.plan" in out
        assert "serve.shard.batch" in out

    def test_unreachable_server_fails_cleanly(self, capsys):
        assert main(["stats", "--serve", "127.0.0.1:1"]) == 1
        assert "repro stats:" in capsys.readouterr().err


class TestVerifyCommand:
    def test_small_sweep_is_clean(self, capsys):
        assert main([
            "verify", "--cases", "4", "--fuzz-frames", "0", "--chaos-runs", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "differential ok" in out
        assert "all sweeps clean" in out

    def test_replay_one_case(self, capsys):
        assert main(["verify", "--seed", "3", "--only-case", "7"]) == 0
        out = capsys.readouterr().out
        assert "case 7:" in out
        assert "differential ok: 1 cases" in out

    def test_replay_one_chaos_run(self, capsys):
        assert main(["verify", "--seed", "1", "--only-run", "0"]) == 0
        out = capsys.readouterr().out
        assert "fuzz[adapt] ok: 1 cases" in out
        # The other sweeps are skipped during a replay.
        assert "differential" not in out


class TestErrorPaths:
    """Bad arguments exit non-zero with a message, never a traceback."""

    def test_unparseable_sizes(self, capsys):
        assert main(["plan", "--sizes", "abc"]) == 2
        err = capsys.readouterr().err
        assert "repro plan: error:" in err

    def test_unknown_experiment_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig99"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_flag_value_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["plan", "--repeats", "two"])
        assert exc.value.code == 2

    def test_serve_invalid_shards(self, capsys):
        assert main([
            "serve", "--once", "--port", "0", "--http-port", "-1",
            "--shards", "0",
        ]) == 2
        assert "repro serve: error:" in capsys.readouterr().err

    def test_stats_invalid_trace_n(self, capsys):
        assert main(["stats", "--trace-n", "0", *FAST_WORKLOAD[:4]]) == 2
        assert "repro stats: error:" in capsys.readouterr().err

    def test_trace_invalid_block(self, capsys):
        assert main(["trace", "--block", "-1", *FAST_WORKLOAD[:4]]) == 2
        assert "repro trace: error:" in capsys.readouterr().err

    def test_verify_parser_flags(self):
        args = build_parser().parse_args(
            ["verify", "--cases", "7", "--seed", "3", "--only-frame", "2"]
        )
        assert args.cases == 7 and args.seed == 3 and args.only_frame == 2

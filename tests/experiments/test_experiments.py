"""Tests for the experiment drivers (reduced-scale where heavy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ascii_table,
    aspect_ladder,
    build_network_models,
    detect_paging_onsets,
    fig1_curves,
    fig2_bands,
    format_float,
    format_series,
    lu_invariance,
    lu_speedup_experiment,
    mm_invariance,
    mm_speedup_experiment,
    paging_point,
    partition_cost,
    tile_speed_functions,
)
from repro.machines import table1_network, table2_network


@pytest.fixture(scope="module")
def net1():
    return table1_network()


@pytest.fixture(scope="module")
def net2():
    return table2_network()


@pytest.fixture(scope="module")
def mm_models(net2):
    return build_network_models(net2, "matmul")


@pytest.fixture(scope="module")
def lu_models(net2):
    return build_network_models(net2, "lu")


class TestFig1Curves:
    def test_all_machines_all_kernels(self, net1):
        curves = fig1_curves(net1)
        assert set(curves) == {"arrayops", "matmul_atlas", "matmul_naive"}
        for series in curves.values():
            assert [c.machine for c in series] == list(net1.names)

    def test_atlas_flat_then_cliff(self, net1):
        curves = fig1_curves(net1)["matmul_atlas"]
        c = curves[0]
        pre = c.speeds[(c.sizes > c.paging_onset * 0.05) & (c.sizes < c.paging_onset * 0.8)]
        post = c.speeds[c.sizes > c.paging_onset * 2.5]
        # Flat plateau (within ~15 %) before P, collapse after.
        assert pre.max() / pre.min() < 1.2
        assert post.max() < 0.3 * pre.min()

    def test_naive_smoothly_decreasing(self, net1):
        c = fig1_curves(net1)["matmul_naive"][0]
        mid = c.speeds[(c.sizes > c.sizes[0] * 100) & (c.sizes < c.paging_onset)]
        # Poor reference patterns: clearly below peak well before paging.
        assert mid.min() < 0.75 * c.peak

    def test_paging_onset_within_domain(self, net1):
        for series in fig1_curves(net1).values():
            for c in series:
                assert 0 < c.paging_onset <= c.sizes[-1]


class TestFig2Bands:
    def test_high_integration_width_declines(self, net1):
        bands = fig2_bands(net1)
        comp1 = bands[0]
        assert comp1.machine == "Comp1"
        # Relative width: ~40% at the small end, ~6% at the large end.
        assert comp1.relative_width_percent[0] == pytest.approx(40.0, abs=3.0)
        assert comp1.relative_width_percent[-1] == pytest.approx(6.0, abs=2.0)

    def test_envelopes_ordered(self, net1):
        for band in fig2_bands(net1):
            assert np.all(band.upper >= band.lower)


class TestPagingDetection:
    def test_detected_close_to_published(self, net2):
        for row in detect_paging_onsets(net2):
            assert row.mm_error < 0.25, row.machine
            assert row.lu_error < 0.25, row.machine

    def test_paging_point_helper(self, net2):
        p = paging_point(net2["X5"], "matmul")
        assert 3 * 4500**2 < p < 3 * 12000**2


class TestInvariance:
    def test_aspect_ladder(self):
        assert aspect_ladder(256, 4) == [
            (256, 256),
            (128, 512),
            (64, 1024),
            (32, 2048),
        ]

    def test_aspect_ladder_divisibility(self):
        from repro import ConfigurationError

        with pytest.raises(ConfigurationError):
            aspect_ladder(100, 4)

    def test_mm_rows_small(self):
        rows = mm_invariance(base_sizes=(128,), steps=3, repeats=1)
        assert len(rows) == 1
        assert len(rows[0].speeds) == 3
        assert all(s > 0 for s in rows[0].speeds)

    def test_lu_rows_small(self):
        rows = lu_invariance(base_sizes=(128,), steps=3, repeats=1)
        assert rows[0].elements == 128 * 128
        assert rows[0].spread >= 0


class TestCost:
    def test_tile(self, mm_models):
        tiled = tile_speed_functions(mm_models, 30)
        assert len(tiled) == 30
        assert tiled[12] is mm_models[0]

    def test_cost_point(self, mm_models):
        cp = partition_cost(
            100_000_000, tile_speed_functions(mm_models, 36), repeats=1
        )
        assert cp.seconds > 0
        assert cp.p == 36
        # Negligible compared to application run times (paper's point).
        assert cp.seconds < 2.0


class TestSpeedup:
    def test_mm_speedup_above_one_at_scale(self, net2, mm_models):
        pts = mm_speedup_experiment(
            net2, sizes=[17_000, 25_000], probe=500, models=mm_models
        )
        assert [p.n for p in pts] == [17_000, 25_000]
        assert all(p.speedup > 0.95 for p in pts)
        assert pts[1].speedup > 1.3  # paging regime: functional model wins

    def test_mm_speedup_grows_with_n(self, net2, mm_models):
        pts = mm_speedup_experiment(
            net2, sizes=[15_000, 29_000], probe=500, models=mm_models
        )
        assert pts[1].speedup > pts[0].speedup

    def test_lu_speedup_above_one_at_scale(self, net2, lu_models):
        pts = lu_speedup_experiment(
            net2, sizes=[30_000], probe=2000, block=64, models=lu_models
        )
        assert pts[0].speedup > 1.2

    def test_speedup_point_property(self):
        from repro.experiments import SpeedupPoint

        p = SpeedupPoint(n=10, functional_seconds=2.0, single_seconds=5.0, probe=500)
        assert p.speedup == pytest.approx(2.5)


class TestReport:
    def test_ascii_table_alignment(self):
        out = ascii_table(["a", "bb"], [[1, 2.5], ["x", "yy"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_ascii_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            ascii_table(["a"], [[1, 2]])

    def test_format_float(self):
        assert format_float(0.0) == "0"
        assert "e" in format_float(1.23e9)
        assert format_float(3.14159, 3) == "3.14"

    def test_format_series(self):
        out = format_series("s", [1.0, 2.0], [3.0, 4.0], unit="MFlops")
        assert "MFlops" in out
        assert len(out.splitlines()) == 3

"""Tests for the geometric-trace experiment drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.traces import (
    algorithm_step_comparison,
    bisection_trace,
    optimal_line_demo,
)
from tests.conftest import make_hump_pwl, make_increasing_pwl, make_pwl


@pytest.fixture
def sfs():
    return [make_pwl(120.0), make_hump_pwl(250.0), make_increasing_pwl(80.0)]


class TestOptimalLineDemo:
    def test_points_share_a_ray(self, sfs):
        demo = optimal_line_demo(900_000, sfs)
        assert demo.point_slopes.max() / demo.point_slopes.min() < 1.001

    def test_perturbation_never_faster(self, sfs):
        demo = optimal_line_demo(900_000, sfs)
        assert demo.perturbed_makespan >= demo.optimal_makespan

    def test_explicit_shift(self, sfs):
        demo = optimal_line_demo(500_000, sfs, shift=10_000)
        assert demo.perturbed_makespan > demo.optimal_makespan

    def test_single_processor_no_perturbation(self):
        demo = optimal_line_demo(100_000, [make_pwl(50.0)])
        assert demo.perturbed_makespan == demo.optimal_makespan


class TestBisectionTrace:
    def test_initial_lines_bracket(self, sfs):
        trace = bisection_trace(700_000, sfs)
        assert trace.initial_upper[1] <= 700_000 <= trace.initial_lower[1]

    def test_slopes_inside_wedge(self, sfs):
        trace = bisection_trace(700_000, sfs)
        for slope, _ in trace.steps:
            assert trace.initial_lower[0] <= slope <= trace.initial_upper[0]

    def test_step_count_matches_result(self, sfs):
        from repro import partition_bisection

        trace = bisection_trace(321_321, sfs)
        result = partition_bisection(321_321, sfs)
        assert trace.num_steps == result.iterations


class TestStepComparison:
    def test_returns_both_counts(self, sfs):
        counts = algorithm_step_comparison(400_000, sfs)
        assert set(counts) == {"bisection", "modified"}
        assert all(isinstance(v, int) and v >= 0 for v in counts.values())

    def test_modified_bound(self, sfs):
        counts = algorithm_step_comparison(1_000_000, sfs)
        assert counts["modified"] <= len(sfs) * np.log2(1_000_000) + len(sfs)

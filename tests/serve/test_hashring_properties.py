"""Hypothesis properties of the consistent-hash ring.

Two contracts back the shard router: the 64 virtual replicas keep the
keyspace split balanced, and resizing the pool remaps only the keys that
*must* move (to a new node, or off a removed one) — everything else
keeps its owner, which is what preserves the warm planner caches.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.hashring import HashRing

#: Enough keys that shares concentrate near their expectation.
_KEYS = 1000

nodes_count = st.integers(min_value=2, max_value=10)
salts = st.integers(min_value=0, max_value=10**6)


def _keys(salt: int) -> list[str]:
    return [f"key-{salt}-{i}" for i in range(_KEYS)]


@settings(max_examples=25, deadline=None)
@given(p=nodes_count, salt=salts)
def test_balance_within_tolerance(p: int, salt: int) -> None:
    ring = HashRing(range(p))  # default: 64 virtual replicas
    dist = ring.distribution(_keys(salt))
    ideal = _KEYS / p
    assert max(dist.values()) <= 2.5 * ideal
    assert min(dist.values()) >= 1  # no starved shard


@settings(max_examples=25, deadline=None)
@given(p=nodes_count, salt=salts)
def test_adding_a_node_only_moves_keys_to_it(p: int, salt: int) -> None:
    keys = _keys(salt)
    ring = HashRing(range(p))
    before = {k: ring.node_for(k) for k in keys}
    ring.add("grown")
    moved = [k for k in keys if ring.node_for(k) != before[k]]
    assert all(ring.node_for(k) == "grown" for k in moved)
    # Roughly 1/(p+1) of the keyspace lands on the new node.
    assert len(moved) <= 2.5 * _KEYS / (p + 1)


@settings(max_examples=25, deadline=None)
@given(p=nodes_count, salt=salts, victim=st.integers(min_value=0, max_value=9))
def test_removing_a_node_only_moves_its_keys(p: int, salt: int, victim: int) -> None:
    victim %= p
    keys = _keys(salt)
    ring = HashRing(range(p))
    before = {k: ring.node_for(k) for k in keys}
    ring.remove(victim)
    for k in keys:
        after = ring.node_for(k)
        if before[k] == victim:
            assert after != victim
        else:
            assert after == before[k]


@settings(max_examples=10, deadline=None)
@given(p=nodes_count, salt=salts)
def test_add_then_remove_restores_every_owner(p: int, salt: int) -> None:
    keys = _keys(salt)
    ring = HashRing(range(p))
    before = {k: ring.node_for(k) for k in keys}
    ring.add("transient")
    ring.remove("transient")
    assert all(ring.node_for(k) == before[k] for k in keys)


def test_membership_api_is_idempotent() -> None:
    ring = HashRing([0, 1])
    ring.add(1)
    assert len(ring) == 2
    ring.remove(7)  # absent: no-op
    assert ring.nodes == frozenset({0, 1})
    assert 0 in ring and 7 not in ring


# -- nodes_for: the replica sets the cluster router falls back across ----

replica_counts = st.integers(min_value=1, max_value=4)

#: Replica-set properties walk the ring per key, so a smaller key sample
#: keeps each example cheap without losing coverage of the keyspace.
_REPLICA_KEYS = 60


@settings(max_examples=25, deadline=None)
@given(p=nodes_count, salt=salts, count=replica_counts)
def test_nodes_for_is_distinct_and_primary_first(
    p: int, salt: int, count: int
) -> None:
    ring = HashRing(range(p))
    for key in _keys(salt)[:_REPLICA_KEYS]:
        replicas = ring.nodes_for(key, count)
        assert len(replicas) == min(count, p)  # as many distinct nodes as exist
        assert len(set(replicas)) == len(replicas)
        assert replicas[0] == ring.node_for(key)


@settings(max_examples=25, deadline=None)
@given(p=st.integers(min_value=3, max_value=10), salt=salts)
def test_removing_an_outsider_never_changes_a_replica_set(
    p: int, salt: int
) -> None:
    """A node outside a key's replica set is invisible to that key.

    This is what makes kill-then-leave safe: fleets that did not own the
    victim keep their replica sets (and warm caches) bit-for-bit.
    """
    keys = _keys(salt)[:_REPLICA_KEYS]
    ring = HashRing(range(p))
    before = {k: ring.nodes_for(k, 2) for k in keys}
    outsiders = {k: (set(range(p)) - set(rs)) for k, rs in before.items()}
    # Remove each node in turn; only keys whose set contained it may move.
    for victim in range(p):
        shrunk = HashRing(range(p))
        shrunk.remove(victim)
        for k in keys:
            if victim in outsiders[k]:
                assert shrunk.nodes_for(k, 2) == before[k]


@settings(max_examples=25, deadline=None)
@given(p=nodes_count, salt=salts, count=replica_counts)
def test_adding_a_node_displaces_at_most_the_tail(
    p: int, salt: int, count: int
) -> None:
    """A join inserts at most the new node; survivors keep their order.

    Filtering the newcomer out of the post-join replica set must leave a
    prefix of the pre-join set — no reshuffle, no stranger appears.
    """
    keys = _keys(salt)[:_REPLICA_KEYS]
    ring = HashRing(range(p))
    before = {k: ring.nodes_for(k, count) for k in keys}
    ring.add("grown")
    for k in keys:
        after = ring.nodes_for(k, count)
        survivors = [n for n in after if n != "grown"]
        assert survivors == before[k][: len(survivors)]


def test_nodes_for_rejects_bad_inputs() -> None:
    ring = HashRing([0, 1])
    with pytest.raises(ValueError):
        ring.nodes_for("k", 0)
    with pytest.raises(ValueError):
        HashRing().nodes_for("k", 1)

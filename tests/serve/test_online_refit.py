"""End-to-end online refit: drift in, exact invalidation + new model out."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Observation, Planner
from repro.core.options import PartitionOptions
from repro.model import OnlineBandRefitter
from repro.serve import OnlineRefitConfig, ServeClient, ServeError

from tests.conftest import make_pwl


def drifted(fn, factor=2.0, above=5e5):
    def speed(x):
        s = float(fn.speed(x))
        return s * factor if x >= above else s
    return speed


def drift_steps(machine, truth, count=100, lo=2e4, hi=2e6):
    return [
        Observation.from_step(machine, float(x), float(truth(x)), time=float(i))
        for i, x in enumerate(np.linspace(lo, hi, count))
    ]


def shard_row(stats, fingerprint):
    for payload in stats["shards"]:
        row = payload.get("fleets", {}).get(fingerprint)
        if row is not None:
            return row
    raise AssertionError(f"no shard row for {fingerprint}")


@pytest.fixture
def refit_server(start_server):
    def _boot(**kwargs):
        kwargs.setdefault(
            "online_refit", OnlineRefitConfig(min_observations=20, min_escaped=3)
        )
        kwargs.setdefault("batch_window", 0.0)
        return start_server(**kwargs)

    return _boot


class TestDriftIntegration:
    def test_band_shape_drift_refits_exactly_one_fleet(self, refit_server):
        fns_a = [make_pwl(200.0), make_pwl(300.0)]
        fns_b = [make_pwl(150.0)]
        handle = refit_server(shards=2)
        with ServeClient(handle.host, handle.port) as client:
            a = client.register_fleet(fns_a, name="drifting")["fingerprint"]
            b = client.register_fleet(fns_b, name="control")["fingerprint"]

            warm_a = [200_000, 400_000, 800_000]
            warm_b = [100_000, 300_000]
            for n in warm_a:
                client.plan(a, n)
            for n in warm_b:
                client.plan(b, n)

            truth = drifted(fns_a[0])
            recs = drift_steps(0, truth)
            doc = client.observe(a, recs)
            assert doc["accepted"] == len(recs)
            refit_doc = doc["refit"]
            assert refit_doc is not None
            assert refit_doc["machines"] == [0]
            # Exactly the drifted fleet's cached plans were dropped.
            assert refit_doc["invalidated"] == len(warm_a)
            assert refit_doc["fingerprint"] != a

            # Counters first: a thread-mode server shares this process's
            # registry, so the local determinism check below would add to
            # them.
            stats = client.stats()
            assert stats["fleets"][a]["model_fingerprint"] == refit_doc["fingerprint"]
            assert stats["fleets"][b]["model_fingerprint"] == b
            row_a, row_b = shard_row(stats, a), shard_row(stats, b)
            assert row_a["model_fingerprint"] == refit_doc["fingerprint"]
            assert row_a["cache_invalidations"] == len(warm_a)
            # The control fleet's cache was not flushed.
            assert row_b["cache_invalidations"] == 0
            assert row_b["cache_size"] == len(warm_b)

            refit_stats = stats["refit"]
            assert refit_stats["enabled"]
            assert refit_stats["counters"]["applied"] == 1
            assert refit_stats["counters"]["checks"] >= 1
            assert refit_stats["invalidated"] == len(warm_a)
            assert refit_stats["fleets"][a]["refits"] == 1

            # The server's refit is reproducible bit-for-bit locally from
            # the same observations (the knot fingerprint survives the
            # spec round-trip through the worker).
            local = OnlineBandRefitter(
                fns_a, min_escaped=3, name="drifting"
            ).refit(recs)
            assert local.shape_changed
            assert local.fingerprint_after == refit_doc["fingerprint"]

            # Plans keep flowing under the *original* serving fingerprint
            # and now come from the refitted model.
            opts = PartitionOptions()
            expect = Planner(
                local.fleet,
                algorithm="bisection",
                mode=opts.mode,
                refine=opts.refine,
            ).plan(700_000)
            item = client.plan(a, 700_000)
            assert item["allocation"] == [int(x) for x in expect.allocation]
            assert item["makespan"] == pytest.approx(expect.makespan)

    def test_refitted_model_tracks_the_drifted_truth(self, refit_server):
        fns = [make_pwl(200.0)]
        handle = refit_server(shards=1)
        with ServeClient(handle.host, handle.port) as client:
            fp = client.register_fleet(fns, name="drift5pct")["fingerprint"]
            truth = drifted(fns[0])
            recs = drift_steps(0, truth, count=120)
            doc = client.observe(fp, recs)
            assert doc["refit"] is not None

            local = OnlineBandRefitter(
                fns, min_escaped=3, name="drift5pct"
            ).refit(recs)
            new_fn = local.functions[0]
            probe = np.linspace(6e5, 1.9e6, 30)
            rel = np.array(
                [abs(new_fn.speed(x) - truth(x)) / truth(x) for x in probe]
            )
            assert float(rel.max()) <= 0.05

    def test_in_band_observations_never_refit(self, refit_server):
        fns = [make_pwl(200.0)]
        handle = refit_server(shards=1)
        with ServeClient(handle.host, handle.port) as client:
            fp = client.register_fleet(fns, name="steady")["fingerprint"]
            recs = drift_steps(0, fns[0].speed, count=50)
            doc = client.observe(fp, recs)
            assert doc["accepted"] == 50
            assert doc["refit"] is None
            stats = client.stats()
            assert stats["fleets"][fp]["model_fingerprint"] == fp
            assert stats["refit"]["counters"]["applied"] == 0
            assert stats["refit"]["counters"]["checks"] >= 1

    def test_process_mode_refit_is_deterministic(self, refit_server):
        fns = [make_pwl(200.0), make_pwl(300.0)]
        handle = refit_server(shards=1, worker_mode="process")
        with ServeClient(handle.host, handle.port) as client:
            fp = client.register_fleet(fns, name="proc")["fingerprint"]
            client.plan(fp, 500_000)
            recs = drift_steps(0, drifted(fns[0]), count=60)
            doc = client.observe(fp, recs)
            assert doc["refit"] is not None
            assert doc["refit"]["invalidated"] == 1
            local = OnlineBandRefitter(fns, min_escaped=3, name="proc").refit(recs)
            assert doc["refit"]["fingerprint"] == local.fingerprint_after


class TestObserveWithoutRefit:
    def test_default_config_records_telemetry_only(self, start_server):
        fns = [make_pwl(200.0)]
        handle = start_server(shards=1)
        with ServeClient(handle.host, handle.port) as client:
            fp = client.register_fleet(fns, name="plain")["fingerprint"]
            doc = client.observe(fp, drift_steps(0, drifted(fns[0]), count=30))
            assert doc == {"accepted": 30, "refit": None}
            stats = client.stats()
            assert not stats["refit"]["enabled"]
            assert stats["refit"]["fleets"] == {}
            assert stats["telemetry"]["cells"] > 0


class TestObserveValidation:
    def test_unknown_fleet(self, start_server):
        handle = start_server(shards=1)
        with ServeClient(handle.host, handle.port) as client:
            with pytest.raises(ServeError) as err:
                client.observe("no-such-fleet", [{"machine": 0, "size": 10, "speed": 1.0}])
            assert err.value.code == "unknown_fleet"

    def test_malformed_observation_rejected(self, start_server, trio_sfs):
        handle = start_server(shards=1)
        with ServeClient(handle.host, handle.port) as client:
            fp = client.register_fleet(trio_sfs, name="v")["fingerprint"]
            with pytest.raises(ServeError) as err:
                client.observe(fp, [{"machine": 0, "size": -5, "speed": 1.0}])
            assert err.value.code == "invalid_request"

    def test_empty_observations_rejected(self, start_server, trio_sfs):
        handle = start_server(shards=1)
        with ServeClient(handle.host, handle.port) as client:
            fp = client.register_fleet(trio_sfs, name="v")["fingerprint"]
            response = client.call("observe", fleet=fp, observations=[])
            assert not response["ok"]
            assert response["error"]["code"] == "invalid_request"

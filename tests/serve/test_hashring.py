"""Consistent-hash ring: stability, balance, minimal redistribution."""

from __future__ import annotations

import pytest

from repro.serve.hashring import HashRing

KEYS = [f"fingerprint-{i:04d}" for i in range(600)]


class TestRouting:
    def test_deterministic_across_instances(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.node_for(k) == "only" for k in KEYS[:50])

    def test_empty_ring_refuses_lookups(self):
        with pytest.raises(ValueError, match="empty ring"):
            HashRing().node_for("x")

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing(range(4))
        counts = ring.distribution(KEYS)
        assert set(counts) == {0, 1, 2, 3}
        # With 64 virtual points per node the split stays sane: no shard
        # starves and none hoards a majority of the keyspace.
        assert min(counts.values()) > len(KEYS) * 0.10
        assert max(counts.values()) < len(KEYS) * 0.45


class TestMembership:
    def test_add_is_idempotent(self):
        ring = HashRing(range(3))
        before = [ring.node_for(k) for k in KEYS]
        ring.add(1)
        assert [ring.node_for(k) for k in KEYS] == before

    def test_remove_then_add_restores_the_mapping(self):
        ring = HashRing(range(3))
        before = [ring.node_for(k) for k in KEYS]
        ring.remove(2)
        assert 2 not in ring
        assert all(ring.node_for(k) != 2 for k in KEYS)
        ring.add(2)
        assert [ring.node_for(k) for k in KEYS] == before

    def test_remove_missing_node_is_a_no_op(self):
        ring = HashRing(range(3))
        ring.remove("never-added")
        assert len(ring) == 3

    def test_adding_a_node_moves_only_a_fraction(self):
        ring = HashRing(range(4))
        before = {k: ring.node_for(k) for k in KEYS}
        ring.add(4)
        moved = sum(1 for k in KEYS if ring.node_for(k) != before[k])
        # Consistent hashing moves ~1/(n+1) of the keys; modulo hashing
        # would move ~80% of them.  Allow generous slack either way.
        assert 0 < moved < len(KEYS) * 0.40
        # ...and every moved key lands on the new node.
        assert all(
            ring.node_for(k) == 4 for k in KEYS if ring.node_for(k) != before[k]
        )

    def test_removing_a_node_strands_no_keys(self):
        ring = HashRing(range(4))
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove(0)
        for k in KEYS:
            node = ring.node_for(k)
            assert node != 0
            if before[k] != 0:
                assert node == before[k]  # survivors keep their keys

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)

"""Concurrency stress tests for ``idempotency_key`` dedup.

The contract under test (see ``docs/multitenancy.md``): within the
server's window, every request carrying the same idempotency key gets
the byte-identical original response, and the underlying solve happens
**exactly once** — whether the duplicates arrive concurrently (they
coalesce onto the in-flight solve) or as later retries (they replay the
remembered response).  After the window evicts a key, a retry solves
afresh — and, plans being deterministic, still answers bit-identically.

Proof of "exactly once" is counter-based, not timing-based: the obs
registry's ``serve.idempotent.*`` counters and the per-shard planner
cold/warm solve counts must add up.
"""

from __future__ import annotations

import threading

import pytest

from repro.serve import ServeClient

from .conftest import poll_until


def _register(client, trio_sfs):
    return client.register_fleet(trio_sfs, name="trio")["fingerprint"]


def _shard_solves(client, fingerprint) -> dict:
    """Aggregate cold/warm solve counts for one fleet across shards."""
    stats = client.stats()
    totals = {"cold": 0, "warm": 0, "cache_hits": 0}
    for shard in stats["shards"]:
        fleet = (shard.get("fleets") or {}).get(fingerprint)
        if fleet:
            totals["cold"] += int(fleet.get("cold_plans", 0))
            totals["warm"] += int(fleet.get("warm_plans", 0))
            totals["cache_hits"] += int(fleet.get("cache_hits", 0))
    return totals


def test_concurrent_duplicates_solve_exactly_once(start_server, trio_sfs):
    """N threads, same key: one solve, N byte-identical responses."""
    handle = start_server(shards=2, batch_window=0.0)
    threads = 16
    with ServeClient(handle.host, handle.port) as admin:
        fingerprint = _register(admin, trio_sfs)

        barrier = threading.Barrier(threads)
        results: list[dict | None] = [None] * threads
        errors: list[Exception] = []

        def worker(idx: int) -> None:
            try:
                with ServeClient(handle.host, handle.port) as client:
                    barrier.wait(timeout=30.0)
                    results[idx] = client.plan(
                        fingerprint, 600_000,
                        tenant="stress", idempotency_key="the-one-key",
                    )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        pool = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=60.0)
        assert not errors, errors
        assert all(r is not None for r in results)
        first = results[0]
        assert first["ok"] and first["allocation"]
        for r in results[1:]:
            assert r == first, "duplicate response differs from the original"

        idem = admin.stats()["tenancy"]["idempotency"]
        assert idem["misses"] == 1, idem
        assert idem["hits"] + idem["coalesced"] == threads - 1, idem
        solves = _shard_solves(admin, fingerprint)
        assert solves["cold"] + solves["warm"] == 1, solves


def test_sequential_retries_replay_without_resolving(start_server, trio_sfs):
    """Later retries hit the remembered response: still one solve."""
    handle = start_server(shards=1, batch_window=0.0)
    with ServeClient(handle.host, handle.port) as client:
        fingerprint = _register(client, trio_sfs)
        first = client.plan(fingerprint, 500_000, idempotency_key="retry-me")
        for _ in range(5):
            assert client.plan(
                fingerprint, 500_000, idempotency_key="retry-me"
            ) == first
        idem = client.stats()["tenancy"]["idempotency"]
        assert idem["misses"] == 1 and idem["hits"] == 5, idem
        assert _shard_solves(client, fingerprint)["cold"] == 1


def test_duplicate_after_eviction_resolves_bit_identically(start_server, trio_sfs):
    """Past the window the key is gone; the fresh solve matches exactly."""
    handle = start_server(shards=1, batch_window=0.0, idempotency_window=2)
    with ServeClient(handle.host, handle.port) as client:
        fingerprint = _register(client, trio_sfs)
        original = client.plan(fingerprint, 700_000, idempotency_key="evictee")
        # Two younger keys push "evictee" out of the 2-entry window.
        client.plan(fingerprint, 710_000, idempotency_key="young-1")
        client.plan(fingerprint, 720_000, idempotency_key="young-2")
        poll_until(
            lambda: client.stats()["tenancy"]["idempotency"]["evictions"] >= 1,
            message="the window never evicted",
        )
        replay = client.plan(fingerprint, 700_000, idempotency_key="evictee")
        assert replay == original, "post-eviction solve is not bit-identical"
        idem = client.stats()["tenancy"]["idempotency"]
        assert idem["misses"] == 4, idem  # evictee twice + two youngs


def test_distinct_keys_and_tenants_do_not_coalesce(start_server, trio_sfs):
    """The dedup identity is (fleet, op, tenant, key) — all four matter."""
    handle = start_server(shards=1, batch_window=0.0)
    with ServeClient(handle.host, handle.port) as client:
        fingerprint = _register(client, trio_sfs)
        client.plan(fingerprint, 400_000, tenant="t1", idempotency_key="k")
        client.plan(fingerprint, 400_000, tenant="t2", idempotency_key="k")
        client.plan(fingerprint, 400_000, tenant="t1", idempotency_key="k2")
        idem = client.stats()["tenancy"]["idempotency"]
        assert idem["misses"] == 3 and idem["hits"] == 0, idem


def test_plan_many_idempotency_replays_whole_batch(start_server, trio_sfs):
    handle = start_server(shards=1)
    with ServeClient(handle.host, handle.port) as client:
        fingerprint = _register(client, trio_sfs)
        ns = [300_000, 500_000, 800_000]
        first = client.plan_many(fingerprint, ns, idempotency_key="batch-key")
        assert all(item["ok"] for item in first)
        replay = client.plan_many(fingerprint, ns, idempotency_key="batch-key")
        assert replay == first
        idem = client.stats()["tenancy"]["idempotency"]
        assert idem["misses"] == 1 and idem["hits"] == 1, idem


def test_requests_without_keys_never_touch_the_window(start_server, trio_sfs):
    handle = start_server(shards=1, batch_window=0.0)
    with ServeClient(handle.host, handle.port) as client:
        fingerprint = _register(client, trio_sfs)
        client.plan(fingerprint, 450_000)
        client.plan(fingerprint, 450_000)
        idem = client.stats()["tenancy"]["idempotency"]
        assert idem["misses"] == 0 and idem["remembered"] == 0, idem


def test_window_zero_disables_dedup(start_server, trio_sfs):
    handle = start_server(shards=1, batch_window=0.0, idempotency_window=0)
    with ServeClient(handle.host, handle.port) as client:
        fingerprint = _register(client, trio_sfs)
        a = client.plan(fingerprint, 480_000, idempotency_key="k")
        b = client.plan(fingerprint, 480_000, idempotency_key="k")
        assert a == b  # deterministic planner, but solved twice
        idem = client.stats()["tenancy"]["idempotency"]
        assert idem["window"] == 0 and idem["misses"] == 0, idem


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_concurrent_duplicates_across_worker_modes(start_server, trio_sfs, mode):
    """The coalescing happens in the front-end: mode must not matter."""
    handle = start_server(shards=1, worker_mode=mode, batch_window=0.0)
    threads = 8
    with ServeClient(handle.host, handle.port) as admin:
        fingerprint = _register(admin, trio_sfs)
        barrier = threading.Barrier(threads)
        results: list[dict | None] = [None] * threads

        def worker(idx: int) -> None:
            with ServeClient(handle.host, handle.port) as client:
                barrier.wait(timeout=30.0)
                results[idx] = client.plan(
                    fingerprint, 550_000, idempotency_key="mode-key"
                )

        pool = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=60.0)
        assert all(r == results[0] for r in results) and results[0] is not None
        idem = admin.stats()["tenancy"]["idempotency"]
        assert idem["misses"] == 1, idem

"""Property-based tests of the weighted fair queue behind shard inboxes.

:class:`repro.serve.tenancy.WFQueue` implements start-time fair queueing
(SFQ): each item is stamped ``start = max(V, last_finish[tenant])``,
``finish = start + cost / weight``, dequeue picks the smallest finish
tag, and the virtual clock V advances to the popped tag.  These suites
check the scheduler's contract rather than specific interleavings:

* **conservation / work-conserving** — every item enqueued is dequeued
  exactly once; a non-empty queue never refuses a pop;
* **per-tenant FIFO** — one tenant's items never reorder;
* **bounded unfairness** — over any window in which two tenants stay
  backlogged, normalised service differs by at most one maximal item
  per tenant (the classic SFQ bound
  ``|S_i/w_i - S_j/w_j| <= c_i_max/w_i + c_j_max/w_j``);
* **bounded overtaking / no starvation** — an item admitted while the
  queue drains is overtaken by at most ``backlog +
  ceil(cost * w_other / (w_item * c_other))`` later arrivals, so a
  flood can delay a light tenant by only a bounded amount of work;
* **determinism** — replaying the same operation sequence produces the
  same dequeue order (ties break on arrival sequence, never on dict
  order or timing).

Counterexamples shrink: every suite drives the queue from Hypothesis-
generated operation lists, so a failure prints a minimal program.
"""

from __future__ import annotations

import math
import queue

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.tenancy import WFQueue

_SETTINGS = dict(max_examples=200, deadline=None)

#: Tenant names small enough to collide often (that is the interesting
#: regime: few lanes, many interleavings).
tenants = st.sampled_from(["a", "b", "c", "d"])
weights = st.floats(min_value=0.1, max_value=16.0, allow_nan=False)
costs = st.floats(min_value=0.1, max_value=32.0, allow_nan=False)

#: One queue "program": (tenant, cost) puts interleaved with pops, as a
#: list where None means "pop now".
ops = st.lists(
    st.one_of(st.tuples(tenants, costs), st.none()), min_size=0, max_size=120
)


def _weights_for(names, weight_list):
    return {t: w for t, w in zip(sorted(set(names)), weight_list)}


@settings(**_SETTINGS)
@given(program=ops, weight_list=st.lists(weights, min_size=4, max_size=4))
def test_conservation_and_work_conserving(program, weight_list):
    """Everything in comes out exactly once; pops never fail while non-empty."""
    wmap = _weights_for("abcd", weight_list)
    q = WFQueue(0)  # unbounded: admission is not under test here
    put, got = [], []
    live = 0
    for op in program:
        if op is None:
            if live:
                got.append(q.get_nowait())
                live -= 1
            else:
                try:
                    q.get_nowait()
                except queue.Empty:
                    pass
                else:
                    raise AssertionError("pop from empty queue returned an item")
        else:
            tenant, cost = op
            token = (tenant, len(put))
            q.put_nowait(token, tenant=tenant, weight=wmap[tenant], cost=cost)
            put.append(token)
            live += 1
    while live:
        got.append(q.get_nowait())
        live -= 1
    assert sorted(got) == sorted(put)
    assert q.qsize() == 0


@settings(**_SETTINGS)
@given(program=ops, weight_list=st.lists(weights, min_size=4, max_size=4))
def test_per_tenant_fifo(program, weight_list):
    """A tenant's own items dequeue in exactly their insertion order."""
    wmap = _weights_for("abcd", weight_list)
    q = WFQueue(0)
    seq: dict[str, int] = {}
    live = 0
    last_seen: dict[str, int] = {}
    for op in program:
        if op is None and live:
            tenant, k = q.get_nowait()
            assert last_seen.get(tenant, -1) < k, "tenant items reordered"
            last_seen[tenant] = k
            live -= 1
        elif op is not None:
            tenant, cost = op
            k = seq.get(tenant, 0)
            seq[tenant] = k + 1
            q.put_nowait((tenant, k), tenant=tenant, weight=wmap[tenant], cost=cost)
            live += 1
    while live:
        tenant, k = q.get_nowait()
        assert last_seen.get(tenant, -1) < k
        last_seen[tenant] = k
        live -= 1


@settings(**_SETTINGS)
@given(
    w_i=weights,
    w_j=weights,
    costs_i=st.lists(costs, min_size=12, max_size=24),
    costs_j=st.lists(costs, min_size=12, max_size=24),
    window=st.integers(min_value=1, max_value=11),
)
def test_bounded_unfairness_while_backlogged(w_i, w_j, costs_i, costs_j, window):
    """SFQ bound: normalised service gap <= one max item per tenant.

    Both tenants enqueue their whole arrival list up front and we pop
    fewer items than either list holds, so both stay backlogged for the
    entire measured window — the regime the bound speaks about.
    """
    q = WFQueue(0)
    for k, c in enumerate(costs_i):
        q.put_nowait(("i", c), tenant="i", weight=w_i, cost=c)
    for k, c in enumerate(costs_j):
        q.put_nowait(("j", c), tenant="j", weight=w_j, cost=c)
    pops = min(window, min(len(costs_i), len(costs_j)) - 1)
    service = {"i": 0.0, "j": 0.0}
    for _ in range(pops):
        tenant, cost = q.get_nowait()
        service[tenant] += cost
    gap = abs(service["i"] / w_i - service["j"] / w_j)
    bound = max(costs_i) / w_i + max(costs_j) / w_j
    assert gap <= bound + 1e-9, (gap, bound, service)


@settings(**_SETTINGS)
@given(
    w_light=st.floats(min_value=0.5, max_value=16.0),
    w_heavy=st.floats(min_value=0.5, max_value=16.0),
    c_light=costs,
    c_heavy=costs,
    backlog=st.integers(min_value=0, max_value=20),
)
def test_bounded_overtaking_no_starvation(w_light, w_heavy, c_light, c_heavy, backlog):
    """A flood admitted *after* a light item overtakes it boundedly.

    The light tenant enqueues one item into a queue already holding
    ``backlog`` heavy items; the heavy tenant then floods (refilling
    after every pop).  The light item must surface within
    ``backlog + ceil(c_light * w_heavy / (w_light * c_heavy)) + 1``
    pops — under FIFO it would wait forever.
    """
    q = WFQueue(0)
    for k in range(backlog):
        q.put_nowait(("h", k), tenant="h", weight=w_heavy, cost=c_heavy)
    q.put_nowait(("l", 0), tenant="l", weight=w_light, cost=c_light)
    limit = backlog + math.ceil(c_light * w_heavy / (w_light * c_heavy)) + 1
    next_h = backlog
    for pop in range(limit + 1):
        # Adversarial arrivals: keep the heavy lane saturated.
        q.put_nowait(("h", next_h), tenant="h", weight=w_heavy, cost=c_heavy)
        next_h += 1
        tenant, _ = q.get_nowait()
        if tenant == "l":
            assert pop <= limit, (pop, limit)
            return
    raise AssertionError(f"light item starved for {limit + 1} pops")


@settings(**_SETTINGS)
@given(program=ops, weight_list=st.lists(weights, min_size=4, max_size=4))
def test_deterministic_replay(program, weight_list):
    """The same operation program always yields the same dequeue order."""
    wmap = _weights_for("abcd", weight_list)

    def run() -> list:
        q = WFQueue(0)
        out, live, n = [], 0, 0
        for op in program:
            if op is None:
                if live:
                    out.append(q.get_nowait())
                    live -= 1
            else:
                tenant, cost = op
                q.put_nowait(
                    (tenant, n), tenant=tenant, weight=wmap[tenant], cost=cost
                )
                n += 1
                live += 1
        while live:
            out.append(q.get_nowait())
            live -= 1
        return out

    assert run() == run()


@settings(**_SETTINGS)
@given(
    depth=st.integers(min_value=1, max_value=8),
    extra=st.integers(min_value=1, max_value=8),
)
def test_admission_bound_is_per_tenant(depth, extra):
    """One tenant filling its lane never blocks another tenant's puts."""
    q = WFQueue(depth)
    for k in range(depth):
        q.put_nowait(("flood", k), tenant="flood", weight=1.0, cost=1.0)
    for k in range(depth + extra):
        if k < depth:
            q.put_nowait(("calm", k), tenant="calm", weight=1.0, cost=1.0)
        else:
            try:
                q.put_nowait(("calm", k), tenant="calm", weight=1.0, cost=1.0)
            except queue.Full:
                pass
            else:
                raise AssertionError("per-tenant bound not enforced")
    try:
        q.put_nowait(("flood", depth), tenant="flood", weight=1.0, cost=1.0)
    except queue.Full:
        pass
    else:
        raise AssertionError("flooding tenant exceeded its own lane bound")

"""End-to-end server tests: real sockets, both listeners, clean drain."""

from __future__ import annotations

import json
import socket
import urllib.request

import pytest

from repro import Fleet, Planner
from repro.serve import (
    AsyncServeClient,
    ServeClient,
    ServeError,
    run_load,
)
from tests.serve.conftest import poll_until


@pytest.fixture
def server(start_server):
    return start_server(shards=2, batch_window=0.001, queue_depth=16, http_port=0)


class TestTcp:
    def test_full_session_over_the_wire(self, server, trio_sfs):
        fleet = Fleet(trio_sfs, name="trio")
        reference = Planner(fleet)
        with ServeClient(server.host, server.port) as client:
            info = client.register_fleet(trio_sfs, name="trio")
            assert info["fingerprint"] == fleet.fingerprint

            got = client.plan(info["fingerprint"], 123_456)
            want = reference.plan(123_456)
            assert got["makespan"] == float(want.makespan)
            assert got["allocation"] == [int(x) for x in want.allocation]

            batch = client.plan_many(info["fingerprint"], [1000, 2000, 3000])
            assert [item["n"] for item in batch] == [1000, 2000, 3000]

            assert client.health()["status"] == "ok"
            stats = client.stats()
            assert stats["shed"] == 0
            assert info["fingerprint"] in stats["fleets"]

    def test_error_envelopes_reach_the_client(self, server):
        with ServeClient(server.host, server.port) as client:
            with pytest.raises(ServeError) as err:
                client.plan("no-such-fleet", 100)
            assert err.value.code == "unknown_fleet"
            response = client.call("plan", fleet="x")  # missing n
            assert response["error"]["code"] == "invalid_request"

    def test_malformed_frames_get_error_responses(self, server):
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            response = json.loads(reader.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "invalid_request"
            # The connection survives a bad frame; a good one still works.
            sock.sendall(b'{"v": 1, "id": 5, "op": "health"}\n')
            response = json.loads(reader.readline())
            assert response["ok"] and response["id"] == 5

    def test_pipelined_client_keeps_requests_in_flight(self, server, trio_sfs):
        import asyncio

        with ServeClient(server.host, server.port) as client:
            fp = client.register_fleet(trio_sfs, name="trio")["fingerprint"]

        async def scenario():
            client = await AsyncServeClient.connect(server.host, server.port)
            try:
                results = await asyncio.gather(
                    *(client.plan(fp, 1000 * (k + 1)) for k in range(10))
                )
            finally:
                await client.close()
            return results

        results = asyncio.run(scenario())
        assert [r["n"] for r in results] == [1000 * (k + 1) for k in range(10)]


class TestHttp:
    def test_health_stats_metrics_and_rpc(self, server, trio_sfs, serve_obs):
        serve_obs.enable()
        base = f"http://{server.host}:{server.http_port}"
        with ServeClient(server.host, server.port) as client:
            fp = client.register_fleet(trio_sfs, name="trio")["fingerprint"]
            client.plan(fp, 1000)

        health = json.loads(urllib.request.urlopen(f"{base}/health").read())
        assert health["status"] == "ok" and health["fleets"] == 1

        stats = json.loads(urllib.request.urlopen(f"{base}/stats").read())
        assert fp in stats["fleets"]

        metrics_response = urllib.request.urlopen(f"{base}/metrics")
        assert "text/plain" in metrics_response.headers["Content-Type"]
        metrics = metrics_response.read().decode()
        assert "serve_requests_total" in metrics
        assert "serve_shard_queue_depth" in metrics
        assert "# TYPE serve_request_seconds histogram" in metrics

        rpc = urllib.request.Request(
            f"{base}/v1/rpc",
            data=json.dumps({"v": 1, "id": 1, "op": "plan", "fleet": fp, "n": 500}).encode(),
            method="POST",
        )
        doc = json.loads(urllib.request.urlopen(rpc).read())
        assert doc["ok"] and doc["result"]["n"] == 500

    def test_http_errors(self, server):
        base = f"http://{server.host}:{server.http_port}"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/nope")
        assert err.value.code == 404
        rpc = urllib.request.Request(
            f"{base}/v1/rpc", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(rpc)
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"]["code"] == "invalid_request"


class TestLoadAndDrain:
    def test_concurrent_load_sees_zero_drops(self, server, trio_sfs):
        with ServeClient(server.host, server.port) as client:
            fp = client.register_fleet(trio_sfs, name="trio")["fingerprint"]
        sizes = [1000 + (k % 7) * 500 for k in range(60)]
        report = run_load(
            server.host, server.port, fp, sizes, concurrency=12, connections=4
        )
        assert report.ok == len(sizes)
        assert report.errors == {}
        assert report.plans_per_second > 0
        assert 0 < report.p50 <= report.p99
        with ServeClient(server.host, server.port) as client:
            assert client.stats()["shed"] == 0

    def test_stop_drains_in_flight_requests(self, start_server, trio_sfs):
        # A wide-open batching window holds requests server-side; stop()
        # must flush and answer them rather than dropping the connection.
        handle = start_server(shards=1, batch_window=20.0, queue_depth=16)
        with ServeClient(handle.host, handle.port) as client:
            fp = client.register_fleet(trio_sfs, name="trio")["fingerprint"]
        with socket.create_connection((handle.host, handle.port), timeout=30) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                json.dumps({"v": 1, "id": 1, "op": "plan", "fleet": fp, "n": 1000}).encode()
                + b"\n"
            )

            # Wait until the request is parked in the batching window
            # (polled on the server's own loop, so it can't race the
            # accept/read path) — then stop underneath it.
            async def _open_windows():
                return len(handle.service._batches)

            poll_until(
                lambda: handle.call(_open_windows()) > 0,
                message="request never reached the batcher",
            )
            handle.stop(drain=True)
            response = json.loads(reader.readline())
            assert response["ok"] and response["result"]["n"] == 1000

    def test_server_refuses_new_connections_after_stop(self, start_server):
        handle = start_server(shards=1, queue_depth=8)
        host, port = handle.host, handle.port
        handle.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2)

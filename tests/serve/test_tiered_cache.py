"""Coherence tests for the tiered plan cache behind shard workers.

Layer under test: :class:`repro.planner.tiered.TieredPlanCache` — a
per-shard :class:`~repro.planner.cache.PlanCache` LRU (L1) backed by a
pool-wide :class:`~repro.planner.tiered.WarmPlanStore` (L2, write-behind)
— and its wiring through :class:`repro.serve.shard.ShardPool`:

* a killed-and-restarted shard re-answers replayed keys from the warm
  tier (no cold re-solve), in **both** worker modes;
* ``invalidate(fingerprint)`` is exact: both tiers drop that fleet's
  plans and nothing of a sibling fleet's;
* the write-behind queue never resurrects an invalidated plan;
* stripped values: the heavy warm-start ``region`` never crosses into
  the shared store.
"""

from __future__ import annotations

import pytest

from repro.core.bisection import partition_bisection
from repro.planner import Fleet, Planner, TieredPlanCache, WarmPlanStore
from repro.serve.protocol import speed_functions_from_fleet_spec
from repro.serve.shard import ShardPool
from tests.conftest import make_pwl


@pytest.fixture
def pair_specs(trio_spec):
    """Two sibling fleets with distinct fingerprints, as wire specs."""
    other = dict(trio_spec)
    other["name"] = "quartet"
    other["speed_functions"] = trio_spec["speed_functions"] + [
        trio_spec["speed_functions"][0]
    ]
    return trio_spec, other


def _fingerprint(spec) -> str:
    return Fleet(speed_functions_from_fleet_spec(spec)).fingerprint


def _solve(pool, fingerprint, sizes):
    items = [{"n": n, "deadline": None, "allocation": True} for n in sizes]
    payload = pool.submit_batch(fingerprint, items).result(60)
    assert payload["ok"], payload
    assert all(item.get("ok") for item in payload["results"]), payload
    return payload["results"]


def _fleet_stats(pool, fingerprint):
    shard = pool.shard_for(fingerprint)
    payload = pool.stats_all()[shard].result(60)
    assert payload["ok"], payload
    return payload["fleets"][fingerprint]


SIZES = [400_000 + 7_000 * i for i in range(8)]


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_restart_recovers_warm_hits_and_bit_identity(mode, pair_specs):
    """Replay after a shard restart: warm-tier hits, identical plans."""
    spec, _ = pair_specs
    fingerprint = _fingerprint(spec)
    pool = ShardPool(2, mode=mode)
    try:
        assert pool.register(spec, fingerprint).result(60)["ok"]
        before = _solve(pool, fingerprint, SIZES)

        pool.restart_shard(pool.shard_for(fingerprint))

        after = _solve(pool, fingerprint, SIZES)
        assert after == before, "restarted shard returned different plans"
        stats = _fleet_stats(pool, fingerprint)
        warm = stats.get("warm")
        assert warm is not None, "restarted planner lost its warm tier"
        # The acceptance bar: at least half the replayed keys answered
        # from the warm tier (here all of them are, but the contract is
        # the floor).
        assert warm["hits"] >= len(SIZES) // 2, warm
        assert stats["cold_plans"] == 0, stats
    finally:
        pool.close()


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_invalidate_evicts_both_tiers_exactly(mode, pair_specs):
    """Invalidation drops one fleet from L1+L2 and spares its sibling."""
    spec_a, spec_b = pair_specs
    fp_a, fp_b = _fingerprint(spec_a), _fingerprint(spec_b)
    assert fp_a != fp_b
    pool = ShardPool(2, mode=mode)
    try:
        assert pool.register(spec_a, fp_a).result(60)["ok"]
        assert pool.register(spec_b, fp_b).result(60)["ok"]
        _solve(pool, fp_a, SIZES)
        _solve(pool, fp_b, SIZES)
        store = pool.warm_store
        assert store is not None
        entries_before = len(store)
        assert entries_before >= 2

        dropped = store.invalidate(fp_a)
        assert dropped >= 1

        # Sibling entries intact: replaying fp_b after a restart of its
        # shard still hits warm (its plans survived the invalidation).
        pool.restart_shard(pool.shard_for(fp_b))
        _solve(pool, fp_b, SIZES)
        stats_b = _fleet_stats(pool, fp_b)
        assert stats_b["warm"]["hits"] >= len(SIZES) // 2, stats_b
        # And fp_a's warm entries are really gone: its restarted worker
        # re-solves cold.
        pool.restart_shard(pool.shard_for(fp_a))
        _solve(pool, fp_a, SIZES)
        stats_a = _fleet_stats(pool, fp_a)
        assert stats_a["warm"]["hits"] == 0, stats_a
        assert stats_a["cold_plans"] >= 1, stats_a
    finally:
        pool.close()


def test_tiered_cache_write_behind_and_promotion():
    """Unit-level: L2 read-through promotes into L1; flush() is a barrier."""
    sfs = [make_pwl(100.0), make_pwl(220.0)]
    fleet = Fleet(sfs, name="unit")
    store = WarmPlanStore.local(maxsize=64)
    cache = TieredPlanCache(8, warm=store, name="unit-a")
    planner = Planner(fleet, cache=cache)
    try:
        result = planner.plan(500_000)
        cache.flush()
        assert len(store) >= 1

        # A sibling planner sharing the store starts warm: its first
        # query is answered by promotion, not a cold solve.
        sibling_cache = TieredPlanCache(8, warm=store, name="unit-b")
        sibling = Planner(fleet, cache=sibling_cache)
        try:
            again = sibling.plan(500_000)
            assert list(again.allocation) == list(result.allocation)
            assert again.makespan == result.makespan
            assert sibling.stats().cold_plans == 0
            assert sibling_cache.warm_stats()["hits"] == 1
        finally:
            sibling_cache.close()
    finally:
        cache.close()


def test_invalidate_flushes_write_behind_first():
    """A plan still sitting in the write queue must not resurrect."""
    sfs = [make_pwl(100.0), make_pwl(220.0)]
    fleet = Fleet(sfs, name="unit")
    store = WarmPlanStore.local(maxsize=64)
    cache = TieredPlanCache(8, warm=store, name="race")
    planner = Planner(fleet, cache=cache)
    try:
        planner.plan(500_000)
        # invalidate() flushes the writer thread before dropping, so the
        # in-flight write cannot land after the eviction.
        cache.invalidate(fleet.fingerprint)
        assert len(store) == 0
        assert cache.get((fleet.fingerprint, 500_000, "bisection",
                          "greedy", "tangent")) is None
    finally:
        cache.close()


def test_warm_store_never_holds_regions():
    """The heavy warm-start region stays worker-local (stripped for L2)."""
    sfs = [make_pwl(100.0), make_pwl(220.0)]
    fleet = Fleet(sfs, name="unit")
    store = WarmPlanStore.local(maxsize=64)
    cache = TieredPlanCache(8, warm=store, name="strip")
    planner = Planner(fleet, cache=cache)
    try:
        planner.plan(500_000)
        cache.flush()
        values = [store.get(key) for key in store.keys()]
        assert values and all(
            getattr(v, "region", None) is None for v in values
        ), "a region object leaked into the shared store"
    finally:
        cache.close()


def test_warm_plans_stay_bit_identical_to_cold_bisection(pair_specs):
    """End-to-end invariant: warm-tier answers == cold partition_bisection."""
    spec, _ = pair_specs
    fingerprint = _fingerprint(spec)
    sfs = speed_functions_from_fleet_spec(spec)
    pool = ShardPool(1, mode="thread")
    try:
        assert pool.register(spec, fingerprint).result(60)["ok"]
        _solve(pool, fingerprint, SIZES)
        pool.restart_shard(0)
        served = _solve(pool, fingerprint, SIZES)
        for n, item in zip(SIZES, served):
            cold = partition_bisection(n, sfs)
            assert item["allocation"] == list(cold.allocation), n
            assert item["makespan"] == cold.makespan, n
    finally:
        pool.close()


def test_warm_tier_disabled_still_serves(pair_specs):
    """warm_tier=False keeps the old cold-restart behaviour, no errors."""
    spec, _ = pair_specs
    fingerprint = _fingerprint(spec)
    pool = ShardPool(1, mode="thread", warm_tier=False)
    try:
        assert pool.register(spec, fingerprint).result(60)["ok"]
        before = _solve(pool, fingerprint, SIZES)
        pool.restart_shard(0)
        after = _solve(pool, fingerprint, SIZES)
        assert after == before
        stats = _fleet_stats(pool, fingerprint)
        assert "warm" not in stats
        assert stats["cold_plans"] >= 1  # really re-solved
        assert pool.warm_tier_stats() == {"enabled": False, "entries": 0}
    finally:
        pool.close()

"""Shard pool: correctness, admission control, deadlines, drain.

The backlog tests use the ``worker_gate`` fixture: a register job whose
spec stalls inside the worker until released, so the bounded inbox can
be filled deterministically — no sleeps, no timing races.
"""

from __future__ import annotations

import time

import pytest

from repro import ConfigurationError, Fleet, Planner
from repro.serve.protocol import speed_functions_from_fleet_spec
from repro.serve.shard import ShardPool


def _register(pool, spec):
    fingerprint = Fleet(
        speed_functions_from_fleet_spec(spec), name=spec.get("name") or None
    ).fingerprint
    payload = pool.register(spec, fingerprint).result(timeout=30)
    assert payload["ok"], payload
    assert payload["fingerprint"] == fingerprint
    return fingerprint


class TestSolving:
    def test_batch_matches_direct_planner(self, trio_sfs, trio_spec):
        fleet = Fleet(trio_sfs, name="trio")
        reference = Planner(fleet)
        sizes = [1000, 50_000, 400_000]
        with ShardPool(2, queue_depth=8) as pool:
            fp = _register(pool, trio_spec)
            assert fp == fleet.fingerprint
            items = [{"n": n, "deadline": None, "allocation": True} for n in sizes]
            payload = pool.submit_batch(fp, items).result(timeout=30)
        assert payload["ok"]
        for n, got in zip(sizes, payload["results"]):
            want = reference.plan(n)
            assert got["ok"]
            assert got["makespan"] == float(want.makespan)
            assert got["allocation"] == [int(x) for x in want.allocation]
            assert got["p"] == fleet.p

    def test_allocation_flag_trims_the_wire_shape(self, trio_spec):
        with ShardPool(1, queue_depth=8) as pool:
            fp = _register(pool, trio_spec)
            payload = pool.submit_batch(
                fp, [{"n": 1000, "allocation": False}]
            ).result(timeout=30)
        (item,) = payload["results"]
        assert item["ok"] and "allocation" not in item

    def test_unknown_fleet_answers_per_item(self, trio_spec):
        with ShardPool(1, queue_depth=8) as pool:
            payload = pool.submit_batch(
                "not-registered", [{"n": 1}, {"n": 2}]
            ).result(timeout=30)
        assert [it["code"] for it in payload["results"]] == ["unknown_fleet"] * 2

    def test_infeasible_items_do_not_poison_the_batch(self, trio_sfs, trio_spec):
        fleet = Fleet(trio_sfs, name="trio")
        over = int(fleet.capacity) + 10
        with ShardPool(1, queue_depth=8) as pool:
            fp = _register(pool, trio_spec)
            payload = pool.submit_batch(
                fp, [{"n": 1000}, {"n": over}, {"n": -5}, {"n": 2000}]
            ).result(timeout=30)
        ok, bad_hi, bad_lo, ok2 = payload["results"]
        assert ok["ok"] and ok2["ok"]
        assert bad_hi["code"] == "infeasible"
        assert bad_lo["code"] == "infeasible"

    def test_expired_deadlines_are_answered_without_a_solve(self, trio_spec):
        with ShardPool(1, queue_depth=8) as pool:
            fp = _register(pool, trio_spec)
            payload = pool.submit_batch(
                fp,
                [
                    {"n": 1000, "deadline": time.time() - 1.0},
                    {"n": 2000, "deadline": time.time() + 60.0},
                ],
            ).result(timeout=30)
        expired, live = payload["results"]
        assert expired["code"] == "deadline_exceeded"
        assert live["ok"]

    def test_stats_report_shard_local_planners(self, trio_spec):
        with ShardPool(2, queue_depth=8) as pool:
            fp = _register(pool, trio_spec)
            pool.submit_batch(fp, [{"n": 1000}]).result(timeout=30)
            pool.submit_batch(fp, [{"n": 1000}]).result(timeout=30)
            payloads = [f.result(timeout=30) for f in pool.stats_all()]
        owner = pool.shard_for(fp)
        by_shard = {p["shard"]: p["fleets"] for p in payloads}
        assert fp in by_shard[owner]
        assert by_shard[owner][fp]["cache_hits"] >= 1  # the replayed query
        assert all(fp not in fleets for s, fleets in by_shard.items() if s != owner)


class TestAdmissionControl:
    def test_full_inbox_sheds_instead_of_blocking(self, trio_spec, worker_gate):
        depth = 3
        with ShardPool(1, queue_depth=depth) as pool:
            fp = _register(pool, trio_spec)
            pool.register(worker_gate.spec(), "gate-routing-key")
            assert worker_gate.entered.wait(timeout=10)  # worker is now busy
            accepted = [
                pool.submit_batch(fp, [{"n": 1000}]) for _ in range(depth)
            ]
            assert all(f is not None for f in accepted)  # zero drops below the limit
            assert pool.submit_batch(fp, [{"n": 1000}]) is None  # the shed
            assert pool.submit_batch(fp, [{"n": 1000}]) is None
            worker_gate.release()
            for f in accepted:
                assert f.result(timeout=30)["results"][0]["ok"]

    def test_submit_after_close_raises(self, trio_spec):
        pool = ShardPool(1, queue_depth=4)
        fp = _register(pool, trio_spec)
        pool.close()
        with pytest.raises(ConfigurationError, match="closed"):
            pool.submit_batch(fp, [{"n": 1}])
        with pytest.raises(ConfigurationError, match="closed"):
            pool.register(trio_spec, fp)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ShardPool(0)
        with pytest.raises(ConfigurationError):
            ShardPool(1, queue_depth=0)
        with pytest.raises(ConfigurationError):
            ShardPool(1, mode="fibers")


class TestDrain:
    def test_drain_finishes_queued_work(self, trio_spec, worker_gate):
        pool = ShardPool(1, queue_depth=8)
        fp = _register(pool, trio_spec)
        pool.register(worker_gate.spec(), "gate-routing-key")
        assert worker_gate.entered.wait(timeout=10)
        queued = [pool.submit_batch(fp, [{"n": 1000 * (k + 1)}]) for k in range(3)]
        worker_gate.release()
        pool.close(drain=True)  # must not return before the backlog is done
        for f in queued:
            payload = f.result(timeout=1)  # already resolved by close()
            assert payload["ok"] and payload["results"][0]["ok"]

    def test_abrupt_close_fails_pending_futures(self, trio_spec, worker_gate):
        pool = ShardPool(1, queue_depth=8)
        fp = _register(pool, trio_spec)
        pool.register(worker_gate.spec(), "gate-routing-key")
        assert worker_gate.entered.wait(timeout=10)
        queued = [pool.submit_batch(fp, [{"n": 1000}]) for _ in range(3)]
        worker_gate.release()
        pool.close(drain=False)
        for f in queued:
            payload = f.result(timeout=30)
            # Either the worker got to it before the abandon, or it was
            # failed fast — but it must never hang or vanish.
            assert payload["ok"] or payload["code"] == "shutting_down"

    def test_close_is_idempotent(self, trio_spec):
        pool = ShardPool(1, queue_depth=4)
        _register(pool, trio_spec)
        pool.close()
        pool.close()
        assert pool.closed


class TestProcessMode:
    def test_process_workers_solve_and_drain(self, trio_sfs, trio_spec):
        fleet = Fleet(trio_sfs, name="trio")
        reference = Planner(fleet)
        pool = ShardPool(2, mode="process", queue_depth=8)
        try:
            fp = _register(pool, trio_spec)
            payload = pool.submit_batch(
                fp, [{"n": 1000, "allocation": True}]
            ).result(timeout=60)
            (item,) = payload["results"]
            want = reference.plan(1000)
            assert item["makespan"] == float(want.makespan)
            assert item["allocation"] == [int(x) for x in want.allocation]
        finally:
            pool.close(drain=True)

"""End-to-end request tracing: one connected tree per served request.

The regression this suite pins: spans recorded inside a ShardPool worker
(thread OR process mode) used to vanish — the worker's thread-local span
stack died with the batch.  Now the worker ships its span subtree back
inside the batch payload and the service re-roots it under the request's
root span, so every served request yields a single connected trace,
retrievable by trace id from the flight recorder and ``/debug/traces``,
with the latency histogram carrying the trace id as an exemplar.
"""

from __future__ import annotations

import asyncio
import json
import urllib.request

import pytest

from repro import obs
from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.service import PlanningService, ServeConfig
from tests.serve.conftest import eventually
from tests.serve.test_service import run_service


def plan_frame(fp, n, req_id=1, **extra):
    return {"v": PROTOCOL_VERSION, "id": req_id, "op": "plan", "fleet": fp,
            "n": n, "allocation": False, **extra}


def plan_many_frame(fp, ns, req_id=1, **extra):
    return {"v": PROTOCOL_VERSION, "id": req_id, "op": "plan_many", "fleet": fp,
            "ns": list(ns), "allocation": False, **extra}


def _tree(trace):
    """(root, names) of a recorded trace's span tree."""
    assert trace is not None and trace.root is not None
    nodes = list(trace.root.walk())
    return trace.root, [s.name for s in nodes]


def _assert_connected(trace):
    """The cross-boundary invariant: one tree, one trace id, linked ids."""
    root, names = _tree(trace)
    assert root.name in ("serve.plan", "serve.plan_many")
    assert "serve.shard.batch" in names
    assert "serve.shard.solve" in names
    assert "serve.shard.item" in names
    for node in root.walk():
        assert node.trace_id == trace.trace_id, f"{node.name} lost the trace id"
    batch = next(s for s in root.children if s.name == "serve.shard.batch")
    assert batch.parent_id == root.span_id
    for child in batch.children:
        assert child.parent_id == batch.span_id


class TestConnectedTrace:
    def test_thread_mode_request_yields_one_connected_tree(self, trio_sfs):
        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            resp = await service.handle(plan_frame(info["fingerprint"], 250_000))
            return resp, service.recorder.get(resp["trace_id"])

        resp, trace = run_service(scenario)
        assert resp["ok"]
        assert trace.ok and trace.op == "plan" and trace.n == 250_000
        _assert_connected(trace)

    def test_process_mode_request_yields_one_connected_tree(self, trio_sfs):
        config = ServeConfig(
            shards=1, worker_mode="process", batch_window=0.005, queue_depth=8
        )

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            resp = await service.handle(plan_frame(info["fingerprint"], 250_000))
            return resp, service.recorder.get(resp["trace_id"])

        resp, trace = run_service(scenario, config)
        assert resp["ok"]
        _assert_connected(trace)  # the subtree survived pickling + the pipe

    def test_latency_histogram_carries_the_trace_id_as_exemplar(self, trio_sfs):
        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            return await service.handle(plan_frame(info["fingerprint"], 250_000))

        resp = run_service(scenario)
        hist = obs.get_registry().histogram(
            "serve.request.seconds", labels={"op": "plan"}
        )
        recorded = [e for e in hist.exemplars if e is not None]
        assert [e[0] for e in recorded] == [resp["trace_id"]]

    def test_client_supplied_context_is_honoured_and_echoed(self, trio_sfs):
        client_trace = {"trace_id": "c0ffee" * 5 + "ab", "span_id": "ab" * 8}

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            resp = await service.handle(
                plan_frame(info["fingerprint"], 250_000, trace=client_trace)
            )
            return resp, service.recorder.get(resp["trace_id"])

        resp, trace = run_service(scenario)
        assert resp["trace_id"] == client_trace["trace_id"]
        # The server's root span is a CHILD of the client's span.
        assert trace.root.parent_id == client_trace["span_id"]
        _assert_connected(trace)

    def test_malformed_trace_is_rejected_not_crashed(self, trio_sfs):
        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            return await service.handle(
                plan_frame(info["fingerprint"], 1000, trace={"trace_id": "XYZ"})
            )

        resp = run_service(scenario)
        assert not resp["ok"]
        assert resp["error"]["code"] == "invalid_request"

    def test_error_response_still_carries_a_trace_id(self, trio_sfs):
        async def scenario(service):
            return await service.handle(plan_frame("no-such-fleet", 1000))

        resp = run_service(scenario)
        assert not resp["ok"]
        tid = resp["trace_id"]

        async def scenario2(service):
            resp = await service.handle(plan_frame("no-such-fleet", 1000))
            return service.recorder.get(resp["trace_id"])

        trace = run_service(scenario2)
        assert trace.status == "unknown_fleet"
        assert len(tid) == 32


class TestBatchFanout:
    def test_coalesced_requests_get_distinct_traces_sharing_one_batch(
        self, trio_sfs
    ):
        sizes = [10_000, 20_000, 30_000]

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            fp = info["fingerprint"]
            resps = await asyncio.gather(
                *(service.handle(plan_frame(fp, n, req_id=i))
                  for i, n in enumerate(sizes))
            )
            stats = await service.stats()
            traces = [service.recorder.get(r["trace_id"]) for r in resps]
            return resps, stats, traces

        resps, stats, traces = run_service(scenario)
        assert all(r["ok"] for r in resps)
        assert stats["batches"] == 1                 # one window served all three
        ids = {r["trace_id"] for r in resps}
        assert len(ids) == len(sizes)                # fan-out: distinct traces
        for trace in traces:
            _assert_connected(trace)                 # fan-in: each got the subtree
            batch = next(
                s for s in trace.root.children if s.name == "serve.shard.batch"
            )
            assert batch.attrs["items"] == len(sizes)
            item_owners = {
                s.attrs.get("request_span_id")
                for s in batch.children if s.name == "serve.shard.item"
            }
            # Every request's span id is visible in the shared batch.
            assert {t.root.span_id for t in traces} == item_owners

    def test_plan_many_is_one_trace_with_one_subtree(self, trio_sfs):
        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            resp = await service.handle(
                plan_many_frame(info["fingerprint"], [1000, 2000, 3000])
            )
            return resp, service.recorder.get(resp["trace_id"])

        resp, trace = run_service(scenario)
        assert resp["ok"]
        assert trace.op == "plan_many"
        _assert_connected(trace)
        # The shared span must be attached exactly once, not per item.
        batches = [s for s in trace.root.children if s.name == "serve.shard.batch"]
        assert len(batches) == 1
        items = [s for s in batches[0].children if s.name == "serve.shard.item"]
        assert len(items) == 3

    def test_plan_many_worst_item_code_becomes_the_trace_status(self, trio_sfs):
        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            resp = await service.handle(
                plan_many_frame(info["fingerprint"], [1000, 10**18])
            )
            return resp, service.recorder.get(resp["trace_id"])

        resp, trace = run_service(scenario)
        assert resp["ok"]  # envelope ok; per-item verdicts inside
        assert trace.status == "infeasible"
        assert not trace.ok


class TestFailureRetention:
    def test_burst_retains_every_shed_trace_while_ring_stays_bounded(
        self, trio_sfs, worker_gate
    ):
        depth, extra = 3, 12
        config = ServeConfig(
            shards=1, batch_window=0.0, queue_depth=depth,
            flight_capacity=4,       # far smaller than the burst
        )

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            fp = info["fingerprint"]
            service.pool.register(worker_gate.spec(), "gate-key")
            assert worker_gate.entered.wait(timeout=10)
            tasks = [
                asyncio.ensure_future(
                    service.handle(plan_many_frame(fp, [1000 + k], req_id=k))
                )
                for k in range(depth + extra)
            ]
            await eventually(
                lambda: int(service._shed.value) == extra,
                message="overflow requests were never shed",
            )
            worker_gate.release()
            resps = await asyncio.gather(*tasks)
            return resps, service.recorder

        resps, recorder = run_service(scenario, config)
        shed_ids = {
            r["trace_id"] for r in resps
            if not r["result"]["results"][0]["ok"]
        }
        assert len(shed_ids) == extra
        retained = recorder.traces(errors_only=True)
        # 100% of the shed traces survive even though the FIFO ring
        # (capacity 4) rolled over during the burst.
        assert shed_ids <= {t.trace_id for t in retained}
        assert all(t.status == "overloaded" for t in retained)
        stats = recorder.stats()
        assert stats["ring_size"] <= 4
        assert stats["evicted"] > 0

    def test_deadline_expiry_is_recorded(self, trio_sfs, worker_gate):
        from tests.serve.test_service import _wait_past_queued_deadline

        config = ServeConfig(shards=1, batch_window=0.0, queue_depth=8)

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            service.pool.register(worker_gate.spec(), "gate-key")
            assert worker_gate.entered.wait(timeout=10)
            task = asyncio.ensure_future(
                service.handle(
                    plan_frame(info["fingerprint"], 1000, timeout_ms=30)
                )
            )
            await _wait_past_queued_deadline(service, 0.030)
            worker_gate.release()
            resp = await task
            return resp, service.recorder.get(resp["trace_id"])

        resp, trace = run_service(scenario, config)
        assert resp["error"]["code"] == "deadline_exceeded"
        assert trace.status == "deadline_exceeded"
        assert trace.root.status == "error"


class TestSampling:
    def test_tracing_off_records_nothing_and_counts_sampled(self, trio_sfs):
        config = ServeConfig(
            shards=1, batch_window=0.005, queue_depth=8, tracing=False
        )

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            resp = await service.handle(plan_frame(info["fingerprint"], 1000))
            return resp, service.recorder.stats()

        resp, stats = run_service(scenario, config)
        assert resp["ok"]
        assert "trace_id" not in resp
        assert stats["recorded"] == 0
        assert stats["sampled"] == 1

    def test_stats_exposes_the_trace_counter_group(self, trio_sfs):
        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            await service.handle(plan_frame(info["fingerprint"], 1000))
            return await service.stats()

        stats = run_service(scenario)
        assert stats["trace"]["recorded"] == 1
        assert stats["trace"]["sampled"] == 0
        assert stats["telemetry"]["cells"] >= 1


class TestTelemetrySink:
    def test_ok_requests_feed_the_fleet_sink(self, trio_sfs):
        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            await service.handle(plan_frame(info["fingerprint"], 250_000))
            await service.handle(plan_frame(info["fingerprint"], 260_000))
            return info["fingerprint"], service.sink.rows()

        fp, rows = run_service(scenario)
        (row,) = [r for r in rows if r["kind"] == "solve"]
        assert row["fingerprint"] == fp
        assert row["count"] == 2
        assert row["band_lo"] <= 250_000 < row["band_hi"]


class TestHttpPlane:
    @pytest.fixture
    def live(self, start_server, trio_sfs):
        from repro.serve import ServeClient

        handle = start_server(http_port=0, batch_window=0.001)
        with ServeClient(handle.host, handle.port) as client:
            info = client.register_fleet(trio_sfs, name="trio")
            resp_trace = client.call(
                "plan", fleet=info["fingerprint"], n=250_000, allocation=False
            )
        base = f"http://{handle.host}:{handle.http_port}"
        return base, resp_trace["trace_id"]

    def _get(self, url, headers=None):
        req = urllib.request.Request(url, headers=headers or {})
        with urllib.request.urlopen(req) as resp:
            return resp.status, resp.headers, resp.read().decode()

    def test_debug_traces_lists_and_fetches_by_id(self, live):
        base, trace_id = live
        status, _, body = self._get(f"{base}/debug/traces")
        assert status == 200
        listing = json.loads(body)
        assert trace_id in [t["trace_id"] for t in listing["traces"]]
        assert listing["stats"]["recorded"] >= 1

        status, _, body = self._get(f"{base}/debug/traces?id={trace_id}")
        detail = json.loads(body)
        assert detail["trace_id"] == trace_id
        names = set()
        stack = [detail["spans"]]
        while stack:
            node = stack.pop()
            names.add(node["name"])
            stack.extend(node.get("children", []))
        assert {"serve.plan", "serve.shard.batch", "serve.shard.item"} <= names

    def test_debug_traces_unknown_id_is_404(self, live):
        base, _ = live
        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(f"{base}/debug/traces?id=feedface")
        assert err.value.code == 404

    def test_metrics_negotiates_openmetrics_with_exemplars(self, live):
        base, trace_id = live
        _, headers, body = self._get(
            f"{base}/metrics",
            headers={"Accept": "application/openmetrics-text"},
        )
        assert "application/openmetrics-text" in headers["Content-Type"]
        assert body.rstrip().endswith("# EOF")
        assert f'trace_id="{trace_id}"' in body

    def test_metrics_default_is_classic_prometheus(self, live):
        base, _ = live
        _, headers, body = self._get(f"{base}/metrics")
        assert headers["Content-Type"].startswith("text/plain")
        assert "# EOF" not in body
        assert "trace_id" not in body

"""Shared fixtures for the serving tests: small fleets, isolated obs.

Also the synchronization helpers that keep this suite flake-free:
:func:`eventually` (async) and :func:`poll_until` (sync) replace fixed
sleeps with bounded polling, and the :func:`start_server` factory
guarantees every listener binds port 0 and is stopped even when a test
fails mid-way.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
import time

import pytest

from repro import obs
from repro.io import speed_function_to_dict
from tests.conftest import make_pwl


async def eventually(
    predicate,
    *,
    timeout: float = 10.0,
    interval: float = 0.002,
    message: str = "condition never became true",
):
    """Await a (sync or async) predicate until it returns truthy.

    Poll-based synchronization for the event-loop tests: no fixed
    sleeps, a hard ``timeout`` bound, and the winning value is returned
    so callers can assert on it.
    """
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        result = predicate()
        if inspect.isawaitable(result):
            result = await result
        if result:
            return result
        if loop.time() > deadline:
            raise AssertionError(message)
        await asyncio.sleep(interval)


def poll_until(
    predicate,
    *,
    timeout: float = 10.0,
    interval: float = 0.005,
    message: str = "condition never became true",
):
    """Blocking counterpart of :func:`eventually` for threaded tests."""
    deadline = time.monotonic() + timeout
    while True:
        result = predicate()
        if result:
            return result
        if time.monotonic() > deadline:
            raise AssertionError(message)
        time.sleep(interval)


@pytest.fixture
def start_server():
    """Factory booting real servers on ephemeral ports, always stopped.

    Every server in this suite must bind port 0 (no hard-coded ports, no
    collisions under xdist) and must release its sockets even when the
    test body raises — the factory owns both guarantees.
    """
    from repro.serve import ServeConfig, start_in_thread

    handles = []

    def _boot(**kwargs):
        kwargs.setdefault("port", 0)
        config = ServeConfig(**kwargs)
        assert config.port == 0, "serve tests must bind ephemeral ports"
        handle = start_in_thread(config)
        handles.append(handle)
        return handle

    try:
        yield _boot
    finally:
        for handle in reversed(handles):  # stop() is idempotent
            handle.stop()


@pytest.fixture
def trio_sfs():
    """Three heterogeneous processors — a fast-to-solve fleet."""
    return [make_pwl(100.0), make_pwl(220.0), make_pwl(320.0, scale=1.5)]


@pytest.fixture
def trio_spec(trio_sfs):
    """The wire spec for :func:`trio_sfs` (a registered fleet's payload)."""
    return {
        "name": "trio",
        "algorithm": "bisection",
        "cache_size": 64,
        "speed_functions": [speed_function_to_dict(sf) for sf in trio_sfs],
    }


@pytest.fixture(autouse=True)
def serve_obs():
    """Fresh registry per test: serve components create global metrics."""
    previous = obs.set_registry(obs.MetricsRegistry())
    obs.disable()
    try:
        yield obs
    finally:
        obs.disable()
        obs.set_registry(previous)


class WorkerGate:
    """Blocks a shard worker deterministically, via a poisoned register.

    The gate spec's first record stalls inside the worker's
    ``speed_function_from_dict`` call until :meth:`release`, so the
    worker sits busy while its (bounded) inbox fills — which is how the
    admission-control and drain tests create backlog without sleeps.
    Thread-mode only (the record must share the test's memory).
    """

    def __init__(self):
        self._event = threading.Event()
        self.entered = threading.Event()

    def release(self) -> None:
        self._event.set()

    def spec(self) -> dict:
        record = speed_function_to_dict(make_pwl(50.0))
        gate = self

        class _GatedRecord(dict):
            def __getitem__(self, key):
                gate.entered.set()
                gate._event.wait(timeout=30.0)
                return super().__getitem__(key)

        return {"name": "gate", "speed_functions": [_GatedRecord(record)]}


@pytest.fixture
def worker_gate():
    gate = WorkerGate()
    yield gate
    gate.release()  # never leave a worker stuck on test failure

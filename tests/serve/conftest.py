"""Shared fixtures for the serving tests: small fleets, isolated obs."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.io import speed_function_to_dict
from tests.conftest import make_pwl


@pytest.fixture
def trio_sfs():
    """Three heterogeneous processors — a fast-to-solve fleet."""
    return [make_pwl(100.0), make_pwl(220.0), make_pwl(320.0, scale=1.5)]


@pytest.fixture
def trio_spec(trio_sfs):
    """The wire spec for :func:`trio_sfs` (a registered fleet's payload)."""
    return {
        "name": "trio",
        "algorithm": "bisection",
        "cache_size": 64,
        "speed_functions": [speed_function_to_dict(sf) for sf in trio_sfs],
    }


@pytest.fixture(autouse=True)
def serve_obs():
    """Fresh registry per test: serve components create global metrics."""
    previous = obs.set_registry(obs.MetricsRegistry())
    obs.disable()
    try:
        yield obs
    finally:
        obs.disable()
        obs.set_registry(previous)


class WorkerGate:
    """Blocks a shard worker deterministically, via a poisoned register.

    The gate spec's first record stalls inside the worker's
    ``speed_function_from_dict`` call until :meth:`release`, so the
    worker sits busy while its (bounded) inbox fills — which is how the
    admission-control and drain tests create backlog without sleeps.
    Thread-mode only (the record must share the test's memory).
    """

    def __init__(self):
        self._event = threading.Event()
        self.entered = threading.Event()

    def release(self) -> None:
        self._event.set()

    def spec(self) -> dict:
        record = speed_function_to_dict(make_pwl(50.0))
        gate = self

        class _GatedRecord(dict):
            def __getitem__(self, key):
                gate.entered.set()
                gate._event.wait(timeout=30.0)
                return super().__getitem__(key)

        return {"name": "gate", "speed_functions": [_GatedRecord(record)]}


@pytest.fixture
def worker_gate():
    gate = WorkerGate()
    yield gate
    gate.release()  # never leave a worker stuck on test failure

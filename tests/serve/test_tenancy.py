"""Unit tests for repro.serve.tenancy plus protocol/service integration.

Covers the pieces below the fair queue (whose scheduling properties live
in ``test_wfq_properties.py``):

* :class:`TokenBucket` refill arithmetic under an injected clock;
* :class:`TenantQuota` / :class:`TenancyConfig` validation and lookup;
* :class:`QuotaManager` verdicts (unmetered default, per-tenant buckets);
* protocol parsing of the additive ``tenant`` / ``idempotency_key``
  fields, including their limits;
* the ``throttled`` error code end to end;
* the backward-compatibility snapshot: frames without the new fields
  must parse to byte-identical requests and serve byte-identical
  responses, tenancy idle.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.exceptions import ConfigurationError
from repro.serve import ServeClient, ServeError
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_IDEMPOTENCY_KEY_LEN,
    MAX_TENANT_LEN,
    PROTOCOL_VERSION,
    ProtocolError,
    parse_request,
)
from repro.serve.tenancy import (
    QuotaManager,
    TenancyConfig,
    TenantQuota,
    TokenBucket,
)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# -- token bucket --------------------------------------------------------
def test_token_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
    assert all(bucket.try_acquire(1.0) for _ in range(4))
    assert not bucket.try_acquire(1.0)
    clock.advance(1.0)  # 2 tokens back
    assert bucket.try_acquire(1.0)
    assert bucket.try_acquire(1.0)
    assert not bucket.try_acquire(1.0)


def test_token_bucket_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
    clock.advance(3600.0)
    assert all(bucket.try_acquire(1.0) for _ in range(3))
    assert not bucket.try_acquire(1.0)


def test_token_bucket_fractional_costs():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
    assert bucket.try_acquire(0.5)
    assert bucket.try_acquire(0.5)
    assert not bucket.try_acquire(0.5)


# -- config validation ---------------------------------------------------
def test_quota_validation():
    with pytest.raises(ConfigurationError):
        TenantQuota(weight=0.0)
    with pytest.raises(ConfigurationError):
        TenantQuota(weight=-1.0)
    with pytest.raises(ConfigurationError):
        TenantQuota(rate=-1.0)
    with pytest.raises(ConfigurationError):
        TenantQuota(rate=1.0, burst=0.0)
    assert TenantQuota().rate is None  # unmetered by default


def test_tenancy_config_lookup_falls_back_to_default():
    config = TenancyConfig(
        tenants={"gold": TenantQuota(weight=8.0)},
        default=TenantQuota(weight=2.0),
    )
    assert config.quota_for("gold").weight == 8.0
    assert config.quota_for("anyone-else").weight == 2.0
    assert config.quota_for("").weight == 2.0


# -- quota manager -------------------------------------------------------
def test_quota_manager_unmetered_without_config():
    quotas = QuotaManager(None)
    assert all(quotas.try_acquire("anyone", 1000.0) for _ in range(100))
    assert quotas.weight_for("anyone") == 1.0


def test_quota_manager_meters_only_rated_tenants():
    clock = FakeClock()
    quotas = QuotaManager(
        TenancyConfig(
            tenants={"metered": TenantQuota(rate=1.0, burst=2.0)},
        ),
        clock=clock,
    )
    assert quotas.try_acquire("metered", 1.0)
    assert quotas.try_acquire("metered", 1.0)
    assert not quotas.try_acquire("metered", 1.0)
    # The default quota has no rate: other tenants stay unmetered.
    assert all(quotas.try_acquire("free", 10.0) for _ in range(50))


def test_quota_manager_weights():
    quotas = QuotaManager(
        TenancyConfig(
            tenants={"gold": TenantQuota(weight=8.0)},
            default=TenantQuota(weight=0.5),
        )
    )
    assert quotas.weight_for("gold") == 8.0
    assert quotas.weight_for("bronze") == 0.5


# -- protocol fields -----------------------------------------------------
def _plan_frame(**extra) -> dict:
    return {"v": PROTOCOL_VERSION, "id": 1, "op": "plan", "fleet": "f" * 32,
            "n": 1000, **extra}


def test_throttled_is_a_registered_error_code():
    assert "throttled" in ERROR_CODES


def test_parse_tenant_and_idempotency_key():
    req = parse_request(_plan_frame(tenant="acme", idempotency_key="k-1"))
    assert req.tenant == "acme"
    assert req.idempotency_key == "k-1"


def test_parse_rejects_bad_tenant_values():
    with pytest.raises(ProtocolError):
        parse_request(_plan_frame(tenant=7))
    with pytest.raises(ProtocolError):
        parse_request(_plan_frame(tenant="x" * (MAX_TENANT_LEN + 1)))
    with pytest.raises(ProtocolError):
        parse_request(_plan_frame(idempotency_key=""))
    with pytest.raises(ProtocolError):
        parse_request(
            _plan_frame(idempotency_key="x" * (MAX_IDEMPOTENCY_KEY_LEN + 1))
        )


def test_plan_many_carries_the_fields_too():
    frame = {"v": PROTOCOL_VERSION, "id": 2, "op": "plan_many",
             "fleet": "f" * 32, "ns": [10, 20], "tenant": "acme",
             "idempotency_key": "batch-7"}
    req = parse_request(frame)
    assert req.tenant == "acme" and req.idempotency_key == "batch-7"


def test_legacy_frames_parse_identically():
    """A v1 frame without the new fields is exactly the old request."""
    req = parse_request(_plan_frame())
    assert req.tenant == "" and req.idempotency_key is None
    # The request dataclass gained only additive, defaulted fields.
    fields = {f.name for f in dataclasses.fields(req)}
    assert {"fleet", "n", "timeout_ms", "allocation", "trace"} <= fields


# -- end to end ----------------------------------------------------------
def test_throttled_error_code_end_to_end(start_server, trio_sfs):
    handle = start_server(
        shards=1,
        batch_window=0.0,
        tenancy=TenancyConfig(
            tenants={"capped": TenantQuota(rate=0.001, burst=2.0)}
        ),
    )
    with ServeClient(handle.host, handle.port) as client:
        fp = client.register_fleet(trio_sfs, name="trio")["fingerprint"]
        assert client.plan(fp, 400_000, tenant="capped")["ok"]
        assert client.plan(fp, 410_000, tenant="capped")["ok"]
        with pytest.raises(ServeError) as excinfo:
            client.plan(fp, 420_000, tenant="capped")
        assert excinfo.value.code == "throttled"
        # Other tenants are untouched by the capped tenant's verdict.
        assert client.plan(fp, 430_000, tenant="other")["ok"]
        assert client.plan(fp, 440_000)["ok"]
        tenants = client.stats()["tenancy"]["tenants"]
        assert tenants["capped"]["throttled"] == 1


def test_legacy_traffic_snapshot_with_tenancy_idle(start_server, trio_sfs):
    """Requests without tenant/idempotency_key behave exactly as before.

    Two servers — one default config, one with tenancy configured —
    must answer a legacy frame with byte-identical result payloads,
    and the default server must report tenancy disabled.
    """
    plain = start_server(shards=1, batch_window=0.0)
    quota = start_server(
        shards=1,
        batch_window=0.0,
        tenancy=TenancyConfig(tenants={"vip": TenantQuota(weight=9.0)}),
    )
    answers = []
    for handle in (plain, quota):
        with ServeClient(handle.host, handle.port) as client:
            fp = client.register_fleet(trio_sfs, name="trio")["fingerprint"]
            answers.append(client.plan(fp, 650_000))
            stats = client.stats()
    assert answers[0] == answers[1]
    with ServeClient(plain.host, plain.port) as client:
        assert client.stats()["tenancy"]["enabled"] is False
    assert stats["tenancy"]["enabled"] is True

"""Wire protocol: parsing, validation, framing, fleet-spec round trips."""

from __future__ import annotations

import pytest

from repro import Fleet
from repro.exceptions import (
    ConfigurationError,
    InfeasiblePartitionError,
    InvalidSpeedFunctionError,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    HealthRequest,
    PlanManyRequest,
    PlanRequest,
    ProtocolError,
    RegisterFleetRequest,
    StatsRequest,
    decode_frame,
    encode_frame,
    error_code_for,
    error_response,
    fleet_spec_from_speed_functions,
    ok_response,
    parse_request,
    speed_functions_from_fleet_spec,
)


class TestParseRequest:
    def test_plan(self):
        req = parse_request(
            {"v": 1, "id": 7, "op": "plan", "fleet": "fp", "n": 12345.0,
             "timeout_ms": 50, "allocation": False}
        )
        assert isinstance(req, PlanRequest)
        assert (req.id, req.fleet, req.n) == (7, "fp", 12345)
        assert req.timeout_ms == 50.0
        assert req.allocation is False

    def test_plan_many(self):
        req = parse_request({"op": "plan_many", "fleet": "fp", "ns": [1, 2.0, 3]})
        assert isinstance(req, PlanManyRequest)
        assert req.ns == (1, 2, 3)
        assert req.allocation is True

    def test_health_and_stats(self):
        assert isinstance(parse_request({"op": "health", "id": 1}), HealthRequest)
        assert isinstance(parse_request({"op": "stats"}), StatsRequest)

    def test_register_fleet(self, trio_spec):
        req = parse_request(
            {"op": "register_fleet", "name": "t",
             "speed_functions": trio_spec["speed_functions"],
             "options": {"mode": "angle", "refine": "paper"},
             "algorithm": "combined", "cache_size": 16}
        )
        assert isinstance(req, RegisterFleetRequest)
        assert req.options.mode == "angle"
        assert req.options.refine == "paper"
        assert req.algorithm == "combined"

    @pytest.mark.parametrize(
        "raw, code",
        [
            ("not a mapping", "invalid_request"),
            ({"op": "plan", "fleet": "fp", "n": 1, "v": 2}, "unsupported_version"),
            ({"fleet": "fp", "n": 1}, "invalid_request"),  # missing op
            ({"op": "teleport"}, "unknown_op"),
            ({"op": "plan", "n": 1}, "invalid_request"),  # missing fleet
            ({"op": "plan", "fleet": "fp"}, "invalid_request"),  # missing n
            ({"op": "plan", "fleet": "fp", "n": True}, "invalid_request"),
            ({"op": "plan", "fleet": "fp", "n": 1, "timeout_ms": 0}, "invalid_request"),
            ({"op": "plan", "fleet": "fp", "n": 1, "timeout_ms": "fast"}, "invalid_request"),
            ({"op": "plan_many", "fleet": "fp", "ns": "123"}, "invalid_request"),
            ({"op": "plan_many", "fleet": "fp", "ns": [1, None]}, "invalid_request"),
            ({"op": "register_fleet", "speed_functions": []}, "invalid_request"),
            ({"op": "register_fleet", "speed_functions": ["x"]}, "invalid_request"),
        ],
    )
    def test_malformed_requests(self, raw, code):
        with pytest.raises(ProtocolError) as err:
            parse_request(raw)
        assert err.value.code == code

    @pytest.mark.parametrize(
        "field, value",
        [
            ("algorithm", "quantum"),
            ("cache_size", 0),
            ("cache_size", True),
            ("name", 7),
            ("options", {"mode": "sideways"}),
            ("options", {"refine": "vibes"}),
            ("options", {"bogus_option": 1}),
            ("options", {"region": {}}),  # real field, not wire-settable
            ("options", "mode=tangent"),
        ],
    )
    def test_register_fleet_field_validation(self, trio_spec, field, value):
        raw = {
            "op": "register_fleet",
            "speed_functions": trio_spec["speed_functions"],
            field: value,
        }
        with pytest.raises(ProtocolError) as err:
            parse_request(raw)
        assert err.value.code == "invalid_request"
        if field == "options" and isinstance(value, dict):
            assert next(iter(value)) in str(err.value)

    def test_protocol_error_is_a_configuration_error(self):
        assert issubclass(ProtocolError, ConfigurationError)
        with pytest.raises(ValueError):
            ProtocolError("no_such_code", "x")


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame({"op": "health", "id": 3})
        assert frame.endswith(b"\n")
        assert b"\n" not in frame[:-1]
        assert decode_frame(frame) == {"op": "health", "id": 3}

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"{nope")
        assert err.value.code == "invalid_request"
        with pytest.raises(ProtocolError):
            decode_frame(b"[1, 2]")  # an array is not a request object

    def test_responses_carry_version_and_id(self):
        ok = ok_response(9, {"x": 1})
        assert ok == {"v": PROTOCOL_VERSION, "id": 9, "ok": True, "result": {"x": 1}}
        err = error_response(None, "overloaded", "busy")
        assert err["error"]["code"] == "overloaded"
        assert err["ok"] is False
        with pytest.raises(ValueError):
            error_response(1, "not_a_code", "x")


class TestErrorMapping:
    def test_library_exceptions_map_to_wire_codes(self):
        assert error_code_for(InfeasiblePartitionError("n")) == "infeasible"
        assert error_code_for(ConfigurationError("bad")) == "invalid_request"
        assert error_code_for(InvalidSpeedFunctionError("bad")) == "invalid_request"
        assert error_code_for(RuntimeError("boom")) == "internal"
        assert error_code_for(ProtocolError("overloaded", "x")) == "overloaded"


class TestFleetSpecs:
    def test_spec_round_trip_preserves_fingerprint(self, trio_sfs):
        spec = fleet_spec_from_speed_functions(trio_sfs, name="t")
        rebuilt = Fleet(speed_functions_from_fleet_spec(spec), name="t")
        assert rebuilt.fingerprint == Fleet(trio_sfs, name="t").fingerprint

    def test_spec_survives_json(self, trio_sfs):
        import json

        spec = fleet_spec_from_speed_functions(trio_sfs)
        wired = json.loads(json.dumps(spec))
        rebuilt = Fleet(speed_functions_from_fleet_spec(wired))
        assert rebuilt.fingerprint == Fleet(trio_sfs).fingerprint

"""PlanningService: batching, correctness, backpressure, drain, dispatch.

These tests drive the transport-agnostic service directly on a private
event loop — no sockets — which is exactly how the TCP/HTTP listeners
use it.  The acceptance-critical behaviours live here: concurrent plans
coalesce into one batch, overload sheds with ``overloaded`` (and nothing
below the admission limit is dropped), and drain answers every admitted
request before shutting the pool down.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import Fleet, Planner
from repro.serve.protocol import ProtocolError
from repro.serve.service import PlanningService, ServeConfig
from tests.serve.conftest import eventually


def run_service(coro_fn, config=None):
    """Start a service, run ``coro_fn(service)``, always drain."""

    async def main():
        service = PlanningService(
            config or ServeConfig(shards=1, batch_window=0.005, queue_depth=8)
        )
        await service.start()
        try:
            return await coro_fn(service)
        finally:
            await service.drain()

    return asyncio.run(main())


class TestPlanning:
    def test_plan_matches_direct_planner_bit_for_bit(self, trio_sfs):
        fleet = Fleet(trio_sfs, name="trio")
        want = Planner(fleet).plan(250_000)

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            assert info["fingerprint"] == fleet.fingerprint
            return await service.plan(info["fingerprint"], 250_000)

        got = run_service(scenario)
        assert got["ok"]
        assert got["makespan"] == float(want.makespan)
        assert got["allocation"] == [int(x) for x in want.allocation]

    def test_concurrent_plans_coalesce_into_one_batch(self, trio_sfs):
        sizes = [10_000, 20_000, 30_000, 40_000]

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            results = await asyncio.gather(
                *(service.plan(info["fingerprint"], n) for n in sizes)
            )
            return results, await service.stats()

        results, stats = run_service(scenario)
        assert all(r["ok"] for r in results)
        assert [r["n"] for r in results] == sizes
        assert stats["batches"] == 1  # one flush answered all four
        assert stats["shed"] == 0

    def test_batch_reaching_max_batch_flushes_early(self, trio_sfs):
        config = ServeConfig(shards=1, batch_window=30.0, max_batch=3, queue_depth=8)

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            # The 30 s window would stall the test; the max_batch=3
            # early flush is the only way these can complete quickly.
            return await asyncio.wait_for(
                asyncio.gather(
                    *(service.plan(info["fingerprint"], n) for n in (100, 200, 300))
                ),
                timeout=20,
            )

        results = run_service(scenario, config)
        assert all(r["ok"] for r in results)

    def test_plan_many_bypasses_the_window(self, trio_sfs):
        config = ServeConfig(shards=1, batch_window=30.0, queue_depth=8)

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            return await asyncio.wait_for(
                service.plan_many(info["fingerprint"], [100, 200]), timeout=20
            )

        results = run_service(scenario, config)
        assert all(r["ok"] for r in results)

    def test_unknown_fleet_and_registration_idempotence(self, trio_sfs):
        async def scenario(service):
            missing = await service.plan("no-such-fp", 100)
            first = await service.register_fleet(trio_sfs, name="trio")
            second = await service.register_fleet(trio_sfs, name="trio")
            return missing, first, second

        missing, first, second = run_service(scenario)
        assert missing["code"] == "unknown_fleet"
        assert first == second  # same spec: idempotent, no rebuild


async def _wait_past_queued_deadline(service, timeout_s: float) -> None:
    """Deadline sync without fixed sleeps: wait until the in-flight plan
    is queued behind the gated worker, then poll the loop clock past its
    deadline.  The deadline clock started *before* we observed the job in
    the queue, so once ``timeout_s`` elapses from that observation the
    request is guaranteed expired."""
    loop = asyncio.get_running_loop()
    # health() reads queue depths without a worker round-trip (stats()
    # would block behind the gated worker).
    await eventually(
        lambda: sum(service.health()["queue_depths"]) >= 1,
        message="the plan request was never queued",
    )
    observed = loop.time()
    await eventually(lambda: loop.time() >= observed + timeout_s + 0.02)


class TestBackpressure:
    def test_overload_sheds_and_below_limit_nothing_drops(self, trio_sfs, worker_gate):
        depth, extra = 3, 4
        config = ServeConfig(shards=1, batch_window=0.0, queue_depth=depth)

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            fp = info["fingerprint"]
            service.pool.register(worker_gate.spec(), "gate-key")
            assert worker_gate.entered.wait(timeout=10)
            # Each plan_many is one job; the worker is busy, so exactly
            # queue_depth jobs are admitted and the rest shed.
            tasks = [
                asyncio.ensure_future(service.plan_many(fp, [1000 + k]))
                for k in range(depth + extra)
            ]

            # The shed counter is loop-local (stats() itself would block
            # behind the gated worker), so poll it directly.
            await eventually(
                lambda: int(service._shed.value) == extra,
                message="overflow requests were never shed",
            )
            worker_gate.release()
            results = [items[0] for items in await asyncio.gather(*tasks)]
            return results, await service.stats()

        results, stats = run_service(scenario, config)
        shed = [r for r in results if not r["ok"]]
        served = [r for r in results if r["ok"]]
        assert len(served) == depth  # zero drops below the admission limit
        assert len(shed) == extra
        assert {r["code"] for r in shed} == {"overloaded"}
        assert stats["shed"] == extra

    def test_deadline_expires_in_the_backlog(self, trio_sfs, worker_gate):
        config = ServeConfig(shards=1, batch_window=0.0, queue_depth=8)

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            service.pool.register(worker_gate.spec(), "gate-key")
            assert worker_gate.entered.wait(timeout=10)
            task = asyncio.ensure_future(
                service.plan(info["fingerprint"], 1000, timeout_ms=30)
            )
            await _wait_past_queued_deadline(service, 0.030)
            worker_gate.release()
            return await task

        result = run_service(scenario, config)
        assert result["code"] == "deadline_exceeded"

    def test_default_timeout_applies_when_request_has_none(self, trio_sfs, worker_gate):
        config = ServeConfig(
            shards=1, batch_window=0.0, queue_depth=8, default_timeout_ms=30
        )

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            service.pool.register(worker_gate.spec(), "gate-key")
            assert worker_gate.entered.wait(timeout=10)
            task = asyncio.ensure_future(service.plan(info["fingerprint"], 1000))
            await _wait_past_queued_deadline(service, 0.030)
            worker_gate.release()
            return await task

        assert run_service(scenario, config)["code"] == "deadline_exceeded"


class TestDrain:
    def test_drain_answers_open_windows_then_refuses(self, trio_sfs):
        config = ServeConfig(shards=1, batch_window=30.0, queue_depth=8)

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            fp = info["fingerprint"]
            # These sit in the 30 s batching window; only drain's flush
            # can answer them in time.
            tasks = [asyncio.ensure_future(service.plan(fp, n)) for n in (100, 200)]
            await eventually(
                lambda: len(service._batches) >= 1,
                message="requests never reached the batching window",
            )
            await service.drain()
            answered = await asyncio.wait_for(asyncio.gather(*tasks), timeout=20)
            after = await service.plan(fp, 300)
            with pytest.raises(ProtocolError) as err:
                await service.register_fleet(trio_sfs, name="again")
            return answered, after, err.value.code, service.health()

        answered, after, register_code, health = run_service(scenario, config)
        assert all(r["ok"] for r in answered)  # admitted work was served
        assert after["code"] == "shutting_down"
        assert register_code == "shutting_down"
        assert health["status"] == "draining"


class TestDispatchEnvelope:
    def test_handle_round_trips_every_op(self, trio_sfs, trio_spec):
        async def scenario(service):
            reg = await service.handle(
                {"v": 1, "id": 1, "op": "register_fleet", "name": "trio",
                 "speed_functions": trio_spec["speed_functions"]}
            )
            fp = reg["result"]["fingerprint"]
            plan = await service.handle(
                {"v": 1, "id": 2, "op": "plan", "fleet": fp, "n": 1000}
            )
            many = await service.handle(
                {"v": 1, "id": 3, "op": "plan_many", "fleet": fp,
                 "ns": [100, 10**15]}
            )
            health = await service.handle({"v": 1, "id": 4, "op": "health"})
            stats = await service.handle({"v": 1, "id": 5, "op": "stats"})
            return reg, plan, many, health, stats

        reg, plan, many, health, stats = run_service(scenario)
        assert reg["ok"] and reg["id"] == 1
        assert reg["result"]["fingerprint"] == Fleet(trio_sfs, name="trio").fingerprint
        assert plan["ok"] and plan["result"]["n"] == 1000
        ok_item, bad_item = many["result"]["results"]
        assert many["ok"]  # envelope ok; verdicts are per item
        assert ok_item["ok"]
        assert bad_item["code"] == "infeasible"
        assert health["result"]["status"] == "ok"
        assert reg["result"]["fingerprint"] in stats["result"]["fleets"]

    def test_handle_never_raises_on_garbage(self):
        async def scenario(service):
            return (
                await service.handle("not a frame"),
                await service.handle({"v": 99, "op": "plan"}),
                await service.handle({"v": 1, "op": "warp"}),
                await service.handle({"v": 1, "op": "plan", "fleet": "fp"}),
            )

        not_obj, bad_v, bad_op, bad_fields = run_service(scenario)
        assert not_obj["error"]["code"] == "invalid_request"
        assert bad_v["error"]["code"] == "unsupported_version"
        assert bad_op["error"]["code"] == "unknown_op"
        assert bad_fields["error"]["code"] == "invalid_request"

    def test_request_metrics_flow_to_the_registry(self, trio_sfs, serve_obs):
        serve_obs.enable()

        async def scenario(service):
            info = await service.register_fleet(trio_sfs, name="trio")
            await service.handle(
                {"v": 1, "id": 1, "op": "plan", "fleet": info["fingerprint"], "n": 10}
            )
            await service.handle({"v": 1, "id": 2, "op": "bogus"})

        run_service(scenario)
        text = serve_obs.to_prometheus()
        assert 'serve_request_seconds_count{op="plan"} 1' in text
        assert 'serve_request_seconds_count{op="invalid"} 1' in text
        assert "serve_requests_total 2" in text
        assert 'serve_responses_total{status="ok"} 1' in text
        assert 'serve_responses_total{status="error"} 1' in text

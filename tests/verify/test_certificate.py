"""The certificate checker: catches tampered plans, passes optimal ones."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import partition
from repro.core.bisection import partition_bisection
from repro.core.speed_function import ConstantSpeedFunction
from repro.planner import Fleet
from repro.verify import check_allocation, check_certificate
from tests.conftest import make_pwl


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    try:
        yield
    finally:
        obs.set_registry(previous)


@pytest.fixture
def trio():
    return [make_pwl(100.0), make_pwl(220.0), make_pwl(320.0, scale=1.5)]


def _checks(report):
    return {v.check for v in report.violations}


class TestOptimalPlansPass:
    def test_bisection_plan_is_certified(self, trio):
        result = partition_bisection(1_000_000, trio)
        report = check_certificate(result, trio)
        assert report.ok, report.summary()
        assert report.n == 1_000_000 and report.p == 3

    def test_every_algorithm_is_certified(self, trio):
        for algorithm in ("bisection", "modified", "combined", "exact"):
            result = partition(750_000, trio, algorithm=algorithm)
            report = check_certificate(result, trio)
            assert report.ok, f"{algorithm}: {report.summary()}"

    def test_accepts_a_fleet_object(self, trio):
        fleet = Fleet(trio, name="cert-trio")
        result = partition_bisection(500_000, trio)
        assert check_certificate(result, fleet).ok

    def test_zero_elements(self, trio):
        result = partition_bisection(0, trio)
        report = check_certificate(result, trio)
        assert report.ok and report.n == 0


class TestViolationsAreCaught:
    def test_conservation(self, trio):
        result = partition_bisection(100_000, trio)
        bad = result.allocation.copy()
        bad[0] += 7
        report = check_allocation(bad, trio, n=100_000)
        assert "conservation" in _checks(report)

    def test_wrong_reported_makespan(self, trio):
        result = partition_bisection(100_000, trio)
        report = check_allocation(
            result.allocation, trio, n=100_000, makespan=result.makespan * 2.0
        )
        assert "makespan" in _checks(report)

    def test_memory_bound(self, trio):
        cap = int(trio[0].max_size)
        report = check_allocation(
            [cap + 10, 0, 0], trio, n=cap + 10, check_optimality=False
        )
        assert "bounds" in _checks(report)
        assert report.violations[0].processor == 0

    def test_negative_entry(self, trio):
        report = check_allocation([-1, 50, 51], trio, n=100)
        assert "integral" in _checks(report)

    def test_wrong_shape(self, trio):
        report = check_allocation([10, 20], trio, n=30)
        assert "shape" in _checks(report)

    def test_suboptimal_split_is_flagged(self):
        pair = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(1.0)]
        report = check_allocation([7, 3], pair, n=10)
        assert not report.ok
        # Lopsided constants fail the exchange scan, the ray window and
        # the packing bound all at once.
        assert {"exchange", "ray", "optimality"} & _checks(report)

    def test_check_optimality_false_accepts_suboptimal(self):
        pair = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(1.0)]
        report = check_allocation([7, 3], pair, n=10, check_optimality=False)
        assert report.ok

    def test_machine_readable_dict(self, trio):
        report = check_allocation([1, 2], trio, n=3)
        doc = report.as_dict()
        assert doc["ok"] is False
        assert doc["violations"][0]["check"] == "shape"


class TestObservability:
    def test_counters_increment(self, trio):
        registry = obs.get_registry()
        cases = registry.counter("verify.cases", labels={"layer": "certificate"})
        before = cases.value
        result = partition_bisection(10_000, trio)
        check_certificate(result, trio)
        check_allocation([5, 5], trio[:2], n=11)  # conservation violation
        assert cases.value == before + 2
        bad = registry.counter("verify.violations", labels={"check": "conservation"})
        assert bad.value >= 1

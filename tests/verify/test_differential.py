"""The differential conformance engine: seeded, replayable, bug-free runs."""

from __future__ import annotations

import pytest

from repro import obs
from repro.verify import generate_case, replay_command, run_differential
from repro.verify.differential import Disagreement


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    try:
        yield
    finally:
        obs.set_registry(previous)


class TestCaseGeneration:
    def test_pure_function_of_seed_and_index(self):
        a = generate_case(17, 4)
        b = generate_case(17, 4)
        assert a.describe() == b.describe()
        assert a.sizes == b.sizes
        assert a.bounds == b.bounds

    def test_different_indices_differ(self):
        descriptions = {generate_case(17, k).describe() for k in range(8)}
        assert len(descriptions) > 1

    def test_covers_empty_and_tiny_problems(self):
        sizes = [n for k in range(40) for n in generate_case(0, k).sizes]
        assert any(n <= 1 for n in sizes)
        assert any(n < 0 for n in sizes)  # negative-n error paths
        assert any(n > 100_000 for n in sizes)


class TestSweep:
    def test_small_sweep_finds_no_bugs(self):
        report = run_differential(cases=12, seed=3, include_service=False)
        assert report.cases == 12
        assert report.solves > 50
        assert report.comparisons > 50
        assert not report.bugs, [d.line() for d in report.bugs]

    def test_sweep_with_served_plans(self):
        report = run_differential(cases=4, seed=11, include_service=True)
        assert not report.bugs, [d.line() for d in report.bugs]
        assert "differential" in report.summary()

    def test_single_case_replay(self):
        report = run_differential(cases=200, seed=3, only_case=7)
        assert report.cases == 1
        assert not report.bugs

    def test_counter_increments(self):
        run_differential(cases=3, seed=5, include_service=False)
        counter = obs.get_registry().counter(
            "verify.cases", labels={"layer": "differential"}
        )
        assert counter.value == 3


class TestReplayLines:
    def test_replay_command_format(self):
        assert replay_command(9, 31) == (
            "python -m repro verify --seed 9 --only-case 31"
        )

    def test_disagreement_line_carries_replay(self):
        d = Disagreement(
            seed=2, case=5, n=100, kind="allocation", severity="bug",
            detail="x",
        )
        assert "--seed 2" in d.line()
        assert "--only-case 5" in d.line()

"""Protocol fuzzing and adapt chaos: seeded, deterministic, clean runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.verify import fuzz_adapt, fuzz_protocol
from repro.verify.fuzz import FuzzFailure, _mutate_tcp


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    try:
        yield
    finally:
        obs.set_registry(previous)


class TestProtocolFuzz:
    def test_mutations_never_break_the_server(self):
        report = fuzz_protocol(frames=60, seed=1)
        assert report.cases == 60
        assert report.ok, [f.line() for f in report.failures]

    def test_single_frame_replay(self):
        report = fuzz_protocol(frames=500, seed=1, only_frame=17)
        assert report.cases == 1
        assert report.ok, [f.line() for f in report.failures]

    def test_mutations_are_deterministic(self):
        frame = {"v": 1, "id": 1, "op": "plan", "fleet": "fp", "n": 10}
        for k in range(12):
            a = _mutate_tcp(frame, np.random.default_rng([3, 0xF00D, k]))
            b = _mutate_tcp(frame, np.random.default_rng([3, 0xF00D, k]))
            assert a == b

    def test_counter_increments(self):
        fuzz_protocol(frames=8, seed=2)
        counter = obs.get_registry().counter(
            "verify.cases", labels={"layer": "fuzz.protocol"}
        )
        assert counter.value == 1  # one sweep recorded


class TestAdaptChaos:
    def test_random_fault_scripts_hold_invariants(self):
        report = fuzz_adapt(runs=3, seed=1)
        assert report.cases == 3
        assert report.ok, [f.line() for f in report.failures]

    def test_single_run_replay(self):
        report = fuzz_adapt(runs=6, seed=1, only_run=2)
        assert report.cases == 1
        assert report.ok, [f.line() for f in report.failures]


class TestFailureReporting:
    def test_protocol_replay_flag(self):
        f = FuzzFailure("hang", 12, 7, "no answer", "protocol")
        assert f.replay == "python -m repro verify --seed 7 --only-frame 12"

    def test_adapt_replay_flag(self):
        f = FuzzFailure("recovery", 3, 7, "stuck", "adapt")
        assert f.replay == "python -m repro verify --seed 7 --only-run 3"
        assert "--only-run 3" in f.line()

"""Tests for the real process-parallel LU factorisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, ConstantSpeedFunction
from repro.kernels import GroupBlockDistribution, variable_group_block
from repro.runtime import EmulatedCluster, run_parallel_lu


def dominant(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a[np.arange(n), np.arange(n)] += n
    return a


def reconstruct(lu: np.ndarray) -> np.ndarray:
    n = lu.shape[0]
    return (np.tril(lu, -1) + np.eye(n)) @ np.triu(lu)


@pytest.fixture(scope="module")
def cluster():
    with EmulatedCluster([1, 2, 3]) as c:
        yield c


class TestRunParallelLU:
    def test_factorisation_exact(self, cluster):
        n, b = 160, 32
        a = dominant(n)
        dist = variable_group_block(
            n, b, [ConstantSpeedFunction(s) for s in (3.0, 2.0, 1.0)]
        )
        res = run_parallel_lu(cluster, a, dist)
        assert np.max(np.abs(reconstruct(res.lu) - a)) < 1e-9

    def test_matches_serial_blocked_lu(self, cluster):
        from repro.kernels import lu_factor

        n, b = 128, 32
        a = dominant(n, seed=3)
        dist = variable_group_block(
            n, b, [ConstantSpeedFunction(s) for s in (1.0, 1.0, 1.0)]
        )
        res = run_parallel_lu(cluster, a, dist)
        serial, piv = lu_factor(a, block=b)
        # Diagonal dominance makes partial pivoting a no-op: identical LU.
        assert np.all(piv == np.arange(n))
        np.testing.assert_allclose(res.lu, serial, atol=1e-9)

    def test_step_accounting(self, cluster):
        n, b = 96, 32
        a = dominant(n, seed=5)
        dist = variable_group_block(
            n, b, [ConstantSpeedFunction(s) for s in (2.0, 1.0, 1.0)]
        )
        res = run_parallel_lu(cluster, a, dist)
        assert len(res.step_seconds) == dist.num_blocks
        assert res.total_seconds == pytest.approx(sum(res.step_seconds))
        assert res.worker_update_seconds.shape == (3,)

    def test_partial_last_block(self, cluster):
        n, b = 100, 32  # 4 blocks, last of width 4
        a = dominant(n, seed=7)
        dist = variable_group_block(
            n, b, [ConstantSpeedFunction(s) for s in (1.0, 2.0, 1.5)]
        )
        res = run_parallel_lu(cluster, a, dist)
        assert np.max(np.abs(reconstruct(res.lu) - a)) < 1e-9

    def test_single_owner_distribution(self, cluster):
        n, b = 64, 32
        a = dominant(n, seed=9)
        dist = GroupBlockDistribution(
            n=n, b=b, groups=[np.zeros(2, dtype=np.int64)]
        )
        res = run_parallel_lu(cluster, a, dist)
        assert np.max(np.abs(reconstruct(res.lu) - a)) < 1e-9
        # Workers 1 and 2 never updated anything.
        assert res.worker_update_seconds[1] == 0.0
        assert res.worker_update_seconds[2] == 0.0

    def test_rejects_non_square(self, cluster):
        dist = variable_group_block(64, 32, [ConstantSpeedFunction(1.0)] * 3)
        with pytest.raises(ConfigurationError):
            run_parallel_lu(cluster, np.ones((64, 32)), dist)

    def test_rejects_dimension_mismatch(self, cluster):
        dist = variable_group_block(64, 32, [ConstantSpeedFunction(1.0)] * 3)
        with pytest.raises(ConfigurationError):
            run_parallel_lu(cluster, dominant(96), dist)

    def test_rejects_too_many_processors(self, cluster):
        dist = variable_group_block(64, 32, [ConstantSpeedFunction(1.0)] * 5)
        if int(dist.block_owners.max()) >= 3:
            with pytest.raises(ConfigurationError):
                run_parallel_lu(cluster, dominant(64), dist)

"""Tests for the emulated heterogeneous cluster runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError
from repro.runtime import EmulatedCluster, StripedRunResult
from repro.runtime.tasks import arrayops_task, benchmark_task, mm_stripe_task


@pytest.fixture(scope="module")
def cluster():
    with EmulatedCluster([1, 2]) as c:
        yield c


class TestTasks:
    def test_mm_stripe_correct(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 12))
        b = rng.standard_normal((10, 12))
        out, seconds = mm_stripe_task(a, b, repetitions=3)
        np.testing.assert_allclose(out, a @ b.T, atol=1e-12)
        assert seconds > 0

    def test_mm_stripe_rejects_bad_reps(self):
        a = np.ones((2, 2))
        with pytest.raises(ConfigurationError):
            mm_stripe_task(a, a, repetitions=0)

    def test_arrayops_task(self):
        data = np.ones(16)
        out, seconds = arrayops_task(data, repetitions=1)
        expected = (data * 1.000001 + 0.5) ** 2 + data
        np.testing.assert_allclose(out, expected)
        assert seconds >= 0

    def test_benchmark_task_positive(self):
        assert benchmark_task(32, repetitions=1, repeats=1) > 0

    def test_benchmark_task_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            benchmark_task(1, repetitions=1)


class TestEmulatedCluster:
    def test_size_and_factors(self, cluster):
        assert cluster.size == 2
        assert cluster.repetitions == (1, 2)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            EmulatedCluster([])

    def test_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            EmulatedCluster([1, 0])

    def test_benchmark_runs_in_worker(self, cluster):
        speed = cluster.benchmark(0, 48, repeats=1)
        assert speed > 0

    def test_benchmark_bad_machine(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.benchmark(5, 32)

    def test_inflated_machine_slower(self, cluster):
        # Timing-based but with a 2x designed gap and best-of-3: the
        # inflated machine should measure clearly slower.
        fast = cluster.benchmark(0, 256, repeats=3)
        slow = cluster.benchmark(1, 256, repeats=3)
        assert slow < fast * 0.9

    def test_striped_matmul_correct(self, cluster):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((40, 24))
        b = rng.standard_normal((30, 24))
        run = cluster.run_striped_matmul(a, b, [25, 15])
        assert isinstance(run, StripedRunResult)
        np.testing.assert_allclose(run.result, a @ b.T, atol=1e-10)
        assert run.worker_seconds.shape == (2,)
        assert run.makespan > 0

    def test_striped_matmul_empty_stripe(self, cluster):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((10, 6))
        b = rng.standard_normal((8, 6))
        run = cluster.run_striped_matmul(a, b, [10, 0])
        np.testing.assert_allclose(run.result, a @ b.T, atol=1e-10)
        assert run.worker_seconds[1] == 0.0

    def test_striped_matmul_validates_rows(self, cluster):
        a = np.ones((10, 4))
        with pytest.raises(ConfigurationError):
            cluster.run_striped_matmul(a, a, [4, 4])
        with pytest.raises(ConfigurationError):
            cluster.run_striped_matmul(a, a, [10])

    def test_build_models_valid_functions(self, cluster):
        models = cluster.build_models(a_dim=16, b_dim=96)
        assert len(models) == 2
        for m in models:
            m.function.check_single_intersection()
            assert m.function.max_size == pytest.approx(96 * 96)

    def test_shutdown_idempotent(self):
        c = EmulatedCluster([1])
        c.shutdown()
        c.shutdown()
        with pytest.raises(ConfigurationError):
            c.benchmark(0, 16)

    def test_imbalance_metric(self):
        run = StripedRunResult(np.zeros((0, 1)), np.array([2.0, 1.0, 0.0]))
        assert run.imbalance == pytest.approx(2.0 / 1.5)
        assert run.makespan == 2.0

"""Fault injection, retry, and dropout recovery on the emulated cluster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapt import (
    CommFault,
    Dropout,
    FaultScript,
    InjectedCommError,
    RetryExhaustedError,
    RetryPolicy,
)
from repro.exceptions import InfeasiblePartitionError
from repro.kernels.group_block import variable_group_block
from repro.runtime import EmulatedCluster
from repro.runtime.lu_parallel import run_parallel_lu
from repro.runtime.tasks import benchmark_task

from ..adapt.conftest import make_pwl

FAST_RETRY = RetryPolicy(retries=2, base_delay=0.01, timeout=60.0)


@pytest.fixture
def mats():
    rng = np.random.default_rng(42)
    a = rng.standard_normal((9, 12))
    b = rng.standard_normal((10, 12))
    return a, b


def test_dispatch_retries_a_transient_comm_fault():
    script = FaultScript(events=(CommFault(machine=0, failures=1),))
    with EmulatedCluster([1], faults=script, retry=FAST_RETRY) as cluster:
        speed = cluster.dispatch(0, benchmark_task, 32, 1, 1)
        assert speed > 0
        assert cluster.fault_injector.dispatches(0) == 2


def test_dispatch_without_retry_propagates_the_fault():
    script = FaultScript(events=(CommFault(machine=0, failures=1),))
    with EmulatedCluster([1], faults=script) as cluster:
        with pytest.raises(InjectedCommError):
            cluster.dispatch(0, benchmark_task, 32, 1, 1)


def test_dispatch_exhaustion_raises_retry_exhausted():
    script = FaultScript(events=(Dropout(machine=0),))
    with EmulatedCluster([1], faults=script, retry=FAST_RETRY) as cluster:
        with pytest.raises(RetryExhaustedError) as exc_info:
            cluster.dispatch(0, benchmark_task, 32, 1, 1)
        assert exc_info.value.attempts == 3


def test_striped_run_survives_a_transient_comm_fault(mats):
    a, b = mats
    script = FaultScript(events=(CommFault(machine=1, failures=1),))
    with EmulatedCluster([1, 1, 1], faults=script, retry=FAST_RETRY) as cluster:
        out = cluster.run_striped_matmul(a, b, [3, 3, 3])
    np.testing.assert_allclose(out.result, a @ b.T, atol=1e-10)


def test_striped_run_redistributes_a_dead_machine(mats):
    a, b = mats
    models = [make_pwl(800.0), make_pwl(400.0), make_pwl(200.0)]
    script = FaultScript(events=(Dropout(machine=2),))
    with EmulatedCluster([1, 1, 1], faults=script, retry=FAST_RETRY) as cluster:
        out = cluster.run_striped_matmul(
            a, b, [3, 3, 3], recovery_models=models
        )
    np.testing.assert_allclose(out.result, a @ b.T, atol=1e-10)
    # The dead machine never produced a stripe; survivors absorbed it.
    assert out.worker_seconds[2] == 0.0
    assert out.worker_seconds[[0, 1]].sum() > 0


def test_striped_run_without_recovery_models_fails_permanently(mats):
    a, b = mats
    script = FaultScript(events=(Dropout(machine=0),))
    with EmulatedCluster([1, 1, 1], faults=script, retry=FAST_RETRY) as cluster:
        with pytest.raises(InfeasiblePartitionError):
            cluster.run_striped_matmul(a, b, [3, 3, 3])


def test_parallel_lu_retries_transient_comm_faults():
    n, blk = 24, 4
    rng = np.random.default_rng(7)
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    models = [make_pwl(400.0), make_pwl(200.0)]
    dist = variable_group_block(n, blk, models)
    script = FaultScript(events=(CommFault(machine=1, failures=1, at_dispatch=2),))
    with EmulatedCluster([1, 1], faults=script, retry=FAST_RETRY) as cluster:
        out = run_parallel_lu(cluster, a, dist)
    lower = np.tril(out.lu, -1) + np.eye(n)
    upper = np.triu(out.lu)
    np.testing.assert_allclose(lower @ upper, a, atol=1e-8 * n)

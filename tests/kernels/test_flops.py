"""Tests for flop and element accounting."""

from __future__ import annotations

import pytest

from repro import ConfigurationError
from repro.kernels import (
    LU_MF,
    MM_MF,
    arrayops_flops,
    lu_elements,
    lu_flops,
    lu_flops_rect,
    mflops,
    mm_elements,
    mm_flops,
    mm_flops_rect,
    mm_slice_flops,
)


class TestMMAccounting:
    def test_mm_flops(self):
        assert mm_flops(100) == 2 * 100**3
        assert MM_MF == 2.0

    def test_mm_elements(self):
        assert mm_elements(100) == 3 * 100 * 100

    def test_rect_reduces_to_square(self):
        assert mm_flops_rect(64, 64) == mm_flops(64)

    def test_rect_formula(self):
        assert mm_flops_rect(10, 40) == 2 * 100 * 40

    def test_slice_flops_linear_in_elements(self):
        n = 1000
        assert mm_slice_flops(3 * 5 * n, n) == pytest.approx(2 * 5 * n**2)
        assert mm_slice_flops(0, n) == 0.0

    def test_slice_flops_total_consistency(self):
        # Summing all stripes' flops recovers the full product cost.
        n = 128
        assert mm_slice_flops(mm_elements(n), n) == pytest.approx(mm_flops(n))

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            mm_flops(0)
        with pytest.raises(ConfigurationError):
            mm_slice_flops(-1, 10)


class TestLUAccounting:
    def test_lu_flops(self):
        assert lu_flops(30) == pytest.approx((2 / 3) * 30**3)
        assert LU_MF == pytest.approx(2 / 3)

    def test_lu_elements(self):
        assert lu_elements(30) == 900

    def test_rect_reduces_to_square(self):
        assert lu_flops_rect(50, 50) == pytest.approx(lu_flops(50))

    def test_rect_transpose_symmetric(self):
        assert lu_flops_rect(100, 30) == lu_flops_rect(30, 100)

    def test_rect_formula(self):
        assert lu_flops_rect(100, 30) == pytest.approx(30**2 * (100 - 10))


class TestMisc:
    def test_arrayops_flops(self):
        assert arrayops_flops(1000) == 4000.0
        assert arrayops_flops(1000, passes=2) == 2000.0

    def test_mflops(self):
        assert mflops(2e9, 2.0) == pytest.approx(1000.0)

    def test_mflops_rejects_bad_time(self):
        with pytest.raises(ConfigurationError):
            mflops(1e6, 0.0)

    def test_mflops_rejects_negative_flops(self):
        with pytest.raises(ConfigurationError):
            mflops(-1.0, 1.0)

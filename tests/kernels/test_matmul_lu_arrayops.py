"""Correctness tests for the real NumPy kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError
from repro.kernels import (
    apply_pivots,
    array_ops,
    lu_factor,
    lu_reconstruct,
    matmul_abt,
    matmul_blocked,
    matmul_poor,
    matmul_reference,
)


@pytest.fixture
def rng():
    return np.random.default_rng(13)


class TestMatmulKernels:
    @pytest.mark.parametrize("shape", [(5, 7, 6), (32, 32, 32), (65, 33, 17)])
    def test_blocked_matches_reference(self, rng, shape):
        m, k, n = shape
        a, b = rng.standard_normal((m, k)), rng.standard_normal((k, n))
        np.testing.assert_allclose(
            matmul_blocked(a, b, block=16), a @ b, atol=1e-10
        )

    def test_blocked_block_larger_than_matrix(self, rng):
        a, b = rng.standard_normal((5, 5)), rng.standard_normal((5, 5))
        np.testing.assert_allclose(matmul_blocked(a, b, block=64), a @ b, atol=1e-12)

    @pytest.mark.parametrize("shape", [(4, 6, 5), (20, 10, 30)])
    def test_poor_matches_reference(self, rng, shape):
        m, k, n = shape
        a, b = rng.standard_normal((m, k)), rng.standard_normal((k, n))
        np.testing.assert_allclose(matmul_poor(a, b), a @ b, atol=1e-10)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ConfigurationError):
            matmul_reference(rng.standard_normal((3, 4)), rng.standard_normal((3, 4)))

    def test_blocked_rejects_bad_block(self, rng):
        a = rng.standard_normal((4, 4))
        with pytest.raises(ConfigurationError):
            matmul_blocked(a, a, block=0)

    @pytest.mark.parametrize("kernel", ["reference", "blocked", "poor"])
    def test_abt_all_kernels(self, rng, kernel):
        a = rng.standard_normal((12, 9))
        b = rng.standard_normal((15, 9))
        np.testing.assert_allclose(
            matmul_abt(a, b, kernel=kernel), a @ b.T, atol=1e-10
        )

    def test_abt_shape_check(self, rng):
        with pytest.raises(ConfigurationError):
            matmul_abt(rng.standard_normal((3, 4)), rng.standard_normal((3, 5)))

    def test_abt_unknown_kernel(self, rng):
        a = rng.standard_normal((3, 4))
        with pytest.raises(ConfigurationError):
            matmul_abt(a, a, kernel="warp")


class TestLUFactor:
    @pytest.mark.parametrize("n", [1, 2, 17, 64, 130])
    def test_square_reconstruction(self, rng, n):
        a = rng.standard_normal((n, n))
        lu, piv = lu_factor(a, block=32)
        np.testing.assert_allclose(
            lu_reconstruct(lu, piv), apply_pivots(a, piv), atol=1e-9 * max(n, 10)
        )

    @pytest.mark.parametrize("shape", [(50, 20), (20, 50), (65, 64)])
    def test_rectangular_reconstruction(self, rng, shape):
        a = rng.standard_normal(shape)
        lu, piv = lu_factor(a, block=16)
        np.testing.assert_allclose(
            lu_reconstruct(lu, piv), apply_pivots(a, piv), atol=1e-9
        )

    def test_matches_scipy(self, rng):
        import scipy.linalg

        a = rng.standard_normal((40, 40))
        lu_ours, _ = lu_factor(a, block=8)
        lu_scipy, _ = scipy.linalg.lu_factor(a)
        # Same pivoting strategy (partial, by max magnitude) => same factors.
        np.testing.assert_allclose(lu_ours, lu_scipy, atol=1e-9)

    def test_pivoting_stability(self):
        # Without pivoting this matrix explodes.
        a = np.array([[1e-20, 1.0], [1.0, 1.0]])
        lu, piv = lu_factor(a)
        np.testing.assert_allclose(
            lu_reconstruct(lu, piv), apply_pivots(a, piv), atol=1e-12
        )

    def test_singular_rejected(self):
        with pytest.raises(ConfigurationError):
            lu_factor(np.zeros((3, 3)))

    def test_input_not_modified(self, rng):
        a = rng.standard_normal((10, 10))
        before = a.copy()
        lu_factor(a)
        np.testing.assert_array_equal(a, before)

    def test_rejects_bad_block(self, rng):
        with pytest.raises(ConfigurationError):
            lu_factor(rng.standard_normal((4, 4)), block=0)

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            lu_factor(np.ones(5))


class TestArrayOps:
    def test_values(self):
        a = np.array([1.0, 2.0])
        out = array_ops(a)
        expected = (a * 1.000001 + 0.5) ** 2 + a
        np.testing.assert_allclose(out, expected)

    def test_input_untouched(self):
        a = np.ones(10)
        array_ops(a)
        np.testing.assert_array_equal(a, np.ones(10))

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            array_ops(np.ones((2, 2)))

"""Tests for the pattern-scanning kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigurationError
from repro.kernels.scan import chunk_offsets, count_pattern, scan_chunks


class TestCountPattern:
    def test_simple(self):
        assert count_pattern(b"abcabcab", b"abc") == 2
        assert count_pattern(b"abcabcab", b"ab") == 3

    def test_overlapping_matches(self):
        assert count_pattern(b"aaaa", b"aa") == 3

    def test_no_match(self):
        assert count_pattern(b"abcdef", b"xyz") == 0

    def test_pattern_longer_than_data(self):
        assert count_pattern(b"ab", b"abc") == 0

    def test_single_byte_pattern(self):
        assert count_pattern(b"banana", b"a") == 3

    def test_full_match(self):
        assert count_pattern(b"hello", b"hello") == 1

    def test_uint8_array_input(self):
        data = np.frombuffer(b"xyxyxy", dtype=np.uint8)
        assert count_pattern(data, b"xy") == 3

    def test_rejects_empty_pattern(self):
        with pytest.raises(ConfigurationError):
            count_pattern(b"abc", b"")

    def test_rejects_bad_array(self):
        with pytest.raises(ConfigurationError):
            count_pattern(np.zeros(4, dtype=np.float64), b"a")

    def test_matches_python_reference(self):
        rng = np.random.default_rng(0)
        data = bytes(rng.integers(97, 100, 5000, dtype=np.uint8))
        pattern = b"ab"
        expected = sum(
            1 for i in range(len(data) - 1) if data[i : i + 2] == pattern
        )
        assert count_pattern(data, pattern) == expected


class TestChunkOffsets:
    def test_contiguous(self):
        assert chunk_offsets(10, [3, 0, 7]) == [(0, 3), (3, 3), (3, 10)]

    def test_rejects_wrong_total(self):
        with pytest.raises(ConfigurationError):
            chunk_offsets(10, [3, 3])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            chunk_offsets(2, [3, -1])


class TestScanChunks:
    def test_total_matches_whole_buffer(self):
        data = b"aabaaabaabaa" * 11
        total, counts = scan_chunks(data, b"aab", [40, 52, 40])
        assert total == count_pattern(data, b"aab")
        assert len(counts) == 3

    def test_boundary_straddling_match_attributed_once(self):
        data = b"xxabxx"
        # "ab" straddles the 3|3 boundary start at index 2 (inside chunk 1).
        total, counts = scan_chunks(data, b"ab", [3, 3])
        assert total == 1
        assert counts == [1, 0]

    def test_empty_chunk(self):
        total, counts = scan_chunks(b"abab", b"ab", [0, 4])
        assert total == 2
        assert counts == [0, 2]

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.binary(min_size=0, max_size=300),
        pattern=st.binary(min_size=1, max_size=4),
        cut=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_chunking_invariant(self, data, pattern, cut):
        k = int(len(data) * cut)
        total, _ = scan_chunks(data, pattern, [k, len(data) - k])
        assert total == count_pattern(data, pattern)

"""Tests for the striped and Variable Group Block distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConfigurationError,
    ConstantSpeedFunction,
    InfeasiblePartitionError,
    partition,
)
from repro.kernels import (
    elements_from_rows,
    row_slices,
    rows_from_elements,
    stripe_matrix,
    variable_group_block,
)
from tests.conftest import make_pwl


class TestRowsFromElements:
    def test_exact_shares(self):
        n = 100
        alloc = [3 * 25 * n, 3 * 75 * n]
        rows = rows_from_elements(alloc, n)
        np.testing.assert_array_equal(rows, [25, 75])

    def test_sums_to_n_with_rounding(self):
        n = 100
        total = 3 * n * n
        alloc = [total // 3 + 1, total // 3, total // 3 - 1]
        rows = rows_from_elements(alloc, n)
        assert rows.sum() == n

    def test_largest_remainder_wins(self):
        n = 10
        # Shares 3.9 and 6.1 rows -> 4 and 6.
        alloc = [3 * 39, 3 * 61]
        rows = rows_from_elements(alloc, n)
        np.testing.assert_array_equal(rows, [4, 6])

    def test_rejects_wrong_total(self):
        with pytest.raises(InfeasiblePartitionError):
            rows_from_elements([10, 10], 100)

    def test_roundtrip(self):
        n = 64
        rows = np.array([10, 20, 34])
        np.testing.assert_array_equal(
            rows_from_elements(elements_from_rows(rows, n), n), rows
        )

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=500),
        weights=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8
        ),
    )
    def test_property_sum_and_fairness(self, n, weights):
        w = np.asarray(weights)
        shares = w / w.sum() * (3 * n * n)
        # Fix float drift so the total is exact.
        shares[-1] += 3 * n * n - shares.sum()
        rows = rows_from_elements(shares, n)
        assert rows.sum() == n
        assert np.all(np.abs(rows - shares / (3 * n)) <= 1.0 + 1e-9)


class TestRowSlicesAndStripes:
    def test_slices_contiguous(self):
        s = row_slices([2, 3, 0, 5])
        assert s == [slice(0, 2), slice(2, 5), slice(5, 5), slice(5, 10)]

    def test_stripe_matrix_views(self):
        a = np.arange(20).reshape(10, 2)
        stripes = stripe_matrix(a, [4, 6])
        assert np.shares_memory(stripes[0], a)  # a view, not a copy
        np.testing.assert_array_equal(np.vstack(stripes), a)

    def test_stripe_matrix_total_checked(self):
        with pytest.raises(InfeasiblePartitionError):
            stripe_matrix(np.ones((5, 2)), [2, 2])

    def test_negative_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            row_slices([2, -1])


class TestVariableGroupBlock:
    def _sfs(self):
        return [make_pwl(100.0), make_pwl(250.0), make_pwl(40.0)]

    def test_covers_all_blocks(self):
        dist = variable_group_block(576, 32, self._sfs())
        assert dist.block_owners.size == 18
        assert dist.num_blocks == 18

    def test_partial_last_block(self):
        dist = variable_group_block(100, 32, self._sfs())
        assert dist.num_blocks == 4  # ceil(100/32)
        assert dist.block_owners.size == 4

    def test_owner_ids_valid(self):
        dist = variable_group_block(576, 32, self._sfs())
        assert set(np.unique(dist.block_owners)) <= {0, 1, 2}

    def test_group_counts_proportional_to_speed(self):
        sfs = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(3.0)]
        dist = variable_group_block(640, 32, sfs)
        g0 = dist.groups[0]
        counts = np.bincount(g0, minlength=2)
        # 1:3 speed ratio -> roughly 1:3 blocks in the group.
        assert counts[1] >= 2 * counts[0]

    def test_first_group_fastest_first(self):
        sfs = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(5.0)]
        dist = variable_group_block(960, 32, sfs)
        first = dist.groups[0]
        # Fastest processor (1) owns the leading blocks.
        assert first[0] == 1

    def test_last_group_fastest_last(self):
        sfs = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(5.0)]
        dist = variable_group_block(960, 32, sfs)
        last = dist.groups[-1]
        assert last[-1] == 1  # the fastest processor keeps the final blocks

    def test_group_size_rule_constant_speeds(self):
        # Paper: g = sum(s)/min(s), doubled if g/p < 2.  For speeds (1, 3):
        # g = 4, p = 2, g/p = 2 -> kept at 4.
        sfs = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(3.0)]
        dist = variable_group_block(3200, 32, sfs)
        assert dist.group_sizes()[0] == 4

    def test_group_size_doubles_when_small(self):
        # Speeds (1, 1): g = 2, g/p = 1 < 2 -> doubled to 4.
        sfs = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(1.0)]
        dist = variable_group_block(3200, 32, sfs)
        assert dist.group_sizes()[0] == 4

    def test_counts_from_start_block(self):
        dist = variable_group_block(576, 32, self._sfs())
        p = 3
        full = dist.counts(p)
        assert full.sum() == 18
        tail = dist.counts(p, start_block=17)
        assert tail.sum() == 1

    def test_column_owner(self):
        dist = variable_group_block(576, 32, self._sfs())
        assert dist.column_owner(0) == dist.owner(0)
        assert dist.column_owner(33) == dist.owner(1)
        with pytest.raises(ConfigurationError):
            dist.column_owner(576)

    def test_owner_out_of_range(self):
        dist = variable_group_block(64, 32, self._sfs())
        with pytest.raises(ConfigurationError):
            dist.owner(99)

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            variable_group_block(0, 32, self._sfs())
        with pytest.raises(ConfigurationError):
            variable_group_block(100, 0, self._sfs())

    def test_rejects_no_processors(self):
        with pytest.raises(InfeasiblePartitionError):
            variable_group_block(100, 32, [])

    def test_paper_example_structure(self):
        # Figure 17(b): n=576, b=32, p=3, group sizes {6, 5, 7} with the
        # last group starting with the slowest processors.  We cannot match
        # the authors' machine speeds, but with a 3:2:1 speed profile the
        # structural invariants must hold: multiple groups, each group's
        # per-processor counts ordered like the speeds, reversed last group.
        sfs = [
            ConstantSpeedFunction(3.0),
            ConstantSpeedFunction(2.0),
            ConstantSpeedFunction(1.0),
        ]
        dist = variable_group_block(576, 32, sfs)
        assert len(dist.groups) >= 2
        for g in dist.groups[:-1]:
            counts = np.bincount(g, minlength=3)
            assert counts[0] >= counts[1] >= counts[2]
            # Fastest first within a non-final group.
            assert g[0] == 0
        assert dist.groups[-1][-1] == 0  # fastest processor last

    def test_functional_speeds_shift_distribution(self):
        # A processor that pages early gets fewer blocks in early (large)
        # groups than in late (small) groups.
        pager = make_pwl(300.0, scale=0.02)  # fast but tiny memory
        steady = make_pwl(100.0, scale=50.0)
        n, b = 2048, 32
        dist = variable_group_block(n, b, [pager, steady])
        first = np.bincount(dist.groups[0], minlength=2)
        last = np.bincount(dist.groups[-1], minlength=2)
        frac_first = first[0] / max(first.sum(), 1)
        frac_last = last[0] / max(last.sum(), 1)
        assert frac_last > frac_first

"""Tests for the exception hierarchy and the public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro
from repro import exceptions as exc


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in exc.__all__:
            cls = getattr(exc, name)
            if cls is exc.ReproError:
                continue
            assert issubclass(cls, exc.ReproError), name

    def test_value_error_compatibility(self):
        # Callers catching ValueError keep working for validation errors.
        assert issubclass(exc.InvalidSpeedFunctionError, ValueError)
        assert issubclass(exc.InfeasiblePartitionError, ValueError)
        assert issubclass(exc.ConfigurationError, ValueError)

    def test_runtime_error_compatibility(self):
        assert issubclass(exc.ConvergenceError, RuntimeError)
        assert issubclass(exc.MeasurementError, RuntimeError)

    def test_convergence_error_iterations(self):
        e = exc.ConvergenceError("stuck", iterations=42)
        assert e.iterations == 42
        assert "stuck" in str(e)

    def test_convergence_error_default(self):
        assert exc.ConvergenceError("x").iterations is None


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.model",
            "repro.machines",
            "repro.kernels",
            "repro.simulate",
            "repro.experiments",
            "repro.runtime",
            "repro.io",
            "repro.cli",
        ],
    )
    def test_submodule_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_py_typed_marker_shipped(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()

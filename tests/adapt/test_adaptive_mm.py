"""Adaptive striped-MM simulation: delegation, wins, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro import partition
from repro.adapt import (
    AdaptivePolicy,
    Dropout,
    FaultScript,
    LoadShift,
    simulate_striped_matmul_adaptive,
)
from repro.adapt.replanner import DISABLED
from repro.exceptions import ConfigurationError
from repro.machines.comm import CommModel
from repro.simulate.executor import simulate_striped_matmul

N = 300


@pytest.fixture
def alloc(trio):
    return partition(3 * N * N, trio).allocation


def _clean_makespan(trio, alloc):
    return simulate_striped_matmul_adaptive(N, alloc, trio, policy=DISABLED).makespan


class TestDisabledDelegation:
    def test_bit_identical_to_the_static_simulator(self, trio, alloc):
        plain = simulate_striped_matmul(N, alloc, trio)
        adaptive = simulate_striped_matmul_adaptive(N, alloc, trio, policy=DISABLED)
        assert adaptive.base is not None
        assert adaptive.makespan == plain.makespan
        assert np.array_equal(adaptive.finish_seconds, plain.compute_seconds)
        assert np.array_equal(adaptive.initial_elements, plain.elements)
        assert np.array_equal(adaptive.final_elements, plain.elements)
        assert adaptive.drifts == 0
        assert adaptive.replans == 0

    def test_delegation_carries_the_comm_model(self, trio, alloc):
        comm = CommModel.ethernet(3)
        plain = simulate_striped_matmul(N, alloc, trio, comm=comm)
        adaptive = simulate_striped_matmul_adaptive(
            N, alloc, trio, policy=DISABLED, comm=comm
        )
        assert adaptive.comm_seconds == plain.comm_seconds
        assert adaptive.makespan == plain.makespan


class TestAdaptiveWins:
    def test_beats_static_under_a_permanent_load_shift(self, trio, alloc):
        t0 = _clean_makespan(trio, alloc)
        script = FaultScript(
            events=(LoadShift(machine=0, at_time=0.2 * t0, factor=0.4),)
        )
        static = simulate_striped_matmul_adaptive(
            N, alloc, trio, policy=DISABLED, script=script, seed=3
        )
        adaptive = simulate_striped_matmul_adaptive(
            N, alloc, trio, policy=AdaptivePolicy(patience=2), script=script, seed=3
        )
        assert adaptive.drifts > 0
        assert adaptive.replans > 0
        assert adaptive.migrated_elements > 0
        assert adaptive.makespan < static.makespan

    def test_beats_static_failover_on_a_dropout(self, trio, alloc):
        t0 = _clean_makespan(trio, alloc)
        script = FaultScript(events=(Dropout(machine=1, at_time=0.25 * t0),))
        static = simulate_striped_matmul_adaptive(
            N, alloc, trio, policy=DISABLED, script=script, seed=3
        )
        adaptive = simulate_striped_matmul_adaptive(
            N, alloc, trio, policy=AdaptivePolicy(patience=2), script=script, seed=3
        )
        assert adaptive.dropouts_survived == 1
        assert static.dropouts_survived == 1
        assert adaptive.final_elements[1] == 0
        assert static.final_elements[1] == 0
        assert adaptive.makespan < static.makespan

    def test_dropout_before_start_redistributes_everything(self, trio, alloc):
        script = FaultScript(events=(Dropout(machine=2, at_time=0.0),))
        out = simulate_striped_matmul_adaptive(
            N, alloc, trio, policy=AdaptivePolicy(), script=script, seed=0
        )
        assert out.final_elements[2] == 0
        assert out.dropouts_survived == 1
        assert int(out.final_elements.sum()) >= int(alloc.sum())


class TestDeterminism:
    def test_identical_runs_are_bit_identical(self, trio, alloc):
        t0 = _clean_makespan(trio, alloc)
        script = FaultScript(
            events=(
                LoadShift(machine=0, at_time=0.2 * t0, factor=0.4),
                Dropout(machine=2, at_time=0.5 * t0),
            )
        )

        def run():
            return simulate_striped_matmul_adaptive(
                N,
                alloc,
                trio,
                policy=AdaptivePolicy(patience=2),
                script=script,
                seed=11,
                load_mean=0.1,
                load_sigma=0.05,
            )

        a, b = run(), run()
        assert a.makespan == b.makespan
        assert np.array_equal(a.final_elements, b.final_elements)
        assert np.array_equal(a.finish_seconds, b.finish_seconds)
        assert a.events == b.events
        assert a.migrated_elements == b.migrated_elements
        assert (a.drifts, a.replans) == (b.drifts, b.replans)

    def test_different_seeds_sample_different_loads(self, trio, alloc):
        def run(seed):
            return simulate_striped_matmul_adaptive(
                N, alloc, trio, policy=DISABLED, seed=seed,
                load_mean=0.2, load_sigma=0.1,
            )

        assert run(1).makespan != run(2).makespan


class TestValidation:
    def test_allocation_length_mismatch(self, trio):
        with pytest.raises(ConfigurationError):
            simulate_striped_matmul_adaptive(N, [10, 10], trio)

    def test_model_length_mismatch(self, trio, alloc):
        with pytest.raises(ConfigurationError):
            simulate_striped_matmul_adaptive(
                N, alloc, trio, model_speed_functions=trio[:2]
            )

    def test_non_positive_dt(self, trio, alloc):
        with pytest.raises(ConfigurationError):
            simulate_striped_matmul_adaptive(
                N, alloc, trio, dt=0.0, load_mean=0.1
            )


class TestBandShapeShift:
    """LoadShift(above_size=...) drifts the band *shape*, not its scale."""

    def test_shift_above_every_size_is_inert(self, trio, alloc):
        clean = _clean_makespan(trio, alloc)
        script = FaultScript(
            events=(
                LoadShift(machine=0, at_time=0.0, factor=0.3, above_size=1e12),
            )
        )
        shifted = simulate_striped_matmul_adaptive(
            N, alloc, trio, policy=DISABLED, script=script
        )
        assert shifted.makespan == clean
        assert "above size" in " ".join(shifted.events)

    def test_shift_above_tiny_size_matches_the_scalar_path(self, trio, alloc):
        """Sizes never dip below 1, so above_size=1 == the classic shift."""
        scalar = FaultScript(
            events=(LoadShift(machine=0, at_time=0.0, factor=0.3),)
        )
        banded = FaultScript(
            events=(
                LoadShift(machine=0, at_time=0.0, factor=0.3, above_size=1.0),
            )
        )
        a = simulate_striped_matmul_adaptive(
            N, alloc, trio, policy=DISABLED, script=scalar, seed=3
        )
        b = simulate_striped_matmul_adaptive(
            N, alloc, trio, policy=DISABLED, script=banded, seed=3
        )
        assert a.makespan == b.makespan
        assert np.array_equal(a.finish_seconds, b.finish_seconds)

"""DriftDetector: envelope checks, patience, EWMA factors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapt import DriftDetector, DriftEvent
from repro.core.band import SpeedBand
from repro.exceptions import ConfigurationError

from .conftest import make_pwl


def test_bare_speed_functions_are_wrapped_in_bands(trio):
    det = DriftDetector(trio, default_width=0.2)
    assert det.p == 3
    for band, sf in zip(det.bands, trio):
        assert isinstance(band, SpeedBand)
        assert band.midline is sf


def test_in_band_observation_is_not_drift(trio):
    det = DriftDetector(trio, patience=2)
    x = 1e4
    assert det.observe(0, x, float(trio[0].speed(x))) is None
    assert det.observations == 1
    assert det.outliers == 0
    assert det.streaks().tolist() == [0, 0, 0]


def test_patience_consecutive_outliers_confirm_drift(trio):
    det = DriftDetector(trio, patience=3, smoothing=1.0)
    x = 1e4
    slow = 0.4 * float(trio[1].speed(x))
    assert det.observe(1, x, slow, time=1.0) is None
    assert det.observe(1, x, slow, time=2.0) is None
    ev = det.observe(1, x, slow, time=3.0)
    assert isinstance(ev, DriftEvent)
    assert ev.machine == 1
    assert ev.time == 3.0
    assert ev.observed == pytest.approx(slow)
    assert ev.predicted == pytest.approx(float(trio[1].speed(x)))
    assert ev.factor == pytest.approx(0.4)
    assert ev.severity == pytest.approx(0.6)
    assert det.drifts == 1
    # The confirming observation resets the streak.
    assert det.streaks()[1] == 0


def test_in_band_observation_resets_the_streak(trio):
    det = DriftDetector(trio, patience=2)
    x = 1e4
    good = float(trio[0].speed(x))
    assert det.observe(0, x, 0.5 * good) is None
    assert det.streaks()[0] == 1
    assert det.observe(0, x, good) is None
    assert det.streaks()[0] == 0
    # Transient excursions shorter than patience never confirm.
    assert det.observe(0, x, 0.5 * good) is None
    assert det.drifts == 0


def test_factor_is_ewma_of_observed_over_predicted(trio):
    det = DriftDetector(trio, smoothing=0.5)
    x = 1e4
    predicted = float(trio[2].speed(x))
    det.observe(2, x, 0.5 * predicted)
    # 0.5 * 1.0 + 0.5 * 0.5
    assert det.factors()[2] == pytest.approx(0.75)
    det.observe(2, x, 0.5 * predicted)
    assert det.factors()[2] == pytest.approx(0.625)
    # Untouched machines stay at 1.0.
    assert det.factors()[0] == 1.0


def test_sizes_beyond_the_band_domain_are_clamped(trio):
    det = DriftDetector(trio, smoothing=1.0)
    sf = trio[0]
    edge = float(sf.speed(sf.max_size))
    assert det.observe(0, 10 * sf.max_size, edge) is None
    assert det.factors()[0] == pytest.approx(1.0)


def test_reset_streaks_keeps_factors(trio):
    det = DriftDetector(trio, patience=5, smoothing=1.0)
    x = 1e4
    det.observe(0, x, 0.4 * float(trio[0].speed(x)))
    assert det.streaks()[0] == 1
    det.reset_streaks()
    assert det.streaks()[0] == 0
    assert det.factors()[0] == pytest.approx(0.4)


def test_reset_clears_factors_too(trio):
    det = DriftDetector(trio, patience=5, smoothing=1.0)
    x = 1e4
    det.observe(0, x, 0.4 * float(trio[0].speed(x)))
    det.observe(1, x, 0.4 * float(trio[1].speed(x)))
    det.reset(0)
    assert det.factors()[0] == 1.0
    assert det.factors()[1] == pytest.approx(0.4)
    det.reset()
    assert np.all(det.factors() == 1.0)
    assert np.all(det.streaks() == 0)


def test_slack_widens_the_envelope():
    sf = make_pwl(100.0)
    x = 1e4
    mid = float(sf.speed(x))
    tight = DriftDetector([sf], slack=0.0, patience=1, default_width=0.1)
    loose = DriftDetector([sf], slack=0.5, patience=1, default_width=0.1)
    probe = 0.8 * mid  # outside width 0.1, inside 0.1 + 0.5 slack
    assert tight.observe(0, x, probe) is not None
    assert loose.observe(0, x, probe) is None


def test_invalid_constructions_raise():
    sf = make_pwl(100.0)
    with pytest.raises(ConfigurationError):
        DriftDetector([])
    with pytest.raises(ConfigurationError):
        DriftDetector([sf], slack=-0.1)
    with pytest.raises(ConfigurationError):
        DriftDetector([sf], patience=0)
    with pytest.raises(ConfigurationError):
        DriftDetector([sf], smoothing=0.0)
    with pytest.raises(ConfigurationError):
        DriftDetector([sf], smoothing=1.5)


def test_invalid_observations_raise(trio):
    det = DriftDetector(trio)
    with pytest.raises(ConfigurationError):
        det.observe(3, 1e4, 100.0)
    with pytest.raises(ConfigurationError):
        det.observe(0, 0.0, 100.0)
    with pytest.raises(ConfigurationError):
        det.observe(0, 1e4, -1.0)
    with pytest.raises(ConfigurationError):
        det.observe(0, 1e4, float("nan"))


def test_confirmed_drift_is_counted_on_the_adapt_metric(trio, fresh_obs):
    fresh_obs.enable()
    det = DriftDetector(trio, patience=1)
    x = 1e4
    det.observe(0, x, 0.1 * float(trio[0].speed(x)))
    reg = fresh_obs.get_registry()
    assert reg.counter("adapt.drifts").value == 1


def test_ingest_bridges_the_telemetry_sink_to_drift_events(trio, fresh_obs):
    from repro.obs import FleetTelemetrySink

    sink = FleetTelemetrySink()
    x = 1e4
    slow = 0.4 * float(trio[1].speed(x))
    # Live serving telemetry: machine 1 drifts, machine 0 stays on model,
    # and a machine this detector doesn't know (7) rides along.
    for t in range(3):
        sink.observe_step("fp", machine=1, size=x, speed=slow, time=float(t))
    sink.observe_step("fp", machine=0, size=x, speed=float(trio[0].speed(x)))
    sink.observe_step("fp", machine=7, size=x, speed=1.0)

    det = DriftDetector(trio, patience=3, smoothing=1.0)
    events = det.ingest(sink.recent_steps("fp"))

    (ev,) = events
    assert ev.machine == 1
    assert ev.time == 2.0
    assert ev.observed == pytest.approx(slow)
    assert det.observations == 4  # the unknown machine was skipped
    assert det.streaks()[0] == 0


def test_ingest_empty_and_repeat_batches(trio):
    from repro.obs.sink import StepObservation

    det = DriftDetector(trio, patience=2)
    assert det.ingest([]) == []
    x = 1e4
    slow = 0.3 * float(trio[0].speed(x))
    batch = [StepObservation(0, x, slow, 1.0)]
    assert det.ingest(batch) == []          # streak 1 of 2
    events = det.ingest(batch)              # streak 2 confirms
    assert len(events) == 1 and events[0].machine == 0


def test_ingest_accepts_unified_observations(trio, fresh_obs):
    """sink.recent() Observation records drive the same confirmations."""
    from repro.adapt import Observation
    from repro.obs import FleetTelemetrySink

    sink = FleetTelemetrySink()
    x = 1e4
    slow = 0.4 * float(trio[1].speed(x))
    for t in range(3):
        sink.observe(
            "fp", Observation(machine=1, size=x, speed=slow, timestamp=float(t))
        )

    det = DriftDetector(trio, patience=3, smoothing=1.0)
    events = det.ingest(sink.recent("fp"))
    (ev,) = events
    assert ev.machine == 1 and ev.time == 2.0


def test_ingest_skips_solve_records(trio):
    from repro.adapt import Observation

    det = DriftDetector(trio, patience=1)
    batch = [
        Observation(machine=-1, size=1e4, duration=0.25, source="solve"),
        Observation(machine=0, size=1e4, speed=float(trio[0].speed(1e4))),
    ]
    assert det.ingest(batch) == []
    assert det.observations == 1

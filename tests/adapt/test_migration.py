"""Migration plans: minimality, determinism, cost models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapt import MigrationPlan, Move, apply_migration, plan_migration
from repro.adapt.migration import EMPTY_PLAN
from repro.exceptions import ConfigurationError
from repro.machines.comm import CommModel


def test_identical_allocations_need_no_moves():
    plan = plan_migration([10, 20, 30], [10, 20, 30])
    assert plan.empty
    assert plan.total_elements == 0
    assert plan.cost_seconds == 0.0
    assert len(plan) == 0


def test_volume_is_the_information_theoretic_minimum():
    old = [50, 30, 20]
    new = [20, 45, 35]
    plan = plan_migration(old, new)
    minimum = sum(max(b - a, 0) for a, b in zip(old, new))
    assert plan.total_elements == minimum
    assert len(plan.moves) <= len(old) - 1


def test_moves_apply_back_to_the_new_allocation():
    old = np.array([50, 30, 20, 0])
    new = np.array([10, 40, 25, 25])
    plan = plan_migration(old, new)
    assert apply_migration(old, plan).tolist() == new.tolist()


def test_plan_is_deterministic():
    old, new = [70, 10, 5, 15], [25, 25, 25, 25]
    a = plan_migration(old, new)
    b = plan_migration(old, new)
    assert a == b


def test_greedy_two_cursor_matching_order():
    # Surpluses (0, 2) feed deficits (1, 3) in ascending index order.
    plan = plan_migration([30, 0, 30, 0], [10, 25, 10, 15])
    assert plan.moves == (
        Move(source=0, dest=1, elements=20),
        Move(source=2, dest=1, elements=5),
        Move(source=2, dest=3, elements=15),
    )


def test_flat_rate_cost_without_a_comm_model():
    plan = plan_migration([100, 0], [0, 100])
    # 100 elements * 8 bytes over 100 Mbit/s.
    assert plan.cost_seconds == pytest.approx(100 * 8 / (100e6 / 8))


def test_comm_model_prices_the_move_set():
    comm = CommModel.ethernet(3)
    old, new = [60, 20, 20], [20, 40, 40]
    plan = plan_migration(old, new, comm=comm)
    expected = comm.message_set(
        [(m.source, m.dest, m.elements * 8.0) for m in plan.moves]
    )
    assert plan.cost_seconds == pytest.approx(expected)


def test_conservation_and_shape_are_enforced():
    with pytest.raises(ConfigurationError):
        plan_migration([10, 10], [10, 11])
    with pytest.raises(ConfigurationError):
        plan_migration([10, 10], [10, 5, 5])
    with pytest.raises(ConfigurationError):
        plan_migration([-1, 21], [10, 10])


def test_move_validation():
    with pytest.raises(ConfigurationError):
        Move(source=1, dest=1, elements=5)
    with pytest.raises(ConfigurationError):
        Move(source=0, dest=1, elements=0)
    with pytest.raises(ConfigurationError):
        Move(source=-1, dest=1, elements=5)


def test_apply_migration_rejects_overdrawn_moves():
    plan = MigrationPlan(moves=(Move(source=0, dest=1, elements=10),), cost_seconds=0.0)
    with pytest.raises(ConfigurationError):
        apply_migration([5, 0], plan)


def test_empty_plan_constant():
    assert EMPTY_PLAN.empty
    assert apply_migration([3, 4], EMPTY_PLAN).tolist() == [3, 4]

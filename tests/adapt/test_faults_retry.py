"""Fault scripts, the dispatch-time injector, and retry with backoff."""

from __future__ import annotations

import pytest

from repro.adapt import (
    CommFault,
    Dropout,
    FaultInjector,
    FaultScript,
    InjectedCommError,
    LoadShift,
    RetryExhaustedError,
    RetryPolicy,
    call_with_retry,
)
from repro.adapt.retry import NO_RETRY
from repro.exceptions import ConfigurationError


class TestRetryPolicy:
    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(retries=5, base_delay=0.1, factor=2.0, max_delay=0.5)
        assert policy.delays() == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_no_retry_constant(self):
        assert NO_RETRY.retries == 0
        assert NO_RETRY.delays() == []
        assert NO_RETRY.timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"base_delay": -0.1},
            {"factor": 0.5},
            {"max_delay": -1.0},
            {"timeout": 0.0},
        ],
    )
    def test_invalid_policies_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestCallWithRetry:
    def test_success_needs_no_sleep(self):
        slept = []
        out = call_with_retry(
            lambda: 42, policy=RetryPolicy(retries=3), sleep=slept.append
        )
        assert out == 42
        assert slept == []

    def test_recovers_after_transient_failures(self):
        slept = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise InjectedCommError("transient")
            return "ok"

        policy = RetryPolicy(retries=3, base_delay=0.1, factor=2.0)
        out = call_with_retry(flaky, policy=policy, sleep=slept.append)
        assert out == "ok"
        assert calls["n"] == 3
        # Backoffs follow the deterministic schedule prefix.
        assert slept == [0.1, 0.2]

    def test_exhaustion_raises_with_attempt_count_and_cause(self):
        def always_fails():
            raise InjectedCommError("down")

        policy = RetryPolicy(retries=2, base_delay=0.0)
        with pytest.raises(RetryExhaustedError) as exc_info:
            call_with_retry(
                always_fails, policy=policy, description="probe", sleep=lambda _: None
            )
        err = exc_info.value
        assert err.attempts == 3  # first attempt + 2 retries
        assert isinstance(err.last, InjectedCommError)
        assert "probe" in str(err)

    def test_non_retryable_exceptions_propagate(self):
        def boom():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            call_with_retry(
                boom, policy=RetryPolicy(retries=3), sleep=lambda _: None
            )

    def test_failed_attempts_are_counted_on_the_metrics(self, fresh_obs):
        fresh_obs.enable()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise InjectedCommError("transient")
            return None

        call_with_retry(
            flaky, policy=RetryPolicy(retries=2, base_delay=0.0), sleep=lambda _: None
        )
        assert fresh_obs.get_registry().counter("adapt.retries").value == 1


class TestFaultScript:
    def test_events_are_partitioned_by_kind_and_ordered(self):
        script = FaultScript(
            events=(
                LoadShift(machine=1, at_time=5.0, factor=0.5),
                Dropout(machine=0, at_time=2.0),
                CommFault(machine=2, failures=2),
                LoadShift(machine=0, at_time=1.0, factor=0.8),
            )
        )
        assert [e.machine for e in script.dropouts()] == [0]
        assert [e.at_time for e in script.load_shifts()] == [1.0, 5.0]
        assert len(script.comm_faults()) == 1
        assert len(script) == 4

    def test_unknown_event_types_are_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultScript(events=("not-an-event",))

    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            Dropout(machine=-1)
        with pytest.raises(ConfigurationError):
            LoadShift(machine=0, at_time=1.0, factor=0.0)
        with pytest.raises(ConfigurationError):
            CommFault(machine=0, failures=0)

    def test_load_shift_above_size_validation(self):
        with pytest.raises(ConfigurationError):
            LoadShift(machine=0, at_time=1.0, factor=0.5, above_size=-1.0)

    def test_load_shift_factor_at(self):
        classic = LoadShift(machine=0, at_time=1.0, factor=0.5)
        assert classic.above_size == 0.0
        assert classic.factor_at(1.0) == 0.5
        assert classic.factor_at(1e9) == 0.5

        banded = LoadShift(machine=0, at_time=1.0, factor=2.0, above_size=5e5)
        assert banded.factor_at(4.9e5) == 1.0
        assert banded.factor_at(5e5) == 2.0
        assert banded.factor_at(1e6) == 2.0


class TestFaultInjector:
    def test_comm_fault_window(self):
        injector = FaultInjector(
            FaultScript(events=(CommFault(machine=0, failures=2, at_dispatch=1),))
        )
        injector.check_dispatch(0)  # dispatch 0: clean
        with pytest.raises(InjectedCommError):
            injector.check_dispatch(0)  # dispatch 1: faulted
        with pytest.raises(InjectedCommError):
            injector.check_dispatch(0)  # dispatch 2: faulted
        injector.check_dispatch(0)  # dispatch 3: healed
        assert injector.dispatches(0) == 4

    def test_dropout_never_heals(self):
        injector = FaultInjector(FaultScript(events=(Dropout(machine=1),)))
        injector.check_dispatch(0)
        for _ in range(3):
            with pytest.raises(InjectedCommError):
                injector.check_dispatch(1)
        assert injector.dead_machines == frozenset({1})

    def test_empty_injector_never_faults(self):
        injector = FaultInjector()
        for machine in range(4):
            injector.check_dispatch(machine)
        assert injector.dead_machines == frozenset()

    def test_accepts_a_bare_event_sequence(self):
        injector = FaultInjector([CommFault(machine=0, failures=1)])
        with pytest.raises(InjectedCommError):
            injector.check_dispatch(0)
        injector.check_dispatch(0)

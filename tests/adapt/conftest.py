"""Shared fixtures for the adaptive-execution tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.speed_function import PiecewiseLinearSpeedFunction


def make_pwl(peak: float, scale: float = 1.0) -> PiecewiseLinearSpeedFunction:
    """The standard decreasing curve (plateau, decline, paging collapse)."""
    xs = np.array([1e3, 1e4, 1e5, 5e5, 1e6, 2e6]) * scale
    ss = np.array([1.00, 0.98, 0.92, 0.70, 0.20, 0.02]) * peak
    return PiecewiseLinearSpeedFunction(xs, ss)


@pytest.fixture
def trio() -> list[PiecewiseLinearSpeedFunction]:
    """Three heterogeneous machines for the MM scenarios."""
    return [make_pwl(800.0), make_pwl(400.0), make_pwl(200.0)]


@pytest.fixture
def lu_trio() -> list[PiecewiseLinearSpeedFunction]:
    """Larger-domain trio so the LU scenarios can amortise migrations."""
    return [make_pwl(700.0, 2.0), make_pwl(420.0, 2.0), make_pwl(260.0, 2.0)]


@pytest.fixture
def fresh_obs():
    """Swap in a fresh, disabled registry + tracer; restore afterwards."""
    previous_registry = obs.set_registry(obs.MetricsRegistry())
    previous_tracer = obs.set_tracer(obs.Tracer())
    obs.disable()
    try:
        yield obs
    finally:
        obs.disable()
        obs.set_registry(previous_registry)
        obs.set_tracer(previous_tracer)

"""Replanner: fleet rescaling, the savings-versus-cost rule, dropout recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro import partition
from repro.adapt import AdaptivePolicy, Replanner
from repro.adapt.replanner import DISABLED, scale_speed_function
from repro.core.speed_function import (
    ConstantSpeedFunction,
    PiecewiseLinearSpeedFunction,
)
from repro.exceptions import ConfigurationError, InfeasiblePartitionError

from .conftest import make_pwl


class TestScaleSpeedFunction:
    def test_piecewise_is_rebuilt_exactly(self):
        sf = make_pwl(100.0)
        scaled = scale_speed_function(sf, 0.5)
        assert type(scaled) is PiecewiseLinearSpeedFunction
        assert np.array_equal(scaled.knot_sizes, sf.knot_sizes)
        assert np.array_equal(scaled.knot_speeds, sf.knot_speeds * 0.5)

    def test_constant_is_rebuilt_exactly(self):
        sf = ConstantSpeedFunction(200.0, 1e6)
        scaled = scale_speed_function(sf, 2.0)
        assert type(scaled) is ConstantSpeedFunction
        assert scaled.value == 400.0
        assert scaled.max_size == 1e6

    def test_unit_factor_returns_the_same_object(self):
        sf = make_pwl(100.0)
        assert scale_speed_function(sf, 1.0) is sf

    @pytest.mark.parametrize("factor", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_factors_raise(self, factor):
        with pytest.raises(ConfigurationError):
            scale_speed_function(make_pwl(100.0), factor)


class TestPolicy:
    def test_disabled_constant(self):
        assert DISABLED.enabled is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slack": -0.1},
            {"patience": 0},
            {"smoothing": 0.0},
            {"band_width": 1.0},
            {"min_savings_factor": -1.0},
            {"max_replans": -1},
            {"cooldown_steps": -1},
        ],
    )
    def test_invalid_policies_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptivePolicy(**kwargs)


class TestReplanner:
    def test_plan_matches_partition_of_the_scaled_fleet(self, trio):
        rp = Replanner(trio)
        factors = [0.5, 1.0, 1.0]
        scaled = rp.scaled_speed_functions(factors)
        got = rp.plan(100_000, factors)
        want = partition(100_000, scaled, algorithm="bisection")
        assert got.allocation.tolist() == want.allocation.tolist()

    def test_planners_are_cached_per_factor_regime(self, trio):
        rp = Replanner(trio)
        a = rp.planner_for([0.5, 1.0, 1.0])
        b = rp.planner_for([0.5, 1.0, 1.0])
        assert a is b
        # Sub-rounding jitter maps to the same cached planner.
        c = rp.planner_for([0.5 + 1e-9, 1.0, 1.0])
        assert c is a

    def test_planner_cache_is_bounded(self, trio):
        rp = Replanner(trio, max_fleets=1)
        a = rp.planner_for([0.5, 1.0, 1.0])
        rp.planner_for([0.25, 1.0, 1.0])  # evicts the first regime
        assert rp.planner_for([0.5, 1.0, 1.0]) is not a

    def test_mismatched_factor_count_raises(self, trio):
        rp = Replanner(trio)
        with pytest.raises(ConfigurationError):
            rp.plan(1000, [1.0, 1.0])

    def test_consider_applies_on_a_large_drift(self, trio):
        # The MM work function (2n/3 flops per element at n=300), so the
        # projected seconds are on the same scale as the migration cost.
        rp = Replanner(trio, work=lambda x: 200.0 * x)
        current = partition(3 * 300 * 300, trio).allocation
        # Machine 0 (the fastest) lost most of its speed.
        decision = rp.consider(current, [0.2, 1.0, 1.0])
        assert decision.apply
        assert decision.allocation is not None
        assert int(decision.allocation.sum()) == int(current.sum())
        assert decision.savings > 0
        assert not decision.migration.empty
        # The new plan moves work off the drifted machine.
        assert decision.allocation[0] < current[0]
        assert rp.replans_applied == 1

    def test_consider_keeps_the_plan_when_nothing_changed(self, trio):
        rp = Replanner(trio)
        current = partition(3 * 300 * 300, trio, algorithm="bisection").allocation
        decision = rp.consider(current, [1.0, 1.0, 1.0])
        assert not decision.apply
        assert decision.allocation is None
        assert rp.replans_applied == 0

    def test_consider_respects_the_replan_budget(self, trio):
        rp = Replanner(
            trio, policy=AdaptivePolicy(max_replans=0), work=lambda x: 200.0 * x
        )
        current = partition(3 * 300 * 300, trio).allocation
        decision = rp.consider(current, [0.2, 1.0, 1.0])
        assert not decision.apply
        assert "budget" in decision.reason

    def test_consider_with_nothing_remaining(self, trio):
        rp = Replanner(trio)
        decision = rp.consider([0, 0, 0], [0.5, 1.0, 1.0])
        assert not decision.apply
        assert decision.migration.empty

    def test_savings_rule_blocks_marginal_migrations(self, trio):
        # An enormous reluctance factor blocks any migration.
        rp = Replanner(
            trio,
            policy=AdaptivePolicy(min_savings_factor=1e12),
            work=lambda x: 200.0 * x,
        )
        current = partition(3 * 300 * 300, trio).allocation
        decision = rp.consider(current, [0.2, 1.0, 1.0])
        assert not decision.apply
        assert "below threshold" in decision.reason

    def test_applied_replans_are_counted_on_the_metrics(self, trio, fresh_obs):
        fresh_obs.enable()
        rp = Replanner(trio, work=lambda x: 200.0 * x)
        current = partition(3 * 300 * 300, trio).allocation
        decision = rp.consider(current, [0.2, 1.0, 1.0])
        assert decision.apply
        reg = fresh_obs.get_registry()
        assert reg.counter("adapt.replans").value == 1
        assert (
            reg.counter("adapt.migrated.elements").value
            == decision.migration.total_elements
        )


class TestRecoverDropout:
    def test_survivors_keep_their_holdings(self, trio):
        rp = Replanner(trio)
        current = np.array([120_000, 80_000, 40_000])
        decision = rp.recover_dropout(current, [0])
        assert decision.apply
        new = decision.allocation
        assert new[0] == 0
        assert new[1] >= current[1]
        assert new[2] >= current[2]
        assert int(new.sum()) == int(current.sum())
        # Only the dead machine's elements moved.
        assert decision.migration.total_elements == current[0]
        assert decision.projected_current == float("inf")

    def test_dead_machine_with_nothing_left_is_free(self, trio):
        rp = Replanner(trio)
        decision = rp.recover_dropout([0, 500, 500], [0])
        assert decision.apply
        assert decision.migration.empty

    def test_no_survivors_raises(self, trio):
        rp = Replanner(trio)
        with pytest.raises(InfeasiblePartitionError):
            rp.recover_dropout([10, 10, 10], [0, 1, 2])

    def test_unknown_processor_raises(self, trio):
        rp = Replanner(trio)
        with pytest.raises(ConfigurationError):
            rp.recover_dropout([10, 10, 10], [7])

    def test_dropout_is_counted_on_the_metrics(self, trio, fresh_obs):
        fresh_obs.enable()
        rp = Replanner(trio)
        rp.recover_dropout([9000, 3000, 3000], [0])
        reg = fresh_obs.get_registry()
        assert reg.counter("adapt.dropouts.survived").value == 1
        assert reg.counter("adapt.replans").value == 1
        assert reg.counter("adapt.migrated.elements").value == 9000


class TestApplyRefit:
    def _shape_refit(self, fns):
        from repro import Observation
        from repro.model import OnlineBandRefitter

        truth = lambda x: fns[0].speed(x) * (2.0 if x >= 5e5 else 1.0)
        sizes = np.linspace(2e4, 2e6, 100)
        recs = [
            Observation.from_step(0, float(x), float(truth(x)), time=float(i))
            for i, x in enumerate(sizes)
        ]
        return OnlineBandRefitter(fns, min_escaped=3).refit(recs)

    def test_shape_drift_refit_is_adopted(self, trio):
        refit = self._shape_refit(trio)
        assert refit.shape_changed
        rp = Replanner(trio)
        rp.plan(600_000)  # warm a planner against the stale base
        assert rp.apply_refit(refit)
        assert rp.refits_applied == 1
        # Subsequent plans derive from the refitted fleet.
        assert rp.planner_for().fleet.fingerprint == refit.fleet.fingerprint

    def test_scale_only_refit_is_declined(self):
        from repro import Observation
        from repro.model import OnlineBandRefitter

        fn = PiecewiseLinearSpeedFunction([1e3, 1e6], [100.0, 50.0])
        recs = [
            Observation.from_step(0, float(x), 1.2 * float(fn.speed(x)))
            for x in np.linspace(1e3, 1e6, 30)
        ]
        refit = OnlineBandRefitter([fn], min_escaped=3).refit(recs)
        assert refit.changed and refit.scale_only
        rp = Replanner([fn])
        assert not rp.apply_refit(refit)
        assert rp.refits_applied == 0

    def test_unchanged_refit_is_declined(self, trio):
        from repro import Observation
        from repro.model import OnlineBandRefitter

        refitter = OnlineBandRefitter(trio)
        recs = [
            Observation.from_step(0, float(x), float(trio[0].speed(x)))
            for x in np.linspace(2e4, 1.9e6, 30)
        ]
        refit = refitter.refit(recs)
        assert not refit.changed
        rp = Replanner(trio)
        assert not rp.apply_refit(refit)

    def test_processor_count_mismatch_raises(self, trio):
        refit = self._shape_refit(trio)
        rp = Replanner(trio[:2])
        with pytest.raises(ConfigurationError):
            rp.apply_refit(refit)

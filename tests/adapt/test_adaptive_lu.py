"""Adaptive LU simulation: delegation, recovery, wins, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapt import (
    AdaptivePolicy,
    Dropout,
    FaultScript,
    LoadShift,
    simulate_lu_adaptive,
)
from repro.adapt.replanner import DISABLED
from repro.exceptions import ConfigurationError
from repro.kernels.group_block import variable_group_block
from repro.simulate.lu_executor import simulate_lu

N, B = 1152, 32


@pytest.fixture
def dist(lu_trio):
    return variable_group_block(N, B, lu_trio)


def _clean_total(dist, lu_trio):
    return simulate_lu_adaptive(dist, lu_trio, policy=DISABLED).total_seconds


class TestDisabledDelegation:
    def test_bit_identical_to_the_static_simulator(self, dist, lu_trio):
        plain = simulate_lu(dist, lu_trio)
        adaptive = simulate_lu_adaptive(dist, lu_trio, policy=DISABLED)
        assert adaptive.base is not None
        assert adaptive.total_seconds == plain.total_seconds
        assert adaptive.comm_seconds == plain.comm_seconds
        assert adaptive.steps == plain.steps
        assert np.array_equal(adaptive.owners_final, dist.block_owners)
        for a, b in zip(adaptive.trace.steps, plain.trace.steps):
            assert a.panel_seconds == b.panel_seconds
            assert a.update_seconds == b.update_seconds
        assert adaptive.drifts == 0
        assert adaptive.replans == 0


class TestAdaptiveWins:
    def test_beats_static_under_a_permanent_load_shift(self, dist, lu_trio):
        t0 = _clean_total(dist, lu_trio)
        script = FaultScript(
            events=(LoadShift(machine=0, at_time=0.05 * t0, factor=0.35),)
        )
        static = simulate_lu_adaptive(
            dist, lu_trio, policy=DISABLED, script=script, seed=5
        )
        adaptive = simulate_lu_adaptive(
            dist, lu_trio, policy=AdaptivePolicy(patience=2), script=script, seed=5
        )
        assert adaptive.drifts > 0
        assert adaptive.replans > 0
        assert adaptive.migrated_blocks > 0
        assert adaptive.makespan < static.makespan

    def test_beats_static_failover_when_the_fastest_machine_dies(
        self, dist, lu_trio
    ):
        t0 = _clean_total(dist, lu_trio)
        script = FaultScript(events=(Dropout(machine=0, at_time=0.1 * t0),))
        static = simulate_lu_adaptive(
            dist, lu_trio, policy=DISABLED, script=script, seed=5
        )
        adaptive = simulate_lu_adaptive(
            dist, lu_trio, policy=AdaptivePolicy(patience=2), script=script, seed=5
        )
        assert adaptive.dropouts_survived == 1
        assert static.dropouts_survived == 1
        assert adaptive.makespan < static.makespan

    def test_no_dead_machine_owns_blocks_after_recovery(self, dist, lu_trio):
        t0 = _clean_total(dist, lu_trio)
        script = FaultScript(events=(Dropout(machine=0, at_time=0.1 * t0),))
        out = simulate_lu_adaptive(
            dist, lu_trio, policy=AdaptivePolicy(), script=script, seed=5
        )
        # Every step after the drop must be owned by a survivor; the run
        # completing at all proves it, but check the final owner map too.
        drop_step = next(
            int(e.split()[1].rstrip(":")) for e in out.events if "dropped out" in e
        )
        assert not np.any(out.owners_final[drop_step:] == 0)
        assert np.isfinite(out.total_seconds)


class TestDeterminism:
    def test_identical_runs_are_bit_identical(self, dist, lu_trio):
        t0 = _clean_total(dist, lu_trio)
        script = FaultScript(
            events=(
                LoadShift(machine=0, at_time=0.05 * t0, factor=0.35),
                Dropout(machine=2, at_time=0.6 * t0),
            )
        )

        def run():
            return simulate_lu_adaptive(
                dist,
                lu_trio,
                policy=AdaptivePolicy(patience=2),
                script=script,
                seed=17,
                load_mean=0.1,
                load_sigma=0.05,
            )

        a, b = run(), run()
        assert a.total_seconds == b.total_seconds
        assert np.array_equal(a.owners_final, b.owners_final)
        assert a.events == b.events
        assert a.migrated_blocks == b.migrated_blocks
        assert (a.drifts, a.replans) == (b.drifts, b.replans)
        for ra, rb in zip(a.trace.steps, b.trace.steps):
            assert ra.panel_seconds == rb.panel_seconds
            assert ra.update_seconds == rb.update_seconds


class TestValidation:
    def test_model_length_mismatch(self, dist, lu_trio):
        with pytest.raises(ConfigurationError):
            simulate_lu_adaptive(
                dist, lu_trio, model_speed_functions=lu_trio[:2]
            )

    def test_owner_out_of_range(self, dist, lu_trio):
        with pytest.raises(ConfigurationError):
            simulate_lu_adaptive(dist, lu_trio[:2], load_mean=0.1)


class TestBandShapeShift:
    def test_shift_above_every_size_is_inert(self, dist, lu_trio):
        clean = _clean_total(dist, lu_trio)
        script = FaultScript(
            events=(
                LoadShift(machine=0, at_time=0.0, factor=0.3, above_size=1e15),
            )
        )
        shifted = simulate_lu_adaptive(
            dist, lu_trio, policy=DISABLED, script=script
        )
        assert shifted.total_seconds == clean
        assert "above size" in " ".join(shifted.events)

    def test_shift_above_tiny_size_matches_the_scalar_path(self, dist, lu_trio):
        scalar = FaultScript(
            events=(LoadShift(machine=0, at_time=0.0, factor=0.3),)
        )
        banded = FaultScript(
            events=(
                LoadShift(machine=0, at_time=0.0, factor=0.3, above_size=1.0),
            )
        )
        a = simulate_lu_adaptive(
            dist, lu_trio, policy=DISABLED, script=scalar, seed=5
        )
        b = simulate_lu_adaptive(
            dist, lu_trio, policy=DISABLED, script=banded, seed=5
        )
        assert a.total_seconds == b.total_seconds

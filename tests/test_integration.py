"""End-to-end integration tests: the full paper pipeline at reduced scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConstantSpeedFunction,
    partition,
    partition_constant,
    single_number_speeds,
)
from repro.experiments import build_network_models
from repro.kernels import (
    matmul_abt,
    mm_elements,
    rows_from_elements,
    stripe_matrix,
    variable_group_block,
)
from repro.machines import CommModel, table2_network
from repro.model import SimulatedBenchmark, build_piecewise_model
from repro.simulate import simulate_lu, simulate_striped_matmul


@pytest.fixture(scope="module")
def net():
    return table2_network()


@pytest.fixture(scope="module")
def mm_models(net):
    return build_network_models(net, "matmul")


class TestFullMMPipeline:
    def test_benchmark_to_distribution_to_simulation(self, net, mm_models):
        n = 21_000
        truth = net.speed_functions("matmul")
        r = partition(mm_elements(n), mm_models)
        sim = simulate_striped_matmul(n, r.allocation, truth)
        assert sim.rows.sum() == n
        # The distribution must beat the even split on the true machines.
        even = np.full(12, mm_elements(n) // 12, dtype=np.int64)
        even[0] += mm_elements(n) - even.sum()
        sim_even = simulate_striped_matmul(n, even, truth)
        assert sim.makespan < sim_even.makespan

    def test_functional_beats_single_in_paging_regime(self, net, mm_models):
        n = 23_000
        truth = net.speed_functions("matmul")
        func = partition(mm_elements(n), mm_models).allocation
        single = partition_constant(
            mm_elements(n), single_number_speeds(truth, mm_elements(500))
        ).allocation
        t_func = simulate_striped_matmul(n, func, truth).makespan
        t_single = simulate_striped_matmul(n, single, truth).makespan
        assert t_single > 1.5 * t_func

    def test_with_communication_model(self, net, mm_models):
        n = 20_000
        truth = net.speed_functions("matmul")
        alloc = partition(mm_elements(n), mm_models).allocation
        comm = CommModel.ethernet(12)
        sim = simulate_striped_matmul(n, alloc, truth, comm=comm)
        assert sim.comm_seconds > 0
        # At this scale compute dominates a 100 Mbit LAN's transfer time.
        assert sim.comm_seconds < sim.makespan


class TestFullLUPipeline:
    def test_group_block_to_simulation(self, net):
        models = build_network_models(net, "lu")
        truth = net.speed_functions("lu")
        dist = variable_group_block(8_192, 64, models)
        sim = simulate_lu(dist, truth)
        assert sim.steps == 128
        assert sim.total_seconds > 0
        # Every processor owns at least one block somewhere.
        assert set(np.unique(dist.block_owners)) == set(range(12))


class TestModelQualityLoop:
    def test_builder_model_reproduces_distribution(self, net):
        """A distribution from the fitted model is near-optimal on the truth.

        Partition with the built model, partition with the (normally
        unknowable) ground truth, and compare makespans on the truth: the
        model-driven distribution should be within a few per cent.
        """
        truth = net.speed_functions("matmul")
        models = build_network_models(net, "matmul")
        n = mm_elements(19_000)
        alloc_model = partition(n, models).allocation
        alloc_truth = partition(n, truth).allocation
        t_model = simulate_striped_matmul(19_000, alloc_model, truth).makespan
        t_truth = simulate_striped_matmul(19_000, alloc_truth, truth).makespan
        assert t_model <= 1.10 * t_truth

    def test_noisy_models_still_useful(self, net):
        models = build_network_models(net, "matmul", noisy=True, seed=77)
        truth = net.speed_functions("matmul")
        n = mm_elements(21_000)
        alloc = partition(n, models).allocation
        t_noisy = simulate_striped_matmul(21_000, alloc, truth).makespan
        alloc_ideal = partition(n, truth).allocation
        t_ideal = simulate_striped_matmul(21_000, alloc_ideal, truth).makespan
        # Band-noise-fitted models stay within ~25% of the ideal balance.
        assert t_noisy <= 1.25 * t_ideal


class TestRealKernelRoundtrip:
    def test_striped_multiply_with_functional_distribution(self):
        """Distribute a real (small) multiply with piecewise speeds."""
        from tests.conftest import make_pwl

        n = 120
        sfs = [make_pwl(60.0), make_pwl(200.0), make_pwl(110.0)]
        alloc = partition(mm_elements(n), sfs).allocation
        rows = rows_from_elements(alloc, n)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        c = np.vstack([matmul_abt(s, b) for s in stripe_matrix(a, rows)])
        np.testing.assert_allclose(c, a @ b.T, atol=1e-9)

    def test_section31_on_real_host_kernel(self):
        """The builder drives real measurements end to end."""
        import math

        from repro.model import measure_mm_speed

        def bench(elements: float) -> float:
            n = max(int(math.sqrt(elements)), 2)
            return measure_mm_speed(n, repeats=1).speed

        built = build_piecewise_model(
            bench, a=16 * 16, b=160 * 160, eps=0.5, spacing="log",
            pin_zero_at_b=False,
        )
        built.function.check_single_intersection()
        assert built.function.num_knots >= 2

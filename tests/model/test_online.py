"""OnlineBandRefitter: escape detection, interval refit, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    ConstantSpeedFunction,
    Observation,
    PiecewiseLinearSpeedFunction,
)
from repro.model import ModelBuildOptions, OnlineBandRefitter

from ..conftest import make_pwl


def steps(machine, sizes, speed_fn, *, t0=0.0):
    """Observation records for ``machine`` with speeds from ``speed_fn``."""
    return [
        Observation.from_step(machine, float(x), float(speed_fn(x)), time=t0 + i)
        for i, x in enumerate(sizes)
    ]


def drifted(fn, factor, above):
    """The truth after a band-shape drift: ``factor``× at and above ``above``."""
    def speed(x):
        s = float(fn.speed(x))
        return s * factor if x >= above else s
    return speed


class TestConstruction:
    def test_requires_functions(self):
        with pytest.raises(ConfigurationError):
            OnlineBandRefitter([])

    def test_requires_positive_patience(self):
        with pytest.raises(ConfigurationError):
            OnlineBandRefitter([make_pwl(100.0)], min_escaped=0)

    def test_fingerprint_matches_fleet(self):
        from repro import Fleet

        fns = [make_pwl(100.0), make_pwl(300.0)]
        refitter = OnlineBandRefitter(fns, name="t")
        assert refitter.fingerprint == Fleet(fns, name="t").fingerprint


class TestNoDrift:
    def test_in_band_observations_change_nothing(self):
        fn = make_pwl(200.0)
        refitter = OnlineBandRefitter([fn])
        sizes = np.linspace(2e3, 1.9e6, 50)
        refit = refitter.refit(steps(0, sizes, fn.speed))
        assert not refit.changed
        assert refit.fingerprint_after == refit.fingerprint_before
        assert refit.refitted_machines == ()
        assert refit.machines[0].escaped == 0

    def test_patience_absorbs_sparse_escapes(self):
        fn = make_pwl(200.0)
        refitter = OnlineBandRefitter([fn], min_escaped=3)
        # Two escaping points in one segment: below the patience threshold.
        recs = steps(0, [6e5, 7e5], lambda x: 2.0 * fn.speed(x))
        refit = refitter.refit(recs)
        assert not refit.changed
        assert refit.machines[0].escaped == 2

    def test_untouched_machines_are_not_listed(self):
        fns = [make_pwl(200.0), make_pwl(300.0)]
        refitter = OnlineBandRefitter(fns, min_escaped=3)
        recs = steps(1, np.linspace(2e4, 1.9e6, 30), fns[1].speed)
        refit = refitter.refit(recs)
        assert [m.machine for m in refit.machines] == [1]
        assert refit.functions[0] is fns[0]

    def test_no_change_pass_reuses_the_prebuilt_fleet(self):
        fn = make_pwl(200.0)
        refitter = OnlineBandRefitter([fn], min_escaped=3)
        recs = steps(0, np.linspace(2e4, 1.9e6, 30), fn.speed)
        first = refitter.refit(recs)
        second = refitter.refit(recs)
        # Steady state costs no repack: both passes hand back the same
        # prebuilt fleet object.
        assert first.fleet is second.fleet

    def test_foreign_and_solve_records_ignored(self):
        fn = make_pwl(200.0)
        refitter = OnlineBandRefitter([fn])
        recs = [
            Observation(machine=-1, size=1e5, duration=0.5, source="solve"),
            Observation(machine=7, size=1e5, speed=999.0),
        ]
        refit = refitter.refit(recs)
        assert not refit.changed
        assert refit.observations == 2


class TestShapeDrift:
    def test_refit_closes_band_shape_drift(self):
        fn = make_pwl(200.0)
        truth = drifted(fn, 2.0, 5e5)
        refitter = OnlineBandRefitter([fn], min_escaped=3)
        sizes = np.linspace(2e4, 2e6, 120)
        refit = refitter.refit(steps(0, sizes, truth))

        assert refit.changed and refit.shape_changed and not refit.scale_only
        assert refit.refitted_machines == (0,)
        m = refit.machines[0]
        assert m.intervals and m.observations_used > 0 and m.measurements == 0

        # Judge at the observed sizes well inside the drifted region (the
        # truth is discontinuous at the drift edge itself, which no
        # piecewise-linear model can track through the jump).
        new_fn = refit.functions[0]
        probe = sizes[sizes >= 6e5]
        want = np.array([truth(x) for x in probe])
        got = np.array([new_fn.speed(x) for x in probe])
        rel = np.abs(got - want) / want
        assert float(rel.max()) <= 0.05

    def test_only_drifted_machine_is_refitted(self):
        fns = [make_pwl(200.0), make_pwl(300.0)]
        truth = drifted(fns[0], 2.0, 5e5)
        refitter = OnlineBandRefitter(fns, min_escaped=3)
        sizes = np.linspace(2e4, 1.9e6, 60)
        recs = steps(0, sizes, truth) + steps(1, sizes, fns[1].speed)
        refit = refitter.refit(recs)
        assert refit.refitted_machines == (0,)
        assert refit.functions[1] is fns[1]

    def test_refit_is_deterministic(self):
        fn = make_pwl(200.0)
        truth = drifted(fn, 2.0, 5e5)
        sizes = np.linspace(2e4, 1.9e6, 60)
        recs = steps(0, sizes, truth)

        first = OnlineBandRefitter([fn], min_escaped=3).refit(recs)
        second = OnlineBandRefitter([fn], min_escaped=3).refit(list(recs))
        assert first.fingerprint_after == second.fingerprint_after
        fa, fb = first.functions[0], second.functions[0]
        assert np.array_equal(fa.knot_sizes, fb.knot_sizes)
        assert np.array_equal(fa.knot_speeds, fb.knot_speeds)

    def test_pinned_zero_at_b_survives_refit(self):
        xs = np.array([1e3, 1e4, 1e5, 1e6])
        ss = np.array([100.0, 95.0, 60.0, 0.0])
        fn = PiecewiseLinearSpeedFunction(xs, ss)
        truth = drifted(fn, 2.0, 2e4)
        refitter = OnlineBandRefitter([fn], min_escaped=3)
        sizes = np.linspace(2e3, 9.9e5, 70)
        refit = refitter.refit(steps(0, sizes, truth))
        assert refit.changed
        new_fn = refit.functions[0]
        assert new_fn.knot_sizes[-1] == pytest.approx(1e6)
        assert new_fn.knot_speeds[-1] == 0.0


class TestScaleOnly:
    def test_uniform_rescale_is_classified_scale_only(self):
        fn = PiecewiseLinearSpeedFunction([1e3, 1e6], [100.0, 50.0])
        refitter = OnlineBandRefitter([fn], min_escaped=3)
        sizes = np.linspace(1e3, 1e6, 30)
        refit = refitter.refit(steps(0, sizes, lambda x: 1.2 * fn.speed(x)))
        assert refit.changed
        assert refit.scale_only and not refit.shape_changed
        new_fn = refit.functions[0]
        assert np.array_equal(new_fn.knot_sizes, fn.knot_sizes)
        assert np.allclose(new_fn.knot_speeds, 1.2 * fn.knot_speeds)


class TestPassThrough:
    def test_non_pwl_machines_pass_through(self):
        fns = [ConstantSpeedFunction(100.0), make_pwl(200.0)]
        refitter = OnlineBandRefitter(fns)
        recs = steps(0, np.linspace(1e4, 1e6, 20), lambda x: 250.0)
        refit = refitter.refit(recs)
        assert not refit.changed
        assert refit.functions[0] is fns[0]


class TestMeasureFallback:
    def test_probes_outside_observed_range_use_measure(self):
        fn = make_pwl(200.0)
        truth = drifted(fn, 2.0, 5e5)
        calls = []

        def bench(x):
            calls.append(x)
            return truth(x)

        refitter = OnlineBandRefitter([fn], measure=[bench], min_escaped=3)
        # Observations cluster strictly inside the [5e5, 1e6] segment, so
        # the dirty interval's endpoints must come from the benchmark.
        sizes = np.linspace(6e5, 9e5, 20)
        refit = refitter.refit(steps(0, sizes, truth))
        assert refit.changed
        assert refit.machines[0].measurements == len(calls) > 0

    def test_without_measure_fallback_reuses_midline(self):
        fn = make_pwl(200.0)
        truth = drifted(fn, 2.0, 5e5)
        refitter = OnlineBandRefitter([fn], min_escaped=3)
        sizes = np.linspace(6e5, 9e5, 20)
        refit = refitter.refit(steps(0, sizes, truth))
        assert refit.machines[0].measurements == 0


class TestCounters:
    def test_refit_counters_advance(self):
        from repro import obs

        reg = obs.get_registry()
        checks0 = reg.counter("model.refit.checks").value
        applied0 = reg.counter("model.refit.applied").value
        obs0 = reg.counter("model.refit.observations").value

        fn = make_pwl(200.0)
        truth = drifted(fn, 2.0, 5e5)
        refitter = OnlineBandRefitter([fn], min_escaped=3)
        recs = steps(0, np.linspace(2e4, 1.9e6, 40), truth)
        refit = refitter.refit(recs)
        assert refit.changed

        assert reg.counter("model.refit.checks").value == checks0 + 1
        assert reg.counter("model.refit.applied").value == applied0 + 1
        assert reg.counter("model.refit.observations").value == obs0 + 40


class TestModelBuildOptionsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"eps": 0.0},
            {"eps": 1.0},
            {"min_gap": 0.0},
            {"max_depth": 0},
            {"spacing": "cubic"},
            {"min_ratio": 1.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ModelBuildOptions(**kwargs)

    def test_replace_rejects_unknown_option(self):
        with pytest.raises(ConfigurationError, match="unknown model-build option"):
            ModelBuildOptions().replace(nope=1)

    def test_replace_roundtrip(self):
        opts = ModelBuildOptions().replace(eps=0.02, spacing="log")
        assert opts.eps == 0.02 and opts.spacing == "log"
        assert ModelBuildOptions().eps == 0.05

"""Tests for the section-3.1 model builder and band fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, MeasurementError, SpeedBand
from repro.model import (
    SimulatedBenchmark,
    build_piecewise_model,
    estimate_band,
    max_relative_deviation,
    relative_deviation,
    repair_monotone_g,
)
from repro.machines import MachineSpec, build_speed_function
from tests.conftest import make_pwl


@pytest.fixture
def truth():
    """A realistic analytic ground truth to fit against."""
    spec = MachineSpec(
        name="B",
        os="Linux",
        arch="Test",
        cpu_mhz=2000,
        main_memory_kb=1_000_000,
        free_memory_kb=500_000,
        cache_kb=512,
    )
    return build_speed_function(
        spec, peak_mflops=200.0, profile="matmul_atlas", paging_matrix_size=4000, matrices=3
    )


class TestRepairMonotoneG:
    def test_no_change_when_valid(self):
        xs = np.array([10.0, 100.0, 1000.0])
        ss = np.array([50.0, 40.0, 10.0])
        _, out = repair_monotone_g(xs, ss)
        np.testing.assert_allclose(out, ss)

    def test_clips_violation_down(self):
        xs = np.array([10.0, 11.0])
        ss = np.array([50.0, 100.0])  # g rises: invalid
        _, out = repair_monotone_g(xs, ss)
        assert out[1] < 50.0 / 10.0 * 11.0
        from repro import PiecewiseLinearSpeedFunction

        PiecewiseLinearSpeedFunction(xs, out)  # now constructible

    def test_cascading_repair(self):
        xs = np.array([10.0, 20.0, 21.0])
        ss = np.array([50.0, 120.0, 130.0])
        xs2, out = repair_monotone_g(xs, ss)
        g = out / xs2
        assert np.all(np.diff(g) < 0)


class TestBuildPiecewiseModel:
    def test_fits_noise_free_truth(self, truth, rng):
        bench = SimulatedBenchmark(truth, rng)
        built = build_piecewise_model(
            bench, a=truth.max_size * 1e-4, b=truth.max_size
        )
        # Accurate where the machine is usable (up to ~1.5x the paging knee).
        grid = np.geomspace(truth.max_size * 1e-4, 3 * 4000**2 * 1.5, 120)
        assert max_relative_deviation(built.function, truth, grid) < 0.15

    def test_output_is_valid_speed_function(self, truth, rng):
        bench = SimulatedBenchmark(truth, rng)
        built = build_piecewise_model(
            bench, a=truth.max_size * 1e-4, b=truth.max_size
        )
        built.function.check_single_intersection()

    def test_linear_truth_needs_two_probes_only(self):
        # A truth the initial band already explains: the procedure stops
        # after the first trisection (3 experiments total: a + two probes).
        def linear(x):
            return 100.0 * (1.0 - x / 1000.0)

        built = build_piecewise_model(lambda x: max(linear(x), 0.0), a=1.0, b=1000.0)
        assert built.experiments <= 3
        assert built.function.num_knots == 2

    def test_experiment_count_reported(self, truth, rng):
        bench = SimulatedBenchmark(truth, rng)
        built = build_piecewise_model(
            bench, a=truth.max_size * 1e-4, b=truth.max_size
        )
        assert built.experiments == bench.experiments
        assert built.experiments >= 3

    def test_band_wraps_function(self, truth, rng):
        bench = SimulatedBenchmark(truth, rng)
        built = build_piecewise_model(
            bench, a=truth.max_size * 1e-4, b=truth.max_size, eps=0.05
        )
        assert isinstance(built.band, SpeedBand)
        assert float(np.asarray(built.band.width_at(1e5))) == pytest.approx(0.10)

    def test_noisy_measurements_still_valid(self, truth):
        band = SpeedBand(truth, 0.10)
        bench = SimulatedBenchmark(band, np.random.default_rng(11))
        built = build_piecewise_model(
            bench, a=truth.max_size * 1e-4, b=truth.max_size
        )
        built.function.check_single_intersection()
        grid = np.geomspace(truth.max_size * 1e-4, 3 * 4000**2, 60)
        assert max_relative_deviation(built.function, truth, grid) < 0.3

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            build_piecewise_model(lambda x: 1.0, a=10.0, b=10.0)

    def test_rejects_bad_eps(self):
        with pytest.raises(ConfigurationError):
            build_piecewise_model(lambda x: 1.0, a=1.0, b=10.0, eps=0.0)

    def test_rejects_invalid_benchmark_output(self):
        with pytest.raises(MeasurementError):
            build_piecewise_model(lambda x: float("nan"), a=1.0, b=10.0)

    def test_rejects_zero_speed_at_a(self):
        with pytest.raises(MeasurementError):
            build_piecewise_model(lambda x: 0.0, a=1.0, b=10.0)

    def test_min_gap_limits_experiments(self, truth, rng):
        coarse = build_piecewise_model(
            SimulatedBenchmark(truth, np.random.default_rng(1)),
            a=truth.max_size * 1e-4,
            b=truth.max_size,
            min_gap=truth.max_size / 9.0,
        )
        fine = build_piecewise_model(
            SimulatedBenchmark(truth, np.random.default_rng(1)),
            a=truth.max_size * 1e-4,
            b=truth.max_size,
            min_gap=truth.max_size / 2000.0,
        )
        assert coarse.experiments <= fine.experiments


class TestEstimateBand:
    def test_recovers_width_order(self, truth):
        band = SpeedBand(truth, 0.30)
        bench = SimulatedBenchmark(band, np.random.default_rng(2))
        sizes = np.geomspace(truth.max_size * 1e-4, truth.max_size * 0.4, 6)
        est = estimate_band(bench, sizes, repeats=40)
        w = float(np.asarray(est.width_at(sizes[2])))
        # Uniform noise: observed peak-to-peak approaches the true width.
        assert 0.15 < w < 0.35

    def test_midline_close_to_truth(self, truth):
        band = SpeedBand(truth, 0.10)
        bench = SimulatedBenchmark(band, np.random.default_rng(4))
        sizes = np.geomspace(truth.max_size * 1e-4, truth.max_size * 0.3, 8)
        est = estimate_band(bench, sizes, repeats=30)
        dev = relative_deviation(est.midline, truth, sizes[1:-1])
        assert float(dev.max()) < 0.15

    def test_needs_two_sizes(self, truth, rng):
        with pytest.raises(ConfigurationError):
            estimate_band(SimulatedBenchmark(truth, rng), [100.0])

    def test_needs_two_repeats(self, truth, rng):
        with pytest.raises(ConfigurationError):
            estimate_band(SimulatedBenchmark(truth, rng), [1e3, 1e4], repeats=1)


class TestDeviationHelpers:
    def test_zero_for_identical(self):
        sf = make_pwl(100.0)
        grid = np.geomspace(1e3, 2e6, 20)
        assert max_relative_deviation(sf, sf, grid) == 0.0

    def test_scaled_deviation(self):
        sf = make_pwl(100.0)
        assert max_relative_deviation(
            sf.scaled(1.1), sf, [1e4, 1e5]
        ) == pytest.approx(0.1)

"""Tests for the benchmark measurement harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, MeasurementError, SpeedBand
from repro.model import (
    SimulatedBenchmark,
    measure_arrayops_speed,
    measure_lu_speed,
    measure_mm_speed,
    time_callable,
)
from tests.conftest import make_pwl


class TestTimeCallable:
    def test_returns_positive_time(self):
        t = time_callable(lambda: sum(range(2000)), repeats=2, warmup=0)
        assert t > 0

    def test_warmup_runs(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5

    def test_rejects_bad_repeats(self):
        with pytest.raises(ConfigurationError):
            time_callable(lambda: None, repeats=0)


class TestRealMeasurements:
    def test_mm_speed_positive(self):
        m = measure_mm_speed(96, repeats=1)
        assert m.speed > 0
        assert m.size == 96 * 96

    def test_mm_rect(self):
        m = measure_mm_speed(48, 192, repeats=1)
        assert m.size == 48 * 192

    def test_mm_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            measure_mm_speed(16, kernel="tensor")

    def test_mm_bad_dims(self):
        with pytest.raises(ConfigurationError):
            measure_mm_speed(0)

    @pytest.mark.parametrize("kernel", ["reference", "blocked", "poor"])
    def test_mm_all_kernels_run(self, kernel):
        assert measure_mm_speed(48, kernel=kernel, repeats=1).speed > 0

    def test_lu_speed_positive(self):
        m = measure_lu_speed(96, repeats=1)
        assert m.speed > 0 and m.seconds > 0

    def test_lu_rect(self):
        m = measure_lu_speed(128, 64, repeats=1)
        assert m.size == 128 * 64

    def test_arrayops_speed(self):
        m = measure_arrayops_speed(100_000, repeats=1)
        assert m.speed > 0

    def test_arrayops_bad_n(self):
        with pytest.raises(ConfigurationError):
            measure_arrayops_speed(0)


class TestSimulatedBenchmark:
    def test_noise_free_midline(self, rng):
        sf = make_pwl(100.0)
        bench = SimulatedBenchmark(sf, rng)
        assert bench.measure(1e4) == pytest.approx(float(sf.speed(1e4)))

    def test_band_noise_within_band(self, rng):
        band = SpeedBand(make_pwl(100.0), 0.4)
        bench = SimulatedBenchmark(band, rng)
        for _ in range(50):
            s = bench.measure(1e4)
            assert band.contains(1e4, s, slack=1e-9)

    def test_experiment_counter(self, rng):
        bench = SimulatedBenchmark(make_pwl(10.0), rng)
        for _ in range(7):
            bench(1e4)
        assert bench.experiments == 7

    def test_rejects_out_of_range(self, rng):
        bench = SimulatedBenchmark(make_pwl(10.0), rng)
        with pytest.raises(MeasurementError):
            bench.measure(1e12)
        with pytest.raises(MeasurementError):
            bench.measure(0)

    def test_deterministic_given_seed(self):
        band = SpeedBand(make_pwl(100.0), 0.4)
        a = SimulatedBenchmark(band, np.random.default_rng(3)).measure(1e4)
        b = SimulatedBenchmark(band, np.random.default_rng(3)).measure(1e4)
        assert a == b

    def test_max_size_exposed(self, rng):
        assert SimulatedBenchmark(make_pwl(10.0), rng).max_size == pytest.approx(2e6)

"""Tests for online model maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, PiecewiseLinearSpeedFunction
from repro.model import AdaptiveModel, simplify_model
from tests.conftest import make_pwl


class TestSimplifyModel:
    def test_removes_collinear_knots(self):
        # Middle knot lies exactly on the chord: removable.
        sf = PiecewiseLinearSpeedFunction([10.0, 55.0, 100.0], [50.0, 35.0, 20.0])
        out = simplify_model(sf, eps=0.01)
        assert out.num_knots == 2
        np.testing.assert_allclose(out.speed(55.0), 35.0)

    def test_keeps_structural_knots(self):
        sf = make_pwl(100.0)  # has a genuine knee
        out = simplify_model(sf, eps=0.02)
        xs = np.geomspace(1e3, 2e6, 60)
        np.testing.assert_allclose(out.speed(xs), sf.speed(xs), rtol=0.06)
        assert out.num_knots <= sf.num_knots

    def test_endpoints_survive(self):
        sf = make_pwl(10.0)
        out = simplify_model(sf, eps=0.5)
        assert out.knot_sizes[0] == sf.knot_sizes[0]
        assert out.knot_sizes[-1] == sf.knot_sizes[-1]

    def test_rejects_bad_eps(self):
        with pytest.raises(ConfigurationError):
            simplify_model(make_pwl(1.0), eps=0.0)

    def test_output_valid(self):
        out = simplify_model(make_pwl(77.0), eps=0.3)
        out.check_single_intersection()


class TestAdaptiveModel:
    def test_in_band_observation_ignored(self):
        model = AdaptiveModel(make_pwl(100.0), tolerance=0.10)
        changed = model.observe(1e4, float(make_pwl(100.0).speed(1e4)) * 1.05)
        assert not changed
        assert model.updates == 0
        assert model.drift_streak == 0

    def test_out_of_band_updates_toward_observation(self):
        base = make_pwl(100.0)
        model = AdaptiveModel(base, tolerance=0.05, smoothing=0.5)
        x = 2e5
        before = float(base.speed(x))
        observed = before * 0.5
        assert model.observe(x, observed)
        after = float(model.function.speed(x))
        assert observed < after < before

    def test_full_trust_smoothing(self):
        base = make_pwl(100.0)
        model = AdaptiveModel(base, smoothing=1.0)
        x = 3e5
        model.observe(x, float(base.speed(x)) * 0.6)
        assert float(model.function.speed(x)) == pytest.approx(
            float(base.speed(x)) * 0.6, rel=1e-6
        )

    def test_updates_keep_model_valid(self, rng):
        model = AdaptiveModel(make_pwl(100.0), smoothing=0.8)
        for _ in range(40):
            x = float(rng.uniform(2e3, 1.9e6))
            noise = float(rng.uniform(0.5, 1.2))
            model.observe(x, float(make_pwl(100.0).speed(x)) * noise)
        model.function.check_single_intersection()

    def test_nearest_knot_adjusted_not_duplicated(self):
        base = make_pwl(100.0)
        model = AdaptiveModel(base, smoothing=1.0)
        x = float(base.knot_sizes[2]) * 1.001  # within 1% of an existing knot
        model.observe(x, float(base.speed(x)) * 0.5)
        assert model.function.num_knots == base.num_knots

    def test_drift_detection(self):
        base = make_pwl(100.0)
        model = AdaptiveModel(base, tolerance=0.01, drift_limit=3, smoothing=0.01)
        for k in range(3):
            assert not model.needs_rebuild
            model.observe(5e5 + k, float(base.speed(5e5)) * 2.0)
        assert model.needs_rebuild
        model.reset_drift()
        assert not model.needs_rebuild

    def test_in_band_resets_streak(self):
        base = make_pwl(100.0)
        model = AdaptiveModel(base, tolerance=0.05, drift_limit=2, smoothing=0.01)
        model.observe(5e5, float(base.speed(5e5)) * 2.0)
        model.observe(6e5, float(model.function.speed(6e5)))
        assert model.drift_streak == 0

    def test_knot_budget_enforced(self, rng):
        model = AdaptiveModel(make_pwl(100.0), max_knots=10, smoothing=1.0, tolerance=0.01)
        for _ in range(60):
            x = float(rng.uniform(2e3, 1.9e6))
            model.observe(x, float(model.function.speed(x)) * 0.8)
        assert model.function.num_knots <= 12  # budget plus simplify slack

    def test_rejects_bad_observations(self):
        model = AdaptiveModel(make_pwl(100.0))
        with pytest.raises(ConfigurationError):
            model.observe(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            model.observe(1e4, float("nan"))
        with pytest.raises(ConfigurationError):
            model.observe(1e12, 10.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            AdaptiveModel(make_pwl(1.0), tolerance=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveModel(make_pwl(1.0), smoothing=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveModel(make_pwl(1.0), drift_limit=0)

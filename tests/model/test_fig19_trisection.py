"""Figure 19(c): why the builder trisects instead of bisecting.

The paper's argument: with *bisection*, the single interior experiment can
land on the chord between the endpoints "just by accident" even though the
curve bulges away from it elsewhere — the approximation is accepted
erroneously.  With *trisection*, under the paper's shape assumption (a
straight line crosses the real curve at most once between its endpoints),
two interior points cannot both sit on the chord of a curve that deviates
from it.

This test constructs exactly the adversarial curve: a smooth bump that
returns to the chord at the midpoint.  A naive bisection acceptance rule
(implemented inline) accepts the bad chord; the library's trisection
procedure keeps probing and captures the bump.
"""

from __future__ import annotations

import numpy as np

from repro.model import build_piecewise_model, max_relative_deviation
from repro import AnalyticSpeedFunction

A, B = 100.0, 1000.0
CHORD_LEFT, CHORD_RIGHT = 90.0, 30.0


def chord(x):
    return CHORD_LEFT + (CHORD_RIGHT - CHORD_LEFT) * (x - A) / (B - A)


def adversarial(x):
    """On the chord at a, (a+b)/2 and b; bulging +20% in between."""
    x = np.asarray(x, dtype=float)
    phase = (x - A) / (B - A)  # 0..1
    bump = 0.20 * np.abs(np.sin(2.0 * np.pi * phase))  # zero at 0, 1/2, 1
    return chord(x) * (1.0 + bump)


def test_bisection_rule_is_fooled():
    mid = 0.5 * (A + B)
    measured = float(adversarial(mid))
    predicted = chord(mid)
    # The single bisection probe lands on the chord: a midpoint-only
    # acceptance test (within 5%) wrongly accepts the straight-line model.
    assert abs(measured - predicted) <= 0.05 * predicted
    # ...even though the curve is 20% off the chord elsewhere.
    worst = float(np.max(np.abs(adversarial(np.linspace(A, B, 200)) - chord(np.linspace(A, B, 200))) / chord(np.linspace(A, B, 200))))
    assert worst > 0.15


def test_trisection_captures_the_bump():
    truth = AnalyticSpeedFunction(adversarial, max_size=B)
    built = build_piecewise_model(
        lambda x: float(adversarial(x)), a=A, b=B, eps=0.05, pin_zero_at_b=False
    )
    # Trisection probed inside the bulge and inserted knots there.
    assert built.function.num_knots > 2
    grid = np.linspace(A * 1.01, B * 0.99, 150)
    assert max_relative_deviation(built.function, truth, grid) < 0.10


def test_trisection_cost_stays_small_on_honest_curves():
    honest = AnalyticSpeedFunction(lambda x: chord(np.asarray(x, dtype=float)), max_size=B)
    built = build_piecewise_model(
        lambda x: float(honest.speed(x)), a=A, b=B, eps=0.05, pin_zero_at_b=False
    )
    # A genuinely linear curve costs the minimum: two endpoints + two probes.
    assert built.experiments <= 4
    assert built.function.num_knots == 2

"""RouterService end to end: routing, fallback, resharding, typed errors.

These tests boot real topologies — a router thread over member nodes —
and drive them through :class:`~repro.serve.client.ServeClient`, exactly
as an external caller would.  Thread-mode nodes keep most tests fast;
the fallback bit-identity contract additionally runs against process
nodes, because a SIGKILLed process and an abruptly-stopped thread fail
differently on the wire and both must leave replica answers exact.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster import RouterConfig, start_thread_node
from repro.planner import Fleet, Planner
from repro.serve.client import ServeClient, run_load
from tests.conftest import make_pwl
from tests.cluster.conftest import cluster_poll_until as poll_until

SIZES = [900, 2_400, 5_600, 11_000, 23_000]


def register(client: ServeClient, sfs, name: str = "fleet") -> str:
    return client.register_fleet(sfs, name=name)["fingerprint"]


def assert_bit_identical(client: ServeClient, fingerprint: str, planner: Planner):
    """Every routed plan equals the direct planner, makespan and allocation."""
    for n in SIZES:
        got = client.plan(fingerprint, n)
        want = planner.plan(n)
        assert got["makespan"] == float(want.makespan)
        assert got["allocation"] == [int(x) for x in want.allocation]


class TestRouting:
    def test_routed_plans_are_bit_identical_to_direct_planner(
        self, cluster, trio_sfs
    ):
        booted = cluster(2)
        planner = Planner(Fleet(trio_sfs))
        with ServeClient(booted.host, booted.port) as client:
            fp = register(client, trio_sfs)
            assert_bit_identical(client, fp, planner)
            stats = client.stats()
        assert stats["router"]["routed_primary"] == len(SIZES)
        assert stats["router"]["routed_fallback"] == 0

    def test_unknown_fleet_is_a_typed_error(self, cluster):
        booted = cluster(1)
        with ServeClient(booted.host, booted.port) as client:
            resp = client.call("plan", fleet="not-a-fingerprint", n=1000)
        assert resp["ok"] is False
        assert resp["error"]["code"] == "unknown_fleet"

    def test_register_replicates_to_the_replica_set(self, cluster, trio_sfs):
        booted = cluster(3, config=RouterConfig(replication=2))
        with ServeClient(booted.host, booted.port) as client:
            info = client.register_fleet(trio_sfs, name="trio")
        assert len(info["registered"]) == 2
        assert info["registered"] == info["nodes"]
        planner = Planner(Fleet(trio_sfs))
        # Each replica holds the fleet and answers directly, bit-for-bit.
        for node_id in info["registered"]:
            node = booted.node_by_id(node_id)
            with ServeClient(node.host, node.port) as direct:
                assert_bit_identical(direct, info["fingerprint"], planner)


class TestFallback:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_killed_primary_falls_back_bit_identically(
        self, cluster, trio_sfs, mode
    ):
        booted = cluster(3, mode=mode, config=RouterConfig(replication=2))
        planner = Planner(Fleet(trio_sfs))
        with ServeClient(booted.host, booted.port) as client:
            fp = register(client, trio_sfs)
            status = client.call("cluster_status")["result"]
            primary = status["fleets"][fp]["nodes"][0]
            booted.node_by_id(primary).kill()
            assert_bit_identical(client, fp, planner)
            stats = client.stats()
        assert stats["router"]["routed_fallback"] == len(SIZES)
        assert stats["router"]["routed_primary"] == 0

    def test_all_replicas_dead_is_a_typed_unavailable(self, cluster, trio_sfs):
        booted = cluster(1)
        with ServeClient(booted.host, booted.port) as client:
            fp = register(client, trio_sfs)
            booted.nodes[0].kill()
            resp = client.call("plan", fleet=fp, n=1000)
        assert resp["ok"] is False
        assert resp["error"]["code"] == "unavailable"

    def test_fallback_increments_the_obs_counter(
        self, cluster, trio_sfs, cluster_obs
    ):
        booted = cluster(2, config=RouterConfig(replication=2))
        with ServeClient(booted.host, booted.port) as client:
            fp = register(client, trio_sfs)
            status = client.call("cluster_status")["result"]
            primary = status["fleets"][fp]["nodes"][0]
            booted.node_by_id(primary).kill()
            client.plan(fp, 1234)
        fallback = cluster_obs.get_registry().counter("cluster.route.fallback")
        assert fallback.value == 1


class TestResharding:
    def fleet_variants(self, count: int):
        """``count`` fleets with distinct fingerprints (distinct speeds)."""
        return [
            [make_pwl(90.0 + 7 * k), make_pwl(200.0 + 13 * k)]
            for k in range(count)
        ]

    def test_join_rebalances_and_reregisters_minimally(self, cluster):
        booted = cluster(2, config=RouterConfig(replication=2))
        variants = self.fleet_variants(6)
        with ServeClient(booted.host, booted.port) as client:
            fps = [
                register(client, sfs, name=f"v{k}")
                for k, sfs in enumerate(variants)
            ]
            before = {
                fp: tuple(doc["nodes"])
                for fp, doc in client.call("cluster_status")["result"][
                    "fleets"
                ].items()
            }
            joiner = start_thread_node("joiner")
            booted.nodes.append(joiner)  # the fixture now owns its teardown
            joined = client.call(
                "cluster_join",
                host=joiner.host, port=joiner.port, http_port=joiner.http_port,
            )
            assert joined["ok"], joined
            assert joined["result"]["registered"] == joined["result"][
                "fleets_moved"
            ]
            after = client.call("cluster_status")["result"]
            assert joiner.node_id in {n["node_id"] for n in after["nodes"]}
            moved = 0
            for fp in fps:
                now = tuple(after["fleets"][fp]["nodes"])
                if now == before[fp]:
                    continue
                moved += 1
                # A changed set only ever gained the joiner (tail displaced).
                assert joiner.node_id in now
                survivors = [n for n in now if n != joiner.node_id]
                assert survivors == list(before[fp][: len(survivors)])
            assert moved == joined["result"]["fleets_moved"]
            # The joiner can serve what it gained: ask it directly.
            for fp in fps:
                if joiner.node_id in after["fleets"][fp]["nodes"]:
                    k = fps.index(fp)
                    planner = Planner(Fleet(variants[k]))
                    with ServeClient(joiner.host, joiner.port) as direct:
                        got = direct.plan(fp, 3000)
                    assert got["makespan"] == float(planner.plan(3000).makespan)

    def test_rejoin_is_idempotent(self, cluster):
        booted = cluster(2)
        member = booted.nodes[0]
        with ServeClient(booted.host, booted.port) as client:
            resp = client.call(
                "cluster_join", host=member.host, port=member.port
            )
        assert resp["ok"]
        assert resp["result"].get("already_member") is True
        assert resp["result"]["fleets_moved"] == 0

    def test_leave_during_load_answers_every_request(self, cluster, trio_sfs):
        """Drain-during-reshard: a graceful leave mid-load drops nothing."""
        booted = cluster(2, config=RouterConfig(replication=2))
        requests = 160
        with ServeClient(booted.host, booted.port) as client:
            fp = register(client, trio_sfs)
            primary = client.call("cluster_status")["result"]["fleets"][fp][
                "nodes"
            ][0]

            sizes = [SIZES[i % len(SIZES)] + i for i in range(requests)]
            box: dict = {}

            def _load():
                box["report"] = run_load(
                    booted.host, booted.port, fp, sizes,
                    concurrency=4, connections=2, allocation=True,
                )

            loader = threading.Thread(target=_load, daemon=True)
            loader.start()
            # Fire the leave once the load is demonstrably in flight.
            poll_until(
                lambda: client.stats()["router"]["requests"] > requests // 8,
                message="load generator never got going",
            )
            left = client.call("cluster_leave", node=primary)
            loader.join(timeout=120.0)
            assert not loader.is_alive(), "load generator hung across the leave"
            assert left["ok"], left
            assert left["result"]["drained"] is True

            after = client.call("cluster_status")["result"]
            assert primary not in {n["node_id"] for n in after["nodes"]}
            planner = Planner(Fleet(trio_sfs))
            assert_bit_identical(client, fp, planner)

        report = box["report"]
        assert report.error_count == 0, f"leave dropped work: {report.errors}"
        assert report.ok == requests

    def test_leave_of_unknown_node_is_refused(self, cluster):
        booted = cluster(1)
        with ServeClient(booted.host, booted.port) as client:
            resp = client.call("cluster_leave", node="10.9.8.7:1")
        assert resp["ok"] is False
        assert resp["error"]["code"] == "invalid_request"

"""CircuitBreaker: every transition of the three-state machine.

The clock is injected, so the reset timeout is crossed by advancing a
number — no sleeps anywhere.  The obs counters are asserted alongside
the transitions because the metrics *are* part of the contract: a
flapping node must be visible on the ``/metrics`` plane.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.cluster import CLOSED, HALF_OPEN, OPEN, BreakerConfig, CircuitBreaker
from repro.exceptions import ConfigurationError


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def make_breaker(**config) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    breaker = CircuitBreaker(
        "node-a:1", BreakerConfig(**config), clock=clock
    )
    return breaker, clock


def counter(name: str) -> int | float:
    return (
        obs.get_registry()
        .counter(f"cluster.breaker.{name}", labels={"node": "node-a:1"})
        .value
    )


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.allow_probe()

    def test_trips_open_after_consecutive_failures(self):
        breaker, _ = make_breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # two in a row is not enough
        breaker.record_failure()
        assert breaker.state == OPEN
        assert counter("open") == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make_breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN


class TestOpen:
    def test_refuses_requests_and_probes_inside_the_window(self):
        breaker, clock = make_breaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert not breaker.allow_probe()  # the node *just* failed
        clock.advance(0.5)
        assert not breaker.allow()

    def test_failure_while_open_restarts_the_window(self):
        breaker, clock = make_breaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure()
        clock.advance(0.9)
        breaker.record_failure()  # e.g. a queued request finally erroring
        clock.advance(0.9)  # 1.8s after the trip, 0.9 after the restart
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_force_open_trips_and_restarts(self):
        breaker, clock = make_breaker(reset_timeout=1.0)
        breaker.force_open()
        assert breaker.state == OPEN
        clock.advance(0.9)
        breaker.force_open()  # already open: restart the window
        clock.advance(0.9)
        assert breaker.state == OPEN


class TestHalfOpen:
    def make_half_open(self, **config):
        config.setdefault("failure_threshold", 1)
        config.setdefault("reset_timeout", 1.0)
        breaker, clock = make_breaker(**config)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        return breaker, clock

    def test_timeout_transitions_to_half_open_and_admits_trials(self):
        breaker, _ = self.make_half_open(half_open_max=2)
        assert counter("half_open") == 1
        assert breaker.allow()  # trial slot 1
        assert breaker.allow()  # trial slot 2
        assert not breaker.allow()  # slots exhausted
        assert breaker.allow_probe()  # probes are exempt past the window

    def test_successes_close_the_breaker(self):
        breaker, _ = self.make_half_open(success_threshold=2)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # one success is not enough
        assert breaker.allow()  # the finished trial released its slot
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert counter("close") == 1

    def test_failure_reopens_and_restarts_the_window(self):
        breaker, clock = self.make_half_open()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert counter("open") == 2  # the original trip plus the re-trip
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN  # the cycle repeats

    def test_flap_cycle_counts_every_transition(self):
        breaker, clock = self.make_half_open()
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert counter("open") == 2
        assert counter("half_open") == 2
        assert counter("close") == 2


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("failure_threshold", 0),
            ("reset_timeout", 0.0),
            ("reset_timeout", -1.0),
            ("half_open_max", 0),
            ("success_threshold", 0),
        ],
    )
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ConfigurationError):
            BreakerConfig(**{field: value})

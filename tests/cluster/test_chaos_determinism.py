"""Determinism regression for the cluster chaos sweep behind ``repro verify``.

``repro verify --cluster-runs N --seed S`` must be a *reproducible*
gate: the run RNG is derived from ``(seed, run index)`` alone, every
solved plan is bit-checked against a cold
:func:`repro.core.bisection.partition_bisection`, and a failure's
replay line re-runs exactly one ``--cluster-runs`` case.  Timing-
dependent quantities (how many requests raced the node kill into an
error) are deliberately NOT asserted — the contract is that the
*verdict* and the *verified work* are stable under a fixed seed.
"""

from __future__ import annotations

from repro.verify.chaos import run_cluster_chaos

#: Small-but-real chaos workload: one kill, enough requests to straddle
#: it, tiny problem sizes so two full runs stay fast.
_PARAMS = dict(runs=1, seed=1234, requests=24, concurrency=4, p=16, nodes=3)


def test_cluster_chaos_is_deterministic_under_fixed_seed():
    first = run_cluster_chaos(**_PARAMS)
    second = run_cluster_chaos(**_PARAMS)

    # The verdict and the accounting identity are seed-functions.
    assert first.passed and second.passed, (
        first.summary(), [f.summary() for f in first.failures],
        second.summary(), [f.summary() for f in second.failures],
    )
    for report in (first, second):
        assert report.seed == _PARAMS["seed"]
        assert report.requests == _PARAMS["requests"]
        assert report.ok + sum(report.errors.values()) == report.requests
        # Bit-identity verification really ran on the surviving answers.
        assert report.verified_plans > 0

    # The replay line a failure would print is stable and addressable.
    assert first.runs == second.runs == 1


def test_cluster_chaos_seeds_are_independent_per_run():
    """Different seeds draw different workloads (no accidental reuse)."""
    a = run_cluster_chaos(runs=1, seed=1, requests=12, concurrency=2,
                          p=12, nodes=3)
    b = run_cluster_chaos(runs=1, seed=2, requests=12, concurrency=2,
                          p=12, nodes=3)
    assert a.passed and b.passed
    assert a.seed != b.seed

"""Shared fixtures for the cluster tests: small clusters, isolated obs.

The ``cluster`` factory boots real member nodes (thread mode by default,
process mode on request) behind a real router thread, binds everything
to ephemeral ports, and guarantees teardown even when a test fails
mid-way — the same discipline as the serve suite's ``start_server``.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro import obs
from repro.io import speed_function_to_dict
from tests.conftest import make_pwl
from tests.serve.conftest import eventually, poll_until

__all__ = ["Cluster", "eventually", "poll_until"]

#: Process-mode cluster machinery (node boot, SIGKILL recovery, manager
#: round-trips) is slower than a single serve server; polling in this
#: package uses this bound rather than the serve suite's default so a
#: wedged cluster fails the test inside the suite timeout instead of
#: hanging it.
CLUSTER_POLL_TIMEOUT = 30.0


def cluster_poll_until(predicate, *, timeout: float = CLUSTER_POLL_TIMEOUT,
                       interval: float = 0.01, message: str = ""):
    """Bounded :func:`tests.serve.conftest.poll_until` for cluster tests."""
    return poll_until(
        predicate,
        timeout=timeout,
        interval=interval,
        message=message or f"cluster condition not met within {timeout:g}s",
    )


@pytest.fixture(autouse=True)
def cluster_obs():
    """Fresh registry per test: routers and breakers create global metrics."""
    previous = obs.set_registry(obs.MetricsRegistry())
    obs.disable()
    try:
        yield obs
    finally:
        obs.disable()
        obs.set_registry(previous)


@pytest.fixture
def trio_sfs():
    """Three heterogeneous processors — a fast-to-solve fleet."""
    return [make_pwl(100.0), make_pwl(220.0), make_pwl(320.0, scale=1.5)]


@pytest.fixture
def trio_spec(trio_sfs):
    """The wire spec for :func:`trio_sfs` (a registered fleet's payload)."""
    return {
        "name": "trio",
        "algorithm": "bisection",
        "cache_size": 64,
        "speed_functions": [speed_function_to_dict(sf) for sf in trio_sfs],
    }


@dataclass
class Cluster:
    """One booted topology: a router handle plus its member nodes."""

    router: object
    nodes: list

    @property
    def host(self) -> str:
        return self.router.host

    @property
    def port(self) -> int:
        return self.router.port

    def node_by_id(self, node_id: str):
        return next(n for n in self.nodes if n.node_id == node_id)


@pytest.fixture
def cluster():
    """Factory booting a router over N member nodes, always stopped.

    ``mode`` is ``"thread"`` (fast, default) or ``"process"`` (real
    SIGKILL targets); ``config`` is the :class:`RouterConfig`; extra
    keyword arguments are per-node :class:`ServeConfig` overrides.
    """
    from repro.cluster import (
        RouterConfig,
        start_nodes,
        start_router_in_thread,
    )

    live: list[Cluster] = []

    def _boot(count: int = 2, *, mode: str = "thread", config=None, **overrides):
        overrides.setdefault("shards", 1)
        nodes = start_nodes(count, mode=mode, **overrides)
        router = start_router_in_thread(
            config or RouterConfig(probe_interval=0.05),
            [n.info for n in nodes],
        )
        booted = Cluster(router=router, nodes=nodes)
        live.append(booted)
        return booted

    try:
        yield _boot
    finally:
        for booted in reversed(live):
            try:
                booted.router.stop()
            finally:
                for node in booted.nodes:
                    try:
                        node.stop() if node.alive else node.kill()
                    except Exception:  # noqa: BLE001 - teardown best-effort
                        pass

"""ClusterMembership: remap math, replica sets, node-id plumbing.

Pure bookkeeping — no sockets — so the minimal-remap guarantee the
chaos suite observes end-to-end is pinned down here at the unit level:
a join's RemapReport names only the joiner as a gainer, a leave moves
only the leaver's fleets, and bystander replica sets never change.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterMembership, NodeInfo, node_id_of, parse_node_id
from repro.exceptions import ConfigurationError


def info(i: int) -> NodeInfo:
    return NodeInfo(host="127.0.0.1", port=9000 + i, http_port=9500 + i)


def make_members(count: int, *, replication: int = 2, fleets: int = 8):
    members = ClusterMembership(replication=replication)
    for i in range(count):
        members.add(info(i))
    for k in range(fleets):
        members.register_fleet(f"fp-{k:02d}", {"name": f"fleet-{k}"})
    return members


class TestNodes:
    def test_node_identity_round_trips(self):
        node = info(3)
        assert node.node_id == "127.0.0.1:9003"
        assert node_id_of(node.host, node.port) == node.node_id
        assert parse_node_id(node.node_id) == (node.host, node.port)
        doc = node.to_dict()
        assert doc["node_id"] == node.node_id and doc["http_port"] == 9503

    @pytest.mark.parametrize("bad", ["", "no-port", ":8080", "host:", "host:abc"])
    def test_malformed_node_ids_are_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_node_id(bad)

    def test_add_and_remove_are_idempotent(self):
        members = make_members(2)
        assert len(members) == 2
        again = members.add(info(0))
        assert again.moved == {}  # re-join of a known node moves nothing
        gone = members.remove("127.0.0.1:9999")
        assert gone.moved == {}
        assert "127.0.0.1:9000" in members
        with pytest.raises(ConfigurationError):
            members.node("127.0.0.1:9999")

    def test_replication_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ClusterMembership(replication=0)


class TestReplicaSets:
    def test_replicas_are_distinct_and_capped_by_pool_size(self):
        members = make_members(2, replication=3)
        for fp in members.fleets:
            replicas = members.replicas_for(fp)
            assert len(replicas) == 2  # only two nodes exist
            assert len(set(replicas)) == 2

    def test_empty_ring_has_no_replicas(self):
        members = ClusterMembership()
        assert members.replicas_for("fp") == []

    def test_fleets_on_inverts_replicas_for(self):
        members = make_members(3, fleets=12)
        for node_id in members.nodes:
            for fp in members.fleets_on(node_id):
                assert node_id in members.replicas_for(fp)
        total = sum(len(members.fleets_on(nid)) for nid in members.nodes)
        assert total == 12 * 2  # every fleet appears on exactly 2 nodes

    def test_status_document_shape(self):
        members = make_members(2, fleets=3)
        doc = members.status()
        assert doc["replication"] == 2
        assert [n["node_id"] for n in doc["nodes"]] == sorted(
            members.nodes
        )
        for fp, entry in doc["fleets"].items():
            assert entry["nodes"] == members.replicas_for(fp)
            assert entry["name"].startswith("fleet-")


class TestRemap:
    def test_join_gains_only_the_joiner(self):
        members = make_members(3, fleets=16)
        before = {fp: tuple(members.replicas_for(fp)) for fp in members.fleets}
        report = members.add(info(3))
        assert report.changed_node == info(3).node_id
        for fp, gained in report.moved.items():
            assert gained == (info(3).node_id,)
            assert info(3).node_id in members.replicas_for(fp)
        # Bystanders: every unmoved fleet kept its replica set verbatim.
        for fp in members.fleets:
            if fp not in report.moved:
                assert tuple(members.replicas_for(fp)) == before[fp]

    def test_leave_moves_only_the_leavers_fleets(self):
        members = make_members(3, fleets=16)
        victim = sorted(members.nodes)[0]
        owned = set(members.fleets_on(victim))
        before = {fp: tuple(members.replicas_for(fp)) for fp in members.fleets}
        report = members.remove(victim)
        assert set(report.moved) <= owned  # only the victim's fleets move
        assert report.fleets_moved == len(report.moved)
        for fp in members.fleets:
            after = members.replicas_for(fp)
            assert victim not in after
            if fp not in owned:
                assert tuple(after) == before[fp]

    def test_fleet_registry_survives_membership_churn(self):
        members = make_members(2, fleets=4)
        members.register_fleet("fp-extra", {"name": "extra", "payload": 1})
        members.add(info(2))
        members.remove("127.0.0.1:9000")
        assert members.knows_fleet("fp-extra")
        assert members.fleet_spec("fp-extra")["payload"] == 1
        assert members.fleet_spec("fp-missing") is None


@settings(max_examples=20, deadline=None)
@given(
    count=st.integers(min_value=2, max_value=6),
    replication=st.integers(min_value=1, max_value=3),
    churn=st.integers(min_value=0, max_value=10**6),
)
def test_join_then_leave_restores_every_replica_set(
    count: int, replication: int, churn: int
) -> None:
    members = make_members(count, replication=replication, fleets=12)
    before = {fp: tuple(members.replicas_for(fp)) for fp in members.fleets}
    transient = NodeInfo(host="10.0.0.1", port=20000 + churn % 1000)
    members.add(transient)
    members.remove(transient.node_id)
    after = {fp: tuple(members.replicas_for(fp)) for fp in members.fleets}
    assert after == before

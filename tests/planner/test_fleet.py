"""Tests for Fleet: pack-once semantics and content fingerprinting."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AnalyticSpeedFunction,
    ConstantSpeedFunction,
    Fleet,
    InvalidSpeedFunctionError,
    PiecewiseLinearSpeedFunction,
)
from repro.core.vectorized import PiecewiseLinearSet


def pwl(xs, ss):
    return PiecewiseLinearSpeedFunction(
        np.asarray(xs, dtype=float), np.asarray(ss, dtype=float)
    )


@pytest.fixture
def pwl_fleet():
    return Fleet(
        [
            pwl([1, 100, 1000], [50, 40, 10]),
            pwl([1, 500, 2000], [80, 60, 5]),
            pwl([1, 50], [20, 15]),
        ]
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(InvalidSpeedFunctionError):
            Fleet([])

    def test_non_speed_function_rejected(self):
        with pytest.raises(InvalidSpeedFunctionError):
            Fleet([pwl([1, 10], [5, 4]), object()])

    def test_pwl_fleet_is_packed(self, pwl_fleet):
        assert isinstance(pwl_fleet.pack, PiecewiseLinearSet)
        assert pwl_fleet.p == 3
        assert len(pwl_fleet) == 3

    def test_mixed_fleet_is_packed(self):
        # Constants compile to two-knot rows, so a PWL+constant mix packs.
        fleet = Fleet([pwl([1, 10], [5, 4]), ConstantSpeedFunction(3.0, max_size=100)])
        assert isinstance(fleet.pack, PiecewiseLinearSet)

    def test_analytic_fleet_is_generic(self):
        # Raw analytic callables have no knot lowering and block the pack.
        fleet = Fleet(
            [
                pwl([1, 10], [5, 4]),
                AnalyticSpeedFunction(
                    lambda x: 10.0 / (1.0 + x / 100.0), max_size=1000
                ),
            ]
        )
        assert fleet.pack is None

    def test_capacity_sums_max_sizes(self, pwl_fleet):
        assert pwl_fleet.capacity == 1000 + 2000 + 50

    def test_name_default_and_custom(self, pwl_fleet):
        assert pwl_fleet.name == "fleet-p3"
        assert Fleet([pwl([1, 10], [5, 4])], name="lab").name == "lab"
        assert "lab" in repr(Fleet([pwl([1, 10], [5, 4])], name="lab"))

    def test_precompiled_pack_is_adopted(self, pwl_fleet):
        # The online refitter swaps a few rows and hands the patched pack
        # to Fleet; the fingerprint must equal a from-scratch build.
        sfs = pwl_fleet.speed_functions
        pack = PiecewiseLinearSet(sfs, rows=[sf.as_knots() for sf in sfs])
        fleet = Fleet(sfs, pack=pack)
        assert fleet.pack is pack
        assert fleet.fingerprint == pwl_fleet.fingerprint

    def test_precompiled_pack_size_mismatch_rejected(self, pwl_fleet):
        with pytest.raises(InvalidSpeedFunctionError):
            Fleet(pwl_fleet.speed_functions[:2], pack=pwl_fleet.pack)


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a = Fleet([pwl([1, 100], [9, 3]), pwl([2, 50], [7, 4])])
        b = Fleet([pwl([1, 100], [9, 3]), pwl([2, 50], [7, 4])])
        assert a.fingerprint == b.fingerprint

    def test_knot_change_changes_fingerprint(self):
        a = Fleet([pwl([1, 100], [9, 3])])
        b = Fleet([pwl([1, 100], [9, 3.0000001])])
        assert a.fingerprint != b.fingerprint

    def test_order_matters(self):
        f1, f2 = pwl([1, 100], [9, 3]), pwl([2, 50], [7, 4])
        assert Fleet([f1, f2]).fingerprint != Fleet([f2, f1]).fingerprint

    def test_generic_fleet_fingerprint_stable_for_describable(self):
        mk = lambda: [
            pwl([1, 100], [9, 3]),
            ConstantSpeedFunction(3.0, max_size=100),
        ]
        assert Fleet(mk()).fingerprint == Fleet(mk()).fingerprint

    def test_opaque_members_never_share(self):
        mk = lambda: [
            ConstantSpeedFunction(3.0, max_size=100),
            AnalyticSpeedFunction(lambda x: 10.0 / (1.0 + x / 100.0), max_size=1000),
        ]
        # Distinct opaque objects -> distinct fingerprints (no false sharing).
        assert Fleet(mk()).fingerprint != Fleet(mk()).fingerprint


class TestEvaluation:
    def test_packed_allocations_match_scalar(self, pwl_fleet):
        slope = 0.05
        expected = np.array(
            [sf.intersect_ray(slope) for sf in pwl_fleet.speed_functions]
        )
        np.testing.assert_array_equal(pwl_fleet.allocations(slope), expected)
        assert pwl_fleet.total(slope) == pytest.approx(expected.sum())

    def test_generic_allocator_path(self):
        fleet = Fleet(
            [pwl([1, 10], [5, 4]), ConstantSpeedFunction(3.0, max_size=100)]
        )
        slope = 0.1
        expected = np.array(
            [sf.intersect_ray(slope) for sf in fleet.speed_functions]
        )
        np.testing.assert_array_equal(fleet.allocations(slope), expected)

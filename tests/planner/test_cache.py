"""Tests for the thread-safe LRU plan cache."""

from __future__ import annotations

import threading

import pytest

from repro import PlanCache


class TestBasics:
    def test_get_miss_then_hit(self):
        c = PlanCache(4)
        assert c.get("k") is None
        c.put("k", 42)
        assert c.get("k") == 42
        s = c.stats()
        assert (s.hits, s.misses, s.size) == (1, 1, 1)

    def test_put_refreshes_value(self):
        c = PlanCache(4)
        c.put("k", 1)
        c.put("k", 2)
        assert c.get("k") == 2
        assert len(c) == 1

    def test_contains_and_clear(self):
        c = PlanCache(4)
        c.put("k", 1)
        assert "k" in c and "z" not in c
        c.get("k")
        c.clear()
        assert len(c) == 0
        # clear() preserves the counters
        assert c.stats().hits == 1

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache(0)


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        c = PlanCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")          # refresh a -> b is now LRU
        c.put("c", 3)       # evicts b
        assert c.get("b") is None
        assert c.get("a") == 1 and c.get("c") == 3
        assert c.stats().evictions == 1

    def test_put_refresh_counts_no_eviction(self):
        c = PlanCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)      # refresh, not insert
        assert c.stats().evictions == 0
        assert len(c) == 2

    def test_hit_rate(self):
        c = PlanCache(2)
        assert c.stats().hit_rate == 0.0
        c.put("a", 1)
        c.get("a")
        c.get("a")
        c.get("missing")
        assert c.stats().hit_rate == pytest.approx(2 / 3)
        assert "hit_rate" in str(c.stats())


class TestInvalidation:
    def test_invalidate_matches_bare_and_tuple_keys(self):
        c = PlanCache(8)
        c.put("fp-a", 0)
        c.put(("fp-a", 100, "bisection"), 1)
        c.put(("fp-a", 200, "bisection"), 2)
        c.put(("fp-b", 100, "bisection"), 3)
        assert c.invalidate("fp-a") == 3
        assert len(c) == 1
        assert c.get(("fp-b", 100, "bisection")) == 3

    def test_invalidate_is_exact(self):
        """Untouched fingerprints keep entries *and* their LRU position."""
        c = PlanCache(3)
        c.put(("keep-old", 1), "old")
        c.put(("drop", 1), "x")
        c.put(("keep-new", 1), "new")
        assert c.invalidate("drop") == 1
        # Two slots left; filling one more must evict keep-old (still the
        # least recently used), not keep-new.
        c.put(("fresh", 1), "y")
        c.put(("fresh2", 1), "z")
        assert c.get(("keep-old", 1)) is None
        assert c.get(("keep-new", 1)) == "new"

    def test_invalidate_missing_fingerprint_is_noop(self):
        c = PlanCache(4)
        c.put(("fp", 1), 1)
        assert c.invalidate("other") == 0
        assert len(c) == 1
        assert c.stats().invalidations == 0

    def test_invalidate_where_predicate(self):
        c = PlanCache(8)
        for n in (1, 2, 3, 4):
            c.put(("fp", n), n)
        assert c.invalidate_where(lambda key: key[1] % 2 == 0) == 2
        assert c.get(("fp", 1)) == 1 and c.get(("fp", 3)) == 3
        assert c.get(("fp", 2)) is None

    def test_invalidations_counted_in_stats(self):
        c = PlanCache(8)
        c.put(("fp", 1), 1)
        c.put(("fp", 2), 2)
        c.invalidate("fp")
        s = c.stats()
        assert s.invalidations == 2
        assert "invalidations" in str(s)


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        c = PlanCache(64)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(500):
                    k = (seed * 31 + i) % 100
                    if i % 3 == 0:
                        c.put(k, k)
                    else:
                        v = c.get(k)
                        assert v is None or v == k
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        s = c.stats()
        assert len(c) <= 64
        assert s.hits + s.misses > 0

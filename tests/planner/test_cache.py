"""Tests for the thread-safe LRU plan cache."""

from __future__ import annotations

import threading

import pytest

from repro import PlanCache


class TestBasics:
    def test_get_miss_then_hit(self):
        c = PlanCache(4)
        assert c.get("k") is None
        c.put("k", 42)
        assert c.get("k") == 42
        s = c.stats()
        assert (s.hits, s.misses, s.size) == (1, 1, 1)

    def test_put_refreshes_value(self):
        c = PlanCache(4)
        c.put("k", 1)
        c.put("k", 2)
        assert c.get("k") == 2
        assert len(c) == 1

    def test_contains_and_clear(self):
        c = PlanCache(4)
        c.put("k", 1)
        assert "k" in c and "z" not in c
        c.get("k")
        c.clear()
        assert len(c) == 0
        # clear() preserves the counters
        assert c.stats().hits == 1

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache(0)


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        c = PlanCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")          # refresh a -> b is now LRU
        c.put("c", 3)       # evicts b
        assert c.get("b") is None
        assert c.get("a") == 1 and c.get("c") == 3
        assert c.stats().evictions == 1

    def test_put_refresh_counts_no_eviction(self):
        c = PlanCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)      # refresh, not insert
        assert c.stats().evictions == 0
        assert len(c) == 2

    def test_hit_rate(self):
        c = PlanCache(2)
        assert c.stats().hit_rate == 0.0
        c.put("a", 1)
        c.get("a")
        c.get("a")
        c.get("missing")
        assert c.stats().hit_rate == pytest.approx(2 / 3)
        assert "hit_rate" in str(c.stats())


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        c = PlanCache(64)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(500):
                    k = (seed * 31 + i) % 100
                    if i % 3 == 0:
                        c.put(k, k)
                    else:
                        v = c.get(k)
                        assert v is None or v == k
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        s = c.stats()
        assert len(c) <= 64
        assert s.hits + s.misses > 0

"""Planner equivalence and behaviour tests.

The load-bearing guarantee of the planner is *bit-identity*: a plan served
warm (reused bracket), batched (monotone slope sweep), or from the cache
must equal a cold :func:`repro.partition_bisection` run exactly — same
integer allocations, same float makespan.  The hypothesis properties here
assert that over random fleets and query streams.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConfigurationError,
    ConstantSpeedFunction,
    Fleet,
    PiecewiseLinearSpeedFunction,
    Planner,
    partition_bisection,
    partition_combined,
    partition_modified,
)


@st.composite
def pwl_fleet(draw, min_p=2, max_p=6):
    """A packable fleet of piecewise-linear functions (decreasing g)."""
    p = draw(st.integers(min_value=min_p, max_value=max_p))
    sfs = []
    for _ in range(p):
        k = draw(st.integers(min_value=2, max_value=5))
        xs = sorted(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=50_000),
                    min_size=k, max_size=k, unique=True,
                )
            )
        )
        gs = sorted(
            draw(
                st.lists(
                    st.floats(min_value=1e-3, max_value=1e2),
                    min_size=k, max_size=k, unique=True,
                )
            ),
            reverse=True,
        )
        sfs.append(
            PiecewiseLinearSpeedFunction(
                np.array(xs, dtype=float),
                np.array(gs) * np.array(xs, dtype=float),
            )
        )
    return Fleet(sfs)


@st.composite
def fleet_and_sizes(draw):
    fleet = draw(pwl_fleet())
    cap = int(fleet.capacity)
    k = draw(st.integers(min_value=1, max_value=8))
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=max(cap, 1)),
            min_size=k, max_size=k,
        )
    )
    return fleet, sizes


class TestBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(fleet_and_sizes())
    def test_warm_plans_equal_cold_bisection(self, case):
        fleet, sizes = case
        planner = Planner(fleet)
        for n in sizes:
            cold = partition_bisection(n, fleet.speed_functions)
            warm = planner.plan(n)
            np.testing.assert_array_equal(warm.allocation, cold.allocation)
            assert warm.makespan == cold.makespan

    @settings(max_examples=60, deadline=None)
    @given(fleet_and_sizes())
    def test_plan_many_equals_cold_bisection(self, case):
        fleet, sizes = case
        results = Planner(fleet).plan_many(sizes)
        assert len(results) == len(sizes)
        for n, r in zip(sizes, results):
            cold = partition_bisection(n, fleet.speed_functions)
            np.testing.assert_array_equal(r.allocation, cold.allocation)
            assert r.makespan == cold.makespan

    @settings(max_examples=30, deadline=None)
    @given(fleet_and_sizes())
    def test_cache_served_plans_identical(self, case):
        fleet, sizes = case
        planner = Planner(fleet)
        first = [planner.plan(n) for n in sizes]
        second = [planner.plan(n) for n in sizes]
        for a, b in zip(first, second):
            assert a is b  # served from cache, not recomputed

    @settings(max_examples=20, deadline=None)
    @given(fleet_and_sizes(), st.sampled_from(["combined", "modified"]))
    def test_other_algorithms_warm_equal_cold(self, case, algorithm):
        fleet, sizes = case
        cold_fn = {
            "combined": partition_combined,
            "modified": partition_modified,
        }[algorithm]
        planner = Planner(fleet, algorithm=algorithm)
        for n in sizes:
            cold = cold_fn(n, fleet.speed_functions)
            warm = planner.plan(n)
            np.testing.assert_array_equal(warm.allocation, cold.allocation)
            assert warm.makespan == cold.makespan


class TestPlannerBehaviour:
    @pytest.fixture
    def fleet(self):
        return Fleet(
            [
                PiecewiseLinearSpeedFunction(
                    np.array([1.0, 100.0, 10_000.0]),
                    np.array([50.0, 4000.0, 90_000.0]),
                ),
                PiecewiseLinearSpeedFunction(
                    np.array([1.0, 500.0, 20_000.0]),
                    np.array([80.0, 30_000.0, 200_000.0]),
                ),
            ]
        )

    def test_unknown_algorithm_rejected(self, fleet):
        with pytest.raises(ConfigurationError):
            Planner(fleet, algorithm="magic")

    def test_counters_track_cold_warm_and_hits(self, fleet):
        planner = Planner(fleet)
        planner.plan(100)
        planner.plan(200)
        planner.plan(100)
        s = planner.stats()
        assert s.cold_plans == 1
        assert s.warm_plans == 1
        assert s.plans_computed == 2
        assert s.cache.hits == 1
        assert s.cache.misses == 2
        assert "cold=1" in str(s)

    def test_zero_size_plan(self, fleet):
        r = Planner(fleet).plan(0)
        assert int(r.allocation.sum()) == 0
        assert r.makespan == 0.0

    def test_plan_many_preserves_input_order_with_duplicates(self, fleet):
        planner = Planner(fleet)
        sizes = [500, 10, 500, 90, 10]
        results = planner.plan_many(sizes)
        for n, r in zip(sizes, results):
            assert int(r.allocation.sum()) == n
        # Duplicates are cache hits inside the sweep.
        assert planner.stats().plans_computed == 3

    def test_results_carry_reusable_region(self, fleet):
        r = Planner(fleet).plan(777)
        assert r.region is not None
        again = partition_bisection(777, fleet.speed_functions, region=r.region)
        np.testing.assert_array_equal(again.allocation, r.allocation)

    def test_distinct_fleets_do_not_share_cache_keys(self, fleet):
        planner = Planner(fleet)
        planner.plan(100)
        other = Fleet(fleet.speed_functions)  # same content
        assert other.fingerprint == planner.fleet.fingerprint

    def test_constant_fleet_supported(self):
        fleet = Fleet(
            [
                ConstantSpeedFunction(5.0, max_size=1000),
                ConstantSpeedFunction(3.0, max_size=1000),
            ]
        )
        # Constants compile, so even the classical single-number fleet packs.
        assert fleet.pack is not None
        planner = Planner(fleet)
        for n in (10, 321, 1234):
            cold = partition_bisection(n, fleet.speed_functions)
            warm = planner.plan(n)
            np.testing.assert_array_equal(warm.allocation, cold.allocation)

    def test_threaded_queries_consistent(self, fleet):
        import threading

        planner = Planner(fleet)
        sizes = list(range(1, 60))
        expected = {
            n: partition_bisection(n, fleet.speed_functions).allocation
            for n in sizes
        }
        errors = []

        def worker():
            try:
                for n in sizes:
                    np.testing.assert_array_equal(
                        planner.plan(n).allocation, expected[n]
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

"""Threaded stress tests: Planner and PlanCache under concurrent load.

The serving layer keeps each planner single-owner by design, but nothing
in the Planner/PlanCache contract *requires* that — both are documented
as thread-safe.  These tests hammer them from many threads and assert
the two properties the service relies on:

* **bit-identity** — a plan computed under contention equals the plan
  the same planner produces serially, exactly (same float makespan,
  same integer allocation);
* **consistent accounting** — after the dust settles, the cache's
  ``hits + misses`` equals the number of lookups issued, and the cache
  never exceeds its bound.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro import Fleet, Planner
from repro.planner import PlanCache
from tests.conftest import make_pwl

N_THREADS = 8
SIZES = [1_000, 5_000, 25_000, 90_000, 240_000, 611_000, 1_000_000, 1_499_999]


def _fleet() -> Fleet:
    return Fleet(
        [make_pwl(100.0), make_pwl(220.0), make_pwl(320.0, scale=1.5)],
        name="stress",
    )


class TestPlannerUnderThreads:
    def test_concurrent_plans_are_bit_identical_to_serial(self):
        serial = {n: Planner(_fleet()).plan(n) for n in SIZES}
        planner = Planner(_fleet())
        barrier = threading.Barrier(N_THREADS)
        failures: list[str] = []

        def worker(seed: int) -> None:
            barrier.wait()  # maximise interleaving on the first solves
            order = SIZES[seed:] + SIZES[:seed]
            for _ in range(5):
                for n in order:
                    got = planner.plan(n)
                    want = serial[n]
                    if float(got.makespan) != float(want.makespan) or list(
                        got.allocation
                    ) != list(want.allocation):
                        failures.append(f"n={n} diverged under contention")

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(worker, range(N_THREADS)))
        assert failures == []

    def test_stats_accounting_is_consistent_after_contention(self):
        planner = Planner(_fleet(), cache_size=len(SIZES) + 4)
        lookups_per_thread = 5 * len(SIZES)

        def worker(seed: int) -> None:
            order = SIZES[seed % len(SIZES):] + SIZES[: seed % len(SIZES)]
            for _ in range(5):
                for n in order:
                    planner.plan(n)

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(worker, range(N_THREADS)))
        stats = planner.stats()
        total_lookups = N_THREADS * lookups_per_thread
        assert stats.cache.hits + stats.cache.misses == total_lookups
        # Every distinct size is solved at least once and at most once
        # per concurrent racer; the cache holds them all afterwards.
        assert len(SIZES) <= stats.cache.misses <= N_THREADS * len(SIZES)
        assert stats.cache.size == len(SIZES)
        assert stats.cache.evictions == 0
        assert stats.plans_computed == stats.cold_plans + stats.warm_plans
        assert stats.plans_computed == stats.cache.misses  # one solve per miss

    def test_plan_many_races_plan_without_divergence(self):
        serial = {n: Planner(_fleet()).plan(n) for n in SIZES}
        planner = Planner(_fleet())

        def batch_worker(_: int) -> None:
            for result, n in zip(planner.plan_many(SIZES), SIZES):
                assert float(result.makespan) == float(serial[n].makespan)

        def single_worker(seed: int) -> None:
            for n in SIZES[seed:] + SIZES[:seed]:
                got = planner.plan(n)
                assert list(got.allocation) == list(serial[n].allocation)

        with ThreadPoolExecutor(N_THREADS) as pool:
            jobs = [
                pool.submit(batch_worker if k % 2 else single_worker, k % len(SIZES))
                for k in range(N_THREADS)
            ]
            for job in jobs:
                job.result()  # re-raises worker assertions


class TestPlanCacheUnderThreads:
    def test_bounded_cache_accounting_under_contention(self):
        cache = PlanCache(maxsize=32, name="stress")
        keys = list(range(48))  # more keys than capacity: forces eviction
        rounds = 40

        def worker(seed: int) -> None:
            local = keys[seed % len(keys):] + keys[: seed % len(keys)]
            for _ in range(rounds):
                for key in local:
                    if cache.get(key) is None:
                        cache.put(key, key * 2)

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(worker, range(N_THREADS)))

        stats = cache.stats()
        assert stats.hits + stats.misses == N_THREADS * rounds * len(keys)
        assert stats.misses >= len(keys)  # every key missed at least once
        assert len(cache) <= 32
        assert stats.size == len(cache)
        # Everything still cached must round-trip to the value written.
        for key in keys:
            value = cache.get(key)
            assert value is None or value == key * 2

    def test_cache_within_capacity_reaches_steady_state(self):
        cache = PlanCache(maxsize=64, name="steady")
        keys = list(range(48))

        def worker(_: int) -> None:
            for key in keys:
                if cache.get(key) is None:
                    cache.put(key, ("v", key))

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(worker, range(N_THREADS)))

        stats = cache.stats()
        assert stats.evictions == 0
        assert len(cache) == len(keys)
        assert all(cache.get(k) == ("v", k) for k in keys)
        # With no evictions, each key misses at most once per racer.
        assert len(keys) <= stats.misses <= N_THREADS * len(keys)

"""Fleet fingerprints must survive serialisation round trips.

The fingerprint is the plan-cache key *and* the serving layer's routing
key: a fleet registered over the wire, or rebuilt after a restart from a
model file, must land on the same caches as the original.  These tests
pin that contract through every serialisation path the repo has —
:func:`repro.io.save_models`/``load_models`` files, raw record dicts,
and the serve protocol's fleet specs.
"""

from __future__ import annotations

import json

from repro import ConstantSpeedFunction, Fleet
from repro.io import (
    load_models,
    save_models,
    speed_function_from_dict,
    speed_function_to_dict,
)
from repro.serve.protocol import (
    fleet_spec_from_speed_functions,
    speed_functions_from_fleet_spec,
)
from tests.conftest import make_hump_pwl, make_increasing_pwl, make_pwl


def _pwl_fleet() -> Fleet:
    return Fleet(
        [make_pwl(123.456), make_hump_pwl(250.0), make_increasing_pwl(80.125)],
        name="mixed",
    )


class TestIoRoundTrip:
    def test_save_load_models_preserves_fingerprint(self, tmp_path):
        fleet = _pwl_fleet()
        path = tmp_path / "models.json"
        save_models(
            path,
            {f"m{i}": sf for i, sf in enumerate(fleet.speed_functions)},
            kernel="matmul",
        )
        loaded = load_models(path)
        rebuilt = Fleet([loaded[f"m{i}"] for i in range(fleet.p)], name="mixed")
        assert rebuilt.fingerprint == fleet.fingerprint

    def test_constant_models_round_trip(self, tmp_path):
        fleet = Fleet(
            [ConstantSpeedFunction(75.5), ConstantSpeedFunction(120.0)],
            name="const",
        )
        path = tmp_path / "const.json"
        save_models(path, {"a": fleet.speed_functions[0], "b": fleet.speed_functions[1]})
        loaded = load_models(path)
        rebuilt = Fleet([loaded["a"], loaded["b"]], name="const")
        assert rebuilt.fingerprint == fleet.fingerprint

    def test_double_round_trip_is_a_fixed_point(self, tmp_path):
        fleet = _pwl_fleet()
        once = [
            speed_function_from_dict(speed_function_to_dict(sf))
            for sf in fleet.speed_functions
        ]
        twice = [
            speed_function_from_dict(speed_function_to_dict(sf)) for sf in once
        ]
        assert Fleet(twice, name="mixed").fingerprint == fleet.fingerprint

    def test_order_changes_the_fingerprint(self):
        sfs = [make_pwl(100.0), make_pwl(200.0)]
        assert Fleet(sfs).fingerprint != Fleet(sfs[::-1]).fingerprint


class TestServeSpecRoundTrip:
    def test_wire_spec_matches_local_fingerprint(self):
        fleet = _pwl_fleet()
        spec = fleet_spec_from_speed_functions(fleet.speed_functions, name="mixed")
        # ...including after a trip through actual JSON text, which is
        # what the register_fleet frame really carries.
        wired = json.loads(json.dumps(spec))
        rebuilt = Fleet(speed_functions_from_fleet_spec(wired), name="mixed")
        assert rebuilt.fingerprint == fleet.fingerprint

    def test_spec_and_model_file_agree(self, tmp_path):
        """A restart that reloads from disk re-registers under the same key."""
        fleet = _pwl_fleet()
        path = tmp_path / "models.json"
        save_models(path, {f"m{i}": sf for i, sf in enumerate(fleet.speed_functions)})
        loaded = load_models(path)
        spec = fleet_spec_from_speed_functions(
            [loaded[f"m{i}"] for i in range(fleet.p)], name="mixed"
        )
        rebuilt = Fleet(speed_functions_from_fleet_spec(spec), name="mixed")
        assert rebuilt.fingerprint == fleet.fingerprint

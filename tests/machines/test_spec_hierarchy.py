"""Tests for machine specs and the memory-hierarchy efficiency model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError
from repro.machines import Integration, MachineSpec, PROFILES, efficiency
from repro.machines.hierarchy import KernelProfile


def spec(**over):
    base = dict(
        name="T",
        os="Linux",
        arch="TestArch",
        cpu_mhz=1000,
        main_memory_kb=1_000_000,
        free_memory_kb=700_000,
        cache_kb=512,
    )
    base.update(over)
    return MachineSpec(**base)


class TestMachineSpec:
    def test_cache_elements(self):
        assert spec(cache_kb=512).cache_elements == 512 * 1024 // 8

    def test_free_memory_elements(self):
        assert spec().free_memory_elements == 700_000 * 1024 // 8

    def test_swap_defaults_to_main(self):
        s = spec()
        assert s.swap_kb == s.main_memory_kb

    def test_capacity_includes_swap(self):
        s = spec(swap_kb=500_000)
        assert s.capacity_elements == (700_000 + 500_000) * 1024 // 8

    def test_matrix_size_for_elements(self):
        assert spec().matrix_size_for_elements(300, matrices=3) == pytest.approx(10.0)

    def test_rejects_bad_mhz(self):
        with pytest.raises(ConfigurationError):
            spec(cpu_mhz=0)

    def test_rejects_free_over_main(self):
        with pytest.raises(ConfigurationError):
            spec(free_memory_kb=2_000_000)

    def test_rejects_negative_swap(self):
        with pytest.raises(ConfigurationError):
            spec(swap_kb=-1)

    def test_str_mentions_name(self):
        assert "T" in str(spec())

    def test_frozen(self):
        s = spec()
        with pytest.raises(AttributeError):
            s.cpu_mhz = 5  # type: ignore[misc]


class TestKernelProfiles:
    def test_registered_profiles(self):
        assert {"arrayops", "matmul_atlas", "matmul_naive", "lu"} <= set(PROFILES)

    def test_naive_smoother_than_atlas(self):
        assert (
            PROFILES["matmul_naive"].cache_smoothness
            > PROFILES["matmul_atlas"].cache_smoothness
        )

    def test_naive_drops_more(self):
        assert PROFILES["matmul_naive"].cache_drop > PROFILES["matmul_atlas"].cache_drop

    def test_rejects_bad_cache_drop(self):
        with pytest.raises(ConfigurationError):
            KernelProfile("x", 1.5, 1.0, 2.0, 0.2, "matmul")

    def test_rejects_bad_paging(self):
        with pytest.raises(ConfigurationError):
            KernelProfile("x", 0.1, 1.0, 0.0, 0.2, "matmul")


class TestEfficiency:
    def _eff(self, x, profile="matmul_atlas"):
        return efficiency(
            x,
            cache_elements=65_536,
            paging_elements=10_000_000,
            profile=PROFILES[profile],
        )

    def test_in_unit_interval(self):
        xs = np.geomspace(1.0, 1e8, 200)
        e = self._eff(xs)
        assert np.all(e > 0) and np.all(e <= 1)

    def test_near_peak_in_cache(self):
        # Comfortably in cache, past the start-up ramp.
        assert float(self._eff(60_000)) > 0.85

    def test_paging_collapse(self):
        pre = float(self._eff(9_000_000))
        post = float(self._eff(40_000_000))
        assert post < 0.2 * pre

    def test_g_strictly_decreasing(self):
        xs = np.geomspace(1.0, 4e7, 400)
        e = self._eff(xs)
        g = e / xs
        assert np.all(np.diff(g) < 0)

    def test_naive_declines_smoothly(self):
        # The poor-pattern kernel loses speed before paging too.
        mid_cacheish = float(self._eff(100_000, "matmul_naive"))
        big = float(self._eff(5_000_000, "matmul_naive"))
        assert big < mid_cacheish

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            efficiency(
                10.0,
                cache_elements=0,
                paging_elements=100,
                profile=PROFILES["lu"],
            )

    def test_floor_keeps_speed_positive(self):
        deep = float(self._eff(1e9))
        assert deep > 0

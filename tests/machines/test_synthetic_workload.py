"""Tests for synthetic speed functions and workload bands."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, InvalidSpeedFunctionError
from repro.machines import (
    Integration,
    MachineSpec,
    build_speed_function,
    fluctuation_band,
    ground_truth_grid,
    paging_onset_elements,
)
from repro.machines.workload import (
    HIGH_INTEGRATION_WIDTH_LARGE,
    HIGH_INTEGRATION_WIDTH_SMALL,
    LOW_INTEGRATION_WIDTH,
)


@pytest.fixture
def spec():
    return MachineSpec(
        name="S",
        os="Linux",
        arch="Test",
        cpu_mhz=2000,
        main_memory_kb=1_000_000,
        free_memory_kb=500_000,
        cache_kb=512,
    )


class TestPagingOnset:
    def test_published_matrix_size_wins(self, spec):
        assert paging_onset_elements(spec, 4500, matrices=3) == pytest.approx(
            3 * 4500**2
        )

    def test_derived_from_free_memory(self, spec):
        x = paging_onset_elements(spec, None, matrices=1)
        assert x == pytest.approx(0.85 * spec.free_memory_elements)

    def test_rejects_bad_size(self, spec):
        with pytest.raises(ConfigurationError):
            paging_onset_elements(spec, -5, matrices=1)


class TestBuildSpeedFunction:
    def test_plateau_near_peak(self, spec):
        sf = build_speed_function(
            spec, peak_mflops=200.0, profile="matmul_atlas", paging_matrix_size=5000, matrices=3
        )
        assert float(sf.speed(3 * 2000**2)) > 0.85 * 200.0

    def test_collapse_past_paging(self, spec):
        sf = build_speed_function(
            spec, peak_mflops=200.0, profile="matmul_atlas", paging_matrix_size=5000, matrices=3
        )
        pre = float(sf.speed(3 * 4500**2))
        post = float(sf.speed(3 * 9000**2))
        assert post < 0.2 * pre

    def test_max_size_is_capacity_factor(self, spec):
        sf = build_speed_function(
            spec,
            peak_mflops=100.0,
            profile="lu",
            paging_matrix_size=4000,
            capacity_factor=3.0,
        )
        assert sf.max_size == pytest.approx(3.0 * 4000**2)

    def test_profile_object_accepted(self, spec):
        from repro.machines import PROFILES

        sf = build_speed_function(
            spec, peak_mflops=100.0, profile=PROFILES["lu"], paging_matrix_size=4000
        )
        assert sf.max_size > 0

    def test_unknown_profile(self, spec):
        with pytest.raises(ConfigurationError):
            build_speed_function(spec, peak_mflops=100.0, profile="gpu")

    def test_rejects_bad_peak(self, spec):
        with pytest.raises(ConfigurationError):
            build_speed_function(spec, peak_mflops=0.0, profile="lu")

    def test_rejects_bad_capacity_factor(self, spec):
        with pytest.raises(ConfigurationError):
            build_speed_function(
                spec, peak_mflops=10.0, profile="lu", capacity_factor=0.5
            )

    def test_single_intersection_invariant(self, spec):
        sf = build_speed_function(
            spec, peak_mflops=150.0, profile="matmul_naive", paging_matrix_size=4500, matrices=3
        )
        sf.check_single_intersection(np.geomspace(10, sf.max_size, 500))

    def test_ground_truth_grid(self, spec):
        sf = build_speed_function(
            spec, peak_mflops=150.0, profile="lu", paging_matrix_size=4500
        )
        grid = ground_truth_grid(sf, num=48)
        assert grid.num_knots == 48
        # Exact at the knots; close before the paging collapse (linear
        # interpolation across the cliff is intentionally coarse).
        np.testing.assert_allclose(
            grid.speed(grid.knot_sizes), sf.speed(grid.knot_sizes), rtol=1e-9
        )
        xs = np.geomspace(1e4, 4500**2 * 0.8, 20)
        np.testing.assert_allclose(grid.speed(xs), sf.speed(xs), rtol=0.1)


class TestFluctuationBand:
    def _sf(self, spec):
        return build_speed_function(
            spec, peak_mflops=100.0, profile="matmul_atlas", paging_matrix_size=5000, matrices=3
        )

    def test_low_integration_constant_width(self, spec):
        band = fluctuation_band(self._sf(spec), Integration.LOW)
        xs = np.array([1e4, 1e7])
        np.testing.assert_allclose(
            np.asarray(band.width_at(xs)), LOW_INTEGRATION_WIDTH
        )

    def test_high_integration_width_declines(self, spec):
        sf = self._sf(spec)
        band = fluctuation_band(sf, Integration.HIGH)
        w_small = float(np.asarray(band.width_at(sf.max_size * 1e-4)))
        w_large = float(np.asarray(band.width_at(sf.max_size)))
        assert w_small == pytest.approx(HIGH_INTEGRATION_WIDTH_SMALL)
        assert w_large == pytest.approx(HIGH_INTEGRATION_WIDTH_LARGE)
        # Close-to-linear decline in between.
        mid = float(np.asarray(band.width_at(sf.max_size * 0.5)))
        assert w_large < mid < w_small

    def test_custom_widths(self, spec):
        band = fluctuation_band(
            self._sf(spec), Integration.HIGH, width_small=0.3, width_large=0.1
        )
        w = float(np.asarray(band.width_at(1.0)))
        assert w == pytest.approx(0.3)

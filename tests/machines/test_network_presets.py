"""Tests for Machine/HeterogeneousNetwork containers and the table presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError
from repro.machines import (
    HeterogeneousNetwork,
    Machine,
    TABLE1_SPECS,
    TABLE2_PAGING_LU,
    TABLE2_PAGING_MM,
    TABLE2_SPECS,
    build_machine,
    table1_network,
    table2_network,
)
from repro.machines.presets import KernelModel


@pytest.fixture(scope="module")
def net1():
    return table1_network()


@pytest.fixture(scope="module")
def net2():
    return table2_network()


class TestMachine:
    def test_kernels_listed(self, net1):
        m = net1["Comp1"]
        assert set(m.kernels) == {"arrayops", "matmul_atlas", "matmul_naive"}

    def test_unknown_kernel(self, net1):
        with pytest.raises(ConfigurationError):
            net1["Comp1"].band("fft")

    def test_requires_bands(self):
        with pytest.raises(ConfigurationError):
            Machine(TABLE1_SPECS[0], {})

    def test_sample_speed_function_within_band(self, net1, rng):
        m = net1["Comp1"]
        band = m.band("matmul_atlas")
        sf = m.sample_speed_function("matmul_atlas", rng)
        # Compare at the sample's own knots: between knots the piecewise
        # tabulation may overshoot the analytic envelope near the paging
        # cliff by interpolation error, which is expected.
        xs = np.asarray(sf.knot_sizes)
        assert np.all(sf.speed(xs) <= band.upper_speed(xs) + 1e-9)
        assert np.all(sf.speed(xs) >= band.lower_speed(xs) - 1e-9)


class TestNetwork:
    def test_len_and_iteration(self, net2):
        assert len(net2) == 12
        assert [m.name for m in net2] == list(net2.names)

    def test_lookup_by_name_and_index(self, net2):
        assert net2["X5"].name == "X5"
        assert net2[0].name == "X1"

    def test_unknown_name(self, net2):
        with pytest.raises(KeyError):
            net2["X99"]

    def test_duplicate_names_rejected(self, net2):
        with pytest.raises(ConfigurationError):
            HeterogeneousNetwork([net2["X1"], net2["X1"]])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousNetwork([])

    def test_speed_functions_order(self, net2):
        sfs = net2.speed_functions("matmul")
        assert len(sfs) == 12
        assert sfs[0] is net2["X1"].speed_function("matmul")

    def test_subset(self, net2):
        sub = net2.subset(["X3", "X10"])
        assert sub.names == ("X3", "X10")

    def test_replicated(self, net2):
        rep = net2.replicated(3)
        assert len(rep) == 36
        assert rep.names.count("X1") == 1 and "X1.2" in rep.names

    def test_replicated_rejects_zero(self, net2):
        with pytest.raises(ConfigurationError):
            net2.replicated(0)

    def test_sample_deterministic(self, net2):
        a = net2.sample_speed_functions("lu", np.random.default_rng(9))
        b = net2.sample_speed_functions("lu", np.random.default_rng(9))
        xs = np.geomspace(1e4, 1e7, 10)
        for sa, sb in zip(a, b):
            np.testing.assert_allclose(sa.speed(xs), sb.speed(xs))


class TestTablePresets:
    def test_table1_rows(self):
        assert [s.name for s in TABLE1_SPECS] == ["Comp1", "Comp2", "Comp3", "Comp4"]
        comp2 = TABLE1_SPECS[1]
        assert comp2.cpu_mhz == 440 and comp2.cache_kb == 2048

    def test_table2_rows(self):
        assert len(TABLE2_SPECS) == 12
        x3 = TABLE2_SPECS[2]
        assert x3.main_memory_kb == 7_933_500
        assert x3.free_memory_kb == 2_221_436

    def test_paging_columns_complete(self):
        names = {s.name for s in TABLE2_SPECS}
        assert set(TABLE2_PAGING_MM) == names
        assert set(TABLE2_PAGING_LU) == names

    def test_lu_paging_later_than_mm(self):
        # LU stores one matrix vs MM's three: paging starts later (Table 2).
        for name in TABLE2_PAGING_MM:
            assert TABLE2_PAGING_LU[name] >= TABLE2_PAGING_MM[name]

    def test_mm_heterogeneity_ratio(self, net2):
        # Section 3.1: fastest/slowest ~ 8 for MM at 4500x4500.
        x = 3 * 4500**2
        speeds = [float(m.speed_function("matmul").speed(x)) for m in net2]
        ratio = max(speeds) / min(speeds)
        assert 5.0 < ratio < 12.0

    def test_lu_calibration_anchors(self, net2):
        # X6 ~ 130 MFlops at 8500^2; X1 ~ 19 MFlops at 4500^2.
        s_x6 = float(net2["X6"].speed_function("lu").speed(8500**2))
        s_x1 = float(net2["X1"].speed_function("lu").speed(4500**2))
        assert s_x6 == pytest.approx(130.0, rel=0.15)
        assert s_x1 == pytest.approx(19.0, rel=0.15)

    def test_mm_calibration_anchors(self, net2):
        s_x5 = float(net2["X5"].speed_function("matmul").speed(3 * 4500**2))
        s_x10 = float(net2["X10"].speed_function("matmul").speed(3 * 4500**2))
        assert s_x5 == pytest.approx(250.0, rel=0.15)
        assert s_x10 == pytest.approx(31.0, rel=0.15)

    def test_build_machine_custom(self):
        m = build_machine(
            TABLE1_SPECS[0],
            {"mm": KernelModel("matmul_atlas", 100.0, paging_matrix_size=3000, matrices=3)},
        )
        assert m.kernels == ("mm",)

"""Tests for the time-varying (Ornstein-Uhlenbeck) load model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, ConstantSpeedFunction
from repro.machines.dynamic import dynamic_task_time, effective_speed, ou_load_trace
from tests.conftest import make_pwl


class TestOULoadTrace:
    def test_within_bounds(self, rng):
        lam = ou_load_trace(rng, 2000, 0.1, mean=0.2, sigma=0.3)
        assert np.all(lam >= 0.0) and np.all(lam <= 0.95)

    def test_mean_reversion(self, rng):
        lam = ou_load_trace(rng, 50_000, 0.1, mean=0.25, sigma=0.05, tau=2.0)
        assert lam.mean() == pytest.approx(0.25, abs=0.02)

    def test_correlation_decays(self, rng):
        lam = ou_load_trace(rng, 50_000, 0.1, mean=0.2, sigma=0.1, tau=5.0)
        centered = lam - lam.mean()
        var = float(np.mean(centered**2))
        lag = int(5.0 / 0.1)  # one time constant
        autocorr = float(np.mean(centered[:-lag] * centered[lag:])) / var
        assert autocorr == pytest.approx(np.exp(-1.0), abs=0.12)

    def test_deterministic_with_seed(self):
        a = ou_load_trace(np.random.default_rng(5), 100, 0.1)
        b = ou_load_trace(np.random.default_rng(5), 100, 0.1)
        np.testing.assert_array_equal(a, b)

    def test_zero_sigma_constant(self, rng):
        lam = ou_load_trace(rng, 100, 0.1, mean=0.3, sigma=0.0)
        np.testing.assert_allclose(lam[10:], 0.3, atol=1e-12)

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ConfigurationError):
            ou_load_trace(rng, 0, 0.1)
        with pytest.raises(ConfigurationError):
            ou_load_trace(rng, 10, 0.1, tau=0.0)
        with pytest.raises(ConfigurationError):
            ou_load_trace(rng, 10, 0.1, clip=(0.5, 0.2))


class TestDynamicTaskTime:
    def test_no_load_matches_static(self):
        sf = ConstantSpeedFunction(50.0, max_size=1e9)
        trace = np.zeros(10_000)
        t = dynamic_task_time(sf, 1000.0, trace, dt=0.01)
        assert t == pytest.approx(1000.0 / 50.0, rel=1e-3)

    def test_constant_load_scales_time(self):
        sf = ConstantSpeedFunction(50.0, max_size=1e9)
        trace = np.full(100_000, 0.5)
        t = dynamic_task_time(sf, 1000.0, trace, dt=0.01)
        assert t == pytest.approx(2.0 * 1000.0 / 50.0, rel=1e-3)

    def test_zero_task_free(self):
        sf = ConstantSpeedFunction(5.0)
        assert dynamic_task_time(sf, 0.0, np.zeros(10), 0.1) == 0.0

    def test_trace_too_short(self):
        sf = ConstantSpeedFunction(1.0, max_size=1e9)
        with pytest.raises(ConfigurationError):
            dynamic_task_time(sf, 1e6, np.zeros(10), 0.1)

    def test_task_beyond_bound(self):
        sf = make_pwl(10.0)
        with pytest.raises(ConfigurationError):
            dynamic_task_time(sf, 1e12, np.zeros(10), 0.1)

    def test_functional_speed_used_at_size(self):
        sf = make_pwl(100.0)
        trace = np.zeros(100_000)
        x = 1e6  # deep in the declining region
        t = dynamic_task_time(sf, x, trace, dt=1.0)
        assert t == pytest.approx(float(sf.time(x)), rel=1e-3)


class TestEffectiveSpeed:
    def test_bounded_by_base(self, rng):
        sf = ConstantSpeedFunction(80.0, max_size=1e9)
        trace = ou_load_trace(rng, 50_000, 0.1, mean=0.2, sigma=0.1)
        s = effective_speed(sf, 5000.0, trace, dt=0.1)
        assert 0 < s <= 80.0

    def test_longer_tasks_concentrate(self):
        # The core claim: effective-speed spread falls with task length.
        sf = ConstantSpeedFunction(100.0, max_size=1e12)
        rng = np.random.default_rng(11)

        def spread(seconds):
            x = 85.0 * seconds
            steps = int(seconds * 30 / 0.25) + 100
            speeds = [
                effective_speed(
                    sf,
                    x,
                    ou_load_trace(rng, steps, 0.25, mean=0.15, sigma=0.1, tau=5.0),
                    0.25,
                )
                for _ in range(30)
            ]
            arr = np.asarray(speeds)
            return float(arr.std() / arr.mean())

        assert spread(256.0) < spread(2.0)

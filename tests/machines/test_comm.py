"""Tests for the two-parameter communication model."""

from __future__ import annotations

import pytest

from repro import ConfigurationError
from repro.machines import CommLink, CommModel


class TestCommLink:
    def test_time_formula(self):
        link = CommLink(startup_s=1e-3, rate_bytes_per_s=1e6)
        assert link.time(1e6) == pytest.approx(1.001)

    def test_zero_bytes_free(self):
        assert CommLink(1e-3, 1e6).time(0) == 0.0

    def test_rejects_negative_bytes(self):
        with pytest.raises(ConfigurationError):
            CommLink(1e-3, 1e6).time(-1)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            CommLink(-1.0, 1e6)
        with pytest.raises(ConfigurationError):
            CommLink(0.0, 0.0)


class TestCommModel:
    def test_ethernet_rate(self):
        m = CommModel.ethernet(4, startup_s=0.0, bandwidth_bits_per_s=100e6)
        # 100 Mbit/s = 12.5 MB/s.
        assert m.point_to_point(0, 1, 12.5e6) == pytest.approx(1.0)

    def test_serialised_sums(self):
        m = CommModel.ethernet(3, startup_s=0.0, bandwidth_bits_per_s=8e6)
        msgs = [(0, 1, 1e6), (1, 2, 1e6)]
        assert m.message_set(msgs) == pytest.approx(2.0)

    def test_parallel_takes_max(self):
        m = CommModel.ethernet(
            3, startup_s=0.0, bandwidth_bits_per_s=8e6, serialised=False
        )
        msgs = [(0, 1, 1e6), (1, 2, 2e6)]
        assert m.message_set(msgs) == pytest.approx(2.0)

    def test_broadcast_counts_receivers(self):
        m = CommModel.ethernet(4, startup_s=1.0, bandwidth_bits_per_s=8e9)
        t = m.broadcast(0, 8)  # startup-dominated
        assert t == pytest.approx(3.0, rel=0.01)

    def test_scatter_skips_root_and_empty(self):
        m = CommModel.ethernet(3, startup_s=1.0, bandwidth_bits_per_s=8e9)
        t = m.scatter(0, [5.0, 0.0, 10.0])
        assert t == pytest.approx(1.0, rel=0.01)  # only 0 -> 2

    def test_scatter_length_checked(self):
        m = CommModel.ethernet(3)
        with pytest.raises(ConfigurationError):
            m.scatter(0, [1.0, 2.0])

    def test_allgather_message_count(self):
        m = CommModel.ethernet(3, startup_s=1.0, bandwidth_bits_per_s=8e12)
        # 3 sources x 2 destinations = 6 startups.
        assert m.allgather([1.0, 1.0, 1.0]) == pytest.approx(6.0, rel=0.01)

    def test_no_self_link(self):
        m = CommModel.ethernet(2)
        with pytest.raises(ConfigurationError):
            m.link(1, 1)

    def test_rejects_non_square(self):
        link = CommLink(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            CommModel([[link], [link, link]])

    def test_rejects_bad_p(self):
        with pytest.raises(ConfigurationError):
            CommModel.ethernet(0)

"""Snapshot of the public API surface.

These tests freeze ``repro.__all__`` and the signatures of the main entry
points.  A failure here means the public surface changed: if that is
intentional, update the snapshot *and* the docs (``docs/api.md``,
``docs/adaptive.md``) in the same change.
"""

from __future__ import annotations

import inspect

import repro
import repro.adapt as adapt

EXPECTED_ALL = [
    "ALGORITHMS",
    "SUPPORTED_OPTIONS",
    "AdaptivePolicy",
    "AnalyticSpeedFunction",
    "CacheStats",
    "CommAwareSpeedFunction",
    "HierarchicalResult",
    "ConfigurationError",
    "ConstantSpeedFunction",
    "ConvergenceError",
    "DriftDetector",
    "FaultScript",
    "Fleet",
    "InfeasiblePartitionError",
    "InvalidSpeedFunctionError",
    "MeasurementError",
    "MigrationPlan",
    "ModelBuildOptions",
    "Observation",
    "OnlineBandRefitter",
    "PartitionOptions",
    "PartitionResult",
    "PlanCache",
    "Planner",
    "PlannerStats",
    "PiecewiseLinearSpeedFunction",
    "Rectangle",
    "RectanglePartition",
    "Replanner",
    "ReproError",
    "RetryPolicy",
    "SpeedBand",
    "SpeedFunction",
    "SpeedSurface",
    "StepSpeedFunction",
    "WeightedPartitionResult",
    "__version__",
    "adapt",
    "group_speed_function",
    "makespan",
    "obs",
    "partition",
    "partition_2d_fixed",
    "partition_bisection",
    "partition_bisection_many",
    "partition_bounded",
    "partition_combined",
    "partition_constant",
    "partition_even",
    "partition_exact",
    "partition_hierarchical",
    "partition_modified",
    "partition_rectangles",
    "partition_weighted",
    "simulate_lu_adaptive",
    "simulate_striped_matmul_adaptive",
    "single_number_speeds",
    "validate_speed_functions",
]

EXPECTED_ADAPT_ALL = [
    "DISABLED",
    "NO_RETRY",
    "AdaptiveLUSimulation",
    "AdaptiveMMSimulation",
    "AdaptivePolicy",
    "CommFault",
    "DriftDetector",
    "DriftEvent",
    "Dropout",
    "FaultInjector",
    "FaultScript",
    "InjectedCommError",
    "LoadShift",
    "MigrationPlan",
    "Move",
    "Observation",
    "ReplanDecision",
    "Replanner",
    "RetryExhaustedError",
    "RetryPolicy",
    "apply_migration",
    "call_with_retry",
    "plan_migration",
    "scale_speed_function",
    "simulate_lu_adaptive",
    "simulate_striped_matmul_adaptive",
]

#: name -> exact signature string (as rendered by inspect.signature).
EXPECTED_SIGNATURES = {
    "partition": (
        "(n: 'int', speed_functions: 'Sequence[SpeedFunction]', *, "
        "algorithm: 'str' = 'combined', "
        "options: 'PartitionOptions | None' = None, "
        "validate: 'bool' = False, **kwargs: 'Any') -> 'PartitionResult'"
    ),
    "partition_bounded": (
        "(n: 'int', speed_functions: 'Sequence[SpeedFunction]', "
        "bounds: 'Sequence[float]', *, algorithm: 'str' = 'combined', "
        "options: 'PartitionOptions | None' = None, **kwargs) "
        "-> 'PartitionResult'"
    ),
    "simulate_striped_matmul_adaptive": (
        "(n: 'int', allocation: 'Sequence[int]', "
        "truth_speed_functions: 'Sequence[SpeedFunction]', *, "
        "model_speed_functions: 'Sequence[SpeedFunction] | None' = None, "
        "bands: 'Sequence[SpeedBand] | None' = None, "
        "policy: 'AdaptivePolicy | None' = None, "
        "script: 'FaultScript | None' = None, seed: 'int' = 0, "
        "load_mean: 'float' = 0.0, load_sigma: 'float' = 0.0, "
        "load_tau: 'float' = 5.0, dt: 'float | None' = None, "
        "comm: 'CommModel | None' = None, max_steps: 'int' = 10000000) "
        "-> 'AdaptiveMMSimulation'"
    ),
    "simulate_lu_adaptive": (
        "(dist: 'GroupBlockDistribution', "
        "truth_speed_functions: 'Sequence[SpeedFunction]', *, "
        "model_speed_functions: 'Sequence[SpeedFunction] | None' = None, "
        "bands: 'Sequence[SpeedBand] | None' = None, "
        "policy: 'AdaptivePolicy | None' = None, "
        "script: 'FaultScript | None' = None, seed: 'int' = 0, "
        "load_mean: 'float' = 0.0, load_sigma: 'float' = 0.0, "
        "load_tau: 'float' = 8.0, comm: 'CommModel | None' = None, "
        "keep_trace: 'bool' = True) -> 'AdaptiveLUSimulation'"
    ),
}


def test_top_level_all_is_frozen():
    assert list(repro.__all__) == EXPECTED_ALL


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_adapt_all_is_frozen():
    assert list(adapt.__all__) == EXPECTED_ADAPT_ALL


def test_every_adapt_export_resolves():
    for name in adapt.__all__:
        assert hasattr(adapt, name), name


def test_entry_point_signatures_are_frozen():
    for name, expected in EXPECTED_SIGNATURES.items():
        got = str(inspect.signature(getattr(repro, name)))
        assert got == expected, f"{name} signature changed:\n{got}"


def test_partition_options_fields_are_frozen():
    assert sorted(repro.PartitionOptions.field_names()) == [
        "bounds",
        "keep_trace",
        "max_iterations",
        "mode",
        "pack",
        "refine",
        "region",
        "validate",
    ]


def test_supported_options_registry_matches_algorithms():
    assert set(repro.SUPPORTED_OPTIONS) == set(repro.ALGORITHMS)
    for name, supported in repro.SUPPORTED_OPTIONS.items():
        assert supported <= repro.PartitionOptions.field_names(), name

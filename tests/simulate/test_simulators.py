"""Tests for the MM and LU execution simulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, ConstantSpeedFunction, partition, partition_constant
from repro.kernels import mm_elements, mm_flops, variable_group_block
from repro.machines import CommModel
from repro.simulate import (
    LUStepRecord,
    SimulationTrace,
    simulate_lu,
    simulate_striped_matmul,
)
from tests.conftest import make_pwl


class TestSimulateStripedMatmul:
    def test_constant_speed_exact_time(self):
        # One processor at s MFlops: time = 2 n^3 / (1e6 s).
        n = 100
        sfs = [ConstantSpeedFunction(50.0)]
        sim = simulate_striped_matmul(n, [mm_elements(n)], sfs)
        assert sim.makespan == pytest.approx(mm_flops(n) / (1e6 * 50.0))

    def test_rows_sum_to_n(self, heterogeneous_trio):
        n = 120
        r = partition(mm_elements(n), heterogeneous_trio)
        sim = simulate_striped_matmul(n, r.allocation, heterogeneous_trio)
        assert sim.rows.sum() == n

    def test_makespan_is_max_plus_comm(self):
        n = 60
        sfs = [ConstantSpeedFunction(10.0), ConstantSpeedFunction(20.0)]
        alloc = partition_constant(mm_elements(n), [10.0, 20.0]).allocation
        sim = simulate_striped_matmul(n, alloc, sfs)
        assert sim.makespan == pytest.approx(float(sim.compute_seconds.max()))

    def test_comm_charged(self):
        n = 64
        sfs = [ConstantSpeedFunction(10.0), ConstantSpeedFunction(10.0)]
        comm = CommModel.ethernet(2)
        alloc = [mm_elements(n) // 2, mm_elements(n) - mm_elements(n) // 2]
        with_comm = simulate_striped_matmul(n, alloc, sfs, comm=comm)
        without = simulate_striped_matmul(n, alloc, sfs)
        assert with_comm.comm_seconds > 0
        assert with_comm.makespan > without.makespan

    def test_balanced_beats_skewed(self):
        n = 90
        sfs = [ConstantSpeedFunction(10.0), ConstantSpeedFunction(10.0)]
        total = mm_elements(n)
        balanced = simulate_striped_matmul(n, [total // 2, total - total // 2], sfs)
        skewed = simulate_striped_matmul(n, [total - 3 * n, 3 * n], sfs)
        assert balanced.makespan < skewed.makespan

    def test_paging_allocation_pays(self):
        # A stripe pushed past the paging knee runs at collapsed speed.
        pager = make_pwl(100.0, scale=0.01)  # collapses around 1e4 elements
        big = make_pwl(100.0, scale=100.0)
        n = 100  # total 3e4 elements
        total = mm_elements(n)
        fair = simulate_striped_matmul(n, [total // 10, total - total // 10], [pager, big])
        greedy = simulate_striped_matmul(
            n, [total // 2, total - total // 2], [pager, big]
        )
        assert greedy.makespan > fair.makespan

    def test_wrong_length_rejected(self, heterogeneous_trio):
        with pytest.raises(ConfigurationError):
            simulate_striped_matmul(10, [100], heterogeneous_trio)

    def test_zero_allocation_processor_idle(self):
        n = 30
        sfs = [ConstantSpeedFunction(10.0), ConstantSpeedFunction(10.0)]
        sim = simulate_striped_matmul(n, [0, mm_elements(n)], sfs)
        assert sim.compute_seconds[0] == 0.0


class TestSimulateLU:
    def _dist(self, n=256, b=32, speeds=(1.0, 3.0)):
        sfs = [ConstantSpeedFunction(s) for s in speeds]
        return variable_group_block(n, b, sfs), sfs

    def test_step_count(self):
        dist, sfs = self._dist()
        sim = simulate_lu(dist, sfs)
        assert sim.steps == dist.num_blocks

    def test_total_is_sum_of_steps(self):
        dist, sfs = self._dist()
        sim = simulate_lu(dist, sfs)
        assert sim.total_seconds == pytest.approx(sim.trace.total_seconds())

    def test_remaining_shrinks(self):
        dist, sfs = self._dist()
        sim = simulate_lu(dist, sfs)
        rems = [s.remaining for s in sim.trace.steps]
        assert rems == sorted(rems, reverse=True)
        assert rems[0] == 256

    def test_last_step_no_update(self):
        dist, sfs = self._dist()
        sim = simulate_lu(dist, sfs)
        assert sim.trace.steps[-1].update_seconds == 0.0

    def test_flop_total_matches_theory_single_proc(self):
        # One processor, constant speed: the simulated total must equal
        # (2/3) n^3 / rate up to the block-algorithm's lower-order terms.
        n, b = 512, 32
        sfs = [ConstantSpeedFunction(100.0)]
        dist = variable_group_block(n, b, sfs)
        sim = simulate_lu(dist, sfs)
        expected = (2.0 / 3.0) * n**3 / (1e6 * 100.0)
        assert sim.total_seconds == pytest.approx(expected, rel=0.15)

    def test_comm_charged(self):
        dist, sfs = self._dist(n=128, b=32)
        comm = CommModel.ethernet(2)
        with_comm = simulate_lu(dist, sfs, comm=comm)
        without = simulate_lu(dist, sfs)
        assert with_comm.comm_seconds > 0
        assert with_comm.total_seconds > without.total_seconds

    def test_trace_disabled(self):
        dist, sfs = self._dist(n=128)
        sim = simulate_lu(dist, sfs, keep_trace=False)
        assert sim.steps == 0 and sim.total_seconds > 0

    def test_distribution_processor_mismatch(self):
        dist, _ = self._dist(n=128, speeds=(1.0, 2.0, 3.0))
        with pytest.raises(ConfigurationError):
            simulate_lu(dist, [ConstantSpeedFunction(1.0)])

    def test_faster_distribution_wins(self):
        # Giving all columns to the slow processor must be worse than the
        # speed-proportional Variable Group Block distribution.
        n, b = 256, 32
        sfs = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(10.0)]
        good = variable_group_block(n, b, sfs)
        from repro.kernels import GroupBlockDistribution

        bad = GroupBlockDistribution(
            n=n, b=b, groups=[np.zeros(n // b, dtype=np.int64)]
        )
        assert (
            simulate_lu(good, sfs).total_seconds
            < simulate_lu(bad, sfs).total_seconds
        )


class TestTrace:
    def test_busy_fraction_bounds(self):
        dist = variable_group_block(
            256, 32, [ConstantSpeedFunction(1.0), ConstantSpeedFunction(2.0)]
        )
        sfs = [ConstantSpeedFunction(1.0), ConstantSpeedFunction(2.0)]
        sim = simulate_lu(dist, sfs)
        busy = sim.trace.busy_fraction(2)
        assert np.all(busy >= 0) and np.all(busy <= 1 + 1e-9)

    def test_step_record_seconds(self):
        rec = LUStepRecord(
            step=0,
            remaining=10,
            owner=0,
            panel_seconds=1.0,
            comm_seconds=0.5,
            update_seconds=2.0,
            update_per_processor=(2.0,),
        )
        assert rec.seconds == pytest.approx(3.5)

    def test_empty_trace(self):
        t = SimulationTrace()
        assert t.total_seconds() == 0.0
        assert np.all(t.busy_fraction(3) == 0.0)

"""Tests for the dynamic-load striped MM simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, ConstantSpeedFunction, partition_constant
from repro.kernels import mm_elements, mm_flops
from repro.simulate import simulate_striped_matmul, simulate_striped_matmul_dynamic


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestDynamicSimulator:
    def test_zero_load_matches_static(self, rng):
        n = 120
        sfs = [ConstantSpeedFunction(20.0), ConstantSpeedFunction(40.0)]
        alloc = partition_constant(mm_elements(n), [20.0, 40.0]).allocation
        static = simulate_striped_matmul(n, alloc, sfs)
        dyn = simulate_striped_matmul_dynamic(
            n, alloc, sfs, rng, dt=0.01, mean_load=0.0, sigma=0.0
        )
        np.testing.assert_allclose(
            dyn.compute_seconds, static.compute_seconds, rtol=0.02
        )

    def test_constant_load_scales(self, rng):
        n = 100
        sfs = [ConstantSpeedFunction(50.0)]
        alloc = [mm_elements(n)]
        dyn = simulate_striped_matmul_dynamic(
            n, alloc, sfs, rng, dt=0.01, mean_load=0.5, sigma=0.0
        )
        expected = mm_flops(n) / (1e6 * 50.0) * 2.0
        assert dyn.makespan == pytest.approx(expected, rel=0.02)

    def test_mean_load_reported(self, rng):
        n = 100
        sfs = [ConstantSpeedFunction(50.0)]
        dyn = simulate_striped_matmul_dynamic(
            n, [mm_elements(n)], sfs, rng, dt=0.01, mean_load=0.3, sigma=0.0
        )
        assert dyn.mean_load[0] == pytest.approx(0.3, abs=0.02)

    def test_stochastic_runs_vary_but_bracket_static(self, rng):
        n = 150
        sfs = [ConstantSpeedFunction(30.0), ConstantSpeedFunction(60.0)]
        alloc = partition_constant(mm_elements(n), [30.0, 60.0]).allocation
        static = simulate_striped_matmul(n, alloc, sfs).makespan
        runs = [
            simulate_striped_matmul_dynamic(
                n, alloc, sfs, rng, dt=0.005, mean_load=0.15, sigma=0.1, tau=0.1
            ).makespan
            for _ in range(6)
        ]
        # Load only slows things down; the mean sits near static/(1-mean).
        assert min(runs) > static
        assert np.mean(runs) == pytest.approx(static / 0.85, rel=0.15)

    def test_zero_allocation_processor_idle(self, rng):
        n = 60
        sfs = [ConstantSpeedFunction(10.0), ConstantSpeedFunction(10.0)]
        dyn = simulate_striped_matmul_dynamic(
            n, [0, mm_elements(n)], sfs, rng, dt=0.01
        )
        assert dyn.compute_seconds[0] == 0.0

    def test_rejects_bad_mean_load(self, rng):
        sfs = [ConstantSpeedFunction(10.0)]
        with pytest.raises(ConfigurationError):
            simulate_striped_matmul_dynamic(
                10, [mm_elements(10)], sfs, rng, mean_load=1.0
            )

    def test_rejects_wrong_length(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_striped_matmul_dynamic(
                10, [1, 2], [ConstantSpeedFunction(1.0)], rng
            )

    def test_deterministic_given_seed(self):
        n = 90
        sfs = [ConstantSpeedFunction(25.0)]
        alloc = [mm_elements(n)]
        a = simulate_striped_matmul_dynamic(
            n, alloc, sfs, np.random.default_rng(3), dt=0.01
        ).makespan
        b = simulate_striped_matmul_dynamic(
            n, alloc, sfs, np.random.default_rng(3), dt=0.01
        ).makespan
        assert a == b

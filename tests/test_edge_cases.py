"""Edge-case tests consolidating less-travelled branches across modules."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    ConstantSpeedFunction,
    InfeasiblePartitionError,
    PiecewiseLinearSpeedFunction,
    SpeedBand,
    partition,
    partition_combined,
)
from tests.conftest import make_pwl


class TestGeometryAllocatorParameter:
    def test_bracket_with_explicit_allocator(self, heterogeneous_trio):
        from repro.core.geometry import initial_bracket
        from repro.core.vectorized import make_allocator

        alloc = make_allocator(heterogeneous_trio)
        with_alloc = initial_bracket(heterogeneous_trio, 500_000, allocator=alloc)
        without = initial_bracket(heterogeneous_trio, 500_000)
        assert with_alloc.upper == pytest.approx(without.upper)
        assert with_alloc.lower == pytest.approx(without.lower)


class TestCombinedSwitchPaths:
    def test_stall_limit_one_switches_immediately(self, heterogeneous_trio):
        # With stall_limit=1 and stall_factor=0 (any step "stalls"), the
        # combined algorithm must hand over to modified and still be right.
        from repro import partition_exact

        n = 654_321
        r = partition_combined(
            n, heterogeneous_trio, stall_limit=1, stall_factor=0.0
        )
        assert int(r.allocation.sum()) == n
        assert r.makespan == pytest.approx(
            partition_exact(n, heterogeneous_trio).makespan, rel=1e-9
        )

    def test_flat_tol_huge_switches_immediately(self, heterogeneous_trio):
        n = 654_321
        r = partition_combined(n, heterogeneous_trio, flat_tol=1e9)
        assert int(r.allocation.sum()) == n


class TestBandGrids:
    def test_lower_function_with_explicit_grid(self):
        band = SpeedBand(make_pwl(100.0), 0.2)
        grid = np.geomspace(2e3, 1.5e6, 10)
        lf = band.lower_function(grid)
        assert lf.num_knots == 10

    def test_unbounded_midline_needs_grid(self):
        band = SpeedBand(ConstantSpeedFunction(10.0), 0.1)
        with pytest.raises(ConfigurationError):
            band.lower_function()
        lf = band.lower_function(grid=[10.0, 100.0])
        assert lf.speed(10) == pytest.approx(9.5)


class TestGroupBlockEdges:
    def test_insufficient_capacity_raises(self):
        sfs = [make_pwl(10.0, scale=0.001)]  # max_size 2000
        from repro.kernels import variable_group_block

        with pytest.raises(InfeasiblePartitionError):
            variable_group_block(1000, 32, sfs)  # needs 1e6 elements

    def test_single_block_matrix(self):
        from repro.kernels import variable_group_block

        dist = variable_group_block(16, 32, [ConstantSpeedFunction(1.0)])
        assert dist.num_blocks == 1
        assert dist.owner(0) == 0


class TestWeightedEdges:
    def test_no_local_search(self, rng):
        from repro import partition_weighted

        w = rng.uniform(1, 2, 30)
        res = partition_weighted(
            w, [make_pwl(10.0), make_pwl(30.0)], local_search_passes=0
        )
        assert res.moves == 0
        assert res.counts.sum() == 30

    def test_exact_capacity_fit(self):
        from repro import partition_weighted

        sfs = [
            ConstantSpeedFunction(1.0, max_size=3),
            ConstantSpeedFunction(1.0, max_size=2),
        ]
        res = partition_weighted(np.ones(5), sfs)
        assert res.counts.tolist() in ([3, 2], [2, 3])
        assert res.counts[0] <= 3 and res.counts[1] <= 2


class TestNetworkEdges:
    def test_subset_unknown_name(self):
        from repro.machines import table1_network

        with pytest.raises(KeyError):
            table1_network().subset(["Comp1", "CompX"])

    def test_spec_negative_elements(self):
        from repro.machines import TABLE1_SPECS

        with pytest.raises(ConfigurationError):
            TABLE1_SPECS[0].matrix_size_for_elements(-1)


class TestNumericInputTypes:
    def test_numpy_integer_n(self, heterogeneous_trio):
        n = np.int64(123_456)
        r = partition(n, heterogeneous_trio)
        assert int(r.allocation.sum()) == 123_456

    def test_numpy_float_speeds_constant(self):
        from repro import partition_constant

        r = partition_constant(100, np.array([1.0, 3.0], dtype=np.float32))
        assert r.allocation.sum() == 100

    def test_python_float_problem_size_exact_integerlike(self, heterogeneous_trio):
        # Historical footgun: float n from upstream arithmetic.
        r = partition(int(2e5), heterogeneous_trio)
        assert int(r.allocation.sum()) == 200_000


class TestReportFormatting:
    def test_format_float_small_magnitude(self):
        from repro.experiments import format_float

        assert "e" in format_float(1.2e-7)

    def test_ascii_table_mixed_types(self):
        from repro.experiments import ascii_table

        out = ascii_table(["a", "b"], [[1.5, "x"], [2.25e9, None]])
        assert "x" in out and "None" in out


class TestCostHelpers:
    def test_tile_rejects_nonpositive(self, heterogeneous_trio):
        from repro.experiments import tile_speed_functions

        with pytest.raises(ValueError):
            tile_speed_functions(heterogeneous_trio, 0)


class TestSpeedFunctionScalarConventions:
    def test_time_scalar_type(self):
        sf = make_pwl(10.0)
        assert isinstance(sf.time(100.0), float)
        assert isinstance(sf.g(100.0), float)
        assert isinstance(sf.speed(100.0), float)

    def test_g_at_zero_is_infinite(self):
        sf = make_pwl(10.0)
        assert math.isinf(sf.g(0.0))

    def test_pwl_single_knot(self):
        sf = PiecewiseLinearSpeedFunction([100.0], [5.0])
        assert sf.max_size == 100.0
        assert sf.speed(50) == 5.0
        assert sf.intersect_ray(0.01) == pytest.approx(100.0)  # clamped
        assert sf.intersect_ray(1.0) == pytest.approx(5.0)


class TestVectorizedDegenerate:
    def test_rays_on_segment_boundaries(self):
        from repro.core.vectorized import PiecewiseLinearSet

        sfs = [make_pwl(100.0), make_pwl(50.0)]
        packed = PiecewiseLinearSet(sfs)
        # Query exactly at knot-slope values: the two paths must agree.
        for sf in sfs:
            for g in (sf.knot_speeds / sf.knot_sizes):
                expected = np.array([f.intersect_ray(float(g)) for f in sfs])
                np.testing.assert_allclose(
                    packed.allocations(float(g)), expected, rtol=1e-9
                )

"""Tests for model persistence and ASCII plotting."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro import (
    AnalyticSpeedFunction,
    ConfigurationError,
    ConstantSpeedFunction,
    PiecewiseLinearSpeedFunction,
    StepSpeedFunction,
)
from repro.experiments.plot import ascii_plot
from repro.io import (
    load_models,
    save_models,
    speed_function_from_dict,
    speed_function_to_dict,
)
from tests.conftest import make_pwl


class TestSerialisation:
    def test_piecewise_roundtrip(self):
        sf = make_pwl(123.0)
        back = speed_function_from_dict(speed_function_to_dict(sf))
        xs = np.geomspace(1e3, 2e6, 25)
        np.testing.assert_allclose(back.speed(xs), sf.speed(xs))
        assert back.max_size == sf.max_size

    def test_constant_roundtrip(self):
        sf = ConstantSpeedFunction(7.5, max_size=100.0)
        back = speed_function_from_dict(speed_function_to_dict(sf))
        assert back.speed(3) == 7.5
        assert back.max_size == 100.0

    def test_constant_unbounded_roundtrip(self):
        sf = ConstantSpeedFunction(2.0)
        back = speed_function_from_dict(speed_function_to_dict(sf))
        assert math.isinf(back.max_size)

    def test_step_roundtrip(self):
        sf = StepSpeedFunction([10, 100], [9.0, 3.0])
        back = speed_function_from_dict(speed_function_to_dict(sf))
        assert back.speed(5) == 9.0
        assert back.speed(50) == 3.0

    def test_analytic_rejected(self):
        sf = AnalyticSpeedFunction(lambda x: 10.0 / (1 + x / 100), max_size=1e4)
        with pytest.raises(ConfigurationError):
            speed_function_to_dict(sf)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            speed_function_from_dict({"kind": "magic"})

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            speed_function_from_dict("nope")


class TestSaveLoad:
    def test_roundtrip_collection(self, tmp_path):
        path = tmp_path / "models.json"
        models = {"X1": make_pwl(50.0), "X2": ConstantSpeedFunction(9.0)}
        save_models(path, models, kernel="matmul")
        loaded = load_models(path)
        assert set(loaded) == {"X1", "X2"}
        assert loaded["X2"].speed(1) == 9.0
        assert json.loads(path.read_text())["kernel"] == "matmul"

    def test_loaded_models_partition(self, tmp_path):
        from repro import partition

        path = tmp_path / "m.json"
        save_models(path, {"a": make_pwl(100.0), "b": make_pwl(300.0)})
        sfs = [loaded for _, loaded in sorted(load_models(path).items())]
        r = partition(500_000, sfs)
        assert int(r.allocation.sum()) == 500_000

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_models(tmp_path / "nope.json")

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ConfigurationError):
            load_models(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"format": "repro.speed-functions", "version": 99, "machines": {}}'
        )
        with pytest.raises(ConfigurationError):
            load_models(path)


class TestAsciiPlot:
    def test_basic_render(self):
        out = ascii_plot(
            [("a", [0, 1, 2], [0, 1, 4]), ("b", [0, 1, 2], [4, 1, 0])],
            width=30,
            height=8,
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "*" in out and "o" in out
        assert "a" in lines[-1] and "b" in lines[-1]

    def test_log_axes_marked(self):
        out = ascii_plot(
            [("c", [1, 10, 100], [1, 10, 100])], log_x=True, log_y=True
        )
        assert "log x" in out and "log y" in out

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([])

    def test_rejects_mismatched_series(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([("a", [1, 2], [1])])

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([("a", [1], [1])], width=5, height=2)

    def test_flat_series_ok(self):
        out = ascii_plot([("flat", [0, 1, 2], [3, 3, 3])])
        assert "*" in out

    def test_points_land_within_canvas(self):
        rng = np.random.default_rng(0)
        xs = rng.uniform(1, 100, 50)
        ys = rng.uniform(1, 100, 50)
        out = ascii_plot([("s", xs, ys)], width=40, height=10)
        assert len(out.splitlines()) == 13  # 10 rows + axis + labels + legend


class TestDistributionSaveLoad:
    def test_roundtrip(self, tmp_path):
        from repro import ConstantSpeedFunction
        from repro.io import load_distribution, save_distribution
        from repro.kernels import variable_group_block

        dist = variable_group_block(
            256, 32, [ConstantSpeedFunction(1.0), ConstantSpeedFunction(3.0)]
        )
        path = tmp_path / "dist.json"
        save_distribution(path, dist)
        back = load_distribution(path)
        assert back.n == dist.n and back.b == dist.b
        np.testing.assert_array_equal(back.block_owners, dist.block_owners)

    def test_rejects_non_distribution(self, tmp_path):
        from repro import ConfigurationError
        from repro.io import save_distribution

        with pytest.raises(ConfigurationError):
            save_distribution(tmp_path / "x.json", {"not": "a distribution"})

    def test_rejects_wrong_format(self, tmp_path):
        from repro import ConfigurationError
        from repro.io import load_distribution

        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ConfigurationError):
            load_distribution(path)

    def test_rejects_malformed(self, tmp_path):
        from repro import ConfigurationError
        from repro.io import load_distribution

        path = tmp_path / "bad.json"
        path.write_text(
            '{"format": "repro.group-block-distribution", "version": 1, "n": 10}'
        )
        with pytest.raises(ConfigurationError):
            load_distribution(path)

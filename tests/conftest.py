"""Shared fixtures and speed-function factories for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AnalyticSpeedFunction,
    ConstantSpeedFunction,
    PiecewiseLinearSpeedFunction,
)


def make_pwl(peak: float, scale: float = 1.0) -> PiecewiseLinearSpeedFunction:
    """A realistic decreasing piecewise-linear speed function.

    Plateau near ``peak``, gentle decline, paging collapse; domain scaled
    by ``scale``.
    """
    xs = np.array([1e3, 1e4, 1e5, 5e5, 1e6, 2e6]) * scale
    ss = np.array([1.00, 0.98, 0.92, 0.70, 0.20, 0.02]) * peak
    return PiecewiseLinearSpeedFunction(xs, ss)


def make_increasing_pwl(peak: float) -> PiecewiseLinearSpeedFunction:
    """A strictly increasing speed function (the s3 shape of figure 5)."""
    xs = np.array([1e3, 1e4, 1e5, 1e6])
    ss = np.array([0.30, 0.60, 0.85, 1.00]) * peak
    return PiecewiseLinearSpeedFunction(xs, ss)


def make_hump_pwl(peak: float) -> PiecewiseLinearSpeedFunction:
    """Increasing then decreasing (the s2 shape of figure 5)."""
    xs = np.array([1e3, 1e4, 1e5, 1e6, 2e6])
    ss = np.array([0.40, 0.80, 1.00, 0.35, 0.05]) * peak
    return PiecewiseLinearSpeedFunction(xs, ss)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20040426)  # IPDPS 2004 started 26 April


@pytest.fixture
def two_processors() -> list[PiecewiseLinearSpeedFunction]:
    return [make_pwl(100.0), make_pwl(300.0)]


@pytest.fixture
def heterogeneous_trio() -> list[PiecewiseLinearSpeedFunction]:
    """Three processors covering the three figure-5 shapes."""
    return [make_pwl(120.0), make_hump_pwl(250.0), make_increasing_pwl(80.0)]


@pytest.fixture
def analytic_processor() -> AnalyticSpeedFunction:
    def f(x):
        x = np.asarray(x, dtype=float)
        return 200.0 * (x / (x + 500.0)) / (1.0 + (x / 8e5) ** 2)

    return AnalyticSpeedFunction(f, max_size=5e6)


@pytest.fixture
def constant_pair() -> list[ConstantSpeedFunction]:
    return [ConstantSpeedFunction(100.0), ConstantSpeedFunction(300.0)]

# Developer workflow for the repro library.

PYTHON ?= python

.PHONY: install test bench bench-smoke serve-smoke cluster-smoke verify-smoke check examples experiments lint-docs all clean

# Where the cluster smoke dumps the router's flight recorder on failure
# (CI uploads benchmarks/out/*.ndjson as a post-mortem artifact).
CLUSTER_FLIGHT_DUMP ?= benchmarks/out/cluster-flight-traces.ndjson

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fast perf regression gate: the allocator/planner/telemetry
# micro-benchmarks plus the adaptive-vs-static ablation at smoke sizes,
# GC off and few rounds so it finishes in minutes, not hours.
# perf_guard additionally emits benchmarks/out/metrics.json, fails on a
# >10% regression of the p=1080 solve vs the recorded baseline (seeded
# on the first run), fails if the knot-compiled step/rescaled fleets
# drop below 5x the per-object oracle (bench_core_vectorised), fails if
# the disabled-adaptation simulators add >2% over the plain executors,
# and fails if the online refit loop (bench_online_refit) stops closing
# a 2x band-shape drift to ±5% or costs >5% of serve throughput.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_perf_allocator.py \
		benchmarks/bench_obs_overhead.py --benchmark-only \
		--benchmark-disable-gc --benchmark-min-rounds=3 -q
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest \
		benchmarks/bench_ablation_adaptive.py --benchmark-only \
		--benchmark-disable-gc -q -s
	$(PYTHON) benchmarks/bench_core_vectorised.py
	$(PYTHON) benchmarks/bench_online_refit.py
	$(PYTHON) benchmarks/perf_guard.py --out benchmarks/out/metrics.json

# End-to-end serving smoke: boots the TCP+HTTP server in-process,
# registers a fleet over the wire, bit-checks served plans against a
# direct Planner, runs a small concurrent load, and scrapes /health and
# /metrics.  Exits non-zero on any failure, shed request, or mismatch.
serve-smoke:
	$(PYTHON) -m repro.serve.smoke

# End-to-end cluster smoke: a router thread over two real node
# processes — registers a fleet over the wire, bit-checks routed plans,
# exercises cluster_status + aggregated /stats, SIGKILLs one member
# mid-load (every request must still get a replica plan or a typed
# error), and scrapes the router's HTTP plane.  On failure the router's
# flight recorder is dumped to $(CLUSTER_FLIGHT_DUMP) for post-mortems.
cluster-smoke:
	$(PYTHON) -m repro.cluster.smoke --flight-dump $(CLUSTER_FLIGHT_DUMP)

# Seeded verification sweep (repro.verify): 200 differential conformance
# cases across every partitioner, the planner fast paths and in-process
# served plans; 500 mutated protocol frames against a live server; a
# handful of randomized fault-script runs of the adaptive simulator; and
# one kill-a-node cluster chaos run (SIGKILL a member mid-load, audit
# every answer for hangs, untyped errors, or non-bit-identical plans).
# Every failure prints a one-line replay command with its seed.
verify-smoke:
	$(PYTHON) -m repro verify --cases 200 --fuzz-frames 500 --chaos-runs 4 \
		--cluster-runs 1

check: test bench-smoke serve-smoke cluster-smoke verify-smoke

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

experiments:
	$(PYTHON) -m repro all

all: test bench

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +

# Developer workflow for the repro library.

PYTHON ?= python

.PHONY: install test bench bench-smoke check examples experiments lint-docs all clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fast perf regression gate: the allocator/planner micro-benchmarks only,
# GC off and few rounds so it finishes in minutes, not hours.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_perf_allocator.py --benchmark-only \
		--benchmark-disable-gc --benchmark-min-rounds=3 -q

check: test bench-smoke

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

experiments:
	$(PYTHON) -m repro all

all: test bench

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +

# Developer workflow for the repro library.

PYTHON ?= python

.PHONY: install test bench examples experiments lint-docs all clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

experiments:
	$(PYTHON) -m repro all

all: test bench

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +

"""Differential conformance: every solver path lands on the same line.

Seeded random fleets (piecewise-linear curves, sublinear growth curves,
speed-band samples, constant models — with and without memory bounds)
and adversarial problem sizes (``n = 0``, ``n = 1``, ``n < p``, exactly
at capacity, one past capacity, negative) are pushed through every way
the library can produce a plan:

* ``partition_bisection`` — tangent and angle bisection, greedy and
  paper refinement, packed (vectorised) and generic evaluation;
* ``partition_modified`` / ``partition_combined`` / ``partition_exact``;
* ``partition_bounded`` (bisection vs exact over the truncated fleet);
* :class:`~repro.planner.Planner` — cold, cache-hit, warm-started and
  batched (``plan_many``) paths;
* an in-process :class:`~repro.serve.service.PlanningService`, so
  served plans are conformance-checked end to end.

Every reference result is additionally certificate-checked with
:mod:`repro.verify.certificate`.  Disagreements are classified:

``bug``
    A makespan mismatch, a missing/mismatched exception, a bit-level
    difference on a path documented to be bit-identical, or a failed
    certificate.  These fail the run.

``tolerance``
    A *documented* divergence: allocation ties (different allocations
    with makespans equal to 1e-9 relative), or the paper's refinement
    procedure landing within its documented 1% of the optimum.  These
    are reported but do not fail the run.

Every disagreement carries a one-line replay command embedding the seed
and case index, so any failure reproduces in isolation.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..core.bisection import partition_bisection, partition_bisection_many
from ..core.band import SpeedBand, constant_width_schedule, linear_width_schedule
from ..core.bounded import TruncatedSpeedFunction, partition_bounded
from ..core.comm_aware import CommAwareSpeedFunction
from ..core.partition import partition
from ..core.speed_function import (
    AnalyticSpeedFunction,
    ConstantSpeedFunction,
    PiecewiseLinearSpeedFunction,
    SpeedFunction,
)
from ..core.step_model import StepSpeedFunction
from ..core.vectorized import packing_disabled
from ..exceptions import InfeasiblePartitionError
from ..planner import Fleet, Planner
from .certificate import check_allocation

__all__ = [
    "Disagreement",
    "DifferentialReport",
    "generate_case",
    "run_differential",
    "replay_command",
]

#: Documented cross-algorithm makespan tolerance (the repo's own test
#: suite compares optimal makespans at this precision).
MAKESPAN_RTOL = 1e-9

#: The paper's figure-9 refinement selects from boundary candidates
#: only; it is documented feasible-but-possibly-suboptimal, with no
#: bound on the gap (the repo's 1% figure is empirical for the paper's
#: own testbed fleets, not a guarantee).  Its results are therefore
#: checked for feasibility and for never *beating* the optimum, and any
#: gap is reported as a documented tolerance carrying the ratio.


def replay_command(seed: int, case: int) -> str:
    """The one-liner that reruns exactly one differential case."""
    return f"python -m repro verify --seed {seed} --only-case {case}"


@dataclass(frozen=True)
class Disagreement:
    """One divergence between two solver paths."""

    seed: int
    case: int
    n: int
    kind: str
    severity: str  # "bug" | "tolerance"
    detail: str

    @property
    def replay(self) -> str:
        return replay_command(self.seed, self.case)

    def line(self) -> str:
        return (
            f"[{self.severity}] case {self.case} n={self.n} {self.kind}: "
            f"{self.detail}  (replay: {self.replay})"
        )


@dataclass
class DifferentialReport:
    """Outcome of one differential sweep."""

    seed: int
    cases: int = 0
    solves: int = 0
    comparisons: int = 0
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def bugs(self) -> list[Disagreement]:
        return [d for d in self.disagreements if d.severity == "bug"]

    @property
    def tolerances(self) -> list[Disagreement]:
        return [d for d in self.disagreements if d.severity == "tolerance"]

    @property
    def ok(self) -> bool:
        return not self.bugs

    def summary(self) -> str:
        verdict = "ok" if self.ok else "FAILED"
        return (
            f"differential {verdict}: {self.cases} cases, {self.solves} solves, "
            f"{self.comparisons} comparisons, {len(self.bugs)} bugs, "
            f"{len(self.tolerances)} documented tolerances (seed {self.seed})"
        )


# ---------------------------------------------------------------------------
# Case generation
# ---------------------------------------------------------------------------


@dataclass
class Case:
    """One seeded scenario: a fleet plus the sizes to plan for it."""

    seed: int
    index: int
    speed_functions: list[SpeedFunction]
    sizes: list[int]
    bounds: list[float] | None

    @property
    def p(self) -> int:
        return len(self.speed_functions)

    def describe(self) -> str:
        kinds = ",".join(type(sf).__name__.replace("SpeedFunction", "")
                         for sf in self.speed_functions)
        return (
            f"case {self.index}: p={self.p} [{kinds}] sizes={self.sizes}"
            + (f" bounds={self.bounds}" if self.bounds else "")
        )


def _decreasing_pwl(rng: np.random.Generator) -> PiecewiseLinearSpeedFunction:
    """A random plateau-then-decline curve (the paper's figure-1 shape)."""
    knots = int(rng.integers(2, 8))
    xs = 10.0 ** rng.uniform(1.5, 3.0) * np.cumprod(rng.uniform(1.6, 6.0, knots))
    peak = 10.0 ** rng.uniform(1.0, 3.0)
    ratios = np.concatenate(([1.0], rng.uniform(0.35, 1.0, knots - 1)))
    ss = peak * np.cumprod(ratios)
    if rng.random() < 0.2:
        ss[-1] = 0.0  # the paper pins s(b) = 0 at the paging cliff
    return PiecewiseLinearSpeedFunction(xs, ss)


def _sublinear_pwl(rng: np.random.Generator) -> PiecewiseLinearSpeedFunction:
    """Speeds growing sublinearly (s = a + b*x keeps g decreasing)."""
    knots = int(rng.integers(2, 6))
    xs = 10.0 ** rng.uniform(1.5, 3.0) * np.cumprod(rng.uniform(1.6, 6.0, knots))
    a = 10.0 ** rng.uniform(1.0, 3.0)
    b = rng.uniform(0.05, 2.0) * a / xs[-1]
    return PiecewiseLinearSpeedFunction(xs, a + b * xs)


def _banded_pwl(rng: np.random.Generator) -> PiecewiseLinearSpeedFunction:
    """One run-time curve sampled from a speed band (possibly zero-width)."""
    mid = _decreasing_pwl(rng)
    width_kind = rng.random()
    if width_kind < 0.25:
        schedule: object = constant_width_schedule(0.0)  # degenerate band
    elif width_kind < 0.65:
        schedule = constant_width_schedule(float(rng.uniform(0.05, 0.4)))
    else:
        schedule = linear_width_schedule(
            float(rng.uniform(0.15, 0.5)),
            float(rng.uniform(0.0, 0.1)),
            1.0,
            mid.max_size,
        )
    return SpeedBand(mid, schedule).sample(rng)


def _step_model(rng: np.random.Generator) -> StepSpeedFunction:
    """A cache/memory/swap staircase (the paper's reference [19] shape)."""
    m = int(rng.integers(1, 5))
    bs = 10.0 ** rng.uniform(2.5, 3.5) * np.cumprod(rng.uniform(1.8, 8.0, m))
    peak = 10.0 ** rng.uniform(1.0, 3.0)
    ss = peak * np.cumprod(rng.uniform(0.30, 0.95, m))
    return StepSpeedFunction(bs, ss)


def _truncated_model(rng: np.random.Generator) -> TruncatedSpeedFunction:
    base = _step_model(rng) if rng.random() < 0.4 else _decreasing_pwl(rng)
    bound = float(base.max_size * rng.uniform(0.15, 1.2))
    return TruncatedSpeedFunction(base, max(bound, 1.0))


def _comm_aware_model(rng: np.random.Generator) -> CommAwareSpeedFunction:
    if rng.random() < 0.5:
        base: SpeedFunction = _decreasing_pwl(rng)
    else:
        base = ConstantSpeedFunction(
            10.0 ** rng.uniform(1.0, 3.0), max_size=10.0 ** rng.uniform(4.0, 6.5)
        )
    # Link costs sized so communication is noticeable but not dominant.
    scale = 1.0 / float(base.speed(min(1e3, base.max_size)))
    return CommAwareSpeedFunction(
        base,
        startup_s=float(rng.uniform(0.0, 50.0)) * scale,
        seconds_per_element=float(rng.uniform(0.0, 0.5)) * scale,
    )


def _tabulated_analytic(rng: np.random.Generator) -> PiecewiseLinearSpeedFunction:
    peak = 10.0 ** rng.uniform(1.0, 3.0)
    half = 10.0 ** rng.uniform(3.5, 5.5)
    cap = 10.0 ** rng.uniform(5.0, 6.5)

    def f(x):
        x = np.asarray(x, dtype=float)
        return peak / (1.0 + x / half)

    analytic = AnalyticSpeedFunction(f, max_size=cap)
    knots = int(rng.integers(6, 24))
    return analytic.tabulate(np.geomspace(10.0, cap, knots))


def _random_speed_function(rng: np.random.Generator) -> SpeedFunction:
    roll = rng.random()
    if roll < 0.25:
        return _decreasing_pwl(rng)
    if roll < 0.38:
        return _sublinear_pwl(rng)
    if roll < 0.55:
        return _banded_pwl(rng)
    if roll < 0.64:
        return _step_model(rng)
    if roll < 0.72:
        return _truncated_model(rng)
    if roll < 0.79:
        base = _step_model(rng) if rng.random() < 0.3 else _decreasing_pwl(rng)
        return base.scaled(float(10.0 ** rng.uniform(-0.7, 0.7)))
    if roll < 0.86:
        return _comm_aware_model(rng)
    if roll < 0.91:
        return _tabulated_analytic(rng)
    speed = 10.0 ** rng.uniform(1.0, 3.0)
    if rng.random() < 0.7:
        return ConstantSpeedFunction(speed, max_size=10.0 ** rng.uniform(4.0, 6.5))
    return ConstantSpeedFunction(speed)  # unbounded memory


def generate_case(seed: int, index: int) -> Case:
    """Deterministically generate differential case ``index`` of ``seed``."""
    rng = np.random.default_rng([seed, index])
    p = int(rng.integers(1, 9))
    sfs = [_random_speed_function(rng) for _ in range(p)]

    caps = [sf.max_size for sf in sfs]
    capacity = (
        int(sum(math.floor(c + 1e-9) for c in caps))
        if all(math.isfinite(c) for c in caps)
        else None
    )
    sizes = [int(rng.integers(0, 2))]  # n = 0 or n = 1
    if p > 1 and rng.random() < 0.5:
        sizes.append(p - 1)  # fewer elements than processors
    hi = capacity if capacity is not None else 10_000_000
    sizes.append(int(rng.integers(p + 1, max(p + 2, hi // 2 + 1))))
    if capacity is not None and rng.random() < 0.5:
        sizes.append(capacity)  # exactly full
        sizes.append(capacity + 1)  # one past: everyone must refuse
    if rng.random() < 0.15:
        sizes.append(-1)  # negative: everyone must refuse
    sizes = sorted(set(sizes))

    bounds: list[float] | None = None
    if rng.random() < 0.5:
        bounds = [
            float(rng.integers(1, int(min(c, 10**7)) + 1))
            if (math.isfinite(c) and rng.random() < 0.7)
            else math.inf
            for c in caps
        ]
    return Case(seed=seed, index=index, speed_functions=sfs, sizes=sizes,
                bounds=bounds)


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------

_Outcome = tuple  # ("ok", PartitionResult) | ("raise", str) | ("error", str)


def _attempt(fn: Callable[[], object]) -> _Outcome:
    try:
        return ("ok", fn())
    except InfeasiblePartitionError as exc:
        return ("raise", str(exc))
    except Exception as exc:  # noqa: BLE001 - classified as a bug by _compare
        return ("error", f"{type(exc).__name__}: {exc}")


class _CaseChecker:
    """Runs and classifies every comparison of one case."""

    def __init__(self, case: Case, report: DifferentialReport,
                 log: Callable[[str], None] | None):
        self.case = case
        self.report = report
        self.log = log
        self._violations = obs.get_registry().counter(
            "verify.violations", labels={"check": "differential"}
        )

    def note(self, n: int, kind: str, severity: str, detail: str) -> None:
        d = Disagreement(self.case.seed, self.case.index, n, kind, severity, detail)
        self.report.disagreements.append(d)
        if severity == "bug":
            self._violations.inc()
        if self.log:
            self.log(d.line())

    def compare(
        self,
        n: int,
        kind: str,
        ref: _Outcome,
        other: _Outcome,
        *,
        bit_identical: bool = False,
        rtol: float = MAKESPAN_RTOL,
    ) -> None:
        """Classify ``other`` against the reference outcome."""
        self.report.comparisons += 1
        if other[0] == "error":
            self.note(n, kind, "bug", f"unexpected exception: {other[1]}")
            return
        if ref[0] == "error":
            return  # already reported when the reference ran
        if ref[0] != other[0]:
            self.note(
                n, kind, "bug",
                f"reference {ref[0]}s but this path {other[0]}s ({other[1] if other[0] != 'ok' else ''})",
            )
            return
        if ref[0] == "raise":
            return  # both refused: agreement
        want, got = ref[1], other[1]
        same_alloc = np.array_equal(want.allocation, got.allocation)
        same_makespan = math.isclose(
            float(want.makespan), float(got.makespan), rel_tol=rtol, abs_tol=rtol
        )
        if bit_identical:
            if same_alloc and float(want.makespan) == float(got.makespan):
                return
            self.note(
                n, kind, "bug",
                "path documented bit-identical diverged: "
                f"makespan {float(got.makespan):.17g} vs {float(want.makespan):.17g}, "
                f"allocations {'equal' if same_alloc else 'differ'}",
            )
            return
        if not same_makespan:
            self.note(
                n, kind, "bug",
                f"makespan {float(got.makespan):.17g} != reference "
                f"{float(want.makespan):.17g} (rtol {rtol:g})",
            )
            return
        if not same_alloc:
            # Equal makespans with different allocations: a documented
            # tie between optimal plans, not a bug.
            self.note(
                n, kind, "tolerance",
                "allocation tie: different allocations share the optimal "
                f"makespan {float(want.makespan):.17g}",
            )


def run_differential(
    cases: int = 200,
    seed: int = 0,
    *,
    only_case: int | None = None,
    include_service: bool = True,
    log: Callable[[str], None] | None = None,
) -> DifferentialReport:
    """Run the differential sweep and classify every disagreement.

    With ``only_case`` set, only that case index is generated and run
    (the replay path) — the case is identical to the one the full sweep
    would produce, because each case derives from ``(seed, index)``
    alone.
    """
    report = DifferentialReport(seed=seed)
    cases_counter = obs.get_registry().counter(
        "verify.cases", labels={"layer": "differential"}
    )
    served: list[tuple[Case, list[tuple[int, _Outcome]]]] = []

    indices = [only_case] if only_case is not None else range(cases)
    for index in indices:
        case = generate_case(seed, index)
        if log and only_case is not None:
            # Per-case narration only when replaying a single case; bulk
            # sweeps log just the disagreements.
            log(case.describe())
        checker = _CaseChecker(case, report, log)
        refs = _run_case(case, checker, report)
        served.append((case, refs))
        report.cases += 1
        cases_counter.inc()

    if include_service and served:
        _check_served_plans(served, report, log)
    return report


def _run_case(
    case: Case, checker: _CaseChecker, report: DifferentialReport
) -> list[tuple[int, _Outcome]]:
    """All local solver paths of one case.  Returns the reference plans."""
    sfs = case.speed_functions
    fleet = Fleet(sfs, name=f"verify-{case.seed}-{case.index}")
    refs: list[tuple[int, _Outcome]] = []
    planner = Planner(fleet)

    for n in case.sizes:
        ref = _attempt(lambda: partition_bisection(n, sfs))
        report.solves += 1
        refs.append((n, ref))
        if ref[0] == "error":
            checker.note(n, "bisection", "bug", f"unexpected exception: {ref[1]}")
            continue
        if ref[0] == "ok":
            cert = check_allocation(
                ref[1].allocation, sfs, n=n, makespan=ref[1].makespan
            )
            for v in cert.violations:
                checker.note(n, f"certificate:{v.check}", "bug", v.message)

        # -- alternative algorithms over the same fleet -----------------
        alternates = {
            "bisection-angle": lambda: partition_bisection(n, sfs, mode="angle"),
            "modified": lambda: partition(n, sfs, algorithm="modified"),
            "combined": lambda: partition(n, sfs, algorithm="combined"),
            "exact": lambda: partition(n, sfs, algorithm="exact"),
        }
        for kind, fn in alternates.items():
            other = _attempt(fn)
            report.solves += 1
            checker.compare(n, kind, ref, other)

        # -- paper refinement: feasible, never better than optimal ------
        paper = _attempt(lambda: partition_bisection(n, sfs, refine="paper"))
        report.solves += 1
        report.comparisons += 1
        if paper[0] == "error":
            checker.note(n, "refine-paper", "bug", f"unexpected exception: {paper[1]}")
        elif paper[0] != ref[0]:
            checker.note(n, "refine-paper", "bug",
                         f"reference {ref[0]}s but paper refinement {paper[0]}s")
        elif paper[0] == "ok":
            got, want = float(paper[1].makespan), float(ref[1].makespan)
            feas = check_allocation(
                paper[1].allocation, sfs, n=n, makespan=got,
                check_optimality=False,
            )
            for v in feas.violations:
                checker.note(n, f"refine-paper:{v.check}", "bug", v.message)
            if got < want * (1.0 - MAKESPAN_RTOL):
                checker.note(n, "refine-paper", "bug",
                             f"paper refinement beat the optimum: {got:.17g} < {want:.17g}")
            elif not math.isclose(got, want, rel_tol=MAKESPAN_RTOL):
                checker.note(n, "refine-paper", "tolerance",
                             "paper refinement suboptimal by its documented "
                             f"boundary-candidate gap: {got / want:.4f}x optimal")

        # -- packed (vectorised) evaluation -----------------------------
        if fleet.pack is not None:
            packed = _attempt(lambda: partition_bisection(n, sfs, pack=fleet.pack))
            report.solves += 1
            checker.compare(n, "bisection-packed", ref, packed)

            # Compiled-vs-pure oracle: rerun the reference with knot
            # compilation suppressed, so every evaluation goes through
            # the per-object code.  Packs whose rows all compile exactly
            # (constants, steps, truncations, scaled/tabulated models)
            # must agree bit for bit; comm-aware rows replace a
            # per-object bisection with a closed-form segment solve and
            # are documented to the 1e-9 class.
            def _pure_solve():
                with packing_disabled():
                    return partition_bisection(n, sfs)

            pure = _attempt(_pure_solve)
            report.solves += 1
            checker.compare(
                n, "pure-oracle", ref, pure, bit_identical=fleet.pack.exact
            )

        # -- planner: cold then cache hit (bit-identical guarantees) ----
        cold = _attempt(lambda: planner.plan(n))
        report.solves += 1
        checker.compare(n, "planner-cold", ref, cold, bit_identical=True)
        cached = _attempt(lambda: planner.plan(n))
        checker.compare(n, "planner-cached", ref, cached, bit_identical=True)

        # -- bounded: bisection vs exact over the truncated fleet -------
        if case.bounds is not None:
            b_bis = _attempt(
                lambda: partition_bounded(n, sfs, case.bounds, algorithm="bisection")
            )
            b_exact = _attempt(
                lambda: partition_bounded(n, sfs, case.bounds, algorithm="exact")
            )
            report.solves += 2
            if b_exact[0] == "error":
                checker.note(n, "bounded-exact", "bug",
                             f"unexpected exception: {b_exact[1]}")
            checker.compare(n, "bounded-bisection-vs-exact", b_exact, b_bis)
            if b_bis[0] == "ok":
                cert = check_allocation(
                    b_bis[1].allocation,
                    [sf for sf in _truncated(sfs, case.bounds)],
                    n=n,
                    makespan=b_bis[1].makespan,
                )
                for v in cert.violations:
                    checker.note(n, f"bounded-certificate:{v.check}", "bug", v.message)

    # -- planner warm + batched sweeps over every feasible size ---------
    feasible = [n for n, ref in refs if ref[0] == "ok"]
    if feasible:
        warm_planner = Planner(fleet)
        for n in feasible:  # first solve is cold, the rest warm-start
            warm = _attempt(lambda: warm_planner.plan(n))
            report.solves += 1
            ref = next(r for m, r in refs if m == n)
            checker.compare(n, "planner-warm", ref, warm, bit_identical=True)
        batched = _attempt(lambda: Planner(fleet).plan_many(feasible))
        report.solves += len(feasible)
        if batched[0] != "ok":
            checker.note(feasible[0], "planner-batched", "bug",
                         f"plan_many failed: {batched[1]}")
        else:
            for n, got in zip(feasible, batched[1]):
                ref = next(r for m, r in refs if m == n)
                checker.compare(n, "planner-batched", ref, ("ok", got),
                                bit_identical=True)
        many = _attempt(lambda: partition_bisection_many(feasible, sfs))
        report.solves += len(feasible)
        if many[0] == "ok":
            for n, got in zip(feasible, many[1]):
                ref = next(r for m, r in refs if m == n)
                checker.compare(n, "bisection-many", ref, ("ok", got))
        else:
            checker.note(feasible[0], "bisection-many", "bug",
                         f"partition_bisection_many failed: {many[1]}")
    return refs


def _truncated(sfs: Sequence[SpeedFunction], bounds: Sequence[float]):
    from ..core.bounded import TruncatedSpeedFunction

    for sf, b in zip(sfs, bounds):
        yield sf if math.isinf(b) else TruncatedSpeedFunction(sf, b)


def _check_served_plans(
    served: list[tuple[Case, list[tuple[int, _Outcome]]]],
    report: DifferentialReport,
    log: Callable[[str], None] | None,
) -> None:
    """Replay every case through an in-process planning service.

    Cases whose fleets contain models outside the wire format (truncated,
    scaled, comm-aware wrappers) are skipped here — the local solver
    paths already conformance-check them; the service only ever receives
    serialisable fleets.
    """
    from ..exceptions import ConfigurationError
    from ..io import speed_function_to_dict
    from ..serve.service import PlanningService, ServeConfig

    def _serialisable(case: Case) -> bool:
        try:
            for sf in case.speed_functions:
                speed_function_to_dict(sf)
        except ConfigurationError:
            return False
        return True

    served = [(case, refs) for case, refs in served if _serialisable(case)]
    if not served:
        return

    async def _run() -> None:
        service = PlanningService(
            ServeConfig(shards=2, batch_window=0.0, queue_depth=256)
        )
        await service.start()
        try:
            for case, refs in served:
                checker = _CaseChecker(case, report, log)
                info = await service.register_fleet(
                    case.speed_functions, name=f"case-{case.index}"
                )
                for n, ref in refs:
                    if n < 0:
                        continue  # negative sizes are rejected at the protocol layer
                    item = await service.plan(info["fingerprint"], n)
                    report.solves += 1
                    if item.get("ok"):
                        outcome: _Outcome = ("ok", _WireResult(item))
                    elif item.get("code") == "infeasible":
                        outcome = ("raise", item.get("message", ""))
                    else:
                        outcome = ("error", f"served error {item.get('code')}: "
                                            f"{item.get('message')}")
                    checker.compare(n, "served-plan", ref, outcome,
                                    bit_identical=True)
        finally:
            await service.drain()

    asyncio.run(_run())


class _WireResult:
    """Adapts a served plan item to the (allocation, makespan) duck type."""

    def __init__(self, item: dict):
        self.allocation = np.asarray(item["allocation"], dtype=np.int64)
        self.makespan = float(item["makespan"])

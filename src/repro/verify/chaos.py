"""Kill-a-node chaos: SIGKILL a cluster member mid-load, audit every reply.

The contract under test is the cluster's fault-isolation story end to
end, on a *real* topology — a router thread fronting N planner node
processes:

* **no protocol-level hangs** — every request issued before, during and
  after the kill gets an answer within a hard deadline; a parked future
  is a failure, not a slow success;
* **typed failure or replica answer** — each request either succeeds or
  carries a wire code from :data:`~repro.serve.protocol.ERROR_CODES`;
  nothing surfaces as a raw transport error through the router;
* **replica answers are bit-identical** — every plan served (primary or
  fallback) equals a cold :func:`~repro.core.partition_bisection` run
  for that size: same makespan float, same allocation integers;
* **minimal resharding** — after the victim is removed from the ring,
  only fleets whose replica set contained the victim changed owners.

Every run is a pure function of ``(seed, run index)``; failures carry a
replay command (``repro verify --seed S --cluster-runs K``), matching
the :mod:`repro.verify.fuzz` idiom.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..cluster import RouterConfig, start_process_node, start_router_in_thread
from ..core import partition_bisection
from ..experiments import build_network_models, tile_speed_functions
from ..machines import table2_network
from ..planner import Fleet
from ..serve.client import AsyncServeClient, ServeClient
from ..serve.protocol import ERROR_CODES

__all__ = ["ChaosFailure", "ChaosReport", "run_cluster_chaos"]

#: Per-request hard deadline: anything slower is recorded as a hang.
#: Generous on purpose — failover is milliseconds; this bound exists to
#: separate "slow" from "never".
_HANG_DEADLINE = 30.0


@dataclass(frozen=True)
class ChaosFailure:
    """One broken cluster contract, with enough context to replay it."""

    run: int
    seed: int
    contract: str
    detail: str

    @property
    def replay(self) -> str:
        return (
            f"repro verify --cases 0 --fuzz-frames 0 --chaos-runs 0 "
            f"--seed {self.seed} --cluster-runs {self.run + 1}"
        )

    def summary(self) -> str:
        return f"[{self.contract}] {self.detail}  |  replay: {self.replay}"


@dataclass
class ChaosReport:
    """What the kill-a-node runs saw."""

    seed: int
    runs: int = 0
    requests: int = 0
    ok: int = 0
    errors: dict[str, int] = field(default_factory=dict)
    verified_plans: int = 0
    failures: list[ChaosFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        errs = (
            " ".join(f"{c}={n}" for c, n in sorted(self.errors.items())) or "none"
        )
        return (
            f"cluster chaos: {self.runs} runs, {self.ok}/{self.requests} plans ok "
            f"({self.verified_plans} bit-checked), errors: {errs}, "
            f"{len(self.failures)} failures (seed {self.seed})"
        )


async def _drive_load(
    host: str,
    port: int,
    fingerprint: str,
    sizes: Sequence[int],
    *,
    concurrency: int,
    kill_after: int,
    kill_event: threading.Event,
) -> list[tuple[int, dict | None]]:
    """Fire one ``plan`` per size; return ``(n, response-or-None)`` pairs.

    ``None`` marks a hang (no answer within the deadline).  After
    ``kill_after`` responses have arrived, ``kill_event`` is set — the
    harness thread SIGKILLs the victim while the remaining requests are
    still in flight, which is the window under test.
    """
    clients = [
        await AsyncServeClient.connect(host, port)
        for _ in range(max(1, min(4, concurrency)))
    ]
    queue: asyncio.Queue[int] = asyncio.Queue()
    for n in sizes:
        queue.put_nowait(int(n))
    results: list[tuple[int, dict | None]] = []
    answered = 0

    async def worker(idx: int) -> None:
        nonlocal answered
        client = clients[idx % len(clients)]
        while True:
            try:
                n = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            try:
                response = await asyncio.wait_for(
                    client.call("plan", fleet=fingerprint, n=n, allocation=True),
                    timeout=_HANG_DEADLINE,
                )
            except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
                results.append((n, None if isinstance(exc, asyncio.TimeoutError)
                                else {"transport_error": str(exc)}))
                continue
            results.append((n, response))
            answered += 1
            if answered >= kill_after:
                kill_event.set()

    try:
        await asyncio.gather(*(worker(i) for i in range(concurrency)))
    finally:
        for client in clients:
            await client.close()
    return results


def run_cluster_chaos(
    *,
    runs: int = 1,
    seed: int = 0,
    requests: int = 120,
    concurrency: int = 8,
    p: int = 24,
    nodes: int = 3,
    replication: int = 2,
) -> ChaosReport:
    """SIGKILL a member node mid-load ``runs`` times; audit every answer."""
    report = ChaosReport(seed=seed)
    for run in range(runs):
        _one_run(
            report, run,
            seed=seed, requests=requests, concurrency=concurrency,
            p=p, node_count=nodes, replication=replication,
        )
        report.runs += 1
    return report


def _one_run(
    report: ChaosReport,
    run: int,
    *,
    seed: int,
    requests: int,
    concurrency: int,
    p: int,
    node_count: int,
    replication: int,
) -> None:
    rng = np.random.default_rng(seed * 7919 + run)
    models = build_network_models(table2_network(), "matmul")

    def fail(contract: str, detail: str) -> None:
        report.failures.append(ChaosFailure(run, seed, contract, detail))

    members = [start_process_node(f"chaos{run}-n{i}") for i in range(node_count)]
    router = start_router_in_thread(
        RouterConfig(replication=replication, probe_interval=0.1),
        [m.info for m in members],
    )
    try:
        # Several fleets with distinct fingerprints (varying p) so the
        # minimal-remap check has bystanders that must NOT move.
        fleets = []
        with ServeClient(router.host, router.port) as client:
            for k in range(3):
                sfs = tile_speed_functions(models, p + k)
                fleet = Fleet(sfs, name=f"chaos-p{p + k}")
                info = client.register_fleet(sfs, name=fleet.name)
                if info["fingerprint"] != fleet.fingerprint:
                    fail("fingerprint", "wire fingerprint differs from local")
                fleets.append((fleet, sfs))
            status = client.call("cluster_status")["result"]

        target_fleet, target_sfs = fleets[0]
        fp = target_fleet.fingerprint
        owners = status["fleets"][fp]["nodes"]
        victim_id = owners[0]
        victim = next(m for m in members if m.node_id == victim_id)
        bystanders = {
            other_fp: tuple(doc["nodes"])
            for other_fp, doc in status["fleets"].items()
            if victim_id not in doc["nodes"]
        }

        sizes = [
            int(n)
            for n in rng.integers(10_000, int(target_fleet.capacity), requests)
        ]
        # Cold references: one bit-exact plan per size, straight from the
        # partitioner the cluster must agree with.
        reference = {
            n: partition_bisection(n, target_sfs) for n in sorted(set(sizes))
        }

        kill_event = threading.Event()
        box: dict = {}

        def _load_thread() -> None:
            box["results"] = asyncio.run(
                _drive_load(
                    router.host, router.port, fp, sizes,
                    concurrency=concurrency,
                    kill_after=max(1, requests // 4),
                    kill_event=kill_event,
                )
            )

        loader = threading.Thread(target=_load_thread, daemon=True)
        loader.start()
        if not kill_event.wait(timeout=60.0):
            fail("liveness", "load generator produced no responses in 60s")
        victim.kill()
        loader.join(timeout=requests * 2.0 + 120.0)
        if loader.is_alive():
            fail("hang", "load generator did not finish after the kill")
            return  # the thread is wedged; no per-request audit possible

        results = box.get("results", [])
        report.requests += len(results)
        if len(results) != requests:
            fail("accounting", f"{len(results)} answers for {requests} requests")
        verified = 0
        for n, response in results:
            if response is None:
                fail("hang", f"plan(n={n}) exceeded the {_HANG_DEADLINE}s deadline")
                continue
            if "transport_error" in response:
                fail(
                    "typed-errors",
                    f"plan(n={n}) died on transport: {response['transport_error']}",
                )
                continue
            if not response.get("ok"):
                code = (response.get("error") or {}).get("code")
                if code not in ERROR_CODES:
                    fail("typed-errors", f"plan(n={n}) failed with untyped {code!r}")
                else:
                    report.errors[code] = report.errors.get(code, 0) + 1
                continue
            report.ok += 1
            want = reference[n]
            got = response["result"]
            if got["makespan"] != float(want.makespan) or got.get(
                "allocation"
            ) != [int(x) for x in want.allocation]:
                fail(
                    "bit-identity",
                    f"plan(n={n}) differs from cold partition_bisection "
                    f"(makespan {got['makespan']!r} vs {float(want.makespan)!r})",
                )
            else:
                verified += 1
        report.verified_plans += verified

        # The dead node must still answer plans (replica path) and the
        # ring rebalance must leave bystander fleets untouched.
        with ServeClient(router.host, router.port) as client:
            probe_n = sizes[0]
            got = client.plan(fp, probe_n)
            want = reference[probe_n]
            if got["makespan"] != float(want.makespan):
                fail("bit-identity", "post-kill probe plan differs from cold run")
            leave = client.call("cluster_leave", node=victim_id)
            if not leave.get("ok"):
                fail("membership", f"cluster_leave failed: {leave.get('error')}")
            after = client.call("cluster_status")["result"]
            if victim_id in {n["node_id"] for n in after["nodes"]}:
                fail("membership", "victim still listed after cluster_leave")
            for other_fp, before_nodes in bystanders.items():
                now = tuple(after["fleets"][other_fp]["nodes"])
                if now != before_nodes:
                    fail(
                        "minimal-remap",
                        f"fleet {other_fp[:12]} moved {before_nodes} -> {now} "
                        "without owning the victim",
                    )
            got2 = client.plan(fp, probe_n)
            if got2["makespan"] != float(want.makespan):
                fail("bit-identity", "post-leave plan differs from cold run")
    finally:
        try:
            router.stop()
        finally:
            for m in members:
                try:
                    m.kill() if not m.alive else m.stop()
                except Exception:  # noqa: BLE001 - teardown best-effort
                    pass

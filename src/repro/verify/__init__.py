"""Independent verification of partition plans and the serving stack.

Three pillars (see ``docs/testing.md``):

* :mod:`repro.verify.certificate` — re-derive the paper's optimal-ray
  condition plus feasibility invariants for any plan, without trusting
  the algorithm that produced it;
* :mod:`repro.verify.differential` — seeded random fleets cross-checking
  every partitioner, the planner's fast paths, and served plans, with
  each disagreement classified bug vs documented tolerance;
* :mod:`repro.verify.fuzz` — mutated protocol frames against a live
  server and chaos scripts against the adaptive simulators;
* :mod:`repro.verify.chaos` — kill-a-node runs against a live cluster
  (router + planner node processes), auditing every answer for typed
  failure, bit-identical replica plans, and minimal resharding.

Everything is replayable from ``(seed, index)`` alone; the ``repro
verify`` CLI subcommand and ``make verify-smoke`` drive all three.
"""

from .certificate import (
    CertificateReport,
    Violation,
    check_allocation,
    check_certificate,
)
from .differential import (
    Disagreement,
    DifferentialReport,
    generate_case,
    replay_command,
    run_differential,
)
from .chaos import ChaosFailure, ChaosReport, run_cluster_chaos
from .fuzz import FuzzFailure, FuzzReport, fuzz_adapt, fuzz_protocol

__all__ = [
    "CertificateReport",
    "Violation",
    "check_allocation",
    "check_certificate",
    "Disagreement",
    "DifferentialReport",
    "generate_case",
    "replay_command",
    "run_differential",
    "FuzzFailure",
    "FuzzReport",
    "fuzz_adapt",
    "fuzz_protocol",
    "ChaosFailure",
    "ChaosReport",
    "run_cluster_chaos",
]

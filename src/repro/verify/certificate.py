"""Optimality certificates for partition plans.

The paper's geometric characterisation of the optimum — every point
``(x_i, s_i(x_i))`` of the chosen allocation lies on *one* straight line
through the origin — doubles as a checkable certificate: given any
allocation and the fleet it was computed for, we can re-derive the
condition without trusting the algorithm that produced the plan.  This
module implements that re-derivation plus the bread-and-butter
feasibility invariants, and reports everything machine-readably so the
differential harness, the serve smoke and the CLI can all consume one
format.

Checks performed by :func:`check_certificate` /
:func:`check_allocation`:

``shape`` / ``integral`` / ``conservation`` / ``bounds``
    The allocation has one entry per processor, entries are non-negative
    integers, they sum to the requested ``n``, and no entry exceeds the
    processor's memory bound ``floor(max_size)``.

``makespan``
    The reported makespan equals ``max_i t_i(x_i)`` recomputed from the
    speed functions.

``exchange``
    No *profitable single-element exchange* exists: moving one element
    off the (unique) bottleneck onto any other processor cannot strictly
    reduce the makespan.  Because ``g(x) = s(x)/x`` strictly decreases,
    ``t(x) = 1/g(x)`` strictly increases, so this reduces to an ``O(p)``
    scan over the top-two finish times.

``ray``
    The discrete optimal-ray condition: there exists a slope ``c`` with
    ``g_i(x_i + 1) <= c <= g_i(x_i - 1)`` for every processor (reading
    ``g_i(0) = inf``, and dropping the lower constraint for processors
    pinned at their memory bound).  Geometrically: one line through the
    origin passes within one element of every point of the plan.

``optimality``
    The packing lower bound: for ``T' = T * (1 - rtol)`` the total
    number of elements the fleet can finish within ``T'`` is < ``n``.
    Since every ``t_i`` is strictly increasing this proves no feasible
    allocation beats the reported makespan (up to the tolerance), which
    makes the certificate *complete* — ties between processors that the
    exchange/ray conditions treat conservatively cannot hide a genuinely
    faster plan.

Every call increments the ``verify.cases`` counter; every violation
increments ``verify.violations`` (labelled by check), so verification
runs are observable through :mod:`repro.obs` like everything else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .. import obs
from ..core.result import PartitionResult
from ..core.speed_function import SpeedFunction

__all__ = [
    "Violation",
    "CertificateReport",
    "check_allocation",
    "check_certificate",
]


@dataclass(frozen=True)
class Violation:
    """One failed certificate invariant, machine-readable."""

    check: str
    message: str
    processor: int | None = None

    def as_dict(self) -> dict:
        return {
            "check": self.check,
            "message": self.message,
            "processor": self.processor,
        }


@dataclass
class CertificateReport:
    """The verdict of one certificate check."""

    n: int
    p: int
    makespan: float
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "p": self.p,
            "makespan": self.makespan,
            "ok": self.ok,
            "violations": [v.as_dict() for v in self.violations],
        }

    def summary(self) -> str:
        if self.ok:
            return f"certificate ok (n={self.n}, p={self.p})"
        checks = ", ".join(sorted({v.check for v in self.violations}))
        return (
            f"certificate FAILED (n={self.n}, p={self.p}): "
            f"{len(self.violations)} violation(s) [{checks}]"
        )


def _bound_elements(sf: SpeedFunction) -> float:
    """Largest integer element count processor ``sf`` can hold."""
    if math.isinf(sf.max_size):
        return math.inf
    return math.floor(sf.max_size + 1e-9)


def _feasible_within(sf: SpeedFunction, deadline: float) -> float:
    """How many elements ``sf`` can finish strictly within ``deadline``.

    ``t`` is strictly increasing, so this is the largest integer ``x``
    with ``t(x) <= deadline`` (bounded by the memory limit).  The ray
    intersection gives the continuous answer; a short integer walk
    absorbs the float noise of the two representations.
    """
    if deadline <= 0:
        return 0
    x = math.floor(sf.intersect_ray(1.0 / deadline) + 1e-9)
    cap = _bound_elements(sf)
    x = min(x, cap)
    while x > 0 and sf.time(x) > deadline:
        x -= 1
    while x + 1 <= cap and sf.time(x + 1) <= deadline:
        x += 1
    return x


def check_allocation(
    allocation: Sequence[int],
    speed_functions: Sequence[SpeedFunction],
    *,
    n: int | None = None,
    makespan: float | None = None,
    rtol: float = 1e-9,
    check_optimality: bool = True,
) -> CertificateReport:
    """Certificate-check a raw allocation against its fleet.

    Parameters
    ----------
    allocation:
        Per-processor element counts (any integer sequence).
    speed_functions:
        The fleet the plan was computed for.
    n:
        The requested problem size; defaults to ``sum(allocation)``
        (which makes the conservation check vacuous — pass the real
        request when you have it).
    makespan:
        The makespan the producer reported, if any.
    rtol:
        Relative tolerance for all float comparisons.
    check_optimality:
        Set to ``False`` to run only the feasibility/conservation
        checks — useful for plans that are *deliberately* not optimal
        (e.g. the paper's refinement procedure, documented to land
        within 1% of the optimum).
    """
    alloc = np.asarray(allocation)
    sfs = list(speed_functions)
    p = len(sfs)
    report = CertificateReport(
        n=int(n) if n is not None else int(np.sum(alloc)) if alloc.size else 0,
        p=p,
        makespan=float(makespan) if makespan is not None else float("nan"),
    )

    def fail(check: str, message: str, processor: int | None = None) -> None:
        report.violations.append(Violation(check, message, processor))

    # -- shape / integrality -------------------------------------------
    if alloc.ndim != 1 or alloc.size != p:
        fail("shape", f"allocation has shape {alloc.shape}, fleet has p={p}")
        _record(report)
        return report
    if not np.issubdtype(alloc.dtype, np.integer):
        if not np.all(alloc == np.floor(alloc)):
            fail("integral", "allocation entries are not integers")
            _record(report)
            return report
        alloc = alloc.astype(np.int64)
    if np.any(alloc < 0):
        i = int(np.argmin(alloc))
        fail("integral", f"allocation[{i}] = {int(alloc[i])} is negative", i)
        _record(report)
        return report

    # -- conservation ---------------------------------------------------
    total = int(alloc.sum())
    if total != report.n:
        fail("conservation", f"allocation sums to {total}, expected n={report.n}")

    # -- memory bounds --------------------------------------------------
    for i, sf in enumerate(sfs):
        cap = _bound_elements(sf)
        if alloc[i] > cap:
            fail(
                "bounds",
                f"allocation[{i}] = {int(alloc[i])} exceeds the memory bound "
                f"floor(max_size) = {cap:g}",
                i,
            )

    # -- makespan recomputation ----------------------------------------
    times = np.array([sf.time(int(x)) for sf, x in zip(sfs, alloc)], dtype=float)
    true_makespan = float(times.max()) if p else 0.0
    if makespan is not None and not math.isclose(
        true_makespan, float(makespan), rel_tol=rtol, abs_tol=rtol
    ):
        fail(
            "makespan",
            f"reported makespan {float(makespan):.17g} != recomputed "
            f"{true_makespan:.17g}",
        )

    if not check_optimality or report.violations or total == 0 or p == 0:
        _record(report)
        return report

    # -- no profitable single-element exchange -------------------------
    order = np.argsort(times)
    top = int(order[-1])
    second = float(times[order[-2]]) if p > 1 else 0.0
    t_max = float(times[top])
    # Only a *unique* bottleneck can shed profitably: with ties, moving
    # one element leaves the other tied processor at t_max.
    if p > 1 and alloc[top] > 0 and second < t_max * (1.0 - rtol):
        t_donor = float(sfs[top].time(int(alloc[top]) - 1))
        ceiling = t_max * (1.0 - rtol)
        for j, sf in enumerate(sfs):
            if j == top or alloc[j] + 1 > _bound_elements(sf):
                continue
            t_recv = float(sf.time(int(alloc[j]) + 1))
            if max(t_donor, t_recv, second) < ceiling:
                fail(
                    "exchange",
                    f"moving one element from processor {top} to {j} drops the "
                    f"makespan from {t_max:.17g} to "
                    f"{max(t_donor, t_recv, second):.17g}",
                    j,
                )
                break

    # -- the optimal-ray condition --------------------------------------
    # A slope c certifies the plan when g_i(x_i+1) <= c <= g_i(x_i-1)
    # for every processor: the line y = c*x passes within one element of
    # every point (x_i, s_i(x_i)).  g_i(0) = inf, and a processor pinned
    # at its memory bound contributes no lower constraint (it cannot
    # accept another element however profitable it looks).
    lowers = np.full(p, -math.inf)
    uppers = np.full(p, math.inf)
    for i, sf in enumerate(sfs):
        x = int(alloc[i])
        if x + 1 <= _bound_elements(sf):
            lowers[i] = sf.g(x + 1)
        if x >= 2:
            uppers[i] = sf.g(x - 1)
    lo, hi = float(lowers.max()), float(uppers.min())
    if lo > hi * (1.0 + rtol):
        i, j = int(np.argmax(lowers)), int(np.argmin(uppers))
        fail(
            "ray",
            "no line through the origin passes within one element of every "
            f"point: processor {i} needs slope >= g_{i}({int(alloc[i]) + 1}) = "
            f"{lo:.17g} but processor {j} allows at most "
            f"g_{j}({int(alloc[j]) - 1}) = {hi:.17g}",
        )

    # -- packing lower bound (completeness) ------------------------------
    deadline = true_makespan * (1.0 - max(rtol, 1e-12))
    capacity = 0
    for sf in sfs:
        capacity += _feasible_within(sf, deadline)
        if capacity >= total:
            break
    if capacity >= total:
        fail(
            "optimality",
            f"the fleet can finish {capacity} >= n={total} elements within "
            f"{deadline:.17g} s, strictly beating the reported makespan "
            f"{true_makespan:.17g} s",
        )

    _record(report)
    return report


def check_certificate(
    result: PartitionResult,
    speed_functions: Sequence[SpeedFunction],
    *,
    n: int | None = None,
    rtol: float = 1e-9,
    check_optimality: bool = True,
) -> CertificateReport:
    """Certificate-check a :class:`~repro.core.result.PartitionResult`.

    ``speed_functions`` may be the raw sequence or anything exposing a
    ``speed_functions`` attribute (a :class:`~repro.planner.Fleet`).
    """
    sfs = getattr(speed_functions, "speed_functions", speed_functions)
    return check_allocation(
        result.allocation,
        sfs,
        n=n if n is not None else result.n,
        makespan=result.makespan,
        rtol=rtol,
        check_optimality=check_optimality,
    )


def _record(report: CertificateReport) -> None:
    registry = obs.get_registry()
    registry.counter("verify.cases", labels={"layer": "certificate"}).inc()
    for v in report.violations:
        registry.counter("verify.violations", labels={"check": v.check}).inc()

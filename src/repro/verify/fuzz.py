"""Seeded fuzzing of the serve protocol and chaos runs of the adapt layer.

Two independent fuzzers share one report format:

:func:`fuzz_protocol`
    Boots a real :class:`~repro.serve.server.PlanServer` (ephemeral
    ports, background thread) and throws seeded mutated NDJSON frames at
    the TCP listener and mutated requests at the HTTP listener.  The
    contract under test: the server answers malformed input with a
    *typed* error (``code`` in :data:`~repro.serve.protocol.ERROR_CODES`)
    and never crashes, hangs, or wedges a connection.  After every
    mutated frame a health probe with a unique id must come back on the
    same connection (reconnecting only where the protocol documents a
    deliberate close, e.g. an over-limit frame), and every line the
    server emits must parse as a JSON object.

:func:`fuzz_adapt`
    Drives :func:`~repro.adapt.mm.simulate_striped_matmul_adaptive`
    under randomized :class:`~repro.adapt.faults.FaultScript` scenarios
    on the virtual clock and asserts the recovery invariants that hold
    for *any* script: allocations stay non-negative and never exceed the
    problem size, a machine that dropped mid-run ends with zero
    elements, a fault-free run conserves the plan exactly, the makespan
    stays finite, and a rerun with identical arguments is bit-identical
    (runs are pure functions of ``(plan, script, seed)``).

Every case is a pure function of ``(seed, index)``; failures carry a
one-line replay command (``repro verify --seed S --only-frame K`` /
``--only-run K``).
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..adapt.faults import CommFault, Dropout, FaultScript, LoadShift
from ..adapt.mm import simulate_striped_matmul_adaptive
from ..adapt.replanner import AdaptivePolicy
from ..core import partition
from ..core.speed_function import PiecewiseLinearSpeedFunction
from ..io import speed_function_to_dict
from ..serve.protocol import ERROR_CODES, MAX_FRAME_BYTES, PROTOCOL_VERSION
from ..serve.server import start_in_thread
from ..serve.service import ServeConfig

__all__ = ["FuzzFailure", "FuzzReport", "fuzz_protocol", "fuzz_adapt"]

_PROBE_TIMEOUT = 10.0


@dataclass(frozen=True)
class FuzzFailure:
    """One broken contract, with enough context to replay it."""

    kind: str
    index: int
    seed: int
    detail: str
    layer: str  # "protocol" or "adapt"

    @property
    def replay(self) -> str:
        flag = "--only-frame" if self.layer == "protocol" else "--only-run"
        return f"python -m repro verify --seed {self.seed} {flag} {self.index}"

    def line(self) -> str:
        return (
            f"FUZZ[{self.layer}] {self.kind} at index {self.index}: "
            f"{self.detail}  |  replay: {self.replay}"
        )


@dataclass
class FuzzReport:
    """Outcome of one fuzzing sweep."""

    seed: int
    layer: str
    cases: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "ok" if self.ok else "FAILED"
        return (
            f"fuzz[{self.layer}] {verdict}: {self.cases} cases, "
            f"{len(self.failures)} failures (seed {self.seed})"
        )


def _record(layer: str, failures: Sequence[FuzzFailure]) -> None:
    registry = obs.get_registry()
    registry.counter("verify.cases", labels={"layer": f"fuzz.{layer}"}).inc()
    for f in failures:
        registry.counter("verify.violations", labels={"check": f.kind}).inc()


# ---------------------------------------------------------------------------
# Protocol fuzzing
# ---------------------------------------------------------------------------

_JUNK = (
    None, True, False, [], {}, "", "x", -1, 0, 1.5, 10**24, -(10**24),
    1e308, "\x00", {"a": 1}, [1, 2, 3], "𝔘𝔫𝔦", " ", "plan ",
)


class _Conn:
    """A blocking NDJSON connection with line-buffered reads."""

    def __init__(self, host: str, port: int):
        self.sock = socket.create_connection((host, port), timeout=_PROBE_TIMEOUT)
        self._buf = b""

    def send(self, data: bytes) -> None:
        self.sock.sendall(data)

    def readline(self) -> bytes:
        """One newline-terminated line; ``b""`` on EOF; raises on timeout."""
        while b"\n" not in self._buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                out, self._buf = self._buf, b""
                return out
            self._buf += chunk
        line, _, self._buf = self._buf.partition(b"\n")
        return line + b"\n"

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass


def _valid_frames(fingerprint: str, rng: np.random.Generator) -> list[dict]:
    """Template requests the mutators start from."""
    return [
        {"v": PROTOCOL_VERSION, "id": 1, "op": "plan", "fleet": fingerprint,
         "n": int(rng.integers(0, 200_000))},
        {"v": PROTOCOL_VERSION, "id": 2, "op": "plan_many", "fleet": fingerprint,
         "ns": [int(x) for x in rng.integers(0, 50_000, size=3)]},
        {"v": PROTOCOL_VERSION, "id": 3, "op": "health"},
        {"v": PROTOCOL_VERSION, "id": 4, "op": "stats"},
        {"v": PROTOCOL_VERSION, "id": 5, "op": "register_fleet", "name": "fz",
         "speed_functions": [{"kind": "constant", "speed": 10.0, "max_size": 100.0}]},
    ]


def _mutate_tcp(frame: dict, rng: np.random.Generator) -> bytes:
    """One mutated, newline-terminated TCP frame."""
    strategy = int(rng.integers(0, 13))
    obj = dict(frame)
    if strategy == 0:  # valid passthrough
        pass
    elif strategy == 1 and obj:  # drop a key
        obj.pop(list(obj)[int(rng.integers(0, len(obj)))])
    elif strategy == 2 and obj:  # junk value for a key
        key = list(obj)[int(rng.integers(0, len(obj)))]
        obj[key] = _JUNK[int(rng.integers(0, len(_JUNK)))]
    elif strategy == 3:  # wrong protocol version
        obj["v"] = [0, 2, -1, "1", None][int(rng.integers(0, 5))]
    elif strategy == 4:  # weird id
        obj["id"] = [{"a": 1}, [1], "x" * 500, None][int(rng.integers(0, 4))]
    elif strategy == 5:  # unknown / mistyped op
        obj["op"] = ["noop", "PLAN", 7, None, "plan "][int(rng.integers(0, 5))]
    elif strategy == 6:  # JSON but not an object
        return [b"42\n", b"null\n", b'"hi"\n', b"[]\n", b"[1,2,3]\n", b"true\n"][
            int(rng.integers(0, 6))
        ]
    elif strategy == 7:  # deep nesting (parser stack overflow bait)
        depth = int(rng.integers(64, 4000))
        return (b'{"a":' * depth + b"1" + b"}" * depth) + b"\n"
    elif strategy == 8:  # truncated JSON
        raw = json.dumps(obj).encode("utf-8")
        cut = int(rng.integers(1, max(2, len(raw))))
        return raw[:cut] + b"\n"
    elif strategy == 9:  # invalid UTF-8 inside the frame
        return b'{"op": "\xff\xfe\x80"}\n'
    elif strategy == 10:  # raw binary garbage (newlines stripped)
        raw = rng.bytes(int(rng.integers(1, 200)))
        return raw.replace(b"\n", b"\x00").replace(b"\r", b"\x00") + b"\n"
    elif strategy == 11:  # duplicate keys
        return b'{"op":"plan","op":"health","v":1,"v":2,"id":0,"id":0}\n'
    else:  # oversized-but-legal payload: a big plan_many sweep
        obj = {"v": PROTOCOL_VERSION, "id": 6, "op": "plan_many",
               "fleet": obj.get("fleet", "?"),
               "ns": [int(x) for x in rng.integers(0, 1000, size=2000)]}
    return json.dumps(obj).encode("utf-8") + b"\n"


def _check_lines(lines: list[bytes], index: int, seed: int,
                 failures: list[FuzzFailure]) -> None:
    """Every emitted line must be a JSON object with a typed verdict."""
    for line in lines:
        try:
            doc = json.loads(line)
        except (json.JSONDecodeError, RecursionError):
            failures.append(FuzzFailure(
                "malformed-response", index, seed,
                f"server emitted a non-JSON line: {line[:120]!r}", "protocol"))
            continue
        if not isinstance(doc, dict) or "ok" not in doc:
            failures.append(FuzzFailure(
                "malformed-response", index, seed,
                f"response is not a typed frame: {line[:120]!r}", "protocol"))
        elif not doc["ok"]:
            code = (doc.get("error") or {}).get("code")
            if code not in ERROR_CODES:
                failures.append(FuzzFailure(
                    "untyped-error", index, seed,
                    f"error code {code!r} not in ERROR_CODES", "protocol"))


def _probe(conn: _Conn, index: int, seed: int,
           failures: list[FuzzFailure]) -> bool:
    """Send a uniquely-tagged health probe; collect lines until it answers.

    Returns ``False`` when the connection needs to be re-opened (EOF).
    A timeout waiting for the probe is the definition of a hang.
    """
    probe_id = f"probe-{index}"
    conn.send(json.dumps(
        {"v": PROTOCOL_VERSION, "id": probe_id, "op": "health"}
    ).encode() + b"\n")
    lines: list[bytes] = []
    try:
        while True:
            line = conn.readline()
            if not line:
                # The server closed the connection.  Legal only right
                # after an over-limit frame (documented close); either
                # way the next frame gets a fresh connection.  An EOF
                # *before any response* to the probe is a wedge unless a
                # typed error explains the close.
                _check_lines(lines, index, seed, failures)
                if not lines:
                    failures.append(FuzzFailure(
                        "connection-wedge", index, seed,
                        "server closed the connection without any response",
                        "protocol"))
                return False
            lines.append(line)
            try:
                doc = json.loads(line)
            except (json.JSONDecodeError, RecursionError):
                doc = None
            if isinstance(doc, dict) and doc.get("id") == probe_id:
                break
    except socket.timeout:
        failures.append(FuzzFailure(
            "hang", index, seed,
            "health probe got no response within "
            f"{_PROBE_TIMEOUT:g}s of a mutated frame", "protocol"))
        return False
    _check_lines(lines, index, seed, failures)
    return True


def _mutate_http(frame: dict, rng: np.random.Generator,
                 body_of: Callable[[dict], bytes]) -> bytes:
    """One mutated HTTP/1.1 request (bytes on the wire)."""
    strategy = int(rng.integers(0, 7))
    body = body_of(frame)
    if strategy == 0:  # valid POST /v1/rpc
        head = (f"POST /v1/rpc HTTP/1.1\r\ncontent-length: {len(body)}\r\n\r\n")
        return head.encode() + body
    if strategy == 1:  # non-numeric content-length
        junk = ["abc", "-5", "1e3", "", str(MAX_FRAME_BYTES + 1), "0x10"][
            int(rng.integers(0, 6))
        ]
        return (f"POST /v1/rpc HTTP/1.1\r\ncontent-length: {junk}\r\n\r\n"
                ).encode() + body
    if strategy == 2:  # body shorter than declared (server sees EOF)
        head = f"POST /v1/rpc HTTP/1.1\r\ncontent-length: {len(body) + 50}\r\n\r\n"
        return head.encode() + body
    if strategy == 3:  # wrong method / unknown path
        method = ["PUT", "DELETE", "FOO", "GET"][int(rng.integers(0, 4))]
        path = ["/v1/rpc", "/nope", "/health/../x", "/"][int(rng.integers(0, 4))]
        return f"{method} {path} HTTP/1.1\r\n\r\n".encode()
    if strategy == 4:  # garbage request line
        return [b"GARBAGE\r\n\r\n", b"GET\r\n\r\n", b"\x01\x02\x03\r\n\r\n"][
            int(rng.integers(0, 3))
        ]
    if strategy == 5:  # mutated body behind an honest content-length
        raw = _mutate_tcp(frame, rng).rstrip(b"\n")
        return (f"POST /v1/rpc HTTP/1.1\r\ncontent-length: {len(raw)}\r\n\r\n"
                ).encode() + raw
    # header spam
    headers = "".join(f"x-h{i}: {i}\r\n" for i in range(int(rng.integers(1, 60))))
    return (f"GET /health HTTP/1.1\r\n{headers}\r\n").encode()


def _http_roundtrip(host: str, port: int, payload: bytes) -> bytes:
    """Send one request, half-close, read to EOF (server closes)."""
    with socket.create_connection((host, port), timeout=_PROBE_TIMEOUT) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        out = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return out
            out += chunk


def fuzz_protocol(
    frames: int = 500,
    seed: int = 0,
    *,
    only_frame: int | None = None,
    log: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Throw ``frames`` seeded mutated frames at a live server.

    Roughly every fourth frame goes to the HTTP listener instead of the
    NDJSON TCP port.  Frame ``k`` is a pure function of ``(seed, k)``;
    ``only_frame`` replays a single one.
    """
    report = FuzzReport(seed=seed, layer="protocol")
    failures = report.failures
    handle = start_in_thread(ServeConfig(
        shards=1, batch_window=0.0, queue_depth=64, port=0, http_port=0,
    ))
    try:
        setup_rng = np.random.default_rng([seed, 0xF0])
        sfs = [speed_function_to_dict(sf) for sf in _small_fleet(setup_rng)]
        conn = _Conn(handle.host, handle.port)
        conn.send(json.dumps({
            "v": PROTOCOL_VERSION, "id": "setup", "op": "register_fleet",
            "name": "fuzzbed", "speed_functions": sfs,
        }).encode() + b"\n")
        doc = json.loads(conn.readline())
        if not doc.get("ok"):  # pragma: no cover - setup must succeed
            raise RuntimeError(f"fleet registration failed: {doc}")
        fingerprint = doc["result"]["fingerprint"]

        indices = range(frames) if only_frame is None else [only_frame]
        for k in indices:
            rng = np.random.default_rng([seed, 0xF00D, k])
            frame = _valid_frames(fingerprint, rng)[int(rng.integers(0, 5))]
            report.cases += 1
            if k % 4 == 3 and handle.http_port:
                payload = _mutate_http(
                    frame, rng,
                    lambda f: json.dumps(f).encode("utf-8"),
                )
                before = len(failures)
                try:
                    raw = _http_roundtrip(handle.host, handle.http_port, payload)
                    if raw and not raw.startswith(b"HTTP/1.1 "):
                        failures.append(FuzzFailure(
                            "malformed-response", k, seed,
                            f"HTTP reply has no status line: {raw[:120]!r}",
                            "protocol"))
                except socket.timeout:
                    failures.append(FuzzFailure(
                        "hang", k, seed, "HTTP request timed out", "protocol"))
                # The server must stay healthy regardless of the mutation.
                try:
                    health = _http_roundtrip(
                        handle.host, handle.http_port,
                        b"GET /health HTTP/1.1\r\n\r\n",
                    )
                    if b"200 OK" not in health.split(b"\r\n", 1)[0]:
                        failures.append(FuzzFailure(
                            "unhealthy", k, seed,
                            f"GET /health returned {health[:60]!r} after a "
                            "mutated HTTP request", "protocol"))
                except (socket.timeout, OSError):
                    failures.append(FuzzFailure(
                        "hang", k, seed,
                        "GET /health did not answer after a mutated HTTP "
                        "request", "protocol"))
                if log and len(failures) > before:
                    for f in failures[before:]:
                        log(f.line())
                continue
            conn.send(_mutate_tcp(frame, rng))
            before = len(failures)
            if not _probe(conn, k, seed, failures):
                conn.close()
                conn = _Conn(handle.host, handle.port)
            if log and len(failures) > before:
                for f in failures[before:]:
                    log(f.line())
        conn.close()
    finally:
        handle.stop(drain=False)
    _record("protocol", failures)
    return report


# ---------------------------------------------------------------------------
# Adapt chaos
# ---------------------------------------------------------------------------

_KNOTS = np.array([1e3, 1e4, 1e5, 5e5, 1e6, 2e6])
_SHAPE = np.array([1.0, 0.98, 0.92, 0.70, 0.20, 0.02])


def _small_fleet(rng: np.random.Generator) -> list[PiecewiseLinearSpeedFunction]:
    """2-4 heterogeneous machines with realistic memory-cliff curves."""
    p = int(rng.integers(2, 5))
    fleet = []
    for _ in range(p):
        peak = float(rng.uniform(50.0, 400.0))
        scale = float(rng.uniform(0.8, 2.0))
        fleet.append(PiecewiseLinearSpeedFunction(_KNOTS * scale, _SHAPE * peak))
    return fleet


def _random_script(
    rng: np.random.Generator, p: int, t0: float
) -> FaultScript:
    """A random scenario that always leaves at least one machine alive."""
    events: list = []
    n_drop = int(rng.integers(0, p))  # at most p-1 machines die
    victims = rng.permutation(p)[:n_drop]
    for m in victims:
        events.append(Dropout(int(m), at_time=float(rng.uniform(0.05, 1.2)) * t0))
    for _ in range(int(rng.integers(0, 3))):
        events.append(LoadShift(
            int(rng.integers(0, p)),
            at_time=float(rng.uniform(0.0, 1.0)) * t0,
            factor=float(rng.uniform(0.25, 2.5)),
        ))
    if rng.random() < 0.3:
        events.append(CommFault(
            int(rng.integers(0, p)),
            failures=int(rng.integers(1, 3)),
            at_dispatch=int(rng.integers(0, 4)),
        ))
    return FaultScript(events=tuple(events))


def fuzz_adapt(
    runs: int = 6,
    seed: int = 0,
    *,
    only_run: int | None = None,
    log: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Chaos-test the adaptive simulator under random fault scripts.

    Run ``k`` is a pure function of ``(seed, k)``; ``only_run`` replays
    one.  Invariants checked after every run: non-negative allocations
    bounded by the problem size, dead machines end empty, fault-free
    runs conserve the plan bit-exactly, finite makespan, and rerun
    determinism.
    """
    report = FuzzReport(seed=seed, layer="adapt")
    failures = report.failures

    def fail(kind: str, k: int, detail: str) -> None:
        f = FuzzFailure(kind, k, seed, detail, "adapt")
        failures.append(f)
        if log:
            log(f.line())

    indices = range(runs) if only_run is None else [only_run]
    for k in indices:
        rng = np.random.default_rng([seed, 0xADA, k])
        fleet = _small_fleet(rng)
        p = len(fleet)
        side = int(rng.integers(40, 121))
        n = 3 * side * side  # elements of the three N x N matrices
        alloc = partition(n, fleet).allocation
        report.cases += 1

        # A fault-free control run must conserve the total exactly and
        # stay within one stripe row (3N elements) of the plan — the
        # executor quantizes allocations to whole rows.
        clean = simulate_striped_matmul_adaptive(
            side, alloc, fleet, policy=AdaptivePolicy(patience=2), seed=k,
        )
        row = 3 * side
        if int(clean.final_elements.sum()) != n or np.any(
            np.abs(clean.final_elements - alloc) > row
        ):
            fail("conservation", k,
                 f"fault-free run moved elements beyond row quantization: "
                 f"{clean.final_elements} vs plan {alloc}")
        t0 = clean.makespan

        script = _random_script(rng, p, t0)
        load_sigma = float(rng.uniform(0.0, 0.15))
        kwargs = dict(
            policy=AdaptivePolicy(patience=2), script=script, seed=k,
            load_mean=float(rng.uniform(0.0, 0.2)), load_sigma=load_sigma,
        )
        out = simulate_striped_matmul_adaptive(side, alloc, fleet, **kwargs)

        if out.final_elements.shape != (p,) or np.any(out.final_elements < 0):
            fail("shape", k, f"bad final allocation {out.final_elements}")
        # Replans repartition the *remaining* work, so the final
        # allocation sums to at most the original problem size.
        if int(out.final_elements.sum()) > n:
            fail("conservation", k,
                 f"final allocation sums to {int(out.final_elements.sum())} "
                 f"> n={n}")
        if not np.isfinite(out.makespan) or out.makespan < 0:
            fail("makespan", k, f"non-finite makespan {out.makespan}")
        drops = script.dropouts()
        if out.dropouts_survived > len(drops):
            fail("recovery", k,
                 f"survived {out.dropouts_survived} dropouts but the script "
                 f"held only {len(drops)}")
        # Dropouts are observed at quantum boundaries, so a machine that
        # finishes within a few quanta of its drop time legitimately
        # keeps its work; anything later must have been migrated off.
        grace = 0.05 * t0
        for e in drops:
            done_at = float(out.finish_seconds[e.machine])
            if out.final_elements[e.machine] != 0 and done_at > e.at_time + grace:
                fail("recovery", k,
                     f"machine {e.machine} dropped at t={e.at_time:.4g} but "
                     f"still holds {int(out.final_elements[e.machine])} "
                     f"elements (finished at {done_at:.4g})")

        # Bit-identical determinism: same (plan, script, seed) -> same run.
        again = simulate_striped_matmul_adaptive(side, alloc, fleet, **kwargs)
        if (not np.array_equal(again.final_elements, out.final_elements)
                or again.makespan != out.makespan
                or again.events != out.events
                or again.replans != out.replans):
            fail("determinism", k, "rerun with identical arguments diverged")
    _record("adapt", failures)
    return report

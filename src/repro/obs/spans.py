"""Nestable timing spans building a structured trace tree.

Two kinds of span land in the same tree:

* **wall-clock spans** — ``with span("planner.solve", n=n): ...`` times a
  real code region with ``perf_counter`` and attaches it under whatever
  span is open on the current thread;
* **recorded spans** — :func:`record` appends an already-measured (or
  *modelled*) duration, which is how the execution simulators merge their
  per-step panel/comm/update times into the same tree as the wall-clock
  spans around them.

Every completed span also observes the default registry's
``<name>.seconds`` histogram, so latency distributions come for free.

When telemetry is disabled (:func:`repro.obs.registry.is_enabled`),
:func:`span` returns a shared no-op context manager and :func:`record`
returns immediately — the cost is one attribute read plus one call, which
is what lets hot paths stay instrumented permanently.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from .registry import DEFAULT_TIME_BUCKETS, get_registry, is_enabled

__all__ = ["Span", "Tracer", "get_tracer", "set_tracer", "span", "record"]


@dataclass
class Span:
    """One node of the trace tree.

    ``kind`` is ``"wall"`` for clock-timed spans and ``"sim"`` for
    recorded (modelled) durations; ``status`` is ``"ok"`` or ``"error"``
    (the exception type's name lands in ``attrs["error"]``).

    Distributed-tracing identity is optional: ``trace_id`` / ``span_id``
    / ``parent_id`` stay empty for ordinary in-process spans (zero cost)
    and are filled by the serve stack, where a span may be serialized in
    one thread or process and re-attached in another.  ``started`` is an
    epoch timestamp (0.0 = unrecorded) so stitched trees keep absolute
    ordering across machines.
    """

    name: str
    seconds: float = 0.0
    kind: str = "wall"
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""
    started: float = 0.0

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "seconds": self.seconds,
            "kind": self.kind,
            "status": self.status,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }
        # Trace identity is emitted only when set, keeping the JSON shape
        # of plain in-process spans unchanged.
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.span_id:
            out["span_id"] = self.span_id
        if self.parent_id:
            out["parent_id"] = self.parent_id
        if self.started:
            out["started"] = self.started
        return out

    @classmethod
    def from_dict(cls, raw: Mapping) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output.

        The inverse of :meth:`to_dict`, tolerant of missing optional
        fields — this is how a worker-side subtree shipped through a
        queue (or pickled across a process boundary) is re-rooted into
        the listener-side trace.
        """
        span = cls(
            name=str(raw.get("name", "")),
            seconds=float(raw.get("seconds", 0.0)),
            kind=str(raw.get("kind", "wall")),
            status=str(raw.get("status", "ok")),
            attrs=dict(raw.get("attrs") or {}),
            trace_id=str(raw.get("trace_id", "")),
            span_id=str(raw.get("span_id", "")),
            parent_id=str(raw.get("parent_id", "")),
            started=float(raw.get("started", 0.0)),
        )
        span.children = [cls.from_dict(c) for c in raw.get("children") or ()]
        return span


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopSpan()


class _SpanContext:
    """Context manager that opens/closes one wall-clock span."""

    __slots__ = ("_tracer", "_span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        seconds = time.perf_counter() - self._t0
        sp = self._span
        sp.seconds = seconds
        if exc_type is not None:
            sp.status = "error"
            sp.attrs["error"] = exc_type.__name__
        self._tracer._pop(sp)
        return False  # never swallow the exception


class Tracer:
    """Collects completed spans into per-thread trees.

    Open spans live on a thread-local stack; completed top-level spans
    are appended (lock-protected) to the shared ``roots`` list, so trees
    from concurrent threads interleave without corrupting each other.
    """

    def __init__(self, *, observe_histograms: bool = True):
        self._local = threading.local()
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._observe = observe_histograms

    # -- stack plumbing -------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order exits
            stack.remove(span)
        self._attach(span)

    def _attach(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        if self._observe:
            get_registry().histogram(
                f"{span.name}.seconds", buckets=DEFAULT_TIME_BUCKETS
            ).observe(span.seconds)

    # -- public API -----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a wall-clock span (use as a context manager)."""
        return _SpanContext(self, Span(name=name, attrs=attrs))

    @contextmanager
    def capture(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Collect this thread's spans into a *detached* subtree.

        Opens a wall-clock span like :meth:`span`, but on exit the
        completed span is **not** attached to the tracer's roots (and no
        histogram is observed) — it is handed back to the caller, who
        owns where it goes.  This is the shard-worker primitive: spans
        opened while a batch solves nest under the captured span, the
        worker serializes it (:meth:`Span.to_dict`) into the response
        payload, and the listener side re-roots it into the request's
        trace — instead of the subtree dying as an orphan root in a
        worker thread or being lost entirely across a process boundary.
        """
        span = Span(name=name, attrs=attrs, started=time.time())
        self._push(span)
        t0 = time.perf_counter()
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attrs["error"] = type(exc).__name__
            raise
        finally:
            span.seconds = time.perf_counter() - t0
            stack = self._stack()
            if stack and stack[-1] is span:
                stack.pop()
            elif span in stack:  # tolerate out-of-order exits
                stack.remove(span)
            # Deliberately not attached: the caller owns the subtree.

    def record(
        self,
        name: str,
        seconds: float,
        *,
        attrs: Mapping[str, Any] | None = None,
        children: Iterable[tuple[str, float]] | None = None,
        kind: str = "sim",
    ) -> Span:
        """Append a completed span with an explicit duration.

        ``children`` is an optional iterable of ``(name, seconds)`` pairs
        recorded as leaf children of the new span — the natural shape for
        a simulator step's panel/comm/update breakdown.
        """
        sp = Span(
            name=name,
            seconds=float(seconds),
            kind=kind,
            attrs=dict(attrs or {}),
        )
        for child_name, child_seconds in children or ():
            sp.children.append(
                Span(name=child_name, seconds=float(child_seconds), kind=kind)
            )
        self._attach(sp)
        return sp

    def roots(self) -> list[Span]:
        """Snapshot of the completed top-level spans."""
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
        self._local = threading.local()

    def __len__(self) -> int:
        with self._lock:
            return len(self._roots)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer (returns the previous one; for tests)."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def span(name: str, **attrs: Any):
    """Module-level gated span: a no-op singleton when telemetry is off."""
    if not is_enabled():
        return _NOOP
    return _TRACER.span(name, **attrs)


def record(
    name: str,
    seconds: float,
    *,
    attrs: Mapping[str, Any] | None = None,
    children: Iterable[tuple[str, float]] | None = None,
    kind: str = "sim",
) -> Span | None:
    """Module-level gated record: returns ``None`` when telemetry is off."""
    if not is_enabled():
        return None
    return _TRACER.record(name, seconds, attrs=attrs, children=children, kind=kind)

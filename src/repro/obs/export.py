"""Exporters: JSON snapshots, Prometheus text format, span-tree rendering.

All exporters read consistent snapshots (each metric locks only itself,
so a snapshot taken under load is per-metric consistent) and are pure
functions of the registry/tracer handed in — the CLI and the benchmark
harness call them with the process-wide defaults.
"""

from __future__ import annotations

import json
import math
import re
from typing import Sequence

from .registry import MetricsRegistry, get_registry
from .spans import Span, Tracer, get_tracer

__all__ = [
    "snapshot",
    "to_json",
    "write_json",
    "to_prometheus",
    "render_spans",
    "format_seconds",
    "PROMETHEUS_CONTENT_TYPE",
    "OPENMETRICS_CONTENT_TYPE",
]

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def snapshot(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    *,
    include_spans: bool = True,
) -> dict:
    """One JSON-serialisable view of the metrics (and optionally spans)."""
    registry = registry if registry is not None else get_registry()
    out = {"metrics": registry.snapshot()}
    if include_spans:
        tracer = tracer if tracer is not None else get_tracer()
        out["spans"] = [s.to_dict() for s in tracer.roots()]
    return out


def to_json(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    *,
    include_spans: bool = True,
    indent: int | None = 2,
) -> str:
    """The snapshot as a JSON document."""
    return json.dumps(
        snapshot(registry, tracer, include_spans=include_spans),
        indent=indent,
        sort_keys=True,
    )


def write_json(
    path: str,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    *,
    include_spans: bool = True,
) -> str:
    """Write the JSON snapshot to ``path`` (returns the path)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_json(registry, tracer, include_spans=include_spans))
        fh.write("\n")
    return path


def _prom_name(name: str) -> str:
    return _PROM_NAME.sub("_", name)


def _escape_label(value: str) -> str:
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    # HELP lines escape backslash and newline only (not the double quote),
    # per the Prometheus text exposition format.
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_prom_name(k)}="{_escape_label(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _prom_value(v: float) -> str:
    if isinstance(v, float) and math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    return repr(v) if isinstance(v, float) else str(v)


#: Content types for the two exposition dialects (HTTP negotiation).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


def _exemplar_suffix(exemplar: tuple[str, float, float] | None) -> str:
    """The OpenMetrics exemplar clause for one bucket sample (or '')."""
    if exemplar is None:
        return ""
    trace_id, value, ts = exemplar
    return (
        f' # {{trace_id="{_escape_label(trace_id)}"}}'
        f" {_prom_value(float(value))} {ts:.3f}"
    )


def to_prometheus(
    registry: MetricsRegistry | None = None, *, openmetrics: bool = False
) -> str:
    """The registry in the Prometheus / OpenMetrics text exposition format.

    Counters get a ``_total`` suffix, histograms emit cumulative
    ``_bucket{le=...}`` series plus ``_sum`` / ``_count`` — the standard
    shapes every Prometheus scraper understands.

    With ``openmetrics=True`` the output follows the stricter OpenMetrics
    1.0 dialect instead: metric *family* names drop the ``_total`` suffix
    in ``# TYPE`` / ``# HELP`` lines (samples keep it), histogram bucket
    samples carry recorded latency exemplars in ``# {trace_id="..."}``
    syntax, and the exposition is terminated by the mandatory ``# EOF``
    line.  Exemplar syntax and the terminator are **only** legal in the
    OpenMetrics dialect, so emit it only when the scrape negotiated that
    content type (see the ``/metrics`` handler).
    """
    registry = registry if registry is not None else get_registry()
    lines: list[str] = []
    seen_types: set[str] = set()

    def _header(name: str, kind: str, help_text: str) -> None:
        if name in seen_types:
            return
        seen_types.add(name)
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")

    for m in registry.metrics():
        if m.kind == "counter":
            name = _prom_name(m.name)
            if not name.endswith("_total"):
                name += "_total"
            # OpenMetrics names the *family* without the suffix; the
            # sample line keeps it either way.
            _header(name[: -len("_total")] if openmetrics else name, "counter", m.help)
            lines.append(f"{name}{_prom_labels(m.label_dict)} {_prom_value(m.value)}")
        elif m.kind == "gauge":
            name = _prom_name(m.name)
            _header(name, "gauge", m.help)
            lines.append(f"{name}{_prom_labels(m.label_dict)} {_prom_value(m.value)}")
        elif m.kind == "histogram":
            name = _prom_name(m.name)
            _header(name, "histogram", m.help)
            cumulative = 0
            counts = m.counts
            exemplars = m.exemplars if openmetrics else (None,) * len(counts)
            for bound, c, ex in zip(m.buckets, counts, exemplars):
                cumulative += c
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(m.label_dict, {'le': _prom_value(float(bound))})}"
                    f" {cumulative}{_exemplar_suffix(ex)}"
                )
            cumulative += counts[-1]
            lines.append(
                f"{name}_bucket{_prom_labels(m.label_dict, {'le': '+Inf'})}"
                f" {cumulative}{_exemplar_suffix(exemplars[-1])}"
            )
            lines.append(f"{name}_sum{_prom_labels(m.label_dict)} {_prom_value(m.sum)}")
            lines.append(f"{name}_count{_prom_labels(m.label_dict)} {m.count}")
    if openmetrics:
        lines.append("# EOF")
    return "\n".join(lines) + ("\n" if lines else "")


def format_seconds(seconds: float) -> str:
    """Human duration: picks ns/µs/ms/s to keep 3 significant digits."""
    if seconds >= 1.0:
        return f"{seconds:.3g}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3g}µs"
    return f"{seconds * 1e9:.3g}ns"


def _render_span(span: Span, prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "" if not prefix and is_last is None else ("└─ " if is_last else "├─ ")
    attrs = " ".join(
        f"{k}={v}" for k, v in span.attrs.items() if k != "error"
    )
    status = "" if span.status == "ok" else f" [{span.status}: {span.attrs.get('error', '?')}]"
    kind = "" if span.kind == "wall" else " (sim)"
    line = f"{prefix}{connector}{span.name}  {format_seconds(span.seconds)}{kind}"
    if attrs:
        line += f"  {attrs}"
    lines.append(line + status)
    child_prefix = prefix + ("" if is_last is None else ("   " if is_last else "│  "))
    for i, child in enumerate(span.children):
        _render_span(child, child_prefix, i == len(span.children) - 1, lines)


def render_spans(spans: Sequence[Span] | None = None, *, max_children: int = 0) -> str:
    """Pretty-print a span forest as an indented tree.

    ``max_children`` > 0 elides the middle of long sibling runs (keeps
    the first/last few), which keeps a 500-step LU trace readable.
    """
    if spans is None:
        spans = get_tracer().roots()
    rendered: list[str] = []
    for root in spans:
        root = _elide(root, max_children) if max_children > 0 else root
        _render_span(root, "", None, rendered)
    return "\n".join(rendered)


def _elide(span: Span, max_children: int) -> Span:
    children = [_elide(c, max_children) for c in span.children]
    if len(children) > max_children:
        head = max_children // 2
        tail = max_children - head - 1
        skipped = len(children) - head - tail
        marker = Span(
            name=f"... {skipped} more siblings elided ...", seconds=0.0, kind=span.kind
        )
        children = children[:head] + [marker] + (children[-tail:] if tail else [])
    clone = Span(
        name=span.name,
        seconds=span.seconds,
        kind=span.kind,
        status=span.status,
        attrs=dict(span.attrs),
    )
    clone.children = children
    return clone

"""Thread-safe metrics primitives and the global on/off switch.

The registry is the single place all telemetry lands: counters (monotone),
gauges (last value wins) and histograms (fixed bucket boundaries, the
Prometheus convention of upper-inclusive bounds).  Every metric is
identified by a ``(name, labels)`` pair; :meth:`MetricsRegistry.counter`
and friends are get-or-create, so two call sites asking for the same
identity share the same object — which is precisely how
:class:`~repro.planner.cache.PlanCache` keeps its ``CacheStats`` and the
``repro stats`` output reading from one source of truth.

Instrumentation in hot paths is gated by the process-wide switch:

* :func:`is_enabled` is a single attribute read (~tens of ns), cheap
  enough to guard any call-granular instrumentation;
* the disabled default means un-enabled programs pay nothing beyond that
  read — verified by ``benchmarks/bench_obs_overhead.py``.

Metrics that back *structural* counters (the plan cache's hit/miss
bookkeeping) are incremented unconditionally: they existed before the
observability layer and their cost is already part of the operation they
count.  The switch gates only the optional telemetry.
"""

from __future__ import annotations

import bisect
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "is_enabled",
    "enabled",
]

#: Latency bucket upper bounds in seconds (log-spaced, 1 µs .. 10 s).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Bucket upper bounds for small integer quantities (iterations, steps).
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000,
)


class _State:
    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


_STATE = _State()


def enable() -> None:
    """Turn telemetry collection on, process-wide."""
    _STATE.enabled = True


def disable() -> None:
    """Turn telemetry collection off (the default)."""
    _STATE.enabled = False


def is_enabled() -> bool:
    """Whether gated instrumentation should record (one attribute read)."""
    return _STATE.enabled


@contextmanager
def enabled(flag: bool = True) -> Iterator[None]:
    """Context manager scoping the global switch (restores on exit)."""
    previous = _STATE.enabled
    _STATE.enabled = bool(flag)
    try:
        yield
    finally:
        _STATE.enabled = previous


def _freeze_labels(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Common identity plumbing for all metric kinds."""

    __slots__ = ("name", "labels", "help", "_lock")

    kind = "metric"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        help: str = "",
    ):
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()

    @property
    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lbl = ", ".join(f"{k}={v}" for k, v in self.labels)
        return f"{type(self).__name__}({self.name}{{{lbl}}})"


class Counter(_Metric):
    """Monotonically increasing count (thread-safe)."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, name, labels=(), help=""):
        super().__init__(name, labels, help)
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _snapshot(self) -> dict:
        return {
            "name": self.name,
            "labels": self.label_dict,
            "value": self.value,
        }


class Gauge(_Metric):
    """Last-value-wins instantaneous measurement (thread-safe)."""

    __slots__ = ("_value",)

    kind = "gauge"

    def __init__(self, name, labels=(), help=""):
        super().__init__(name, labels, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def _snapshot(self) -> dict:
        return {
            "name": self.name,
            "labels": self.label_dict,
            "value": self.value,
        }


class Histogram(_Metric):
    """Fixed-boundary histogram (upper-inclusive buckets, plus +Inf).

    ``observe(x)`` lands in the first bucket whose upper bound is
    ``>= x`` (the Prometheus ``le`` convention); values above the last
    boundary land in the implicit ``+Inf`` overflow bucket.  ``sum`` and
    ``count`` accumulate alongside, so means survive any bucketing.

    ``observe(x, exemplar=trace_id)`` additionally pins a **latency
    exemplar** to the bucket: the last trace id observed there, with the
    exact value and an epoch timestamp.  Exemplars answer "show me a
    request that was *this* slow" — the JSON exporter carries them
    per-bucket and the OpenMetrics exporter emits them in exemplar
    syntax, so a dashboard can jump from a p99 bucket straight to the
    flight-recorder trace behind it.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_exemplars")

    kind = "histogram"

    def __init__(self, name, labels=(), help="", buckets: Sequence[float] | None = None):
        super().__init__(name, labels, help)
        bounds = tuple(
            float(b) for b in (DEFAULT_TIME_BUCKETS if buckets is None else buckets)
        )
        if not bounds:
            raise ValueError("a histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket boundaries must increase: {bounds}")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot is +Inf
        self._sum = 0.0
        self._count = 0
        #: Per-bucket (trace_id, value, epoch_seconds) — last-write-wins,
        #: bounded by construction at one exemplar per bucket.
        self._exemplars: list[tuple[str, float, float] | None] = [None] * (
            len(bounds) + 1
        )

    def observe(self, value: float, *, exemplar: str | None = None) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if exemplar:
                self._exemplars[idx] = (str(exemplar), value, time.time())

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def counts(self) -> tuple[int, ...]:
        """Per-bucket counts; the final entry is the +Inf overflow bucket."""
        with self._lock:
            return tuple(self._counts)

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Crude q-quantile estimate: the upper bound of the q-th bucket.

        Good enough for dashboards; the +Inf bucket reports the last
        finite boundary (there is nothing better to say about overflow).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            running = 0
            for idx, c in enumerate(self._counts):
                running += c
                if running >= target:
                    return self.buckets[min(idx, len(self.buckets) - 1)]
        return self.buckets[-1]

    @property
    def exemplars(self) -> tuple[tuple[str, float, float] | None, ...]:
        """Per-bucket exemplars (trailing entry is the +Inf bucket)."""
        with self._lock:
            return tuple(self._exemplars)

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0
            self._exemplars = [None] * (len(self.buckets) + 1)

    def _snapshot(self) -> dict:
        with self._lock:
            out = {
                "name": self.name,
                "labels": self.label_dict,
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }
            if any(self._exemplars):
                out["exemplars"] = [
                    None
                    if e is None
                    else {"trace_id": e[0], "value": e[1], "timestamp": e[2]}
                    for e in self._exemplars
                ]
            return out


class MetricsRegistry:
    """Named, labelled collection of metrics (thread-safe, get-or-create).

    A ``(name, labels)`` identity maps to exactly one metric object;
    asking again returns the same object, asking with a different kind
    for an existing identity raises.  ``snapshot()`` is the JSON-ready
    view the exporters build on.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, labels, help: str, **kwargs) -> _Metric:
        key = (str(name), _freeze_labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(key[0], key[1], help, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(
        self, name: str, *, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(
        self, name: str, *, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float] | None = None,
        help: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help, buckets=buckets)

    def metrics(self) -> list[_Metric]:
        """All registered metrics, sorted by (name, labels)."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def get(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> _Metric | None:
        with self._lock:
            return self._metrics.get((str(name), _freeze_labels(labels)))

    def snapshot(self) -> dict:
        """JSON-serialisable view: metrics grouped by kind."""
        out: dict[str, list[dict]] = {"counters": [], "gauges": [], "histograms": []}
        for m in self.metrics():
            out[m.kind + "s"].append(m._snapshot())
        return out

    def reset(self) -> None:
        """Zero every metric in place (identities survive).

        Objects handed out earlier keep working and stay exported, which
        is what long-lived holders like the plan cache rely on.
        """
        for m in self.metrics():
            m._reset()

    def clear(self) -> None:
        """Drop all metrics.  Objects handed out earlier keep counting but
        are no longer exported; use :meth:`reset` to keep them visible."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (returns the previous one; for tests)."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous

"""repro.obs — dependency-free metrics, tracing and profiling.

The observability substrate for the whole library:

* :mod:`repro.obs.registry` — thread-safe counters, gauges and
  fixed-bucket histograms in a labelled :class:`MetricsRegistry`, plus
  the process-wide :func:`enable` / :func:`disable` switch whose
  disabled path costs one attribute read;
* :mod:`repro.obs.spans` — nestable :func:`span` contexts building a
  structured trace tree, and :func:`record` for merging modelled
  (simulator) durations into the same tree;
* :mod:`repro.obs.timing` — the canonical best-of-``repeats`` wall
  timer shared by the measurement harness and the cost experiments;
* :mod:`repro.obs.export` — JSON snapshot and Prometheus text
  exporters plus the ``repro trace`` tree renderer;
* :mod:`repro.obs.logconfig` — key=value structured logging wired to
  the CLI's ``-v`` / ``--log-level`` flags.

Hot paths (core solvers, planner, simulators) are permanently
instrumented but gated: with telemetry disabled (the default) they pay
one :func:`is_enabled` check per *call*, never per iteration —
``benchmarks/bench_obs_overhead.py`` holds that to <2% of a solve.

Quick tour::

    from repro import obs

    obs.enable()
    with obs.span("my.workload", n=123):
        planner.plan(123)
    print(obs.export.render_spans())
    print(obs.export.to_prometheus())
    obs.disable()
"""

from __future__ import annotations

from . import context, export, flight, logconfig, registry, sink, spans, timing
from .context import TraceContext, new_span_id, new_trace_id
from .export import (
    OPENMETRICS_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    render_spans,
    snapshot,
    to_json,
    to_prometheus,
    write_json,
)
from .flight import FlightRecorder, RequestTrace
from .sink import FleetTelemetrySink, Observation, StepObservation, size_band
from .logconfig import KeyValueFormatter, configure_logging, verbosity_to_level
from .registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    get_registry,
    is_enabled,
    set_registry,
)
from .spans import Span, Tracer, get_tracer, record, set_tracer, span
from .timing import TimedResult, Timer, best_of

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "FleetTelemetrySink",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KeyValueFormatter",
    "MetricsRegistry",
    "OPENMETRICS_CONTENT_TYPE",
    "Observation",
    "PROMETHEUS_CONTENT_TYPE",
    "RequestTrace",
    "Span",
    "StepObservation",
    "TimedResult",
    "Timer",
    "TraceContext",
    "Tracer",
    "best_of",
    "clear_all",
    "configure_logging",
    "context",
    "disable",
    "enable",
    "enabled",
    "export",
    "flight",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "logconfig",
    "new_span_id",
    "new_trace_id",
    "record",
    "record_adapt",
    "record_batch",
    "record_solver",
    "registry",
    "render_spans",
    "reset_all",
    "set_registry",
    "set_tracer",
    "sink",
    "size_band",
    "snapshot",
    "span",
    "spans",
    "timing",
    "to_json",
    "to_prometheus",
    "verbosity_to_level",
    "write_json",
]


def reset_all() -> None:
    """Zero every metric in place and drop collected spans."""
    get_registry().reset()
    get_tracer().clear()


def clear_all() -> None:
    """Drop all metrics and spans (previously handed-out metric objects
    keep counting but are no longer exported)."""
    get_registry().clear()
    get_tracer().clear()


# ---------------------------------------------------------------------------
# Domain helpers: one registry touch per *call*, used by the instrumented
# hot paths in repro.core.  Callers gate on is_enabled() first.
# ---------------------------------------------------------------------------

_SOLVER_ITERATION_BUCKETS = DEFAULT_COUNT_BUCKETS


def record_solver(
    algorithm: str,
    *,
    iterations: int,
    intersections: int,
    probes: int,
    warm: bool,
    switched: bool = False,
) -> None:
    """Account one core-solver call (bisection / combined / modified).

    ``probes`` counts the bracket probes: the figure-18 search for cold
    starts, the :func:`~repro.core.geometry.ensure_bracket` repairs for
    warm starts.  ``switched`` marks a combined-algorithm handover to
    the modified algorithm.
    """
    reg = get_registry()
    labels = {"algorithm": algorithm}
    reg.counter("core.solve.calls", labels=labels).inc()
    reg.counter("core.solve.iterations.total", labels=labels).inc(int(iterations))
    reg.counter("core.solve.intersections.total", labels=labels).inc(int(intersections))
    reg.counter("core.solve.bracket_probes.total", labels=labels).inc(int(probes))
    if warm:
        reg.counter("core.solve.warm_starts", labels=labels).inc()
    if switched:
        reg.counter("core.solve.switches", labels=labels).inc()
    reg.histogram(
        "core.solve.iterations", buckets=_SOLVER_ITERATION_BUCKETS, labels=labels
    ).observe(int(iterations))


def record_adapt(
    *,
    drifts: int = 0,
    replans: int = 0,
    migrated_elements: int = 0,
    retries: int = 0,
    dropouts: int = 0,
) -> None:
    """Account adaptive-execution events (``repro.adapt``).

    Counters: confirmed drifts, applied replans, migrated elements,
    dispatch retries, and dropouts survived via redistribution.
    """
    reg = get_registry()
    if drifts:
        reg.counter("adapt.drifts").inc(int(drifts))
    if replans:
        reg.counter("adapt.replans").inc(int(replans))
    if migrated_elements:
        reg.counter("adapt.migrated.elements").inc(int(migrated_elements))
    if retries:
        reg.counter("adapt.retries").inc(int(retries))
    if dropouts:
        reg.counter("adapt.dropouts.survived").inc(int(dropouts))


def record_batch(*, sizes: int, steps: int) -> None:
    """Account one lockstep batch solve (``partition_bisection_many``)."""
    reg = get_registry()
    reg.counter("core.batch.calls").inc()
    reg.counter("core.batch.sizes.total").inc(int(sizes))
    reg.counter("core.batch.steps.total").inc(int(steps))
    reg.histogram(
        "core.batch.sizes", buckets=DEFAULT_COUNT_BUCKETS
    ).observe(int(sizes))

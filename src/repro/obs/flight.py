"""The flight recorder: a bounded ring of completed request traces.

A serving process answers thousands of requests a second; keeping every
trace would be an unbounded memory leak, keeping none makes "why was
*this* request slow at 03:12?" unanswerable.  The recorder holds the
middle ground with three bounded stores:

* a **ring buffer** of the most recent ``capacity`` traces (eviction is
  pure FIFO — the steady-state window);
* an **always-retain** store for traces that ended badly (shed with
  ``overloaded``, expired with ``deadline_exceeded``, or any error
  code) — under a load burst these are exactly the traces worth keeping
  and exactly the ones FIFO would flush first;
* a **top-K slowest** store (min-heap on duration) — the p99.9 outliers
  survive long after the ring has rolled over them.

A trace may sit in several stores at once; memory stays bounded because
every store has a fixed cap.  Everything is queryable by trace id
(``GET /debug/traces?id=...``), listable as summaries, and dumpable as
NDJSON for offline replay.  The ``serve.trace.*`` counter group
(recorded / retained / evicted / sampled) lands in the process metrics
registry, so ``/metrics`` shows the recorder working.
"""

from __future__ import annotations

import heapq
import itertools
import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator, Mapping

from .registry import get_registry
from .spans import Span

__all__ = ["RequestTrace", "FlightRecorder"]


@dataclass
class RequestTrace:
    """One completed request's trace: identity, verdict, and span tree.

    ``status`` is ``"ok"`` or the wire error code the request ended with
    (``overloaded``, ``deadline_exceeded``, ``infeasible``, ...).
    """

    trace_id: str
    op: str
    status: str = "ok"
    fleet: str = ""
    n: int | None = None
    started: float = 0.0
    seconds: float = 0.0
    root: Span | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def summary(self) -> dict:
        """The listing row: everything except the span tree."""
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "status": self.status,
            "fleet": self.fleet,
            "n": self.n,
            "started": self.started,
            "seconds": self.seconds,
            **({"attrs": dict(self.attrs)} if self.attrs else {}),
        }

    def to_dict(self) -> dict:
        out = self.summary()
        if self.root is not None:
            out["spans"] = self.root.to_dict()
        return out

    @classmethod
    def from_dict(cls, raw: Mapping) -> "RequestTrace":
        """Rebuild a trace from its :meth:`to_dict` form (NDJSON replay)."""
        return cls(
            trace_id=str(raw.get("trace_id", "")),
            op=str(raw.get("op", "")),
            status=str(raw.get("status", "ok")),
            fleet=str(raw.get("fleet", "")),
            n=None if raw.get("n") is None else int(raw["n"]),
            started=float(raw.get("started", 0.0)),
            seconds=float(raw.get("seconds", 0.0)),
            root=Span.from_dict(raw["spans"]) if raw.get("spans") else None,
            attrs=dict(raw.get("attrs") or {}),
        )


class FlightRecorder:
    """Bounded retention of completed :class:`RequestTrace` objects.

    Parameters
    ----------
    capacity:
        Ring-buffer size for recent traces (FIFO eviction).
    retain_capacity:
        Cap on the always-retain (error/shed/deadline) store.  Sized a
        few multiples of ``capacity`` so a shedding burst is retained in
        full; beyond it the *oldest* retained failures give way.
    slow_k:
        How many slowest traces survive independently of recency.
    """

    def __init__(
        self, capacity: int = 256, *, retain_capacity: int = 1024, slow_k: int = 16
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if retain_capacity <= 0:
            raise ValueError(f"retain_capacity must be positive, got {retain_capacity}")
        if slow_k < 0:
            raise ValueError(f"slow_k must be non-negative, got {slow_k}")
        self.capacity = int(capacity)
        self.retain_capacity = int(retain_capacity)
        self.slow_k = int(slow_k)
        self._ring: deque[RequestTrace] = deque()
        self._retained: deque[RequestTrace] = deque()
        self._slow: list[tuple[float, int, RequestTrace]] = []  # min-heap
        self._seq = itertools.count()
        self._lock = threading.Lock()

        reg = get_registry()
        self._recorded = reg.counter(
            "serve.trace.recorded", help="completed request traces recorded"
        )
        self._retained_counter = reg.counter(
            "serve.trace.retained",
            help="traces pinned by an always-retain policy (error/shed/deadline/slow)",
        )
        self._evicted = reg.counter(
            "serve.trace.evicted", help="traces dropped by bounded-memory eviction"
        )
        self._sampled = reg.counter(
            "serve.trace.sampled", help="requests not traced due to sampling"
        )

    # -- ingest ---------------------------------------------------------
    def record(self, trace: RequestTrace) -> None:
        """Retain one completed trace under every applicable policy."""
        with self._lock:
            self._recorded.inc()
            self._ring.append(trace)
            if len(self._ring) > self.capacity:
                self._ring.popleft()
                self._evicted.inc()
            if not trace.ok:
                self._retained_counter.inc()
                self._retained.append(trace)
                if len(self._retained) > self.retain_capacity:
                    self._retained.popleft()
                    self._evicted.inc()
            if self.slow_k:
                entry = (trace.seconds, next(self._seq), trace)
                if len(self._slow) < self.slow_k:
                    heapq.heappush(self._slow, entry)
                    self._retained_counter.inc()
                elif entry[0] > self._slow[0][0]:
                    heapq.heapreplace(self._slow, entry)
                    self._retained_counter.inc()

    def note_sampled(self, count: int = 1) -> None:
        """Account requests that were *not* traced (sampling decision)."""
        self._sampled.inc(count)

    # -- query ----------------------------------------------------------
    def _all(self) -> Iterator[RequestTrace]:
        seen: set[int] = set()
        for trace in itertools.chain(
            self._ring, self._retained, (e[2] for e in self._slow)
        ):
            if id(trace) not in seen:
                seen.add(id(trace))
                yield trace

    def get(self, trace_id: str) -> RequestTrace | None:
        """The retained trace with this id, if any store still holds it."""
        with self._lock:
            for trace in self._all():
                if trace.trace_id == trace_id:
                    return trace
        return None

    def traces(
        self,
        *,
        errors_only: bool = False,
        slow_only: bool = False,
        limit: int | None = None,
    ) -> list[RequestTrace]:
        """Retained traces, most recent first (slowest first for ``slow_only``)."""
        with self._lock:
            if slow_only:
                out = [e[2] for e in sorted(self._slow, reverse=True)]
            elif errors_only:
                out = list(self._retained)[::-1]
            else:
                out = sorted(
                    self._all(), key=lambda t: (t.started, t.trace_id), reverse=True
                )
        return out[:limit] if limit is not None else out

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for _ in self._all())

    def stats(self) -> dict:
        """The ``serve.trace.*`` counter group plus live store sizes."""
        with self._lock:
            ring, retained, slow = len(self._ring), len(self._retained), len(self._slow)
        return {
            "recorded": int(self._recorded.value),
            "retained": int(self._retained_counter.value),
            "evicted": int(self._evicted.value),
            "sampled": int(self._sampled.value),
            "ring_size": ring,
            "error_store_size": retained,
            "slow_store_size": slow,
            "capacity": self.capacity,
        }

    # -- export ---------------------------------------------------------
    def to_ndjson(self, fh: IO[str]) -> int:
        """Dump every retained trace as one JSON object per line.

        Returns the number of traces written.  The lines round-trip
        through :meth:`RequestTrace.from_dict` for offline replay.
        """
        count = 0
        for trace in self.traces():
            fh.write(json.dumps(trace.to_dict(), separators=(",", ":")) + "\n")
            count += 1
        return count

    def dump(self, path: str) -> int:
        """Write the NDJSON dump to ``path``; returns the trace count."""
        with open(path, "w", encoding="utf-8") as fh:
            return self.to_ndjson(fh)

    @staticmethod
    def load_ndjson(lines: Iterable[str]) -> list[RequestTrace]:
        """Parse an NDJSON dump back into traces (offline replay)."""
        out = []
        for line in lines:
            line = line.strip()
            if line:
                out.append(RequestTrace.from_dict(json.loads(line)))
        return out

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._retained.clear()
            self._slow.clear()

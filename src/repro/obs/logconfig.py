"""Structured (key=value) logging setup for the ``repro`` package.

Library modules log through ``logging.getLogger("repro.<module>")`` and
stay silent by default (stdlib semantics: no handler, WARNING level).
:func:`configure_logging` — wired to the CLI's ``-v`` / ``--log-level``
flags — attaches one stream handler with a logfmt-style formatter::

    ts=2026-08-06T12:00:00.123 level=info logger=repro.planner.planner \
        msg="plan solved" n=1000 warm=True

Idempotent: reconfiguring replaces the handler installed here rather
than stacking a second one.
"""

from __future__ import annotations

import logging
import sys
from datetime import datetime
from typing import IO

__all__ = ["KeyValueFormatter", "configure_logging", "verbosity_to_level"]

#: Attribute marking handlers owned by :func:`configure_logging`.
_MARKER = "_repro_obs_handler"

#: ``logging.LogRecord`` attributes that are plumbing, not user context.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def _quote(value: object) -> str:
    text = str(value)
    if text == "" or any(c in text for c in ' "=\n'):
        return '"' + text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n") + '"'
    return text


class KeyValueFormatter(logging.Formatter):
    """logfmt-style formatter: ``ts=... level=... logger=... msg=... k=v``.

    Anything passed via ``logger.info("msg", extra={...})`` is appended
    as additional ``key=value`` pairs.
    """

    def format(self, record: logging.LogRecord) -> str:
        ts = datetime.fromtimestamp(record.created).isoformat(timespec="milliseconds")
        parts = [
            f"ts={ts}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f"msg={_quote(record.getMessage())}",
        ]
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                parts.append(f"{key}={_quote(value)}")
        if record.exc_info:
            parts.append(f"exc={_quote(self.formatException(record.exc_info))}")
        return " ".join(parts)


def verbosity_to_level(verbosity: int) -> int:
    """Map ``-v`` counts to levels: 0 → WARNING, 1 → INFO, 2+ → DEBUG."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    level: int | str = logging.INFO, *, stream: IO[str] | None = None
) -> logging.Logger:
    """Attach the structured handler to the ``repro`` root logger."""
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, _MARKER, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(KeyValueFormatter())
    setattr(handler, _MARKER, True)
    logger.addHandler(handler)
    return logger

"""Canonical wall-clock timing helpers.

One implementation of the best-of-``repeats`` pattern that
``repro.model.measurement`` and ``repro.experiments.cost`` used to each
hand-roll: run ``fn`` a few times, keep the minimum wall time (any
positive noise only ever slows a run down, so the minimum is the robust
estimator for compute kernels) and hand back the duration together with
the function's result.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["TimedResult", "Timer", "best_of"]


@dataclass(frozen=True)
class TimedResult:
    """Outcome of a :func:`best_of` run.

    ``seconds`` is the minimum over the repeats; ``result`` is the return
    value of the final repeat (identical across repeats for the pure
    functions this is used on).
    """

    seconds: float
    result: Any


class Timer:
    """Context manager capturing the wall time of a block in ``seconds``."""

    __slots__ = ("seconds", "_t0")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.seconds = time.perf_counter() - self._t0
        return False


def best_of(
    fn: Callable[[], Any], *, repeats: int = 3, warmup: int = 0
) -> TimedResult:
    """Best-of-``repeats`` wall time of ``fn`` after ``warmup`` calls."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    best = math.inf
    result: Any = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return TimedResult(seconds=best, result=result)

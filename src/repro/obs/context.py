"""Trace identity that survives serialization boundaries.

A :class:`TraceContext` names one position in one distributed trace:
``trace_id`` identifies the whole request tree, ``span_id`` the current
node, ``parent_id`` the node it hangs under.  Contexts are immutable
values with a stable wire form (:meth:`TraceContext.to_dict` /
:meth:`TraceContext.from_dict`), so they travel unchanged through JSON
protocol frames, ``queue.Queue`` handoffs and pickled multiprocessing
messages — which is what lets a span recorded inside a ShardPool worker
process be stitched back into the listener-side trace.

IDs follow the W3C trace-context shape (128-bit trace ids, 64-bit span
ids, lowercase hex) so client-supplied ids from other tracing systems
can ride through untouched.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["TraceContext", "new_trace_id", "new_span_id"]

#: Lowercase-hex id shapes (W3C traceparent widths, but any 1..64-char
#: hex string is accepted on input so foreign systems interoperate).
_HEX_ID = re.compile(r"^[0-9a-f]{1,64}$")


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 hex chars)."""
    return os.urandom(8).hex()


def _valid_id(value: Any) -> bool:
    return isinstance(value, str) and bool(_HEX_ID.match(value))


@dataclass(frozen=True)
class TraceContext:
    """One node's identity within a distributed trace (immutable)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (new trace, new root span)."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """A context for a new span parented under this one."""
        return TraceContext(
            trace_id=self.trace_id, span_id=new_span_id(), parent_id=self.span_id
        )

    def to_dict(self) -> dict:
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id:
            out["parent_id"] = self.parent_id
        return out

    @classmethod
    def from_dict(cls, raw: Mapping) -> "TraceContext":
        """Rebuild a context from its wire form; raises ``ValueError`` on
        malformed ids (callers at trust boundaries turn that into their
        own typed error)."""
        trace_id = raw.get("trace_id")
        span_id = raw.get("span_id")
        parent_id = raw.get("parent_id")
        if not _valid_id(trace_id):
            raise ValueError(f"trace_id must be lowercase hex, got {trace_id!r}")
        if span_id is None:
            span_id = new_span_id()
        elif not _valid_id(span_id):
            raise ValueError(f"span_id must be lowercase hex, got {span_id!r}")
        if parent_id is not None and not _valid_id(parent_id):
            raise ValueError(f"parent_id must be lowercase hex, got {parent_id!r}")
        return cls(trace_id=trace_id, span_id=span_id, parent_id=parent_id)

"""Per-fleet telemetry sink: observed timings keyed for model re-fitting.

The paper builds speed bands from *offline* benchmark points; the
self-adaptability follow-on (Lastovetsky/Reddy/Rychkov/Clarke,
arXiv:1109.3074) makes refinement part of execution.  This sink is the
plumbing between the two: the serving layer (and the adaptive
simulators) drop their observed solve and per-step timings here, keyed
by **fleet fingerprint + problem-size band**, and the online-learning
layer (:class:`repro.model.OnlineBandRefitter`) re-fits
piecewise-linear bands from the aggregated table instead of
re-benchmarking.

Every ingested record is one frozen :class:`Observation` — the unified
shape shared by :meth:`FleetTelemetrySink.observe`,
:meth:`repro.adapt.DriftDetector.ingest` and the online refitter.  Two
observation kinds share the banding:

* ``solve`` (``machine == -1``) — end-to-end plan latency for one
  problem size on one fleet (what the serve stack records per answered
  request); the ``duration`` field carries the seconds;
* ``step`` (``machine >= 0``) — a realised effective *speed* for one
  machine at one size (what execution steps yield), which is exactly
  the shape :meth:`repro.adapt.DriftDetector.observe` consumes — see
  :meth:`DriftDetector.ingest`.

Size bands are powers of two (``[2^k, 2^(k+1))``): coarse enough that a
band accumulates statistics quickly, fine enough that a paging cliff
lands in its own band.  Aggregates are exact (count/sum/min/max/last),
bounded at one cell per (fingerprint, kind, machine, band); a small
bounded deque of raw step observations per fleet feeds drift detection
and online re-fitting without unbounded growth.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import IO, Mapping, NamedTuple

from .registry import get_registry

__all__ = ["FleetTelemetrySink", "Observation", "StepObservation", "size_band"]


def size_band(n: float) -> tuple[float, float]:
    """The power-of-two band ``[lo, hi)`` containing ``n`` (``n >= 0``)."""
    n = float(n)
    if n < 1.0:
        return (0.0, 1.0)
    k = int(n).bit_length() - 1
    return (float(2**k), float(2 ** (k + 1)))


class StepObservation(NamedTuple):
    """One raw per-step speed observation.

    .. deprecated::
        Superseded by the unified :class:`Observation` record; kept so
        existing consumers of :meth:`FleetTelemetrySink.recent_steps`
        keep working.  New code should use
        :meth:`FleetTelemetrySink.recent` / :class:`Observation`.
    """

    machine: int
    size: float
    speed: float
    time: float


@dataclass(frozen=True)
class Observation:
    """One observed timing: the unified record shared across the stack.

    The single shape consumed by :meth:`FleetTelemetrySink.observe`,
    :meth:`repro.adapt.DriftDetector.ingest` and
    :class:`repro.model.OnlineBandRefitter` (it is re-exported as
    ``repro.adapt.Observation``).  Fields:

    * ``machine`` — machine index in its fleet; ``-1`` means a
      fleet-level observation (an end-to-end solve latency);
    * ``size`` — the problem size (elements) the timing refers to;
    * ``duration`` — wall seconds (meaningful for ``solve`` records);
    * ``speed`` — realised effective speed in the model's units
      (meaningful for ``step`` records);
    * ``timestamp`` — simulated or wall time the observation was taken;
    * ``source`` — free-form provenance tag (``"step"``, ``"solve"``,
      ``"serve"``, ``"sim"``, ...).
    """

    machine: int
    size: float
    duration: float = 0.0
    speed: float = 0.0
    timestamp: float = 0.0
    source: str = "step"

    def __post_init__(self) -> None:
        machine = int(self.machine)
        size = float(self.size)
        duration = float(self.duration)
        speed = float(self.speed)
        timestamp = float(self.timestamp)
        if machine < -1:
            raise ValueError(f"machine must be >= -1, got {machine}")
        if not math.isfinite(size) or size <= 0.0:
            raise ValueError(f"size must be positive and finite, got {size!r}")
        if not math.isfinite(duration) or duration < 0.0:
            raise ValueError(
                f"duration must be non-negative and finite, got {duration!r}"
            )
        if not math.isfinite(speed) or speed < 0.0:
            raise ValueError(f"speed must be non-negative and finite, got {speed!r}")
        if not math.isfinite(timestamp):
            raise ValueError(f"timestamp must be finite, got {timestamp!r}")
        object.__setattr__(self, "machine", machine)
        object.__setattr__(self, "size", size)
        object.__setattr__(self, "duration", duration)
        object.__setattr__(self, "speed", speed)
        object.__setattr__(self, "timestamp", timestamp)
        object.__setattr__(self, "source", str(self.source))

    @property
    def kind(self) -> str:
        """``"solve"`` for fleet-level records, ``"step"`` otherwise."""
        return "solve" if self.machine < 0 else "step"

    @property
    def time(self) -> float:
        """Alias of ``timestamp`` (the legacy ``StepObservation`` name)."""
        return self.timestamp

    def to_wire(self) -> dict:
        """The JSON-safe mapping used by the serve protocol's ``observe`` op."""
        return {
            "machine": self.machine,
            "size": self.size,
            "duration": self.duration,
            "speed": self.speed,
            "timestamp": self.timestamp,
            "source": self.source,
        }

    @classmethod
    def from_wire(cls, raw: Mapping) -> "Observation":
        """Build from a wire mapping, ignoring unknown keys."""
        return cls(
            machine=raw.get("machine", 0),
            size=raw["size"],
            duration=raw.get("duration", 0.0),
            speed=raw.get("speed", 0.0),
            timestamp=raw.get("timestamp", raw.get("time", 0.0)),
            source=str(raw.get("source", "step")),
        )

    @classmethod
    def from_step(
        cls, machine: int, size: float, speed: float, *, time: float = 0.0
    ) -> "Observation":
        """Adapter from the legacy ``StepObservation`` positional shape."""
        return cls(
            machine=machine, size=size, speed=speed, timestamp=time, source="step"
        )


@dataclass
class _Cell:
    """Exact aggregates of one (fingerprint, kind, machine, band) key."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    last: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class FleetTelemetrySink:
    """Thread-safe aggregation of observed timings per fleet fingerprint."""

    def __init__(self, *, recent_steps: int = 512):
        if recent_steps < 0:
            raise ValueError(f"recent_steps must be non-negative, got {recent_steps}")
        # key: (fingerprint, kind, machine, band_lo, band_hi)
        self._cells: dict[tuple[str, str, int, float, float], _Cell] = {}
        self._recent: dict[str, deque[Observation]] = {}
        self._recent_cap = int(recent_steps)
        self._lock = threading.Lock()
        self._observations = get_registry().counter(
            "serve.telemetry.observations",
            help="solve/step timings ingested by the per-fleet sink",
        )

    # -- ingest ---------------------------------------------------------
    def observe(self, fingerprint: str, observation: Observation) -> None:
        """Ingest one unified :class:`Observation`.

        ``solve`` records (``machine == -1``) aggregate ``duration``
        seconds; ``step`` records aggregate ``speed`` and additionally
        land in the bounded per-fleet recent deque that feeds drift
        detection and online re-fitting.
        """
        fp = str(fingerprint)
        lo, hi = size_band(observation.size)
        if observation.machine < 0:
            key = (fp, "solve", -1, lo, hi)
            value = observation.duration
        else:
            key = (fp, "step", observation.machine, lo, hi)
            value = observation.speed
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = _Cell()
            cell.add(value)
            if observation.machine >= 0 and self._recent_cap:
                recent = self._recent.get(fp)
                if recent is None:
                    recent = self._recent[fp] = deque(maxlen=self._recent_cap)
                recent.append(observation)
            self._observations.inc()

    def observe_solve(self, fingerprint: str, *, n: float, seconds: float) -> None:
        """One observed end-to-end solve latency for problem size ``n``.

        Thin adapter over :meth:`observe` (kept for callers predating
        the unified :class:`Observation` record).
        """
        self.observe(
            fingerprint,
            Observation(machine=-1, size=n, duration=seconds, source="solve"),
        )

    def observe_step(
        self,
        fingerprint: str,
        *,
        machine: int,
        size: float,
        speed: float,
        time: float = 0.0,
    ) -> None:
        """One realised per-machine effective speed at ``size`` elements.

        Thin adapter over :meth:`observe` (kept for callers predating
        the unified :class:`Observation` record).
        """
        self.observe(
            fingerprint,
            Observation(
                machine=machine, size=size, speed=speed, timestamp=time, source="step"
            ),
        )

    # -- query ----------------------------------------------------------
    def rows(self, fingerprint: str | None = None) -> list[dict]:
        """The exportable table, one row per aggregation cell.

        ``solve`` rows aggregate seconds, ``step`` rows aggregate MFlops
        speeds; rows are sorted (fingerprint, kind, machine, band) so the
        table is diff-stable across exports.
        """
        with self._lock:
            items = sorted(self._cells.items())
        out = []
        for (fp, kind, machine, lo, hi), cell in items:
            if fingerprint is not None and fp != fingerprint:
                continue
            out.append(
                {
                    "fingerprint": fp,
                    "kind": kind,
                    "machine": machine if machine >= 0 else None,
                    "band_lo": lo,
                    "band_hi": hi,
                    "count": cell.count,
                    "mean": cell.mean,
                    "min": cell.min,
                    "max": cell.max,
                    "last": cell.last,
                    "total": cell.total,
                }
            )
        return out

    def recent(
        self, fingerprint: str, *, limit: int | None = None
    ) -> list[Observation]:
        """Recent raw step :class:`Observation` records (oldest first)."""
        with self._lock:
            recent = list(self._recent.get(str(fingerprint), ()))
        return recent[-limit:] if limit is not None else recent

    def recent_steps(
        self, fingerprint: str, *, limit: int | None = None
    ) -> list[StepObservation]:
        """Recent raw step observations in the legacy tuple shape.

        Thin adapter over :meth:`recent` (kept for callers predating the
        unified :class:`Observation` record; new code should call
        :meth:`recent`).
        """
        return [
            StepObservation(o.machine, o.size, o.speed, o.timestamp)
            for o in self.recent(fingerprint, limit=limit)
        ]

    def fingerprints(self) -> list[str]:
        with self._lock:
            return sorted({key[0] for key in self._cells})

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)

    # -- export ---------------------------------------------------------
    def to_ndjson(self, fh: IO[str], fingerprint: str | None = None) -> int:
        """One aggregation row per line; returns the row count."""
        rows = self.rows(fingerprint)
        for row in rows:
            fh.write(json.dumps(row, separators=(",", ":")) + "\n")
        return len(rows)

    def clear_recent(self, fingerprint: str) -> None:
        """Drop the recent-observation deque for one fleet (aggregates stay)."""
        with self._lock:
            self._recent.pop(str(fingerprint), None)

    def clear(self) -> None:
        with self._lock:
            self._cells.clear()
            self._recent.clear()

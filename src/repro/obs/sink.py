"""Per-fleet telemetry sink: observed timings keyed for model re-fitting.

The paper builds speed bands from *offline* benchmark points; the
self-adaptability follow-on (Lastovetsky/Reddy/Rychkov/Clarke,
arXiv:1109.3074) makes refinement part of execution.  This sink is the
plumbing between the two: the serving layer (and the adaptive
simulators) drop their observed solve and per-step timings here, keyed
by **fleet fingerprint + problem-size band**, and the online-learning
layer re-fits piecewise-linear bands from the aggregated table instead
of re-benchmarking.

Two observation kinds share the banding:

* ``solve`` — end-to-end plan latency for one problem size on one fleet
  (what the serve stack records per answered request);
* ``step``  — a realised effective *speed* for one machine at one size
  (what execution steps yield), which is exactly the shape
  :meth:`repro.adapt.DriftDetector.observe` consumes — see
  :meth:`DriftDetector.ingest`.

Size bands are powers of two (``[2^k, 2^(k+1))``): coarse enough that a
band accumulates statistics quickly, fine enough that a paging cliff
lands in its own band.  Aggregates are exact (count/sum/min/max/last),
bounded at one cell per (fingerprint, kind, machine, band); a small
bounded deque of raw step observations per fleet feeds drift detection
without unbounded growth.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from typing import IO, NamedTuple

from .registry import get_registry

__all__ = ["FleetTelemetrySink", "StepObservation", "size_band"]


def size_band(n: float) -> tuple[float, float]:
    """The power-of-two band ``[lo, hi)`` containing ``n`` (``n >= 0``)."""
    n = float(n)
    if n < 1.0:
        return (0.0, 1.0)
    k = int(n).bit_length() - 1
    return (float(2**k), float(2 ** (k + 1)))


class StepObservation(NamedTuple):
    """One raw per-step speed observation (DriftDetector's input shape)."""

    machine: int
    size: float
    speed: float
    time: float


@dataclass
class _Cell:
    """Exact aggregates of one (fingerprint, kind, machine, band) key."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    last: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class FleetTelemetrySink:
    """Thread-safe aggregation of observed timings per fleet fingerprint."""

    def __init__(self, *, recent_steps: int = 512):
        if recent_steps < 0:
            raise ValueError(f"recent_steps must be non-negative, got {recent_steps}")
        # key: (fingerprint, kind, machine, band_lo, band_hi)
        self._cells: dict[tuple[str, str, int, float, float], _Cell] = {}
        self._recent: dict[str, deque[StepObservation]] = {}
        self._recent_cap = int(recent_steps)
        self._lock = threading.Lock()
        self._observations = get_registry().counter(
            "serve.telemetry.observations",
            help="solve/step timings ingested by the per-fleet sink",
        )

    # -- ingest ---------------------------------------------------------
    def observe_solve(self, fingerprint: str, *, n: float, seconds: float) -> None:
        """One observed end-to-end solve latency for problem size ``n``."""
        lo, hi = size_band(n)
        key = (str(fingerprint), "solve", -1, lo, hi)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = _Cell()
            cell.add(float(seconds))
            self._observations.inc()

    def observe_step(
        self,
        fingerprint: str,
        *,
        machine: int,
        size: float,
        speed: float,
        time: float = 0.0,
    ) -> None:
        """One realised per-machine effective speed at ``size`` elements."""
        lo, hi = size_band(size)
        key = (str(fingerprint), "step", int(machine), lo, hi)
        obs = StepObservation(int(machine), float(size), float(speed), float(time))
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = _Cell()
            cell.add(float(speed))
            if self._recent_cap:
                recent = self._recent.get(fingerprint)
                if recent is None:
                    recent = self._recent[fingerprint] = deque(maxlen=self._recent_cap)
                recent.append(obs)
            self._observations.inc()

    # -- query ----------------------------------------------------------
    def rows(self, fingerprint: str | None = None) -> list[dict]:
        """The exportable table, one row per aggregation cell.

        ``solve`` rows aggregate seconds, ``step`` rows aggregate MFlops
        speeds; rows are sorted (fingerprint, kind, machine, band) so the
        table is diff-stable across exports.
        """
        with self._lock:
            items = sorted(self._cells.items())
        out = []
        for (fp, kind, machine, lo, hi), cell in items:
            if fingerprint is not None and fp != fingerprint:
                continue
            out.append(
                {
                    "fingerprint": fp,
                    "kind": kind,
                    "machine": machine if machine >= 0 else None,
                    "band_lo": lo,
                    "band_hi": hi,
                    "count": cell.count,
                    "mean": cell.mean,
                    "min": cell.min,
                    "max": cell.max,
                    "last": cell.last,
                    "total": cell.total,
                }
            )
        return out

    def recent_steps(
        self, fingerprint: str, *, limit: int | None = None
    ) -> list[StepObservation]:
        """Recent raw step observations for one fleet (oldest first)."""
        with self._lock:
            recent = list(self._recent.get(str(fingerprint), ()))
        return recent[-limit:] if limit is not None else recent

    def fingerprints(self) -> list[str]:
        with self._lock:
            return sorted({key[0] for key in self._cells})

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)

    # -- export ---------------------------------------------------------
    def to_ndjson(self, fh: IO[str], fingerprint: str | None = None) -> int:
        """One aggregation row per line; returns the row count."""
        rows = self.rows(fingerprint)
        for row in rows:
            fh.write(json.dumps(row, separators=(",", ":")) + "\n")
        return len(rows)

    def clear(self) -> None:
        with self._lock:
            self._cells.clear()
            self._recent.clear()

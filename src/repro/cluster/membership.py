"""Cluster membership: who is in the ring, and who owns which fleet.

:class:`ClusterMembership` is the router's pure bookkeeping core — no
sockets, no asyncio — which is what makes the resharding math unit- and
property-testable in isolation.  It wraps the same blake2b
:class:`~repro.serve.hashring.HashRing` the in-process shard pool uses,
keyed by node id (``host:port``), and answers two questions:

* :meth:`replicas_for` — the ordered replica set (primary first, then
  ring successors) a fleet fingerprint is served by;
* :meth:`remap` — given a membership change, exactly which fingerprints
  changed replica sets, and which nodes *gained* each one (the nodes the
  router must re-register the fleet on).

The minimal-remap guarantee is inherited from the ring: a join moves
only ``~1/nodes`` of the fingerprint space onto the new node, and a
leave reassigns only the fingerprints whose replica set contained the
leaver — everything else keeps its owners and therefore its warm plan
caches (the Hypothesis suites on both layers assert this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..exceptions import ConfigurationError
from ..serve.hashring import HashRing

__all__ = [
    "NodeInfo",
    "RemapReport",
    "ClusterMembership",
    "node_id_of",
    "parse_node_id",
]


@dataclass(frozen=True)
class NodeInfo:
    """One member node's addresses.

    ``node_id`` is ``host:port`` — stable, human-readable, and derived
    from the address every layer already needs, so there is no separate
    naming authority to keep consistent.
    """

    host: str
    port: int
    http_port: int | None = None

    @property
    def node_id(self) -> str:
        return f"{self.host}:{self.port}"

    def to_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "host": self.host,
            "port": self.port,
            "http_port": self.http_port,
        }


@dataclass(frozen=True)
class RemapReport:
    """What one membership change did to fleet ownership.

    ``moved`` maps each affected fingerprint to the list of node ids
    that must *newly* serve it (registration targets); fingerprints
    whose replica set is unchanged do not appear at all.
    """

    changed_node: str
    moved: Mapping[str, tuple[str, ...]]

    @property
    def fleets_moved(self) -> int:
        return len(self.moved)


class ClusterMembership:
    """The ring of member nodes plus the fleet-spec registry."""

    def __init__(self, *, replication: int = 2, ring_replicas: int = 64):
        if replication < 1:
            raise ConfigurationError(
                f"replication must be at least 1, got {replication!r}"
            )
        self._replication = replication
        self._ring = HashRing(replicas=ring_replicas)
        self._nodes: dict[str, NodeInfo] = {}
        self._fleets: dict[str, dict] = {}  # fingerprint -> wire fleet spec

    # -- nodes -----------------------------------------------------------
    @property
    def replication(self) -> int:
        return self._replication

    @property
    def nodes(self) -> dict[str, NodeInfo]:
        return dict(self._nodes)

    def node(self, node_id: str) -> NodeInfo:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node {node_id!r}") from None

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def add(self, info: NodeInfo) -> RemapReport:
        """Join a node; returns which fleets it must now serve."""
        if info.node_id in self._nodes:
            return RemapReport(info.node_id, {})
        before = self._replica_snapshot()
        self._nodes[info.node_id] = info
        self._ring.add(info.node_id)
        return self._diff(info.node_id, before)

    def remove(self, node_id: str) -> RemapReport:
        """Leave a node; returns which fleets gained new owners."""
        if node_id not in self._nodes:
            return RemapReport(node_id, {})
        before = self._replica_snapshot()
        del self._nodes[node_id]
        self._ring.remove(node_id)
        return self._diff(node_id, before)

    # -- fleets ----------------------------------------------------------
    @property
    def fleets(self) -> dict[str, dict]:
        return {fp: dict(spec) for fp, spec in self._fleets.items()}

    def register_fleet(self, fingerprint: str, spec: Mapping) -> None:
        self._fleets[fingerprint] = dict(spec)

    def fleet_spec(self, fingerprint: str) -> dict | None:
        spec = self._fleets.get(fingerprint)
        return None if spec is None else dict(spec)

    def knows_fleet(self, fingerprint: str) -> bool:
        return fingerprint in self._fleets

    # -- routing ---------------------------------------------------------
    def replicas_for(self, fingerprint: str, count: int | None = None) -> list[str]:
        """The replica set (primary first); empty when the ring is empty."""
        if not self._nodes:
            return []
        want = self._replication if count is None else count
        return [str(n) for n in self._ring.nodes_for(fingerprint, want)]

    def fleets_on(self, node_id: str) -> list[str]:
        """Fingerprints whose replica set includes ``node_id``."""
        return [
            fp for fp in self._fleets
            if node_id in self.replicas_for(fp)
        ]

    # -- remap math ------------------------------------------------------
    def _replica_snapshot(self) -> dict[str, tuple[str, ...]]:
        return {fp: tuple(self.replicas_for(fp)) for fp in self._fleets}

    def _diff(
        self, changed_node: str, before: Mapping[str, tuple[str, ...]]
    ) -> RemapReport:
        moved: dict[str, tuple[str, ...]] = {}
        for fp in self._fleets:
            old = before.get(fp, ())
            new = tuple(self.replicas_for(fp))
            if new != old:
                gained = tuple(n for n in new if n not in old)
                moved[fp] = gained
        return RemapReport(changed_node, moved)

    def status(self) -> dict:
        """The membership document behind ``repro cluster status``."""
        return {
            "replication": self._replication,
            "nodes": [self._nodes[nid].to_dict() for nid in sorted(self._nodes)],
            "fleets": {
                fp: {
                    "name": spec.get("name", ""),
                    "nodes": self.replicas_for(fp),
                }
                for fp, spec in self._fleets.items()
            },
        }


def node_id_of(host: str, port: int) -> str:
    """The canonical node id for an address (mirrors NodeInfo.node_id)."""
    return f"{host}:{port}"


def parse_node_id(node_id: str) -> tuple[str, int]:
    """Split ``host:port`` back into an address pair."""
    host, _, port = node_id.rpartition(":")
    if not host or not port.isdigit():
        raise ConfigurationError(f"malformed node id {node_id!r}; expected host:port")
    return host, int(port)

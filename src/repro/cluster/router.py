"""The cluster router: protocol-v1 front-end over N planner nodes.

:class:`RouterService` is to the cluster what
:class:`~repro.serve.service.PlanningService` is to one process: the
transport-agnostic handler behind the listeners.  It deliberately
implements the same surface (``start`` / ``drain`` / ``handle`` /
``health`` / ``stats`` / ``recorder``), so the existing
:class:`~repro.serve.server.PlanServer` — TCP framing, HTTP routes,
``/metrics``, ``/debug/traces`` — wraps it unchanged; a router *is* a
plan server whose service forwards instead of solves.

Routing: every data-path request names a fleet fingerprint, and the
fingerprint's replica set (primary first, then ring successors, via
:meth:`~repro.cluster.membership.ClusterMembership.replicas_for`) is
walked in order.  An attempt moves on to the next replica when the
node's circuit breaker is open, its bulkhead sheds locally, the
transport fails or times out, or the node answers with a *retryable*
code (``overloaded`` / ``shutting_down`` / ``unknown_fleet`` — the last
one self-heals: the router re-registers the fleet on that node in the
background).  Non-retryable answers (``infeasible``, ``throttled``, a
plan, ...) are returned as-is; plan requests are pure queries, so
walking replicas never double-executes anything observable.  Per-tenant
``tenant`` and ``idempotency_key`` fields forward verbatim, so quota
verdicts are made by the owning node and retried frames dedup there.

Responses are re-enveloped with the client's request id; when every
replica fails, the client gets the new typed ``unavailable`` code (or
the last retryable code seen, which is more specific — e.g. a cluster
that is uniformly ``overloaded`` says so).

Membership is live: :meth:`join` and :meth:`leave` rebalance the ring
with minimal fleet remapping and re-register exactly the moved fleets on
their new owners, while in-flight requests on a leaving node finish
before its link closes.  A background probe loop health-checks every
member, feeds the breakers, and re-syncs fleets onto nodes that come
back.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from .. import obs
from ..exceptions import ConfigurationError
from ..obs.context import TraceContext
from ..obs.flight import FlightRecorder, RequestTrace
from ..obs.spans import Span
from ..planner import Fleet
from ..serve.protocol import (
    HealthRequest,
    ObserveRequest,
    PlanManyRequest,
    PlanRequest,
    ProtocolError,
    RegisterFleetRequest,
    StatsRequest,
    error_code_for,
    error_response,
    fleet_spec_from_speed_functions,
    ok_response,
    parse_request,
    speed_functions_from_fleet_spec,
)
from ..serve.service import ServeConfig
from .breaker import CLOSED, BreakerConfig, CircuitBreaker
from .membership import ClusterMembership, NodeInfo
from .pool import NodeBusy, NodeLink, NodeUnavailable

__all__ = ["RouterConfig", "RouterService", "start_router_in_thread"]

logger = logging.getLogger(__name__)

#: Node answers that justify walking to the next replica.  All data-path
#: requests are pure (plans are deterministic queries; observations are
#: idempotent appends), so retrying on another node is always safe.
RETRYABLE_CODES = frozenset({"overloaded", "shutting_down", "unknown_fleet"})

#: Admin operations the router answers itself (never forwarded; plain
#: nodes reject them with ``unknown_op``, which is exactly right).
_ADMIN_OPS = frozenset({"cluster_status", "cluster_join", "cluster_leave"})


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs for the cluster router (see ``docs/cluster.md``).

    Attributes
    ----------
    host / port / http_port:
        The router's own listener addresses (same semantics as
        :class:`~repro.serve.ServeConfig`).
    replication:
        Replica-set size N: each fleet is registered on its primary and
        the next N−1 distinct ring successors, and requests fall back
        across exactly that set.
    connections / max_concurrency / max_waiting:
        Per-node link bounds (see :class:`~repro.cluster.pool.NodeLink`):
        pooled pipelined connections, the bulkhead, and the bounded
        load-leveling queue in front of it.
    attempt_timeout:
        Seconds one forwarded attempt may take before the node is
        declared unavailable and the walk moves on.
    probe_interval:
        Seconds between background ``health`` probes per node (0
        disables probing — tests drive breakers directly).
    breaker:
        Per-node circuit-breaker thresholds.
    tracing / flight_capacity / flight_retain / flight_slow_k:
        Router-side request tracing and flight-recorder bounds, as in
        :class:`~repro.serve.ServeConfig`.
    ring_replicas:
        Virtual points per node on the consistent-hash ring.
    """

    host: str = "127.0.0.1"
    port: int = 0
    http_port: int | None = None
    replication: int = 2
    connections: int = 2
    max_concurrency: int = 64
    max_waiting: int = 128
    attempt_timeout: float = 30.0
    probe_interval: float = 0.25
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    tracing: bool = True
    flight_capacity: int = 256
    flight_retain: int = 1024
    flight_slow_k: int = 16
    ring_replicas: int = 64

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ConfigurationError(
                f"replication must be at least 1, got {self.replication!r}"
            )
        if self.attempt_timeout <= 0:
            raise ConfigurationError(
                f"attempt_timeout must be positive, got {self.attempt_timeout!r}"
            )


def _item_error(code: str, message: str) -> dict:
    return {"ok": False, "code": code, "message": message}


class RouterService:
    """The routing service behind a cluster front-end (see module notes).

    Construct with the seed member nodes, then hand to
    :class:`~repro.serve.server.PlanServer` (or
    :func:`start_router_in_thread`) exactly like a
    :class:`~repro.serve.service.PlanningService`.
    """

    def __init__(
        self, config: RouterConfig | None = None, nodes: Sequence[NodeInfo] = ()
    ):
        self._config = config or RouterConfig()
        self._serve_config = ServeConfig(
            host=self._config.host,
            port=self._config.port,
            http_port=self._config.http_port,
            tracing=self._config.tracing,
        )
        self._membership = ClusterMembership(
            replication=self._config.replication,
            ring_replicas=self._config.ring_replicas,
        )
        self._seed_nodes = list(nodes)
        self._links: dict[str, NodeLink] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._down: set[str] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._probe_task: asyncio.Task | None = None
        self._draining = False
        self._started_at = time.time()
        self._tracing = bool(self._config.tracing)
        self._recorder = FlightRecorder(
            self._config.flight_capacity,
            retain_capacity=self._config.flight_retain,
            slow_k=self._config.flight_slow_k,
        )

        registry = obs.get_registry()
        self._requests = registry.counter(
            "cluster.requests", help="requests received by the router"
        )
        self._route_primary = registry.counter(
            "cluster.route.primary",
            help="data-path requests answered by the fleet's primary node",
        )
        self._route_fallback = registry.counter(
            "cluster.route.fallback",
            help="data-path requests answered by a fallback replica",
        )
        self._route_unavailable = registry.counter(
            "cluster.route.unavailable",
            help="data-path requests no replica could answer",
        )
        self._shed = registry.counter(
            "cluster.shed",
            help="attempts shed locally by a node link's bulkhead/queue",
        )
        self._reshards = registry.counter(
            "cluster.reshards", help="membership changes applied (join+leave)"
        )
        self._nodes_gauge = registry.gauge(
            "cluster.nodes", help="current member node count"
        )
        self._latency = {
            op: registry.histogram(
                "cluster.request.seconds",
                labels={"op": op},
                help="router latency per request, by operation",
            )
            for op in (
                "plan", "plan_many", "register_fleet", "observe", "health",
                "stats", "admin", "invalid",
            )
        }

    # -- service surface (what PlanServer needs) -------------------------
    @property
    def config(self) -> ServeConfig:
        return self._serve_config

    @property
    def router_config(self) -> RouterConfig:
        return self._config

    @property
    def recorder(self) -> FlightRecorder:
        return self._recorder

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def membership(self) -> ClusterMembership:
        return self._membership

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._started_at = time.time()
        for info in self._seed_nodes:
            await self._admit(info)
        if self._config.probe_interval > 0:
            self._probe_task = asyncio.ensure_future(self._probe_loop())
        logger.info(
            "cluster router started",
            extra={
                "nodes": len(self._membership),
                "replication": self._config.replication,
            },
        )

    async def drain(self) -> None:
        """Refuse new work, let forwarded requests finish, close links."""
        if self._draining:
            return
        self._draining = True
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
        for link in self._links.values():
            await link.drain(timeout=self._config.attempt_timeout)
        for link in self._links.values():
            await link.close()
        logger.info("cluster router drained")

    # -- membership ------------------------------------------------------
    async def _admit(self, info: NodeInfo) -> dict:
        """Create the link/breaker for a node and sync its fleets."""
        report = self._membership.add(info)
        if info.node_id not in self._links:
            self._links[info.node_id] = NodeLink(
                info.host,
                info.port,
                connections=self._config.connections,
                max_concurrency=self._config.max_concurrency,
                max_waiting=self._config.max_waiting,
                attempt_timeout=self._config.attempt_timeout,
            )
            self._breakers[info.node_id] = CircuitBreaker(
                info.node_id, self._config.breaker
            )
        self._nodes_gauge.set(len(self._membership))
        synced = await self._sync_moved(report.moved)
        return {
            "node": info.to_dict(),
            "fleets_moved": report.fleets_moved,
            "registered": synced,
        }

    async def join(self, host: str, port: int, http_port: int | None = None) -> dict:
        """Add a member node; rebalance with minimal fleet remapping."""
        if self._draining:
            raise ProtocolError("shutting_down", "the router is draining")
        info = NodeInfo(host=host, port=int(port), http_port=http_port)
        if info.node_id in self._membership:
            return {"node": info.to_dict(), "fleets_moved": 0, "registered": 0,
                    "already_member": True}
        doc = await self._admit(info)
        self._reshards.inc()
        logger.info("node joined", extra={"node": info.node_id})
        return doc

    async def leave(self, node_id: str) -> dict:
        """Remove a member gracefully: reroute, re-register, then drain it.

        Order matters for the no-dropped-work contract: the node leaves
        the ring first (new requests route around it), the fleets it
        owned are re-registered on their new owners, and only then is
        its link drained of in-flight requests and closed.
        """
        if self._draining:
            raise ProtocolError("shutting_down", "the router is draining")
        if node_id not in self._membership:
            raise ProtocolError("invalid_request", f"unknown node {node_id!r}")
        report = self._membership.remove(node_id)
        self._nodes_gauge.set(len(self._membership))
        synced = await self._sync_moved(report.moved)
        link = self._links.pop(node_id, None)
        self._breakers.pop(node_id, None)
        self._down.discard(node_id)
        drained = True
        if link is not None:
            drained = await link.drain(timeout=self._config.attempt_timeout)
            await link.close()
        self._reshards.inc()
        logger.info(
            "node left",
            extra={"node": node_id, "fleets_moved": report.fleets_moved},
        )
        return {
            "node_id": node_id,
            "fleets_moved": report.fleets_moved,
            "registered": synced,
            "drained": drained,
        }

    async def _sync_moved(self, moved: Mapping[str, Sequence[str]]) -> int:
        """Re-register remapped fleets on the nodes that gained them."""
        synced = 0
        for fingerprint, gained in moved.items():
            spec = self._membership.fleet_spec(fingerprint)
            if spec is None:
                continue
            for node_id in gained:
                if await self._register_on(node_id, fingerprint, spec):
                    synced += 1
        return synced

    async def _register_on(self, node_id: str, fingerprint: str, spec: Mapping) -> bool:
        link = self._links.get(node_id)
        if link is None:
            return False
        fields = {
            "name": spec.get("name", ""),
            "speed_functions": list(spec["speed_functions"]),
            "algorithm": spec.get("algorithm", "bisection"),
            "options": {
                "mode": spec.get("mode", "tangent"),
                "refine": spec.get("refine", "greedy"),
            },
            "cache_size": int(spec.get("cache_size", 1024)),
        }
        breaker = self._breakers.get(node_id)
        try:
            resp = await link.request("register_fleet", fields)
        except (NodeBusy, NodeUnavailable) as exc:
            if breaker is not None and isinstance(exc, NodeUnavailable):
                breaker.record_failure()
            logger.warning(
                "fleet registration deferred",
                extra={"node": node_id, "fingerprint": fingerprint, "error": str(exc)},
            )
            return False
        if breaker is not None:
            breaker.record_success()
        if not resp.get("ok"):
            logger.warning(
                "node refused fleet registration",
                extra={"node": node_id, "fingerprint": fingerprint,
                       "error": resp.get("error")},
            )
            return False
        return True

    async def _resync_node(self, node_id: str) -> int:
        """Re-register every fleet a (recovered) node should be serving."""
        synced = 0
        for fingerprint in self._membership.fleets_on(node_id):
            spec = self._membership.fleet_spec(fingerprint)
            if spec is not None and await self._register_on(node_id, fingerprint, spec):
                synced += 1
        return synced

    # -- health probing --------------------------------------------------
    async def _probe_loop(self) -> None:
        interval = self._config.probe_interval
        while not self._draining:
            for node_id in list(self._links):
                await self._probe_one(node_id)
            await asyncio.sleep(interval)

    async def _probe_one(self, node_id: str) -> None:
        link = self._links.get(node_id)
        breaker = self._breakers.get(node_id)
        if link is None or breaker is None or not breaker.allow_probe():
            return
        was_closed = breaker.state == CLOSED
        try:
            resp = await link.request(
                "health", {}, timeout=min(self._config.attempt_timeout, 5.0)
            )
            ok = bool(resp.get("ok"))
        except (NodeBusy, NodeUnavailable) as exc:
            ok = not isinstance(exc, NodeUnavailable)  # busy node is alive
        if ok:
            breaker.record_success()
            if (not was_closed or node_id in self._down) and breaker.state == CLOSED:
                self._down.discard(node_id)
                synced = await self._resync_node(node_id)
                logger.info(
                    "node recovered", extra={"node": node_id, "resynced": synced}
                )
        else:
            breaker.record_failure()
            if breaker.state != CLOSED:
                self._down.add(node_id)

    # -- routing ---------------------------------------------------------
    def _retryable(self, op: str, resp: Mapping) -> str | None:
        """The retryable code of a node response, or ``None`` to accept it.

        ``plan_many`` envelopes stay ``ok`` while carrying per-item
        verdicts, so a batch shed by the node (every item ``overloaded``
        / ``shutting_down``) is recognised by inspecting the items; a
        batch with *any* solved item is accepted as-is (partial-failure
        handling belongs to the client, as in the single-node service).
        """
        if not resp.get("ok"):
            code = (resp.get("error") or {}).get("code")
            return code if code in RETRYABLE_CODES else None
        if op == "plan_many":
            items = (resp.get("result") or {}).get("results") or []
            codes = {it.get("code") for it in items if not it.get("ok", False)}
            if items and len(codes) > 0 and not any(
                it.get("ok", False) for it in items
            ) and codes <= RETRYABLE_CODES:
                return sorted(codes)[0]
        return None

    async def _route(
        self,
        op: str,
        fingerprint: str,
        fields: Mapping,
        *,
        timeout: float | None,
        ctx: TraceContext | None,
        root: Span | None,
    ) -> tuple[dict | None, str, str]:
        """Walk the replica set; returns ``(response, code, message)``.

        ``response`` is the accepted node response (``None`` when every
        replica failed, in which case ``code``/``message`` describe the
        most specific failure seen).
        """
        replicas = self._membership.replicas_for(fingerprint)
        last = ("unavailable", "the cluster has no member nodes")
        for i, node_id in enumerate(replicas):
            link = self._links.get(node_id)
            breaker = self._breakers.get(node_id)
            if link is None or breaker is None:
                continue
            if not breaker.allow():
                last = ("unavailable", f"circuit breaker is open for {node_id}")
                continue
            attempt_ctx = ctx.child() if ctx is not None else None
            span = None
            if root is not None and attempt_ctx is not None:
                span = Span(
                    name="cluster.attempt",
                    attrs={"node": node_id, "attempt": i},
                    trace_id=attempt_ctx.trace_id,
                    span_id=attempt_ctx.span_id,
                    parent_id=root.span_id,
                    started=time.time(),
                )
                root.children.append(span)
            send = dict(fields)
            if attempt_ctx is not None:
                send["trace"] = attempt_ctx.to_dict()
            t0 = time.perf_counter()
            try:
                resp = await link.request(op, send, timeout=timeout)
            except NodeBusy as exc:
                # Local shed: the node was never asked, so this is not a
                # breaker failure — release any half-open trial slot.
                breaker.record_success()
                self._shed.inc()
                last = ("overloaded", str(exc))
                self._finish_attempt(span, t0, "overloaded")
                continue
            except NodeUnavailable as exc:
                breaker.record_failure()
                last = ("unavailable", str(exc))
                self._finish_attempt(span, t0, "unavailable")
                continue
            breaker.record_success()
            retry_code = self._retryable(op, resp)
            if retry_code is not None:
                last = (
                    retry_code,
                    (resp.get("error") or {}).get(
                        "message", f"node {node_id} answered {retry_code}"
                    ),
                )
                self._finish_attempt(span, t0, retry_code)
                if retry_code == "unknown_fleet":
                    # The replica missed a registration (it was down when
                    # the fleet arrived); heal it off the request path.
                    self._spawn_reregister(node_id, fingerprint)
                continue
            self._finish_attempt(span, t0, "ok")
            (self._route_primary if i == 0 else self._route_fallback).inc()
            return resp, "ok", node_id
        self._route_unavailable.inc()
        return None, last[0], last[1]

    def _finish_attempt(self, span: Span | None, t0: float, status: str) -> None:
        if span is None:
            return
        span.seconds = time.perf_counter() - t0
        if status != "ok":
            span.status = "error"
            span.attrs["code"] = status

    def _spawn_reregister(self, node_id: str, fingerprint: str) -> None:
        spec = self._membership.fleet_spec(fingerprint)
        if spec is None or self._loop is None:
            return
        task = self._loop.create_task(
            self._register_on(node_id, fingerprint, spec)
        )
        # Fire-and-forget with the reference pinned until completion.
        task.add_done_callback(lambda t: t.exception())

    def _forward_timeout(self, timeout_ms: float | None) -> float | None:
        if timeout_ms is None:
            return self._config.attempt_timeout
        # Give the node its full deadline plus slack for the extra hop.
        return min(self._config.attempt_timeout, timeout_ms / 1000.0 + 5.0)

    # -- fleet registration ----------------------------------------------
    async def register_fleet(self, request: RegisterFleetRequest) -> dict:
        """Validate, fingerprint, and register a fleet on its replica set."""
        if self._draining:
            raise ProtocolError("shutting_down", "the router is draining")
        spec = fleet_spec_from_speed_functions(
            speed_functions_from_fleet_spec(
                {"speed_functions": request.speed_functions}
            ),
            name=request.name,
            algorithm=request.algorithm,
            options=request.options,
            cache_size=request.cache_size,
        )
        fleet = Fleet(
            speed_functions_from_fleet_spec(spec), name=spec.get("name") or None
        )
        replicas = self._membership.replicas_for(fleet.fingerprint)
        if not replicas:
            raise ProtocolError("unavailable", "the cluster has no member nodes")
        registered = []
        for node_id in replicas:
            if await self._register_on(node_id, fleet.fingerprint, spec):
                registered.append(node_id)
        if not registered:
            raise ProtocolError(
                "unavailable",
                f"no replica of {fleet.fingerprint} accepted the registration",
            )
        self._membership.register_fleet(fleet.fingerprint, spec)
        logger.info(
            "fleet registered on cluster",
            extra={"fingerprint": fleet.fingerprint, "nodes": registered},
        )
        return {
            "fingerprint": fleet.fingerprint,
            "name": fleet.name,
            "p": fleet.p,
            "capacity": fleet.capacity,
            "algorithm": spec.get("algorithm", "bisection"),
            "nodes": replicas,
            "registered": registered,
        }

    # -- health / stats --------------------------------------------------
    def health(self) -> dict:
        """Router liveness plus per-node breaker states (no round-trips)."""
        return {
            "status": "draining" if self._draining else "ok",
            "role": "router",
            "nodes": {
                node_id: {
                    "breaker": self._breakers[node_id].state
                    if node_id in self._breakers else "unknown",
                    "in_flight": self._links[node_id].in_flight
                    if node_id in self._links else 0,
                }
                for node_id in self._membership.nodes
            },
            "fleets": len(self._membership.fleets),
            "replication": self._config.replication,
            "uptime_seconds": max(0.0, time.time() - self._started_at),
        }

    async def stats(self) -> dict:
        """Aggregate: router counters plus every reachable node's stats."""
        per_node: dict[str, Any] = {}

        async def fetch(node_id: str) -> None:
            link = self._links.get(node_id)
            if link is None:
                per_node[node_id] = {"ok": False, "error": "no link"}
                return
            try:
                resp = await link.request(
                    "stats", {}, timeout=min(self._config.attempt_timeout, 10.0)
                )
            except (NodeBusy, NodeUnavailable) as exc:
                per_node[node_id] = {"ok": False, "error": str(exc)}
                return
            if resp.get("ok"):
                per_node[node_id] = {"ok": True, **resp["result"]}
            else:
                per_node[node_id] = {"ok": False, "error": resp.get("error")}

        await asyncio.gather(*(fetch(nid) for nid in self._membership.nodes))
        return {
            "cluster": self._membership.status(),
            "router": {
                "requests": int(self._requests.value),
                "routed_primary": int(self._route_primary.value),
                "routed_fallback": int(self._route_fallback.value),
                "unavailable": int(self._route_unavailable.value),
                "shed": int(self._shed.value),
                "reshards": int(self._reshards.value),
                "breakers": {
                    node_id: breaker.state
                    for node_id, breaker in self._breakers.items()
                },
                "trace": self._recorder.stats(),
            },
            "nodes": per_node,
        }

    # -- admin ops -------------------------------------------------------
    async def _handle_admin(self, raw: Mapping) -> dict:
        op = raw["op"]
        req_id = raw.get("id")
        try:
            if op == "cluster_status":
                doc = self._membership.status()
                doc["router"] = self.health()
                return ok_response(req_id, doc)
            if op == "cluster_join":
                host = raw.get("host")
                port = raw.get("port")
                if not isinstance(host, str) or not host:
                    raise ProtocolError(
                        "invalid_request", "cluster_join needs a 'host' string"
                    )
                if isinstance(port, bool) or not isinstance(port, int) or port <= 0:
                    raise ProtocolError(
                        "invalid_request", "cluster_join needs a positive 'port'"
                    )
                http_port = raw.get("http_port")
                if http_port is not None and (
                    isinstance(http_port, bool) or not isinstance(http_port, int)
                ):
                    raise ProtocolError(
                        "invalid_request", "http_port must be an integer or null"
                    )
                return ok_response(req_id, await self.join(host, port, http_port))
            assert op == "cluster_leave"
            node_id = raw.get("node")
            if not isinstance(node_id, str) or not node_id:
                raise ProtocolError(
                    "invalid_request", "cluster_leave needs a 'node' id string"
                )
            return ok_response(req_id, await self.leave(node_id))
        except ProtocolError as exc:
            return error_response(req_id, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - the envelope must not leak
            logger.exception("cluster admin op failed")
            return error_response(req_id, error_code_for(exc), str(exc))

    # -- tracing ---------------------------------------------------------
    def _open_trace(
        self, client: TraceContext | None, name: str, **attrs: Any
    ) -> tuple[TraceContext | None, Span | None]:
        if not self._tracing:
            self._recorder.note_sampled()
            return client, None
        ctx = client.child() if client is not None else TraceContext.new()
        root = Span(
            name=name,
            attrs=attrs,
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=ctx.parent_id or "",
            started=time.time(),
        )
        return ctx, root

    def _close_trace(
        self,
        root: Span,
        op: str,
        status: str,
        fleet: str,
        n: int | None,
        started_wall: float,
        seconds: float,
    ) -> None:
        root.seconds = seconds
        if status != "ok":
            root.status = "error"
            root.attrs["code"] = status
        self._recorder.record(
            RequestTrace(
                trace_id=root.trace_id,
                op=op,
                status=status,
                fleet=fleet,
                n=n,
                started=started_wall,
                seconds=seconds,
                root=root,
            )
        )

    # -- protocol dispatch -----------------------------------------------
    async def handle(self, raw: Any) -> dict:
        """One decoded frame in, one response dict out (never raises)."""
        self._requests.inc()
        req_id = raw.get("id") if isinstance(raw, Mapping) else None
        started = time.perf_counter()
        started_wall = time.time()
        op = "invalid"
        status = "ok"
        fleet, size = "", None
        trace_id: str | None = None
        root: Span | None = None
        try:
            if isinstance(raw, Mapping) and raw.get("op") in _ADMIN_OPS:
                op = "admin"
                response = await self._handle_admin(raw)
                if not response["ok"]:
                    status = response["error"]["code"]
                return response
            request = parse_request(raw)
            op = request.op
            if self._draining and not isinstance(
                request, (HealthRequest, StatsRequest)
            ):
                raise ProtocolError("shutting_down", "the router is draining")
            if isinstance(request, (PlanRequest, PlanManyRequest, ObserveRequest)):
                fleet = request.fleet
                if not self._membership.knows_fleet(fleet):
                    raise ProtocolError(
                        "unknown_fleet",
                        f"fleet {fleet!r} is not registered on this cluster",
                    )
                if isinstance(request, PlanRequest):
                    size = request.n
                    ctx, root = self._open_trace(
                        request.trace, "cluster.plan", n=request.n
                    )
                    fields: dict[str, Any] = {
                        "fleet": fleet, "n": request.n,
                        "allocation": request.allocation,
                    }
                    # Tenancy and idempotency ride through verbatim: the
                    # node applies quotas/fair queueing per tenant, and a
                    # replica-walk retry carrying the same idempotency
                    # key dedups against the node's window.
                    if request.tenant:
                        fields["tenant"] = request.tenant
                    if request.idempotency_key is not None:
                        fields["idempotency_key"] = request.idempotency_key
                    timeout_ms = request.timeout_ms
                elif isinstance(request, PlanManyRequest):
                    ctx, root = self._open_trace(
                        request.trace, "cluster.plan_many", count=len(request.ns)
                    )
                    fields = {
                        "fleet": fleet, "ns": list(request.ns),
                        "allocation": request.allocation,
                    }
                    if request.tenant:
                        fields["tenant"] = request.tenant
                    if request.idempotency_key is not None:
                        fields["idempotency_key"] = request.idempotency_key
                    timeout_ms = request.timeout_ms
                else:
                    ctx, root = self._open_trace(
                        None, "cluster.observe", count=len(request.observations)
                    )
                    fields = {
                        "fleet": fleet,
                        "observations": [dict(o) for o in request.observations],
                    }
                    timeout_ms = None
                if timeout_ms is not None:
                    fields["timeout_ms"] = timeout_ms
                trace_id = ctx.trace_id if ctx is not None else None
                resp, code, detail = await self._route(
                    op, fleet, fields,
                    timeout=self._forward_timeout(timeout_ms),
                    ctx=ctx, root=root,
                )
                if resp is None:
                    status = code
                    response = error_response(
                        req_id, code, detail, trace_id=trace_id
                    )
                elif resp.get("ok"):
                    response = ok_response(
                        req_id, resp["result"], trace_id=trace_id
                    )
                else:
                    err = resp["error"]
                    status = err.get("code", "internal")
                    response = error_response(
                        req_id, status, err.get("message", ""), trace_id=trace_id
                    )
            elif isinstance(request, RegisterFleetRequest):
                response = ok_response(req_id, await self.register_fleet(request))
            elif isinstance(request, StatsRequest):
                response = ok_response(req_id, await self.stats())
            else:
                assert isinstance(request, HealthRequest)
                response = ok_response(req_id, self.health())
        except ProtocolError as exc:
            status = exc.code
            response = error_response(req_id, exc.code, str(exc), trace_id=trace_id)
        except Exception as exc:  # noqa: BLE001 - the envelope must not leak
            logger.exception("router request handling failed")
            status = error_code_for(exc)
            response = error_response(req_id, status, str(exc), trace_id=trace_id)
        finally:
            elapsed = time.perf_counter() - started
            if obs.is_enabled() or root is not None:
                self._latency[op if op in self._latency else "invalid"].observe(
                    elapsed, exemplar=trace_id
                )
            if root is not None:
                self._close_trace(
                    root, op, status, fleet, size, started_wall, elapsed
                )
        return response


def start_router_in_thread(
    config: RouterConfig | None = None,
    nodes: Sequence[NodeInfo] = (),
    *,
    timeout: float = 60.0,
):
    """Boot a cluster router (with listeners) on a background thread.

    The cluster twin of :func:`repro.serve.server.start_in_thread`:
    returns the same :class:`~repro.serve.server.ServerHandle`, whose
    ``.service`` is the :class:`RouterService`.
    """
    import threading

    from ..serve.server import PlanServer, ServerHandle

    config = config or RouterConfig()
    started = threading.Event()
    state: dict[str, Any] = {}

    async def _amain() -> None:
        service = RouterService(config, nodes)
        server = PlanServer(service, service.config)
        try:
            await server.start()
        except BaseException as exc:
            state["error"] = exc
            started.set()
            raise
        stop_event = asyncio.Event()
        state["loop"] = asyncio.get_running_loop()
        state["server"] = server
        state["service"] = service
        state["stop_event"] = stop_event
        started.set()
        await stop_event.wait()
        await server.stop(drain=getattr(service, "_drain_flag", True))

    def _runner() -> None:
        try:
            asyncio.run(_amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced via state
            state.setdefault("error", exc)
            started.set()

    thread = threading.Thread(target=_runner, name="repro-cluster-router", daemon=True)
    thread.start()
    if not started.wait(timeout=timeout):  # pragma: no cover - hung startup
        raise RuntimeError("the router thread did not start in time")
    if "error" in state:
        raise state["error"]
    return ServerHandle(
        thread, state["loop"], state["server"], state["service"], state["stop_event"]
    )

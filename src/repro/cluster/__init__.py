"""Multi-node serving: replicated routing, live resharding, fault isolation.

The cluster layer scales :mod:`repro.serve` horizontally: N independent
planner node processes behind one :class:`~repro.cluster.router.RouterService`
front-end that speaks the same NDJSON protocol v1 clients already use.
Requests route by fleet fingerprint over the blake2b consistent-hash
ring; each fleet lives on a replica set (primary + ring successors), and
the router falls back across it when a node dies, sheds, or answers with
a retryable code.  Membership is live (``repro cluster join/leave``)
with minimal fleet remapping, and per-node circuit breakers + bulkhead
connection pools keep one bad node from dragging the rest down.

See ``docs/cluster.md`` for topology and tuning.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerConfig, CircuitBreaker
from .membership import (
    ClusterMembership,
    NodeInfo,
    RemapReport,
    node_id_of,
    parse_node_id,
)
from .node import (
    ProcessNode,
    ThreadNode,
    start_nodes,
    start_process_node,
    start_thread_node,
)
from .pool import NodeBusy, NodeLink, NodeUnavailable
from .router import RouterConfig, RouterService, start_router_in_thread

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ClusterMembership",
    "NodeInfo",
    "RemapReport",
    "node_id_of",
    "parse_node_id",
    "NodeBusy",
    "NodeLink",
    "NodeUnavailable",
    "ProcessNode",
    "ThreadNode",
    "start_nodes",
    "start_process_node",
    "start_thread_node",
    "RouterConfig",
    "RouterService",
    "start_router_in_thread",
]

"""Bulkhead-isolated connection pools: one bounded link per node.

A :class:`NodeLink` owns everything the router holds against one member
node: a small pool of pipelined :class:`~repro.serve.client.AsyncServeClient`
connections, a bulkhead bound on concurrent in-flight requests, a
bounded waiting room in front of it (queue-based load leveling), and the
node's :class:`~repro.cluster.breaker.CircuitBreaker`.

The bulkhead is the isolation boundary: a slow node can hold at most
``max_concurrency`` router requests plus ``max_waiting`` queued ones —
after that the link *sheds locally* by raising :class:`NodeBusy`, and
the router walks to the next replica instead of letting every event-loop
task pile up behind one wedged socket.  Transport failures (connect
refused, reset, per-attempt timeout) raise :class:`NodeUnavailable`;
the router records them on the breaker.

Why a waiting room at all, instead of shedding straight at the
concurrency bound?  Micro-bursts.  The node's own admission queue smooths
over its batching window only if requests *reach* it; a short queue in
the router absorbs a burst a few milliseconds long without either
shedding or unbounded buildup — the queue-based load-leveling pattern
with a hard cap.
"""

from __future__ import annotations

import asyncio
import itertools

from ..exceptions import ReproError
from ..serve.client import AsyncServeClient

__all__ = ["NodeBusy", "NodeUnavailable", "NodeLink"]


class NodeBusy(ReproError):
    """The link's bulkhead and waiting room are both full (local shed)."""


class NodeUnavailable(ReproError):
    """The node could not be reached or did not answer within the timeout."""


class NodeLink:
    """The router's bounded channel to one member node.

    Parameters
    ----------
    host / port:
        The node's NDJSON/TCP listener address.
    connections:
        Pipelined connections to multiplex requests over (created
        lazily, replaced on transport failure).
    max_concurrency:
        Bulkhead: requests in flight to this node at once.
    max_waiting:
        Waiting-room bound; beyond it :meth:`request` sheds immediately.
    attempt_timeout:
        Seconds one forwarded request may take end to end before the
        link declares the node unavailable and resets the connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connections: int = 2,
        max_concurrency: int = 32,
        max_waiting: int = 64,
        attempt_timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self._connections = max(1, int(connections))
        self._clients: list[AsyncServeClient | None] = [None] * self._connections
        self._rr = itertools.count()
        self._sem = asyncio.Semaphore(max_concurrency)
        self._max_waiting = max(0, int(max_waiting))
        self._waiting = 0
        self._in_flight = 0
        self._attempt_timeout = attempt_timeout
        self._closed = False

    # -- introspection ---------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Requests currently inside the bulkhead (probes included)."""
        return self._in_flight

    @property
    def waiting(self) -> int:
        return self._waiting

    @property
    def closed(self) -> bool:
        return self._closed

    # -- request path ----------------------------------------------------
    async def request(
        self, op: str, fields: dict, *, timeout: float | None = None
    ) -> dict:
        """Forward one protocol request; return the node's full response.

        Raises :class:`NodeBusy` on a full bulkhead+queue and
        :class:`NodeUnavailable` on any transport failure or timeout.
        Never raises the node's *protocol* errors — those come back as
        ordinary ``{"ok": false, ...}`` response dicts for the router's
        fallback logic to interpret.
        """
        if self._closed:
            raise NodeUnavailable(f"link to {self.host}:{self.port} is closed")
        if self._sem.locked() and self._waiting >= self._max_waiting:
            raise NodeBusy(
                f"node {self.host}:{self.port} bulkhead is full "
                f"({self._waiting} already waiting)"
            )
        self._waiting += 1
        try:
            await self._sem.acquire()
        finally:
            self._waiting -= 1
        self._in_flight += 1
        try:
            idx = next(self._rr) % self._connections
            client = self._clients[idx]
            if client is not None and not client.connected:
                # The node hung up since the last request on this slot;
                # redial now so failover costs a refused connect, not a
                # parked future.
                self._clients[idx] = None
                await _close_quietly(client)
                client = None
            try:
                if client is None:
                    client = await asyncio.wait_for(
                        AsyncServeClient.connect(self.host, self.port),
                        timeout=self._attempt_timeout,
                    )
                    self._clients[idx] = client
                return await asyncio.wait_for(
                    client.call(op, **fields),
                    timeout=timeout if timeout is not None else self._attempt_timeout,
                )
            except (ConnectionError, OSError, asyncio.TimeoutError, EOFError) as exc:
                # The connection's state is unknown (or the node is gone):
                # drop it so the next request dials fresh.
                if self._clients[idx] is not None:
                    stale, self._clients[idx] = self._clients[idx], None
                    await _close_quietly(stale)
                kind = "timed out" if isinstance(exc, asyncio.TimeoutError) else str(exc)
                raise NodeUnavailable(
                    f"node {self.host}:{self.port} {op} failed: {kind}"
                ) from exc
        finally:
            self._in_flight -= 1
            self._sem.release()

    async def drain(self, *, timeout: float = 30.0, interval: float = 0.01) -> bool:
        """Wait for in-flight requests to finish (used by graceful leave)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while self._in_flight > 0:
            if loop.time() > deadline:
                return False
            await asyncio.sleep(interval)
        return True

    async def close(self) -> None:
        """Shut every pooled connection; further requests fail fast."""
        self._closed = True
        clients, self._clients = self._clients, [None] * self._connections
        for client in clients:
            if client is not None:
                await _close_quietly(client)


async def _close_quietly(client: AsyncServeClient) -> None:
    try:
        await client.close()
    except Exception:  # noqa: BLE001 - teardown must not mask the real error
        pass

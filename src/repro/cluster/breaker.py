"""Per-node circuit breakers: fail fast instead of queueing on the dead.

One :class:`CircuitBreaker` guards one member node of the cluster.  The
state machine is the classic three-state breaker:

* **closed** — traffic flows; consecutive failures are counted and
  ``failure_threshold`` of them in a row trip the breaker **open**;
* **open** — every :meth:`allow` is refused without touching the node,
  so a dead or wedged node costs the router a dictionary lookup instead
  of a connect timeout.  After ``reset_timeout`` seconds the next
  :meth:`allow` transitions to **half-open**;
* **half-open** — at most ``half_open_max`` concurrent trial requests
  are let through.  ``success_threshold`` consecutive successes close
  the breaker; any failure re-opens it and restarts the timeout.

The router's periodic health probes call :meth:`allow_probe`, which is
exempt from the open refusal — probes *are* the trial traffic that
discovers recovery, so they must never be locked out by the very state
they are meant to clear.

State transitions are counted in the global :mod:`repro.obs` registry
(``cluster.breaker.{open,half_open,close}``, labelled by node) so a
flapping node is visible on the ``/metrics`` plane.  All methods are
safe to call from one event loop; there is no internal locking because
the router touches breakers only from its serving loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from .. import obs
from ..exceptions import ConfigurationError

__all__ = ["BreakerConfig", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one node's circuit breaker.

    Attributes
    ----------
    failure_threshold:
        Consecutive failures that trip a closed breaker open.
    reset_timeout:
        Seconds an open breaker refuses traffic before letting trial
        requests through (half-open).
    half_open_max:
        Concurrent trial requests admitted while half-open; the rest
        are refused as if the breaker were open.
    success_threshold:
        Consecutive half-open successes required to close the breaker.
    """

    failure_threshold: int = 3
    reset_timeout: float = 1.0
    half_open_max: int = 1
    success_threshold: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be at least 1, got {self.failure_threshold!r}"
            )
        if self.reset_timeout <= 0:
            raise ConfigurationError(
                f"reset_timeout must be positive, got {self.reset_timeout!r}"
            )
        if self.half_open_max < 1:
            raise ConfigurationError(
                f"half_open_max must be at least 1, got {self.half_open_max!r}"
            )
        if self.success_threshold < 1:
            raise ConfigurationError(
                f"success_threshold must be at least 1, got {self.success_threshold!r}"
            )


class CircuitBreaker:
    """Three-state breaker for one node (see the module notes).

    ``clock`` is injectable (defaults to :func:`time.monotonic`) so the
    state machine is testable without sleeping through reset timeouts.
    """

    def __init__(
        self,
        node_id: str = "",
        config: BreakerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._config = config or BreakerConfig()
        self._clock = clock
        self._state = CLOSED
        self._failures = 0          # consecutive failures while closed
        self._successes = 0         # consecutive successes while half-open
        self._trials = 0            # trial requests in flight while half-open
        self._opened_at = 0.0
        self.node_id = node_id
        registry = obs.get_registry()
        labels = {"node": node_id or "-"}
        self._opened = registry.counter(
            "cluster.breaker.open", labels=labels,
            help="breaker transitions to open, by node",
        )
        self._half_opened = registry.counter(
            "cluster.breaker.half_open", labels=labels,
            help="breaker transitions to half-open, by node",
        )
        self._closed = registry.counter(
            "cluster.breaker.close", labels=labels,
            help="breaker transitions back to closed, by node",
        )

    # -- introspection ---------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing open → half-open if the timeout passed."""
        self._maybe_half_open()
        return self._state

    @property
    def config(self) -> BreakerConfig:
        return self._config

    # -- gate -----------------------------------------------------------
    def allow(self) -> bool:
        """May one data-path request be sent to the node right now?

        A half-open admission reserves one of the ``half_open_max``
        trial slots; the caller MUST follow up with
        :meth:`record_success` or :meth:`record_failure` to release it.
        """
        self._maybe_half_open()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN and self._trials < self._config.half_open_max:
            self._trials += 1
            return True
        return False

    def allow_probe(self) -> bool:
        """Health probes pass unless the open timeout has not elapsed.

        While freshly open, even probes back off (the node just failed);
        once the reset timeout passes, probes flow every cycle so
        recovery is noticed within one probe interval.
        """
        self._maybe_half_open()
        if self._state != OPEN:
            return True
        return False  # still inside the reset window

    # -- outcomes --------------------------------------------------------
    def record_success(self) -> None:
        if self._state == HALF_OPEN:
            self._trials = max(0, self._trials - 1)
            self._successes += 1
            if self._successes >= self._config.success_threshold:
                self._to_closed()
        else:
            self._failures = 0

    def record_failure(self) -> None:
        if self._state == HALF_OPEN:
            self._trials = max(0, self._trials - 1)
            self._to_open()
        elif self._state == CLOSED:
            self._failures += 1
            if self._failures >= self._config.failure_threshold:
                self._to_open()
        else:  # already open: restart the reset window
            self._opened_at = self._clock()

    def force_open(self) -> None:
        """Trip the breaker immediately (a leave, or a failed probe burst)."""
        if self._state != OPEN:
            self._to_open()
        else:
            self._opened_at = self._clock()

    # -- transitions -----------------------------------------------------
    def _maybe_half_open(self) -> None:
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self._config.reset_timeout
        ):
            self._state = HALF_OPEN
            self._trials = 0
            self._successes = 0
            self._half_opened.inc()

    def _to_open(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._successes = 0
        self._trials = 0
        self._opened.inc()

    def _to_closed(self) -> None:
        self._state = CLOSED
        self._failures = 0
        self._successes = 0
        self._trials = 0
        self._closed.inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker(node={self.node_id!r}, state={self.state!r})"

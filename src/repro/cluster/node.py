"""Member-node lifecycles: planner servers as processes or threads.

A cluster node is just an ordinary :class:`~repro.serve.server.PlanServer`
booted with a ``node_id``; this module owns the two ways to run one:

* :class:`ProcessNode` — a real child process (fork-preferred), the
  production-shaped topology.  It is independently killable with
  ``SIGKILL``, which is exactly what the chaos verification needs: a
  node that vanishes mid-request without flushing so much as a socket
  buffer.
* :class:`ThreadNode` — the same server on a daemon thread in this
  process, for tests that want cluster semantics without fork overhead.

Both expose the same surface (``info`` / ``alive`` / ``stop`` /
``kill``), so the router, the chaos harness and the test-suite fixtures
are topology-agnostic.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Any

from ..serve.server import ServerHandle, start_in_thread
from ..serve.service import ServeConfig
from .membership import NodeInfo

__all__ = [
    "ProcessNode",
    "ThreadNode",
    "start_process_node",
    "start_thread_node",
    "start_nodes",
]


def _node_config(node_id: str, **overrides: Any) -> ServeConfig:
    """A node's ServeConfig: ephemeral ports, HTTP on, id stamped."""
    defaults: dict[str, Any] = {
        "host": "127.0.0.1",
        "port": 0,
        "http_port": 0,
        "node_id": node_id,
        "shards": 1,
        "worker_mode": "thread",
    }
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _child_main(conn, config: ServeConfig) -> None:  # pragma: no cover - child
    """Child-process body: boot the server, report ports, await stop."""
    # The child must not inherit the parent's signal-driven test harness
    # behaviour; default handlers make SIGTERM a clean exit path.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    handle = start_in_thread(config)
    conn.send({"port": handle.port, "http_port": handle.http_port})
    try:
        conn.recv()  # blocks until the parent asks for a graceful stop
    except EOFError:
        pass  # parent vanished; fall through to a drain anyway
    handle.stop()
    conn.close()


class ProcessNode:
    """One member node running as a SIGKILL-able child process."""

    def __init__(self, node_id: str, process, conn, host: str, port: int,
                 http_port: int | None):
        self.node_id = node_id
        self._process = process
        self._conn = conn
        self.host = host
        self.port = port
        self.http_port = http_port

    @property
    def info(self) -> NodeInfo:
        return NodeInfo(host=self.host, port=self.port, http_port=self.http_port)

    @property
    def pid(self) -> int:
        return self._process.pid

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    def kill(self) -> None:
        """SIGKILL the node — no drain, no goodbye (chaos path)."""
        if self._process.is_alive():
            os.kill(self._process.pid, signal.SIGKILL)
        self._process.join(timeout=10.0)

    def stop(self, *, timeout: float = 30.0) -> None:
        """Graceful stop: ask the child to drain, then join it."""
        if self._process.is_alive():
            try:
                self._conn.send("stop")
            except (BrokenPipeError, OSError):
                pass
            self._process.join(timeout=timeout)
        if self._process.is_alive():  # pragma: no cover - drain hang
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._conn.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessNode({self.node_id!r}, pid={self.pid}, alive={self.alive})"


class ThreadNode:
    """One member node running in-process (a wrapped :class:`ServerHandle`)."""

    def __init__(self, node_id: str, handle: ServerHandle):
        self.node_id = node_id
        self._handle = handle
        self.host = handle.host
        self.port = handle.port
        self.http_port = handle.http_port
        self._alive = True

    @property
    def info(self) -> NodeInfo:
        return NodeInfo(host=self.host, port=self.port, http_port=self.http_port)

    @property
    def handle(self) -> ServerHandle:
        return self._handle

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """Closest thread-mode analogue of a crash: abrupt stop, no drain."""
        self._alive = False
        self._handle.stop(drain=False)

    def stop(self, *, timeout: float = 30.0) -> None:
        self._alive = False
        self._handle.stop(drain=True, timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadNode({self.node_id!r}, alive={self.alive})"


def start_process_node(
    name: str = "", *, timeout: float = 60.0, **overrides: Any
) -> ProcessNode:
    """Fork a member node; blocks until its listeners are bound.

    ``overrides`` are :class:`~repro.serve.ServeConfig` fields (shards,
    worker_mode, tracing, ...).  The returned node's ``node_id`` is its
    final ``host:port``, matching what the router derives from the
    address — ``name`` only labels the child process.
    """
    ctx = _mp_context()
    parent_conn, child_conn = ctx.Pipe()
    config = _node_config(name or "node", **overrides)
    process = ctx.Process(
        target=_child_main,
        args=(child_conn, config),
        name=f"repro-node-{name or 'member'}",
        daemon=True,
    )
    process.start()
    child_conn.close()
    deadline = time.monotonic() + timeout
    if not parent_conn.poll(max(0.0, deadline - time.monotonic())):
        process.kill()
        raise RuntimeError(f"cluster node {name!r} did not start in time")
    ports = parent_conn.recv()
    info = NodeInfo(host=config.host, port=ports["port"], http_port=ports["http_port"])
    return ProcessNode(
        info.node_id, process, parent_conn, info.host, info.port, info.http_port
    )


def start_thread_node(
    name: str = "", *, timeout: float = 60.0, **overrides: Any
) -> ThreadNode:
    """Boot a member node on a daemon thread in this process."""
    config = _node_config(name or "node", **overrides)
    handle = start_in_thread(config, timeout=timeout)
    return ThreadNode(f"{handle.host}:{handle.port}", handle)


def start_nodes(
    count: int, *, mode: str = "process", timeout: float = 60.0, **overrides: Any
) -> list[ProcessNode | ThreadNode]:
    """Boot ``count`` member nodes of the requested mode."""
    if mode not in ("process", "thread"):
        raise ValueError(f"unknown node mode {mode!r}")
    starter = start_process_node if mode == "process" else start_thread_node
    nodes: list[ProcessNode | ThreadNode] = []
    try:
        for i in range(count):
            nodes.append(starter(f"n{i}", timeout=timeout, **overrides))
    except BaseException:
        for node in nodes:
            try:
                node.kill()
            except Exception:  # noqa: BLE001 - best-effort cleanup
                pass
        raise
    return nodes


def _mp_context():
    """Fork when the platform has it (fast, no re-import); spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")

"""End-to-end cluster smoke: router + member nodes + kill-one chaos.

``make cluster-smoke`` runs this module (``python -m repro.cluster.smoke``).
It boots real node *processes* behind a router thread (TCP + HTTP
listeners), registers the testbed fleet over the wire, checks routed
plans bit-for-bit against the direct planner, exercises the aggregated
``/stats`` + ``cluster_status`` planes, then SIGKILLs one member
mid-load and asserts the fault-isolation contract: every request is
answered (replica plan or typed error, never a hang), fallback plans
stay bit-identical, and removing the corpse from the ring leaves
bystander fleets where they were.  Exit code 0 means zero failures.

On failure the router's flight recorder is dumped to
``--flight-dump`` / ``$REPRO_FLIGHT_DUMP`` (CI uploads it as an
artifact), so the traces that crossed the router hop are preserved.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import urllib.request

import numpy as np

from ..experiments import build_network_models, tile_speed_functions
from ..machines import table2_network
from ..planner import Fleet, Planner
from ..serve.client import ServeClient, run_load
from .node import start_process_node
from .router import RouterConfig, start_router_in_thread


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.cluster.smoke")
    parser.add_argument("--requests", type=int, default=80)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--p", type=int, default=24)
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument(
        "--flight-dump", default=os.environ.get("REPRO_FLIGHT_DUMP", ""),
        help="on failure, dump the router flight recorder to this NDJSON file",
    )
    args = parser.parse_args(argv)

    models = build_network_models(table2_network(), "matmul")
    sfs = tile_speed_functions(models, args.p)
    fleet = Fleet(sfs, name=f"cluster-smoke-p{args.p}")
    reference = Planner(fleet)

    failures = 0
    members = [start_process_node(f"smoke-n{i}") for i in range(args.nodes)]
    router = start_router_in_thread(
        RouterConfig(http_port=0, probe_interval=0.1),
        [m.info for m in members],
    )
    try:
        print(
            f"cluster-smoke: router {router.host}:{router.port} "
            f"(http {router.http_port}) over "
            + ", ".join(m.node_id for m in members)
        )
        with ServeClient(router.host, router.port) as client:
            info = client.register_fleet(sfs, name=fleet.name)
            fingerprint = info["fingerprint"]
            if fingerprint != fleet.fingerprint:
                print("FAIL: wire fingerprint differs from local fingerprint")
                failures += 1
            if len(info["registered"]) < min(2, args.nodes):
                print(f"FAIL: fleet registered on {info['registered']} only")
                failures += 1

            rng = np.random.default_rng(0)
            sizes = [int(n) for n in rng.integers(1e4, int(fleet.capacity), 16)]
            for n in sizes[:4]:
                got = client.plan(fingerprint, n)
                want = reference.plan(n)
                if got["makespan"] != float(want.makespan) or got[
                    "allocation"
                ] != [int(x) for x in want.allocation]:
                    print(f"FAIL: routed plan({n}) differs from direct planner")
                    failures += 1

            load_sizes = [sizes[i % len(sizes)] for i in range(args.requests)]
            report = run_load(
                router.host, router.port, fingerprint, load_sizes,
                concurrency=args.concurrency,
            )
            print(f"cluster-smoke: load {report.summary()}")
            if report.error_count or report.ok != args.requests:
                print("FAIL: routed load saw errors or missing responses")
                failures += 1

            status = client.call("cluster_status")
            if not status["ok"] or len(status["result"]["nodes"]) != args.nodes:
                print(f"FAIL: cluster_status unexpected: {status}")
                failures += 1
            owners = status["result"]["fleets"][fingerprint]["nodes"]

            stats = client.stats()
            routed = stats["router"]["routed_primary"] + stats["router"][
                "routed_fallback"
            ]
            if routed < args.requests:
                print(f"FAIL: router routed {routed} < {args.requests} requests")
                failures += 1
            dead_nodes = [
                nid for nid, doc in stats["nodes"].items() if not doc.get("ok")
            ]
            if dead_nodes:
                print(f"FAIL: stats aggregation lost nodes {dead_nodes}")
                failures += 1

            # The kill-one window: SIGKILL the fleet's primary, keep
            # planning, demand bit-identical fallback answers.
            victim = next(m for m in members if m.node_id == owners[0])
            print(f"cluster-smoke: SIGKILL primary {victim.node_id}")
            victim.kill()
            chaos = run_load(
                router.host, router.port, fingerprint, load_sizes,
                concurrency=args.concurrency,
            )
            print(f"cluster-smoke: post-kill load {chaos.summary()}")
            answered = chaos.ok + chaos.error_count
            if answered != args.requests:
                print(f"FAIL: {answered}/{args.requests} answered after the kill")
                failures += 1
            for n in sizes[:4]:
                got = client.plan(fingerprint, n)
                want = reference.plan(n)
                if got["makespan"] != float(want.makespan) or got[
                    "allocation"
                ] != [int(x) for x in want.allocation]:
                    print(f"FAIL: fallback plan({n}) differs from direct planner")
                    failures += 1
            leave = client.call("cluster_leave", node=victim.node_id)
            if not leave["ok"]:
                print(f"FAIL: cluster_leave refused: {leave['error']}")
                failures += 1

        # The HTTP plane: router health, Prometheus metrics, stitched traces.
        base = f"http://{router.host}:{router.http_port}"
        health = json.loads(urllib.request.urlopen(f"{base}/health").read())
        if health.get("role") != "router" or health["status"] != "ok":
            print(f"FAIL: http health unexpected: {health}")
            failures += 1
        metrics = urllib.request.urlopen(f"{base}/metrics").read().decode()
        for family in ("cluster_route_primary_total", "cluster_requests_total"):
            if family not in metrics:
                print(f"FAIL: /metrics is missing {family}")
                failures += 1
        traces = json.loads(
            urllib.request.urlopen(f"{base}/debug/traces?limit=1").read()
        )
        if not traces["traces"]:
            print("FAIL: router recorded no traces")
            failures += 1
        else:
            tid = traces["traces"][0]["trace_id"]
            detail = json.loads(
                urllib.request.urlopen(f"{base}/debug/traces?id={tid}").read()
            )
            names = set()
            stack = [detail.get("spans") or {}]
            while stack:
                node = stack.pop()
                names.add(node.get("name"))
                stack.extend(node.get("children", []))
            if "cluster.attempt" not in names:
                print(f"FAIL: trace {tid} has no routing spans: {names}")
                failures += 1

        if failures and args.flight_dump:
            parent = os.path.dirname(args.flight_dump)
            if parent:
                os.makedirs(parent, exist_ok=True)
            count = router.service.recorder.dump(args.flight_dump)
            print(f"cluster-smoke: dumped {count} traces to {args.flight_dump}")
    finally:
        router.stop()
        for m in members:
            try:
                m.stop() if m.alive else m.kill()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass

    if failures:
        print(f"cluster-smoke: FAILED with {failures} failures")
        return 1
    print("cluster-smoke: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by make cluster-smoke
    sys.exit(main())

"""``python -m repro`` — alias for the :mod:`repro.cli` entry point."""

import sys

from .cli import main

sys.exit(main())

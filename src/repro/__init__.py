"""repro — functional performance models and data partitioning for
networks of heterogeneous computers.

A production-quality reproduction of:

    A. Lastovetsky and R. Reddy, "Data Partitioning with a Realistic
    Performance Model of Networks of Heterogeneous Computers",
    Proc. IPPS/IPDPS, 2004.

The package layers:

* :mod:`repro.core` — speed functions, speed bands and the geometric
  set-partitioning algorithms (the paper's contribution);
* :mod:`repro.model` — the experimental procedure that builds piecewise
  speed functions from benchmark measurements (section 3.1);
* :mod:`repro.machines` — simulated heterogeneous computers with
  cache/memory/paging regimes and workload-fluctuation bands;
* :mod:`repro.kernels` — matrix multiplication, LU factorisation and
  streaming kernels plus the striped and Variable Group Block
  distributions;
* :mod:`repro.simulate` — the parallel-execution simulator used by the
  evaluation;
* :mod:`repro.experiments` — drivers regenerating every table and figure
  of the paper's evaluation;
* :mod:`repro.obs` — dependency-free metrics registry, span tracing,
  exporters and structured logging shared by all of the above;
* :mod:`repro.adapt` — fault-tolerant adaptive execution: drift
  detection against the speed bands, migration-cost-aware replanning,
  scripted faults, and retrying dispatch for the runtime.
"""

from . import adapt, obs
from .adapt import (
    AdaptivePolicy,
    DriftDetector,
    FaultScript,
    MigrationPlan,
    Replanner,
    RetryPolicy,
    simulate_lu_adaptive,
    simulate_striped_matmul_adaptive,
)
from .core import (
    ALGORITHMS,
    SUPPORTED_OPTIONS,
    AnalyticSpeedFunction,
    CommAwareSpeedFunction,
    HierarchicalResult,
    ConstantSpeedFunction,
    PartitionOptions,
    PartitionResult,
    PiecewiseLinearSpeedFunction,
    Rectangle,
    RectanglePartition,
    SpeedBand,
    SpeedFunction,
    SpeedSurface,
    StepSpeedFunction,
    WeightedPartitionResult,
    group_speed_function,
    makespan,
    partition,
    partition_2d_fixed,
    partition_bisection,
    partition_bisection_many,
    partition_bounded,
    partition_combined,
    partition_constant,
    partition_even,
    partition_exact,
    partition_hierarchical,
    partition_modified,
    partition_rectangles,
    partition_weighted,
    single_number_speeds,
    validate_speed_functions,
)
from .exceptions import (
    ConfigurationError,
    ConvergenceError,
    InfeasiblePartitionError,
    InvalidSpeedFunctionError,
    MeasurementError,
    ReproError,
)
from .model import ModelBuildOptions, OnlineBandRefitter
from .obs import Observation
from .planner import CacheStats, Fleet, PlanCache, Planner, PlannerStats

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "SUPPORTED_OPTIONS",
    "AdaptivePolicy",
    "AnalyticSpeedFunction",
    "CacheStats",
    "CommAwareSpeedFunction",
    "HierarchicalResult",
    "ConfigurationError",
    "ConstantSpeedFunction",
    "ConvergenceError",
    "DriftDetector",
    "FaultScript",
    "Fleet",
    "InfeasiblePartitionError",
    "InvalidSpeedFunctionError",
    "MeasurementError",
    "MigrationPlan",
    "ModelBuildOptions",
    "Observation",
    "OnlineBandRefitter",
    "PartitionOptions",
    "PartitionResult",
    "PlanCache",
    "Planner",
    "PlannerStats",
    "PiecewiseLinearSpeedFunction",
    "Rectangle",
    "RectanglePartition",
    "Replanner",
    "ReproError",
    "RetryPolicy",
    "SpeedBand",
    "SpeedFunction",
    "SpeedSurface",
    "StepSpeedFunction",
    "WeightedPartitionResult",
    "__version__",
    "adapt",
    "group_speed_function",
    "makespan",
    "obs",
    "partition",
    "partition_2d_fixed",
    "partition_bisection",
    "partition_bisection_many",
    "partition_bounded",
    "partition_combined",
    "partition_constant",
    "partition_even",
    "partition_exact",
    "partition_hierarchical",
    "partition_modified",
    "partition_rectangles",
    "partition_weighted",
    "simulate_lu_adaptive",
    "simulate_striped_matmul_adaptive",
    "single_number_speeds",
    "validate_speed_functions",
]

"""Two-dimensional matrix partitioning into processor rectangles.

Section 3.1 sketches the multi-parameter extension of the set-partitioning
problem: with two free size parameters the speed functions become surfaces
and "the optimal solution ... would divide these surfaces to produce a set
of rectangular partitions ... such that the number of elements in each
partition (the area of the partition) is proportional to the speed of the
processor".  The paper leaves the construction out; this module implements
the standard column-based arrangement (the one used by the heterogeneous
ScaLAPACK line of work the paper builds on [4], [6]) driven by the
*functional* model:

1. processors are arranged into ``c ~ sqrt(p)`` columns;
2. column widths are proportional to the column's total speed, processor
   heights within a column to the processor's speed;
3. because speeds depend on the (not yet known) rectangle areas, steps 1-2
   are iterated as a fixed point, re-evaluating every speed at the current
   area, until the areas stop moving — the 2-D analogue of "speed at the
   size actually assigned".

The half-perimeter sum reported by :class:`RectanglePartition` is the
classical communication-volume proxy for 2-D matrix multiplication; the
ablation bench compares it against 1-D striping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import InfeasiblePartitionError
from .options import reject_unknown_options
from .constant_model import partition_constant
from .speed_function import SpeedFunction

__all__ = ["Rectangle", "RectanglePartition", "partition_rectangles"]


@dataclass(frozen=True)
class Rectangle:
    """A half-open rectangle ``[row0, row1) x [col0, col1)``."""

    row0: int
    row1: int
    col0: int
    col1: int

    @property
    def height(self) -> int:
        return self.row1 - self.row0

    @property
    def width(self) -> int:
        return self.col1 - self.col0

    @property
    def area(self) -> int:
        return self.height * self.width

    @property
    def half_perimeter(self) -> int:
        """``height + width`` — the MM communication-volume proxy."""
        return self.height + self.width


@dataclass
class RectanglePartition:
    """A tiling of an ``n x n`` matrix by one rectangle per processor.

    Attributes
    ----------
    n:
        Matrix dimension.
    rectangles:
        One per processor, in processor order (zero-area rectangles are
        legal for processors that received nothing).
    makespan:
        ``max_i area_i / s_i(area_i)`` under the supplied model.
    iterations:
        Fixed-point iterations performed.
    """

    n: int
    rectangles: list[Rectangle]
    makespan: float
    iterations: int

    @property
    def areas(self) -> np.ndarray:
        return np.array([r.area for r in self.rectangles], dtype=np.int64)

    @property
    def half_perimeter_sum(self) -> int:
        """Total communication-volume proxy (lower is better)."""
        return int(sum(r.half_perimeter for r in self.rectangles if r.area > 0))

    def verify_cover(self) -> None:
        """Assert the rectangles tile the matrix exactly once.

        O(n^2) bitmap check — intended for tests and small matrices.
        """
        cover = np.zeros((self.n, self.n), dtype=np.int32)
        for r in self.rectangles:
            cover[r.row0 : r.row1, r.col0 : r.col1] += 1
        if not np.all(cover == 1):
            raise InfeasiblePartitionError(
                "rectangles do not tile the matrix exactly once"
            )


def _column_assignment(shares: np.ndarray, columns: int) -> list[list[int]]:
    """Greedy balanced assignment of processors to columns.

    Processors (sorted by decreasing share) go to the currently lightest
    column that still has a slot; slots are spread as evenly as possible.
    """
    p = shares.size
    base, extra = divmod(p, columns)
    capacity = [base + (1 if j < extra else 0) for j in range(columns)]
    sums = [0.0] * columns
    members: list[list[int]] = [[] for _ in range(columns)]
    for i in np.argsort(-shares, kind="stable"):
        candidates = [j for j in range(columns) if len(members[j]) < capacity[j]]
        j = min(candidates, key=lambda k: sums[k])
        members[j].append(int(i))
        sums[j] += float(shares[i])
    return members


def partition_rectangles(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    *,
    columns: int | None = None,
    max_iterations: int = 12,
    tolerance: float = 0.01,
    **extra,
) -> RectanglePartition:
    """Partition an ``n x n`` matrix into processor rectangles.

    Parameters
    ----------
    n:
        Matrix dimension.
    speed_functions:
        One per processor; evaluated at the rectangle *area* (elements).
    columns:
        Number of processor columns; defaults to ``round(sqrt(p))``.
    max_iterations:
        Fixed-point iteration bound (areas usually stabilise in 2-4).
    tolerance:
        Stop early once no processor's area moves by more than this
        fraction between iterations.
    """
    reject_unknown_options("rectangles", extra)
    p = len(speed_functions)
    if p == 0:
        raise InfeasiblePartitionError("no processors")
    if n <= 0:
        raise InfeasiblePartitionError(f"matrix dimension must be positive, got {n}")
    if columns is None:
        columns = max(int(round(np.sqrt(p))), 1)
    if not (1 <= columns <= p):
        raise InfeasiblePartitionError(
            f"columns must be in [1, {p}], got {columns}"
        )

    # Assign processors to columns once, from speeds at the even share.
    even = n * n / p
    speeds0 = np.array(
        [float(sf.speed(min(max(even, 1.0), sf.max_size))) for sf in speed_functions]
    )
    if np.any(speeds0 <= 0):
        raise InfeasiblePartitionError("non-positive speed at the even share")
    members = _column_assignment(speeds0 / speeds0.sum(), columns)
    col_speed0 = np.array([sum(speeds0[i] for i in col) for col in members])
    widths = partition_constant(n, np.maximum(col_speed0, 1e-300)).allocation

    def lay_out(widths: np.ndarray) -> tuple[list[Rectangle], np.ndarray]:
        """Heights per column via the exact 1-D functional partitioner."""
        rects = [Rectangle(0, 0, 0, 0)] * p
        col_times = np.zeros(columns)
        col0 = 0
        for j, col in enumerate(members):
            w = int(widths[j])
            col1 = col0 + w
            if w == 0:
                col0 = col1
                continue
            col_sfs = [speed_functions[i] for i in col]
            try:
                from .partition import partition as _partition

                alloc = _partition(w * n, col_sfs).allocation
                heights = _round_heights(alloc / w, n)
            except InfeasiblePartitionError:
                # The column is wider than its processors' combined memory:
                # fill to capacity shares; the resulting (infinite) column
                # time pushes width away on the next iteration.
                caps = np.array([sf.max_size for sf in col_sfs])
                caps = np.minimum(caps, w * n)
                heights = _round_heights(n * caps / caps.sum(), n)
            row0 = 0
            worst = 0.0
            for i, h in zip(col, heights):
                h = int(h)
                rects[i] = Rectangle(row0, row0 + h, col0, col1)
                worst = max(worst, float(speed_functions[i].time(h * w)))
                row0 += h
            col_times[j] = worst
            col0 = col1
        return rects, col_times

    rectangles, col_times = lay_out(widths)
    iterations = 1
    for iterations in range(2, max_iterations + 1):
        finite = np.isfinite(col_times) & (col_times > 0)
        if not np.any(finite):
            break
        spread = (
            col_times[finite].max() / col_times[finite].min()
            if np.all(finite[widths > 0])
            else np.inf
        )
        if spread < 1.0 + max(tolerance, 1e-12):
            break
        # Move width away from slow columns: target w_j' ~ w_j / T_j,
        # damped 50/50 against the current widths to avoid oscillating
        # across paging cliffs.
        rate = np.where(
            np.isfinite(col_times) & (col_times > 0),
            widths / np.maximum(col_times, 1e-300),
            widths * 1e-6,
        )
        target = partition_constant(n, np.maximum(rate, 1e-300)).allocation
        blended = 0.5 * widths + 0.5 * target
        widths = _round_heights(blended, n)
        rectangles, col_times = lay_out(widths)

    times = [
        float(sf.time(r.area)) if r.area > 0 else 0.0
        for sf, r in zip(speed_functions, rectangles)
    ]
    return RectanglePartition(
        n=n,
        rectangles=rectangles,
        makespan=max(times) if times else 0.0,
        iterations=iterations,
    )


def _round_heights(shares: np.ndarray, total: int) -> np.ndarray:
    """Round non-negative fractional shares to integers summing to ``total``."""
    shares = np.maximum(np.asarray(shares, dtype=float), 0.0)
    if shares.sum() <= 0:
        out = np.zeros(shares.size, dtype=np.int64)
        out[0] = total
        return out
    shares = shares * (total / shares.sum())
    out = np.floor(shares).astype(np.int64)
    remainder = shares - out
    deficit = int(total - out.sum())
    for i in np.argsort(-remainder, kind="stable")[:deficit]:
        out[i] += 1
    return out

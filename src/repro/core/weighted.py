"""Weighted-set partitioning (the general problem of [20], heuristic).

The general formulation partitions a set of ``n`` elements *with weights*
``w_j`` so that the sum of weights per partition is proportional to the
(owning processor's) speed, which itself depends on the partition size.
Unlike the unit-weight variant solved exactly by the geometric algorithms,
the weighted variant contains bin-packing-style decisions and is NP-hard in
general, so this module provides a quality heuristic:

1. **LPT seeding** — elements sorted by decreasing weight are assigned one
   at a time to the processor whose finish time after receiving the element
   is smallest.  Finish time of processor ``i`` holding element set ``S``:
   ``W(S) / s_i(|S|)`` — the weight sum is the work, while the *cardinality*
   drives the memory footprint and hence the functional speed.
2. **Local search** — bounded passes of single-element moves from the
   current makespan processor to any processor that strictly reduces the
   makespan.

For unit weights the heuristic coincides with a (non-geometric) functional
partitioner and is validated against :func:`~repro.core.exact.partition_exact`
in the test-suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import InfeasiblePartitionError
from .options import reject_unknown_options
from .speed_function import SpeedFunction

__all__ = ["WeightedPartitionResult", "partition_weighted"]


@dataclass
class WeightedPartitionResult:
    """Outcome of weighted-set partitioning.

    Attributes
    ----------
    assignment:
        ``assignment[j]`` is the processor owning element ``j``.
    counts:
        Number of elements per processor.
    loads:
        Sum of weights per processor.
    makespan:
        ``max_i loads[i] / s_i(counts[i])``.
    moves:
        Number of improving moves applied by the local search.
    """

    assignment: np.ndarray
    counts: np.ndarray
    loads: np.ndarray
    makespan: float
    moves: int = 0


def _finish_time(sf: SpeedFunction, load: float, count: int) -> float:
    if count == 0:
        return 0.0
    if count > sf.max_size:
        return float("inf")
    s = float(sf.speed(count))
    return load / s if s > 0 else float("inf")


def partition_weighted(
    weights: Sequence[float],
    speed_functions: Sequence[SpeedFunction],
    *,
    local_search_passes: int = 4,
    **extra,
) -> WeightedPartitionResult:
    """Partition weighted elements over processors with functional speeds.

    Parameters
    ----------
    weights:
        Positive element weights (the work each element costs).
    speed_functions:
        One speed function per processor; ``max_size`` bounds the number of
        elements a processor may hold.
    local_search_passes:
        Upper bound on improvement sweeps after the LPT seeding.
    """
    reject_unknown_options("weighted", extra)
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1:
        raise InfeasiblePartitionError("weights must be a 1-D sequence")
    if np.any(w <= 0):
        raise InfeasiblePartitionError("all weights must be positive")
    p = len(speed_functions)
    if p == 0:
        raise InfeasiblePartitionError("no processors")
    capacity = sum(min(sf.max_size, w.size) for sf in speed_functions)
    if capacity < w.size:
        raise InfeasiblePartitionError(
            f"{w.size} elements exceed the combined element bounds ({capacity:g})"
        )

    order = np.argsort(-w, kind="stable")
    assignment = np.full(w.size, -1, dtype=np.int64)
    counts = np.zeros(p, dtype=np.int64)
    loads = np.zeros(p, dtype=float)

    # LPT seeding: heap keyed by the finish time if the next element landed
    # on that processor.  Weights differ element to element, so the key is
    # recomputed lazily against the element actually being placed.
    for j in order:
        best_i, best_t = -1, float("inf")
        for i, sf in enumerate(speed_functions):
            if counts[i] + 1 > sf.max_size:
                continue
            t = _finish_time(sf, loads[i] + w[j], int(counts[i]) + 1)
            if t < best_t:
                best_i, best_t = i, t
        if best_i < 0:
            raise InfeasiblePartitionError(
                "element bounds prevent placing all elements"
            )
        assignment[j] = best_i
        counts[best_i] += 1
        loads[best_i] += w[j]

    # Local search: move single elements off the critical processor.
    moves = 0
    for _ in range(local_search_passes):
        times = np.array(
            [
                _finish_time(sf, loads[i], int(counts[i]))
                for i, sf in enumerate(speed_functions)
            ]
        )
        crit = int(np.argmax(times))
        crit_time = float(times[crit])
        improved = False
        members = np.nonzero(assignment == crit)[0]
        # Try moving the lightest elements first: they are the most likely
        # to fit under another processor's slack.
        for j in members[np.argsort(w[members])]:
            for i, sf in enumerate(speed_functions):
                if i == crit or counts[i] + 1 > sf.max_size:
                    continue
                new_src = _finish_time(
                    speed_functions[crit], loads[crit] - w[j], int(counts[crit]) - 1
                )
                new_dst = _finish_time(sf, loads[i] + w[j], int(counts[i]) + 1)
                others = max(
                    (float(times[k]) for k in range(p) if k not in (i, crit)),
                    default=0.0,
                )
                if max(new_src, new_dst, others) < crit_time * (1 - 1e-12):
                    assignment[j] = i
                    counts[crit] -= 1
                    counts[i] += 1
                    loads[crit] -= w[j]
                    loads[i] += w[j]
                    moves += 1
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break

    makespan = float(
        max(
            _finish_time(sf, loads[i], int(counts[i]))
            for i, sf in enumerate(speed_functions)
        )
    )
    return WeightedPartitionResult(
        assignment=assignment,
        counts=counts,
        loads=loads,
        makespan=makespan,
        moves=moves,
    )

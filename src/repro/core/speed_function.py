"""Speed functions: the functional performance model of a processor.

The paper's central idea is to represent the speed of a processor not by a
single positive number but by a *continuous and relatively smooth function of
the problem size* ``s = f(x)``, where the problem size ``x`` is the amount of
data stored and processed by the algorithm (e.g. ``3 * n**2`` elements for a
dense ``n x n`` matrix multiplication).

The geometric partitioning algorithms of section 2 require one structural
property of every speed graph: **any straight line through the origin must
intersect the graph in exactly one point**.  This is equivalent to the ray
slope

.. math::  g(x) = s(x) / x

being strictly decreasing on the domain.  All concrete speed functions in
this module maintain (and can validate) that invariant.

Three concrete representations are provided:

:class:`ConstantSpeedFunction`
    The classical single-number model used by every baseline in the paper.

:class:`PiecewiseLinearSpeedFunction`
    The representation produced by the model-building procedure of
    section 3.1 (piecewise linear approximation through experimentally
    obtained points).  This is the workhorse of the library.

:class:`AnalyticSpeedFunction`
    A thin adapter around an arbitrary callable, used mostly by the
    synthetic machine models in :mod:`repro.machines`.

Units
-----
Speed is expressed in *elements per second*: the number of set elements the
processor retires per second when it has been assigned ``x`` elements.  The
execution time of an allocation is therefore ``t(x) = x / s(x)``.  Helpers
for converting to/from MFlops for specific kernels live in
:mod:`repro.kernels.flops`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence

import numpy as np

from ..exceptions import InvalidSpeedFunctionError

__all__ = [
    "KnotRow",
    "SpeedFunction",
    "ConstantSpeedFunction",
    "PiecewiseLinearSpeedFunction",
    "AnalyticSpeedFunction",
    "validate_speed_functions",
]


@dataclass(frozen=True)
class KnotRow:
    """Lowered form of one speed function for the vectorised pack.

    The compilation protocol (:meth:`SpeedFunction.as_knots`) reduces every
    model to a piecewise-linear *compute* curve through ``(sizes, speeds)``
    knots plus three orthogonal decorations the pack evaluates on top:

    * ``scale`` — speeds multiplied by a constant.  Queried rays divide
      their slope by it instead of touching the knot arrays, which is what
      makes ``O(p)`` fleet rescaling possible.
    * ``alpha`` / ``beta`` — a per-run start-up latency and per-element
      transfer cost baked into the *effective* speed ``x / t(x)`` with
      ``t(x) = x/s(x) + alpha + beta*x`` (the comm-aware model).
    * ``x_cap`` / ``s_cap`` — a truncation of the domain at ``x_cap``
      (strictly below the last knot), with ``s_cap`` the compute speed
      there; ray intersections clamp to the cap and speeds freeze at it.

    ``drops`` marks segments that represent a vertical speed drop of a
    step model (the right knot sits one ulp past the left one); the pack
    zeroes their line parameters so a ray crossing the drop lands exactly
    on its left boundary.

    ``exact`` declares that the pack's evaluation of this row is
    bit-identical to the object's own ``speed``/``intersect_ray``/``time``;
    rows with communication terms (closed-form segment solve versus the
    object's bisection) or folded nested scalings are only identical to
    within the verifier's 1e-9 class.
    """

    sizes: np.ndarray
    speeds: np.ndarray
    drops: np.ndarray | None = None
    alpha: float = 0.0
    beta: float = 0.0
    scale: float = 1.0
    x_cap: float | None = None
    s_cap: float | None = None
    exact: bool = True

    @property
    def num_knots(self) -> int:
        return int(self.sizes.size)

#: Relative tolerance used when validating the strict decrease of ``g``.
_G_MONOTONE_RTOL = 1e-12


class SpeedFunction(ABC):
    """Abstract speed-versus-problem-size function of one processor.

    Subclasses must provide :meth:`speed` and :meth:`intersect_ray` and a
    :attr:`max_size`.  Everything else (execution time, ray slope ``g``) is
    derived.
    """

    #: Largest problem size the processor can hold (the memory bound ``b_i``
    #: of the general partitioning problem).  ``math.inf`` when unbounded.
    max_size: float = math.inf

    # ------------------------------------------------------------------
    # Primitive interface
    # ------------------------------------------------------------------
    @abstractmethod
    def speed(self, x):
        """Processor speed (elements/second) at problem size ``x``.

        Accepts scalars or NumPy arrays and is vectorised.  ``x`` values
        beyond :attr:`max_size` are clamped to the boundary speed; callers
        that care about the bound should consult :meth:`time`, which returns
        ``inf`` beyond the bound.
        """

    @abstractmethod
    def intersect_ray(self, slope: float) -> float:
        """Size coordinate of the intersection with the ray ``y = slope*x``.

        Returns the unique ``x > 0`` with ``s(x) = slope * x``, i.e. the
        point of the speed graph lying on the straight line through the
        origin with the given (tangent) slope.  If the ray passes below the
        end of the graph (``slope < g(max_size)``) the result is clamped to
        :attr:`max_size`, which is exactly how the memory bound of the
        general problem manifests geometrically.

        ``slope`` must be strictly positive.
        """

    # ------------------------------------------------------------------
    # Derived interface
    # ------------------------------------------------------------------
    def time(self, x):
        """Execution time of an ``x``-element task: ``x / s(x)``.

        Vectorised.  ``time(0) == 0`` and ``time(x) == inf`` for ``x``
        beyond :attr:`max_size` (the task does not fit at all).
        """
        x_arr = np.asarray(x, dtype=float)
        s = np.asarray(self.speed(np.minimum(x_arr, self.max_size)), dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(x_arr > 0, x_arr / s, 0.0)
        t = np.where(x_arr > self.max_size, math.inf, t)
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(t)
        return t

    def g(self, x):
        """Ray slope ``g(x) = s(x)/x`` — strictly decreasing by assumption.

        ``g`` is the reciprocal of the per-element execution time; the
        optimal allocation corresponds to all processors operating at the
        same ``g`` value (one straight line through the origin).
        """
        x_arr = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(x_arr > 0, self.speed(x_arr) / x_arr, math.inf)
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(out)
        return out

    def scaled(self, factor: float) -> "SpeedFunction":
        """Return a copy of this function with speeds multiplied by ``factor``.

        Scaling speeds by a positive constant preserves the
        single-intersection invariant, so the result is always valid.
        """
        if factor <= 0:
            raise InvalidSpeedFunctionError(
                f"scale factor must be positive, got {factor!r}"
            )
        return _ScaledSpeedFunction(self, factor)

    # ------------------------------------------------------------------
    # Compilation protocol
    # ------------------------------------------------------------------
    def as_knots(self) -> KnotRow | None:
        """Lower this model to a :class:`KnotRow` for the vectorised pack.

        Returns ``None`` when the model cannot be compiled (the default:
        opaque analytic callables and unknown subclasses), in which case
        :func:`~repro.core.vectorized.pack_speed_functions` falls back to
        the per-object path and records the blocking class on the
        ``core.pack.fallback`` counter.
        """
        return None

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def check_single_intersection(self, sizes: Iterable[float]) -> None:
        """Verify that ``g`` is strictly decreasing on the given sample sizes.

        Raises :class:`InvalidSpeedFunctionError` on violation.  Concrete
        classes with exact structure (piecewise linear) override this with
        an exact check; this generic version samples.
        """
        xs = np.asarray(sorted(set(float(s) for s in sizes)), dtype=float)
        xs = xs[(xs > 0) & (xs <= self.max_size)]
        if xs.size < 2:
            return
        gs = self.g(xs)
        bad = np.nonzero(np.diff(gs) >= -_G_MONOTONE_RTOL * np.abs(gs[:-1]))[0]
        if bad.size:
            k = int(bad[0])
            raise InvalidSpeedFunctionError(
                "g(x)=s(x)/x is not strictly decreasing between "
                f"x={xs[k]:g} (g={gs[k]:g}) and x={xs[k + 1]:g} (g={gs[k + 1]:g})"
            )


class _ScaledSpeedFunction(SpeedFunction):
    """A speed function multiplied by a positive constant (internal)."""

    def __init__(self, base: SpeedFunction, factor: float):
        self._base = base
        self._factor = float(factor)
        self.max_size = base.max_size

    def speed(self, x):
        return self._factor * np.asarray(self._base.speed(x), dtype=float)

    def intersect_ray(self, slope: float) -> float:
        # s_scaled(x) = f * s(x); f*s(x) = c*x  <=>  s(x) = (c/f)*x.
        return self._base.intersect_ray(slope / self._factor)

    def as_knots(self) -> KnotRow | None:
        row = self._base.as_knots()
        if row is None:
            return None
        # Nested scalings fold into one product; the per-object path
        # divides the query slope twice, so folding is only ulp-equal.
        return replace(
            row,
            scale=row.scale * self._factor,
            exact=row.exact and row.scale == 1.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self._base!r}.scaled({self._factor:g})"


class ConstantSpeedFunction(SpeedFunction):
    """The single-number performance model: ``s(x) = s0`` for every size.

    This is the model used by every prior work the paper compares against
    (normalised processor speed, normalised cycle time, etc.).  ``g(x) =
    s0/x`` is strictly decreasing, so the constant model is a valid — if
    inaccurate — member of the functional family, and the geometric
    algorithms reduce to the classical proportional partitioning when every
    processor uses it.
    """

    def __init__(self, speed: float, max_size: float = math.inf):
        if not (speed > 0) or not math.isfinite(speed):
            raise InvalidSpeedFunctionError(
                f"constant speed must be a positive finite number, got {speed!r}"
            )
        if not (max_size > 0):
            raise InvalidSpeedFunctionError(
                f"max_size must be positive, got {max_size!r}"
            )
        self._speed = float(speed)
        self.max_size = float(max_size)

    @property
    def value(self) -> float:
        """The single speed number."""
        return self._speed

    def speed(self, x):
        x_arr = np.asarray(x, dtype=float)
        out = np.full_like(x_arr, self._speed, dtype=float)
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(out)
        return out

    def intersect_ray(self, slope: float) -> float:
        if slope <= 0:
            raise ValueError(f"ray slope must be positive, got {slope!r}")
        return min(self._speed / slope, self.max_size)

    def as_knots(self) -> KnotRow:
        # A flat two-knot segment: rays steeper than the first knot use the
        # constant extension s0/c, shallower ones clip to [x0, max_size] —
        # together reproducing ``min(s0/c, max_size)`` exactly.  The first
        # knot sits at max_size/2 (or 1.0 when unbounded) purely to give the
        # segment positive width.
        hi = self.max_size
        lo = 1.0 if math.isinf(hi) else hi * 0.5
        return KnotRow(
            sizes=np.array([lo, hi]),
            speeds=np.array([self._speed, self._speed]),
        )

    def __repr__(self) -> str:
        if math.isinf(self.max_size):
            return f"ConstantSpeedFunction({self._speed:g})"
        return f"ConstantSpeedFunction({self._speed:g}, max_size={self.max_size:g})"


class PiecewiseLinearSpeedFunction(SpeedFunction):
    """Piecewise-linear speed function through knots ``(x_k, s_k)``.

    This is the representation built by the experimental procedure of
    section 3.1 (figure 14 / figure 20): a handful of benchmarked points
    joined by straight segments.

    Behaviour outside the knot range:

    * below the first knot ``x_0`` the speed is extended as the constant
      ``s_0`` — the paper benchmarks ``x_0 = a`` as the problem that fits in
      the highest cache level, and smaller problems run at essentially the
      same speed.  The extension keeps ``g`` strictly decreasing down to 0.
    * above the last knot ``x_m`` the function is undefined; ``x_m`` acts as
      the processor's memory bound (:attr:`max_size`).  The paper chooses
      ``b = x_m`` so large that the speed is "practically equal to zero".

    Validity requirements (checked at construction unless ``validate=False``):

    * knot sizes strictly increasing and positive;
    * speeds positive except that the *last* knot may have speed zero (the
      paper pins ``s(b) = 0``);
    * every segment, extended to ``x = 0``, has a non-negative intercept
      (i.e. the speed grows sublinearly), and the ray slope ``g`` strictly
      decreases from knot to knot.  Together these guarantee the
      single-intersection property for every ray through the origin.
    """

    def __init__(
        self,
        sizes: Sequence[float],
        speeds: Sequence[float],
        *,
        validate: bool = True,
    ):
        xs = np.asarray(sizes, dtype=float)
        ss = np.asarray(speeds, dtype=float)
        if xs.ndim != 1 or ss.ndim != 1 or xs.size != ss.size:
            raise InvalidSpeedFunctionError(
                "sizes and speeds must be 1-D sequences of equal length"
            )
        if xs.size < 1:
            raise InvalidSpeedFunctionError("at least one knot is required")
        if validate:
            self._validate_knots(xs, ss)
        self._xs = xs
        self._ss = ss
        self.max_size = float(xs[-1])
        # Ray slope at each knot, used to binary-search ray intersections.
        with np.errstate(divide="ignore"):
            self._gs = ss / xs
        # Cached negation: np.searchsorted needs ascending order and the
        # per-call negation would dominate the partitioner's running time.
        self._neg_gs = -self._gs

    # -- construction helpers -----------------------------------------
    @classmethod
    def from_points(
        cls, points: Iterable[tuple[float, float]], **kwargs
    ) -> "PiecewiseLinearSpeedFunction":
        """Build from an iterable of ``(size, speed)`` pairs (sorted by size)."""
        pts = sorted((float(a), float(b)) for a, b in points)
        if not pts:
            raise InvalidSpeedFunctionError("at least one point is required")
        xs, ss = zip(*pts)
        return cls(xs, ss, **kwargs)

    @staticmethod
    def _validate_knots(xs: np.ndarray, ss: np.ndarray) -> None:
        if np.any(xs <= 0):
            raise InvalidSpeedFunctionError("knot sizes must be positive")
        if np.any(np.diff(xs) <= 0):
            raise InvalidSpeedFunctionError("knot sizes must be strictly increasing")
        if np.any(ss[:-1] <= 0) or ss[-1] < 0:
            raise InvalidSpeedFunctionError(
                "knot speeds must be positive (the last knot may be zero)"
            )
        if xs.size == 1:
            return
        g = ss / xs
        if np.any(np.diff(g) >= 0):
            k = int(np.nonzero(np.diff(g) >= 0)[0][0])
            raise InvalidSpeedFunctionError(
                "ray slope g(x)=s(x)/x must strictly decrease across knots; "
                f"violated between x={xs[k]:g} and x={xs[k + 1]:g} "
                f"(g: {g[k]:g} -> {g[k + 1]:g}). A straight line through the "
                "origin would cross the graph more than once."
            )
        # Segment intercepts: s(x) = a + b*x with a >= 0 guarantees that g is
        # non-increasing *within* each segment as well.
        slopes = np.diff(ss) / np.diff(xs)
        intercepts = ss[:-1] - slopes * xs[:-1]
        if np.any(intercepts < -1e-9 * np.maximum(ss[:-1], 1.0)):
            k = int(np.nonzero(intercepts < -1e-9 * np.maximum(ss[:-1], 1.0))[0][0])
            raise InvalidSpeedFunctionError(
                f"segment [{xs[k]:g}, {xs[k + 1]:g}] extended to x=0 has a "
                f"negative intercept ({intercepts[k]:g}); the speed would grow "
                "superlinearly and a ray could cross the graph twice."
            )

    # -- accessors ------------------------------------------------------
    @property
    def knot_sizes(self) -> np.ndarray:
        """Knot size coordinates (read-only view)."""
        v = self._xs.view()
        v.flags.writeable = False
        return v

    @property
    def knot_speeds(self) -> np.ndarray:
        """Knot speed coordinates (read-only view)."""
        v = self._ss.view()
        v.flags.writeable = False
        return v

    @property
    def num_knots(self) -> int:
        """Number of knots (experimentally obtained points)."""
        return int(self._xs.size)

    # -- SpeedFunction interface ----------------------------------------
    def speed(self, x):
        x_arr = np.asarray(x, dtype=float)
        out = np.interp(x_arr, self._xs, self._ss)
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(out)
        return out

    def intersect_ray(self, slope: float) -> float:
        if slope <= 0:
            raise ValueError(f"ray slope must be positive, got {slope!r}")
        xs, ss, gs = self._xs, self._ss, self._gs
        # Region below the first knot: constant extension s(x) = s_0, so the
        # intersection with y = slope*x is x = s_0/slope.
        if slope >= gs[0]:
            return float(ss[0] / slope)
        # Ray passes below the end of the graph: clamp to the memory bound.
        if slope <= gs[-1]:
            return float(xs[-1])
        # Binary search for the segment with g(x_k) >= slope >= g(x_{k+1}).
        # self._gs is strictly decreasing, so search on the reversed array.
        k = int(np.searchsorted(self._neg_gs, -slope, side="right")) - 1
        k = max(0, min(k, xs.size - 2))
        x0, x1 = xs[k], xs[k + 1]
        s0, s1 = ss[k], ss[k + 1]
        seg_slope = (s1 - s0) / (x1 - x0)
        intercept = s0 - seg_slope * x0
        denom = slope - seg_slope
        if denom <= 0:
            # Degenerate segment with g constant (intercept == 0): the whole
            # segment lies on the ray; return its right endpoint for a
            # consistent "largest x with g(x) >= slope" semantics.
            return float(x1)
        x = intercept / denom
        return float(min(max(x, x0), x1))

    def check_single_intersection(self, sizes: Iterable[float] = ()) -> None:
        """Exact validation using the knot structure (``sizes`` ignored)."""
        self._validate_knots(self._xs, self._ss)

    def as_knots(self) -> KnotRow:
        return KnotRow(sizes=self._xs, speeds=self._ss)

    def __repr__(self) -> str:
        return (
            f"PiecewiseLinearSpeedFunction({self.num_knots} knots, "
            f"x in [{self._xs[0]:g}, {self._xs[-1]:g}], "
            f"s in [{self._ss.min():g}, {self._ss.max():g}])"
        )


class AnalyticSpeedFunction(SpeedFunction):
    """Speed function defined by an arbitrary callable ``s(x)``.

    Used by the synthetic machine models.  Ray intersections are found by
    bisection on ``h(x) = s(x) - slope*x``, which is valid because the
    single-intersection assumption makes ``g`` monotone.

    Parameters
    ----------
    func:
        Vectorised callable returning the speed at problem size ``x``.
        Must be positive on ``(0, max_size)``.
    max_size:
        Memory bound; must be finite so bisection has a bracket.
    validate_sizes:
        Optional sample grid on which the ``g``-monotonicity is checked at
        construction time.
    """

    def __init__(
        self,
        func: Callable[[np.ndarray], np.ndarray],
        max_size: float,
        *,
        validate_sizes: Iterable[float] | None = None,
    ):
        if not (max_size > 0) or not math.isfinite(max_size):
            raise InvalidSpeedFunctionError(
                f"max_size must be a positive finite number, got {max_size!r}"
            )
        self._func = func
        self.max_size = float(max_size)
        if validate_sizes is not None:
            self.check_single_intersection(validate_sizes)

    def speed(self, x):
        x_arr = np.minimum(np.asarray(x, dtype=float), self.max_size)
        out = np.asarray(self._func(x_arr), dtype=float)
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(out)
        return out

    def intersect_ray(self, slope: float) -> float:
        if slope <= 0:
            raise ValueError(f"ray slope must be positive, got {slope!r}")
        hi = self.max_size
        if self.g(hi) >= slope:
            return float(hi)
        # Find a positive lower bracket where g(lo) >= slope.  g(x) -> s/x
        # grows without bound as x -> 0 provided s stays bounded away from 0
        # near the origin, so geometric shrinking terminates.
        lo = hi
        for _ in range(200):
            lo *= 0.5
            if self.g(lo) >= slope:
                break
        else:  # pragma: no cover - pathological function
            raise InvalidSpeedFunctionError(
                "could not bracket the ray intersection; speed function "
                "appears to vanish near the origin"
            )
        # Bisection on the monotone g.  Return the inner endpoint: it keeps
        # g(lo) >= slope by construction (sup semantics), while the midpoint
        # can overshoot by half the final bracket width.
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.g(mid) >= slope:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-12 * max(1.0, hi):
                break
        return float(lo)

    def tabulate(self, sizes: Sequence[float]) -> PiecewiseLinearSpeedFunction:
        """Sample this function into a piecewise-linear approximation."""
        xs = np.asarray(sorted(float(s) for s in sizes), dtype=float)
        return PiecewiseLinearSpeedFunction(xs, self.speed(xs))


def validate_speed_functions(
    speed_functions: Sequence[SpeedFunction], *, sample_sizes: Iterable[float] = ()
) -> None:
    """Validate a collection of speed functions for use in partitioning.

    Checks that the sequence is non-empty and that each member satisfies the
    single-intersection invariant (exactly for piecewise-linear functions,
    on ``sample_sizes`` otherwise).
    """
    if len(speed_functions) == 0:
        raise InvalidSpeedFunctionError("at least one speed function is required")
    for i, sf in enumerate(speed_functions):
        if not isinstance(sf, SpeedFunction):
            raise InvalidSpeedFunctionError(
                f"speed_functions[{i}] is not a SpeedFunction: {sf!r}"
            )
        sf.check_single_intersection(sample_sizes)

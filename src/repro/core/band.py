"""Speed bands: workload-fluctuation envelopes around a speed function.

Section 1 of the paper argues that on general-purpose networks a computer's
speed fluctuates with the transient background load, so the dependence of
speed on problem size is naturally a *band* of curves rather than a single
curve.  The paper's experimental observations, all reproduced by this
module:

* highly integrated computers show bands ~40 % wide (of the maximum speed)
  at small problem sizes, declining *close to linearly* to ~5-7 % at the
  largest solvable size (figure 2);
* weakly integrated computers stay within ~5-7 % throughout;
* adding a heavy external load **shifts the whole band down without changing
  its width**.

A band is represented as a midline :class:`~repro.core.speed_function.
SpeedFunction` plus a relative-width schedule ``w(x)``; the lower and upper
envelopes are ``mid(x) * (1 -/+ w(x)/2)``.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .speed_function import PiecewiseLinearSpeedFunction, SpeedFunction

__all__ = ["SpeedBand", "linear_width_schedule", "constant_width_schedule"]


def linear_width_schedule(
    width_small: float,
    width_large: float,
    size_small: float,
    size_large: float,
) -> Callable[[np.ndarray], np.ndarray]:
    """Relative band width declining linearly with problem size.

    The paper observes a "close to linear decrease in the width of the
    performance band as the execution time increases"; execution time grows
    with problem size, so the schedule interpolates linearly between
    ``width_small`` at ``size_small`` and ``width_large`` at ``size_large``
    and clamps outside.

    Widths are fractions of the midline speed (e.g. ``0.40`` for the 40 %
    bands of figure 2).
    """
    if not (0 <= width_large <= width_small < 1):
        raise ConfigurationError(
            "expected 0 <= width_large <= width_small < 1, got "
            f"{width_small!r}, {width_large!r}"
        )
    if not (0 < size_small < size_large):
        raise ConfigurationError(
            f"expected 0 < size_small < size_large, got {size_small!r}, {size_large!r}"
        )

    def schedule(x):
        frac = (np.asarray(x, dtype=float) - size_small) / (size_large - size_small)
        return width_small + (width_large - width_small) * np.clip(frac, 0.0, 1.0)

    return schedule


def constant_width_schedule(width: float) -> Callable[[np.ndarray], np.ndarray]:
    """Constant relative width (weakly integrated computers, ~5-7 %)."""
    if not (0 <= width < 1):
        raise ConfigurationError(f"width must be in [0, 1), got {width!r}")

    def schedule(x):
        return np.full_like(np.asarray(x, dtype=float), width)

    return schedule


class SpeedBand:
    """A performance band: midline speed function plus a width schedule.

    Parameters
    ----------
    midline:
        The representative speed function (what a run under typical load
        would exhibit).
    width:
        Callable mapping problem size to the *relative full width* of the
        band (fraction of the midline speed), or a constant fraction.
    """

    def __init__(
        self,
        midline: SpeedFunction,
        width: Callable[[np.ndarray], np.ndarray] | float = 0.0,
    ):
        if isinstance(width, (int, float)):
            width = constant_width_schedule(float(width))
        self._mid = midline
        self._width = width

    # -- basic accessors -------------------------------------------------
    @property
    def midline(self) -> SpeedFunction:
        """The midline speed function."""
        return self._mid

    @property
    def max_size(self) -> float:
        """Memory bound inherited from the midline."""
        return self._mid.max_size

    def width_at(self, x):
        """Relative full band width at problem size ``x``."""
        return self._width(x)

    def lower_speed(self, x):
        """Lower envelope speed at ``x``."""
        x_arr = np.asarray(x, dtype=float)
        return self._mid.speed(x_arr) * (1.0 - 0.5 * np.asarray(self._width(x_arr)))

    def upper_speed(self, x):
        """Upper envelope speed at ``x``."""
        x_arr = np.asarray(x, dtype=float)
        return self._mid.speed(x_arr) * (1.0 + 0.5 * np.asarray(self._width(x_arr)))

    def contains(self, x: float, speed: float, *, slack: float = 0.0) -> bool:
        """True if the observation ``(x, speed)`` lies inside the band.

        ``slack`` widens the band relatively on both sides (useful when
        checking noisy measurements against a fitted band).
        """
        lo = float(self.lower_speed(x)) * (1.0 - slack)
        hi = float(self.upper_speed(x)) * (1.0 + slack)
        return lo <= speed <= hi

    # -- materialisation --------------------------------------------------
    def _grid(self, grid: Sequence[float] | None) -> np.ndarray:
        if grid is not None:
            return np.asarray(sorted(grid), dtype=float)
        if isinstance(self._mid, PiecewiseLinearSpeedFunction):
            return np.asarray(self._mid.knot_sizes, dtype=float)
        if not math.isfinite(self.max_size):
            raise ConfigurationError(
                "cannot tabulate a band over an unbounded midline without "
                "an explicit grid"
            )
        return np.geomspace(max(self.max_size * 1e-6, 1.0), self.max_size, 64)

    def lower_function(
        self, grid: Sequence[float] | None = None
    ) -> PiecewiseLinearSpeedFunction:
        """Lower envelope materialised as a piecewise-linear speed function."""
        xs = self._grid(grid)
        return PiecewiseLinearSpeedFunction(xs, np.maximum(self.lower_speed(xs), 0.0))

    def upper_function(
        self, grid: Sequence[float] | None = None
    ) -> PiecewiseLinearSpeedFunction:
        """Upper envelope materialised as a piecewise-linear speed function."""
        xs = self._grid(grid)
        return PiecewiseLinearSpeedFunction(xs, self.upper_speed(xs))

    # -- stochastic behaviour ---------------------------------------------
    def sample(
        self,
        rng: np.random.Generator,
        grid: Sequence[float] | None = None,
    ) -> PiecewiseLinearSpeedFunction:
        """Draw one plausible run-time speed function from the band.

        A single blend coordinate ``lam ~ U(0, 1)`` positions the whole
        curve inside the band: the transient load during one run is heavily
        autocorrelated, so the paper treats a run as tracing *one* curve of
        the band rather than bouncing between envelopes.
        """
        lam = float(rng.uniform(0.0, 1.0))
        xs = self._grid(grid)
        mid = self._mid.speed(xs)
        w = np.asarray(self._width(xs))
        speeds = mid * (1.0 + (lam - 0.5) * w)
        return PiecewiseLinearSpeedFunction(xs, np.maximum(speeds, 0.0))

    def shifted(
        self, delta_speed: float, grid: Sequence[float] | None = None
    ) -> "SpeedBand":
        """Band under an additional heavy load: shifted down, same width.

        Subtracts the absolute amount ``delta_speed`` from the midline
        (clamping at a small positive floor) while keeping the *absolute*
        band width unchanged — the behaviour the paper reports for machines
        already engaged in heavy computation.  The shifted midline is
        re-validated; unrealistic shifts that would destroy the
        single-intersection property raise
        :class:`~repro.exceptions.InvalidSpeedFunctionError`.
        """
        if delta_speed < 0:
            raise ConfigurationError(
                f"delta_speed must be non-negative, got {delta_speed!r}"
            )
        xs = self._grid(grid)
        old_mid = self._mid.speed(xs)
        floor = 1e-6 * float(np.max(old_mid))
        new_mid_vals = np.maximum(old_mid - delta_speed, floor)
        # Flooring can leave small-size knots *below* the ray of their right
        # neighbour (g would increase).  Repair right-to-left by raising a
        # knot just above its neighbour's ray — the minimal change that
        # restores the single-intersection invariant while keeping the
        # large-size behaviour exact.
        for k in range(xs.size - 2, -1, -1):
            lower_bound = new_mid_vals[k + 1] * xs[k] / xs[k + 1] * (1.0 + 1e-9)
            if new_mid_vals[k] <= lower_bound:
                new_mid_vals[k] = lower_bound
        new_mid = PiecewiseLinearSpeedFunction(xs, new_mid_vals)
        old_width = self._width

        def absolute_preserving_width(x, _old=old_width, _mid=self._mid, _new=new_mid):
            # Old absolute width divided by the new midline speed.
            x_arr = np.asarray(x, dtype=float)
            abs_width = np.asarray(_old(x_arr)) * _mid.speed(x_arr)
            new_speed = np.maximum(_new.speed(x_arr), 1e-300)
            return np.clip(abs_width / new_speed, 0.0, 0.999)

        return SpeedBand(new_mid, absolute_preserving_width)

    def __repr__(self) -> str:
        return f"SpeedBand(midline={self._mid!r})"

"""Result type shared by all partitioning algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .geometry import SlopeRegion

__all__ = ["PartitionResult"]


@dataclass
class PartitionResult:
    """Outcome of a set-partitioning algorithm.

    Attributes
    ----------
    allocation:
        Integer number of elements assigned to each processor; sums to the
        requested problem size ``n``.
    makespan:
        Parallel execution time of the allocation under the model,
        ``max_i x_i / s_i(x_i)`` (seconds).
    algorithm:
        Name of the algorithm that produced the result (``"constant"``,
        ``"bisection"``, ``"modified"``, ``"combined"``, ``"exact"``, ...).
    iterations:
        Number of bisection (or equivalent) steps performed.
    intersections:
        Number of ray-graph intersection evaluations — the dominant cost
        unit of the geometric algorithms (each step costs ``O(p)`` of
        these, per the paper's complexity accounting).
    slope:
        Tangent slope of the final line through the origin, when the
        algorithm is line-based; ``None`` otherwise.
    trace:
        Optional per-iteration record of ``(slope, total_allocation)``
        pairs, populated when the algorithm is run with ``keep_trace=True``.
        Used by the ablation benchmarks to reproduce the behaviour shown in
        figures 8, 10 and 11 of the paper.
    region:
        Final converged :class:`~repro.core.geometry.SlopeRegion` of the
        line-based algorithms — the reusable bracket a later query for a
        nearby problem size can warm-start from (see
        :func:`~repro.core.geometry.ensure_bracket` and
        :mod:`repro.planner`); ``None`` for non-line-based algorithms.
    """

    allocation: np.ndarray
    makespan: float
    algorithm: str
    iterations: int = 0
    intersections: int = 0
    slope: float | None = None
    trace: list[tuple[float, float]] = field(default_factory=list)
    region: "SlopeRegion | None" = None

    @property
    def n(self) -> int:
        """Total number of elements distributed."""
        return int(self.allocation.sum())

    @property
    def p(self) -> int:
        """Number of processors."""
        return int(self.allocation.size)

    def __post_init__(self) -> None:
        self.allocation = np.asarray(self.allocation, dtype=np.int64)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm}: n={self.n} over p={self.p}, "
            f"makespan={self.makespan:.6g}s, iterations={self.iterations}, "
            f"intersections={self.intersections}"
        )

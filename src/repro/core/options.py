"""Typed options shared by every partitioner front door.

The partitioners historically accepted slightly different ``**kwargs``
surfaces, so a typo (``refine="greddy"``) or an option the algorithm does
not understand (``mode=`` for the modified algorithm) surfaced as a late
``TypeError`` deep inside the solver, or was silently swallowed by a
``**kwargs`` passthrough.  :class:`PartitionOptions` makes the shared
surface explicit:

* :func:`~repro.core.partition.partition` accepts ``options=`` (or the
  equivalent loose keywords) and forwards exactly the subset the selected
  algorithm supports;
* an option set to a non-default value that the algorithm cannot honour
  raises a :class:`~repro.exceptions.ConfigurationError` naming the
  algorithm — never a silent ignore;
* every ``partition_*`` entry point funnels unexpected keywords through
  :func:`reject_unknown_options`, so unsupported keywords fail uniformly
  across the whole family.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .geometry import SlopeRegion
    from .vectorized import PiecewiseLinearSet

__all__ = ["PartitionOptions", "reject_unknown_options"]


@dataclass(frozen=True)
class PartitionOptions:
    """The core options understood across the partitioner family.

    Attributes
    ----------
    mode:
        Bisection flavour: ``"tangent"`` (practical recommendation) or
        ``"angle"`` (the paper's formal definition).  Supported by the
        slope-bisection algorithms (``bisection``, ``combined``).
    refine:
        Fine-tuning procedure: ``"greedy"`` (optimal) or ``"paper"``
        (the literal figure-9 candidate sort).
    max_iterations:
        Safety cap on solver iterations; ``None`` keeps the algorithm's
        default.
    keep_trace:
        Record the per-step ``(slope, total)`` trajectory in the result.
    region:
        Warm-start :class:`~repro.core.geometry.SlopeRegion` (a converged
        bracket from a nearby problem), repaired before use.
    pack:
        Pre-built :class:`~repro.core.vectorized.PiecewiseLinearSet` for
        the same speed functions, shared across many queries.
    bounds:
        Per-processor element bounds ``b_i`` (the general problem
        statement); applied by truncating the speed graphs before the
        algorithm runs.  ``math.inf`` entries disable a bound.
    validate:
        Re-check the single-intersection invariant of every speed
        function before partitioning.
    """

    mode: str = "tangent"
    refine: str = "greedy"
    max_iterations: int | None = None
    keep_trace: bool = False
    region: "SlopeRegion | None" = None
    pack: "PiecewiseLinearSet | None" = None
    bounds: Sequence[float] | None = None
    validate: bool = False

    #: Options consumed by :func:`~repro.core.partition.partition` itself
    #: (they apply uniformly, before algorithm dispatch).
    _FRONT_DOOR = frozenset({"bounds", "validate"})

    def replace(self, **changes: Any) -> "PartitionOptions":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def field_names(cls) -> frozenset[str]:
        """Names of every option field."""
        return frozenset(f.name for f in dataclasses.fields(cls))

    def non_default(self) -> dict[str, Any]:
        """The fields set away from their defaults, as a dict."""
        out: dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            # Defaults are None or plain scalars; values may be arrays or
            # other rich objects, so equality is only asked of the scalars.
            if f.default is None:
                changed = value is not None
            else:
                changed = value != f.default
            if changed:
                out[f.name] = value
        return out

    def algorithm_kwargs(
        self, algorithm: str, supported: frozenset[str]
    ) -> dict[str, Any]:
        """Keyword arguments to forward to ``algorithm``.

        Only options the algorithm supports are forwarded (and only when
        set away from their defaults, so algorithm defaults stay in
        charge).  A non-default option outside ``supported`` raises a
        :class:`~repro.exceptions.ConfigurationError` naming the
        algorithm.
        """
        kwargs: dict[str, Any] = {}
        for name, value in self.non_default().items():
            if name in self._FRONT_DOOR:
                continue
            if name not in supported:
                raise ConfigurationError(
                    f"the {algorithm!r} algorithm does not support the "
                    f"option {name!r}"
                )
            kwargs[name] = value
        return kwargs


def reject_unknown_options(algorithm: str, extra: dict[str, Any]) -> None:
    """Uniform rejection of unsupported keywords across ``partition_*``.

    Every partitioner routes its ``**extra`` catch-all here, so passing an
    option the algorithm does not understand raises the same
    :class:`~repro.exceptions.ConfigurationError` (naming the algorithm)
    everywhere, instead of an inconsistent ``TypeError``.
    """
    if extra:
        names = ", ".join(sorted(extra))
        raise ConfigurationError(
            f"the {algorithm!r} algorithm does not support the option(s): {names}"
        )

"""Partitioning with explicit per-processor bounds (the general problem).

The paper's general formulation [20] adds "an upper bound ``b_i`` on the
number of elements stored by each processor".  Geometrically a bound simply
truncates the speed graph at ``x = b_i``; ray intersections beyond the bound
clamp to it, and the bisection algorithms then never allocate past it.  This
module provides the truncation wrapper and a convenience front-end.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import InfeasiblePartitionError
from .options import PartitionOptions
from .partition import partition
from .result import PartitionResult
from .speed_function import KnotRow, SpeedFunction

__all__ = ["TruncatedSpeedFunction", "partition_bounded"]


class TruncatedSpeedFunction(SpeedFunction):
    """A speed function restricted to sizes at most ``bound``.

    Truncation preserves the single-intersection invariant (it only removes
    part of the domain) and implements the memory bound of the general
    partitioning problem.
    """

    def __init__(self, base: SpeedFunction, bound: float):
        if not (bound > 0):
            raise InfeasiblePartitionError(f"bound must be positive, got {bound!r}")
        self._base = base
        self.max_size = float(min(bound, base.max_size))

    @property
    def base(self) -> SpeedFunction:
        """The unrestricted speed function."""
        return self._base

    def speed(self, x):
        x_clamped = np.minimum(np.asarray(x, dtype=float), self.max_size)
        out = self._base.speed(x_clamped)
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(out)
        return np.asarray(out, dtype=float)

    def intersect_ray(self, slope: float) -> float:
        return float(min(self._base.intersect_ray(slope), self.max_size))

    def as_knots(self) -> KnotRow | None:
        """Compile by decorating the parent's row with a size cap.

        The knots themselves are left untouched — re-interpolating a clipped
        final segment would perturb its slope by an ulp and break
        bit-identity — and the pack instead applies
        ``min(answer, cap)`` after its segment solve, mirroring
        :meth:`intersect_ray` exactly.  ``s_cap`` records the speed at the
        cap for the clamped-speed semantics of :meth:`speed`.
        """
        from dataclasses import replace

        row = self._base.as_knots()
        if row is None:
            return None
        cap = self.max_size
        if row.x_cap is not None and row.x_cap <= cap:
            return row  # parent already at least as tight
        if cap >= float(row.sizes[-1]) and row.x_cap is None:
            return row  # bound is not binding
        s_cap = float(np.interp(cap, row.sizes, row.speeds))
        return replace(row, x_cap=cap, s_cap=s_cap)

    def __repr__(self) -> str:
        return f"TruncatedSpeedFunction({self._base!r}, bound={self.max_size:g})"


def partition_bounded(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    bounds: Sequence[float],
    *,
    algorithm: str = "combined",
    options: PartitionOptions | None = None,
    **kwargs,
) -> PartitionResult:
    """Partition ``n`` elements subject to per-processor element bounds.

    Parameters
    ----------
    n:
        Number of elements.
    speed_functions:
        One speed function per processor.
    bounds:
        Upper bound ``b_i`` on the elements each processor may store.
        ``math.inf`` disables the bound for a processor (its own
        ``max_size`` still applies).
    algorithm, options, **kwargs:
        Forwarded to :func:`~repro.core.partition.partition`; ``bounds``
        overrides any bounds carried by ``options``.

    Raises
    ------
    InfeasiblePartitionError
        When ``sum(min(b_i, max_size_i)) < n``.
    """
    options = (options or PartitionOptions()).replace(bounds=tuple(bounds))
    return partition(
        n, speed_functions, algorithm=algorithm, options=options, **kwargs
    )

"""Partitioning with explicit per-processor bounds (the general problem).

The paper's general formulation [20] adds "an upper bound ``b_i`` on the
number of elements stored by each processor".  Geometrically a bound simply
truncates the speed graph at ``x = b_i``; ray intersections beyond the bound
clamp to it, and the bisection algorithms then never allocate past it.  This
module provides the truncation wrapper and a convenience front-end.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..exceptions import InfeasiblePartitionError
from .partition import partition
from .result import PartitionResult
from .speed_function import SpeedFunction

__all__ = ["TruncatedSpeedFunction", "partition_bounded"]


class TruncatedSpeedFunction(SpeedFunction):
    """A speed function restricted to sizes at most ``bound``.

    Truncation preserves the single-intersection invariant (it only removes
    part of the domain) and implements the memory bound of the general
    partitioning problem.
    """

    def __init__(self, base: SpeedFunction, bound: float):
        if not (bound > 0):
            raise InfeasiblePartitionError(f"bound must be positive, got {bound!r}")
        self._base = base
        self.max_size = float(min(bound, base.max_size))

    @property
    def base(self) -> SpeedFunction:
        """The unrestricted speed function."""
        return self._base

    def speed(self, x):
        x_clamped = np.minimum(np.asarray(x, dtype=float), self.max_size)
        out = self._base.speed(x_clamped)
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(out)
        return np.asarray(out, dtype=float)

    def intersect_ray(self, slope: float) -> float:
        return float(min(self._base.intersect_ray(slope), self.max_size))

    def __repr__(self) -> str:
        return f"TruncatedSpeedFunction({self._base!r}, bound={self.max_size:g})"


def partition_bounded(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    bounds: Sequence[float],
    *,
    algorithm: str = "combined",
    **kwargs,
) -> PartitionResult:
    """Partition ``n`` elements subject to per-processor element bounds.

    Parameters
    ----------
    n:
        Number of elements.
    speed_functions:
        One speed function per processor.
    bounds:
        Upper bound ``b_i`` on the elements each processor may store.
        ``math.inf`` disables the bound for a processor (its own
        ``max_size`` still applies).
    algorithm, **kwargs:
        Forwarded to :func:`~repro.core.partition.partition`.

    Raises
    ------
    InfeasiblePartitionError
        When ``sum(min(b_i, max_size_i)) < n``.
    """
    if len(bounds) != len(speed_functions):
        raise InfeasiblePartitionError(
            f"got {len(bounds)} bounds for {len(speed_functions)} processors"
        )
    truncated: list[SpeedFunction] = []
    for sf, b in zip(speed_functions, bounds):
        truncated.append(sf if math.isinf(b) else TruncatedSpeedFunction(sf, b))
    capacity = sum(sf.max_size for sf in truncated)
    if capacity < n:
        raise InfeasiblePartitionError(
            f"combined bounds ({capacity:g}) cannot store {n} elements"
        )
    result = partition(n, truncated, algorithm=algorithm, **kwargs)
    result.algorithm = f"{result.algorithm}+bounded"
    return result

"""Geometric primitives for the line-through-origin partitioning algorithms.

The algorithms of section 2 search for a straight line ``y = c * x`` through
the origin of the (problem size, absolute speed) plane such that the sum of
the size coordinates of its intersections with the ``p`` speed graphs equals
the problem size ``n``.  This module provides:

* :func:`allocations` / :func:`total_allocation` — intersect a ray with all
  graphs at once;
* :func:`initial_bracket` — the paper's procedure (figure 18) for finding the
  two starting lines between which the optimal line lies;
* :class:`SlopeRegion` — the pair of bounding slopes manipulated by the
  bisection algorithms, with both *tangent* and *angle* bisection rules (the
  paper bisects angles but notes that tangents work in practice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError, InfeasiblePartitionError
from .speed_function import SpeedFunction

__all__ = [
    "allocations",
    "total_allocation",
    "initial_bracket",
    "ensure_bracket",
    "SlopeRegion",
]


def allocations(
    speed_functions: Sequence[SpeedFunction], slope: float
) -> np.ndarray:
    """Size coordinates of the intersections of ``y = slope*x`` with each graph.

    Element ``i`` of the result is the (generally non-integer) number of
    elements processor ``i`` would receive if the line with the given slope
    were the optimal one.  Intersections beyond a processor's memory bound
    are clamped to the bound by :meth:`SpeedFunction.intersect_ray`.
    """
    return np.array([sf.intersect_ray(slope) for sf in speed_functions], dtype=float)


def total_allocation(
    speed_functions: Sequence[SpeedFunction], slope: float
) -> float:
    """Sum of the intersection size coordinates for the given ray slope.

    Monotonically non-increasing in ``slope``: steeper lines cross every
    graph at smaller sizes.
    """
    return float(sum(sf.intersect_ray(slope) for sf in speed_functions))


#: Geometric-ladder slopes evaluated per batched probe (see _expand_batched).
_EXPAND_CHUNK = 8


def _expand_batched(pack, v0: float, factor: float, n: int, mode: str,
                    max_expansions: int):
    """Walk the geometric slope ladder ``v0 * factor**k`` on the pack.

    Returns ``(value, expansions)`` for the first ``k`` (checking at most
    ``max_expansions`` ladder points) whose total allocation satisfies the
    bracket condition — ``total <= n`` for ``mode='upper'``, ``total >= n``
    for ``'lower'`` — or ``None`` when the ladder is exhausted.

    ``factor`` is a power of two, so the batch slopes are bitwise the
    sequence the sequential ``v *= factor`` loop visits, and the reported
    ``expansions`` is the sequential count (the first success index), not
    the number of array evaluations performed.
    """
    def ok(total: float) -> bool:
        return total <= n if mode == "upper" else total >= n

    # The common case succeeds on the first check: pay one row, not a chunk.
    if ok(float(pack.allocations(v0).sum())):
        return v0, 0
    k = 1
    v = float(v0 * factor)
    while k < max_expansions:
        width = min(_EXPAND_CHUNK, max_expansions - k)
        slopes = v * factor ** np.arange(width)
        totals = pack.allocations_many(slopes).sum(axis=1)
        hits = np.nonzero(totals <= n if mode == "upper" else totals >= n)[0]
        if hits.size:
            j = int(hits[0])
            return float(slopes[j]), k + j
        k += width
        v = float(slopes[-1] * factor)
    return None


def initial_bracket(
    speed_functions: Sequence[SpeedFunction],
    n: int,
    *,
    max_expansions: int = 200,
    allocator=None,
    pack=None,
) -> "SlopeRegion":
    """Find two lines bracketing the optimal one (the paper's figure 18).

    Each processor is probed at the even allocation ``n/p``.  The first line
    passes through ``(n/p, max_i s_i(n/p))`` — it is the steeper of the two
    and yields a total allocation of at most ``n``; the second passes through
    ``(n/p, min_i s_i(n/p))`` and yields at least ``n``.

    Memory bounds can break the second guarantee (the intersections are
    clamped, so even a nearly flat line may not reach a total of ``n``).  In
    that case the shallow slope is decreased geometrically; if the problem
    does not fit in the combined memory of all processors at any slope,
    :class:`~repro.exceptions.InfeasiblePartitionError` is raised.

    ``allocator`` optionally supplies a vectorised ``slope -> allocations``
    callable (see :func:`repro.core.vectorized.make_allocator`); the
    default evaluates the functions one by one.  ``pack`` additionally
    enables the batched expansion ladder and the one-pass probe-speed
    evaluation (bit-identical to the sequential path — the ladder slopes
    are exact powers of two times the seed).

    Returns a :class:`SlopeRegion` with ``total(upper) <= n <= total(lower)``.
    """
    total = (
        (lambda c: float(pack.allocations(c).sum()))
        if pack is not None
        else (lambda c: float(allocator(c).sum()))
        if allocator is not None
        else (lambda c: total_allocation(speed_functions, c))
    )
    p = len(speed_functions)
    if p == 0:
        raise InfeasiblePartitionError("no processors")
    if n <= 0:
        raise InfeasiblePartitionError(f"problem size must be positive, got {n}")
    capacity = sum(sf.max_size for sf in speed_functions)
    if capacity < n:
        raise InfeasiblePartitionError(
            f"problem of size {n} exceeds the combined memory bound "
            f"{capacity:g} of the {p} processors"
        )
    probe = n / p
    if pack is not None:
        speeds_at_probe = pack.speeds(np.minimum(probe, pack.max_sizes))
    else:
        speeds_at_probe = np.array(
            [sf.speed(min(probe, sf.max_size)) for sf in speed_functions],
            dtype=float,
        )
    if np.any(speeds_at_probe <= 0):
        # A processor whose speed is exactly zero at n/p (e.g. at its paging
        # limit) still has positive speed at smaller sizes; fall back to a
        # tiny positive surrogate so the bracket search can proceed.
        speeds_at_probe = np.maximum(speeds_at_probe, 1e-30)
    upper = float(speeds_at_probe.max() / probe)
    lower = float(speeds_at_probe.min() / probe)

    if pack is not None:
        up = _expand_batched(pack, upper, 2.0, n, "upper", max_expansions)
        if up is None:  # pragma: no cover - requires a pathological function
            raise InfeasiblePartitionError(
                "could not find a steep line allocating fewer than n elements"
            )
        down = _expand_batched(pack, lower, 0.5, n, "lower", max_expansions)
        if down is None:
            raise InfeasiblePartitionError(
                f"problem of size {n} cannot be allocated even with "
                "arbitrarily shallow lines; processors saturate at their "
                "memory bounds"
            )
        return SlopeRegion(upper=up[0], lower=down[0])

    # Guarantee total(upper) <= n (expand upwards if a clamped or unusual
    # shape broke the textbook property).
    for _ in range(max_expansions):
        if total(upper) <= n:
            break
        upper *= 2.0
    else:  # pragma: no cover - requires a pathological speed function
        raise InfeasiblePartitionError(
            "could not find a steep line allocating fewer than n elements"
        )
    # Guarantee total(lower) >= n (expand downwards past memory-bound clamps).
    for _ in range(max_expansions):
        if total(lower) >= n:
            break
        lower *= 0.5
    else:
        raise InfeasiblePartitionError(
            f"problem of size {n} cannot be allocated even with arbitrarily "
            "shallow lines; processors saturate at their memory bounds"
        )
    return SlopeRegion(upper=upper, lower=lower)


def ensure_bracket(
    region: "SlopeRegion",
    n: int,
    speed_functions: Sequence[SpeedFunction],
    *,
    max_expansions: int = 200,
    allocator=None,
    pack=None,
) -> tuple["SlopeRegion", int]:
    """Expand a stale region until it brackets the optimal line for ``n``.

    This is the warm-start primitive: a converged :class:`SlopeRegion`
    cached from a nearby problem size ``n0`` almost brackets the optimal
    slope for ``n`` (the optimal slope is monotone non-increasing in the
    problem size), so restoring the bisection invariant
    ``total(upper) <= n <= total(lower)`` takes a handful of geometric
    expansions — ``O(log(n/n0))`` total-allocation probes — instead of the
    full figure-18 initial-bracket search.

    ``allocator`` optionally supplies a vectorised ``slope -> allocations``
    callable (see :func:`repro.core.vectorized.make_allocator`); ``pack``
    additionally batches the expansion ladder (bit-identical slopes —
    exact powers of two off the cached bounds).

    Returns ``(region, probes)`` where ``probes`` counts the
    total-allocation evaluations the *sequential* procedure would perform
    (each costs ``p`` ray-graph intersections); a region that already
    brackets ``n`` costs 2 probes.
    """
    total = (
        (lambda c: float(pack.allocations(c).sum()))
        if pack is not None
        else (lambda c: float(allocator(c).sum()))
        if allocator is not None
        else (lambda c: total_allocation(speed_functions, c))
    )
    if n <= 0:
        raise InfeasiblePartitionError(f"problem size must be positive, got {n}")
    capacity = sum(sf.max_size for sf in speed_functions)
    if capacity < n:
        raise InfeasiblePartitionError(
            f"problem of size {n} exceeds the combined memory bound "
            f"{capacity:g} of the {len(speed_functions)} processors"
        )
    if pack is not None:
        up = _expand_batched(pack, region.upper, 2.0, n, "upper", max_expansions)
        if up is None:  # pragma: no cover - requires a pathological function
            raise InfeasiblePartitionError(
                "could not find a steep line allocating fewer than n elements"
            )
        down = _expand_batched(pack, region.lower, 0.5, n, "lower", max_expansions)
        if down is None:
            raise InfeasiblePartitionError(
                f"problem of size {n} cannot be allocated even with "
                "arbitrarily shallow lines; processors saturate at their "
                "memory bounds"
            )
        return SlopeRegion(upper=up[0], lower=down[0]), 2 + up[1] + down[1]
    upper = region.upper
    lower = region.lower
    probes = 2
    # Steepen the upper line until it allocates at most n elements.
    for _ in range(max_expansions):
        if total(upper) <= n:
            break
        upper *= 2.0
        probes += 1
    else:  # pragma: no cover - requires a pathological speed function
        raise InfeasiblePartitionError(
            "could not find a steep line allocating fewer than n elements"
        )
    # Flatten the lower line until it allocates at least n elements.
    for _ in range(max_expansions):
        if total(lower) >= n:
            break
        lower *= 0.5
        probes += 1
    else:
        raise InfeasiblePartitionError(
            f"problem of size {n} cannot be allocated even with arbitrarily "
            "shallow lines; processors saturate at their memory bounds"
        )
    return SlopeRegion(upper=upper, lower=lower), probes


@dataclass
class SlopeRegion:
    """The angular region between two candidate lines through the origin.

    Attributes
    ----------
    upper:
        Tangent slope of the steeper line; its total allocation is <= n.
    lower:
        Tangent slope of the shallower line; its total allocation is >= n.
    """

    upper: float
    lower: float

    def __post_init__(self) -> None:
        if not (self.upper > 0 and self.lower > 0):
            raise ValueError(
                f"slopes must be positive (upper={self.upper!r}, lower={self.lower!r})"
            )
        if self.upper < self.lower:
            raise ValueError(
                f"upper slope {self.upper!r} must be >= lower slope {self.lower!r}"
            )

    def midpoint(self, mode: str = "tangent") -> float:
        """Slope of the line bisecting this region.

        ``mode='angle'`` bisects the angle (the paper's definition:
        ``(theta1 + theta2) / 2``); ``mode='tangent'`` averages the tangent
        slopes, which the paper notes is the computationally efficient
        choice for practical implementations.
        """
        if mode == "tangent":
            return 0.5 * (self.upper + self.lower)
        if mode == "angle":
            return math.tan(0.5 * (math.atan(self.upper) + math.atan(self.lower)))
        raise ConfigurationError(f"unknown bisection mode {mode!r}")

    def width(self) -> float:
        """Tangent-slope width of the region."""
        return self.upper - self.lower

    def replace_upper(self, slope: float) -> "SlopeRegion":
        """New region with the steeper bound moved down to ``slope``."""
        return SlopeRegion(upper=slope, lower=self.lower)

    def replace_lower(self, slope: float) -> "SlopeRegion":
        """New region with the shallower bound moved up to ``slope``."""
        return SlopeRegion(upper=self.upper, lower=slope)

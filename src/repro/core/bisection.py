"""The basic slope-bisection partitioning algorithm (section 2, figures 7-8).

The algorithm maintains two lines through the origin: the steeper allocates
at most ``n`` elements in total, the shallower at least ``n``.  Each step
bisects the angular region between them by a third line and keeps the half
containing the optimal line.  It stops when no allocation can change by a
whole element any more (the paper's criterion: ``u_i - l_i < 1`` for every
processor), then hands over to the fine-tuning procedure.

Complexity: ``O(p)`` per step.  When the optimal slope decays polynomially
with ``n`` — which the paper argues covers most real-life situations — the
number of steps is ``O(log n)``, giving ``O(p log n)`` overall; for
pathological shapes (optimal slope decaying exponentially) the step count
degrades up to ``O(n)``, which motivates the modified algorithm in
:mod:`repro.core.modified`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConvergenceError
from .geometry import SlopeRegion, allocations, initial_bracket
from .vectorized import make_allocator
from .refine import makespan, refine_greedy, refine_paper
from .result import PartitionResult
from .speed_function import SpeedFunction

__all__ = ["partition_bisection"]

#: Hard iteration cap; generous enough for n up to ~2**10000 with tangent
#: bisection, only ever reached by adversarial inputs.
_DEFAULT_MAX_ITERATIONS = 20_000

#: Relative slope width below which the region is numerically a single line.
_MIN_RELATIVE_WIDTH = 1e-15


def partition_bisection(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    *,
    mode: str = "tangent",
    refine: str = "greedy",
    max_iterations: int = _DEFAULT_MAX_ITERATIONS,
    keep_trace: bool = False,
    region: SlopeRegion | None = None,
) -> PartitionResult:
    """Partition ``n`` elements with the basic bisection algorithm.

    Parameters
    ----------
    n:
        Number of elements to distribute.
    speed_functions:
        One :class:`~repro.core.speed_function.SpeedFunction` per processor.
    mode:
        ``"tangent"`` (default, bisect tangent slopes — the paper's
        recommendation for practical implementations) or ``"angle"``
        (bisect the angles, the paper's formal definition).
    refine:
        Fine-tuning procedure: ``"greedy"`` (optimal, default) or
        ``"paper"`` (the literal 2p-candidate sort of figure 9).
    max_iterations:
        Safety cap on bisection steps.
    keep_trace:
        Record ``(slope, total_allocation)`` per step in the result.
    region:
        Optional pre-computed starting region (used by the combined
        algorithm); computed by
        :func:`~repro.core.geometry.initial_bracket` when omitted.

    Returns
    -------
    PartitionResult
    """
    p = len(speed_functions)
    if n == 0:
        return PartitionResult(
            allocation=np.zeros(p, dtype=np.int64),
            makespan=0.0,
            algorithm="bisection",
        )
    alloc_at = make_allocator(speed_functions)
    if region is None:
        region = initial_bracket(speed_functions, n, allocator=alloc_at)
    low_alloc = alloc_at(region.upper)
    high_alloc = alloc_at(region.lower)
    intersections = 3 * p  # bracket probe + the two initial lines
    iterations = 0
    trace: list[tuple[float, float]] = []

    while np.any(high_alloc - low_alloc >= 1.0):
        if iterations >= max_iterations:
            raise ConvergenceError(
                f"basic bisection did not converge within {max_iterations} "
                "steps; consider partition_modified()",
                iterations=iterations,
            )
        if region.width() <= _MIN_RELATIVE_WIDTH * region.upper:
            # The slope interval has collapsed to float precision while some
            # allocation interval still spans an integer (a numerically flat
            # graph segment); fine-tuning resolves the remainder.
            break
        mid = region.midpoint(mode)
        mid_alloc = alloc_at(mid)
        intersections += p
        total = float(mid_alloc.sum())
        if keep_trace:
            trace.append((mid, total))
        if total >= n:
            region = region.replace_lower(mid)
            high_alloc = mid_alloc
        else:
            region = region.replace_upper(mid)
            low_alloc = mid_alloc
        iterations += 1

    if refine == "greedy":
        alloc = refine_greedy(n, speed_functions, low_alloc)
    elif refine == "paper":
        alloc = refine_paper(n, speed_functions, low_alloc, high_alloc)
    else:
        raise ValueError(f"unknown refine procedure {refine!r}")
    return PartitionResult(
        allocation=alloc,
        makespan=makespan(speed_functions, alloc),
        algorithm="bisection",
        iterations=iterations,
        intersections=intersections,
        slope=region.midpoint(mode),
        trace=trace,
    )

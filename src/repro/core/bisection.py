"""The basic slope-bisection partitioning algorithm (section 2, figures 7-8).

The algorithm maintains two lines through the origin: the steeper allocates
at most ``n`` elements in total, the shallower at least ``n``.  Each step
bisects the angular region between them by a third line and keeps the half
containing the optimal line.  It stops when no allocation can change by a
whole element any more (the paper's criterion: ``u_i - l_i < 1`` for every
processor), then hands over to the fine-tuning procedure.

Complexity: ``O(p)`` per step.  When the optimal slope decays polynomially
with ``n`` — which the paper argues covers most real-life situations — the
number of steps is ``O(log n)``, giving ``O(p log n)`` overall; for
pathological shapes (optimal slope decaying exponentially) the step count
degrades up to ``O(n)``, which motivates the modified algorithm in
:mod:`repro.core.modified`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import obs
from ..exceptions import ConfigurationError, ConvergenceError
from .geometry import SlopeRegion, allocations, ensure_bracket, initial_bracket
from .options import reject_unknown_options
from .vectorized import PiecewiseLinearSet, pack_speed_functions
from .refine import makespan, refine_greedy, refine_paper
from .result import PartitionResult
from .speed_function import SpeedFunction

__all__ = ["partition_bisection", "partition_bisection_many"]

#: Hard iteration cap; generous enough for n up to ~2**10000 with tangent
#: bisection, only ever reached by adversarial inputs.
_DEFAULT_MAX_ITERATIONS = 20_000

#: Relative slope width below which the region is numerically a single line.
_MIN_RELATIVE_WIDTH = 1e-15


def partition_bisection(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    *,
    mode: str = "tangent",
    refine: str = "greedy",
    max_iterations: int = _DEFAULT_MAX_ITERATIONS,
    keep_trace: bool = False,
    region: SlopeRegion | None = None,
    pack: PiecewiseLinearSet | None = None,
    **extra,
) -> PartitionResult:
    """Partition ``n`` elements with the basic bisection algorithm.

    Parameters
    ----------
    n:
        Number of elements to distribute.
    speed_functions:
        One :class:`~repro.core.speed_function.SpeedFunction` per processor.
    mode:
        ``"tangent"`` (default, bisect tangent slopes — the paper's
        recommendation for practical implementations) or ``"angle"``
        (bisect the angles, the paper's formal definition).
    refine:
        Fine-tuning procedure: ``"greedy"`` (optimal, default) or
        ``"paper"`` (the literal 2p-candidate sort of figure 9).
    max_iterations:
        Safety cap on bisection steps.
    keep_trace:
        Record ``(slope, total_allocation)`` per step in the result.
    region:
        Optional starting region.  It does not have to bracket the optimal
        line for this ``n``: a stale region (e.g. the converged
        ``result.region`` of a nearby problem size) is first repaired by
        :func:`~repro.core.geometry.ensure_bracket`, which is how
        warm-started queries skip most of the cold search.  Computed by
        :func:`~repro.core.geometry.initial_bracket` when omitted.
    pack:
        Optional pre-built :class:`~repro.core.vectorized.PiecewiseLinearSet`
        for the same ``speed_functions`` (see
        :func:`~repro.core.vectorized.pack_speed_functions`).  Callers
        answering many queries over one fleet should pack once and pass it
        here; when omitted, a pack is built per call if possible.

    Returns
    -------
    PartitionResult
        ``result.region`` holds the final converged bracket for reuse.
    """
    reject_unknown_options("bisection", extra)
    p = len(speed_functions)
    if n == 0:
        return PartitionResult(
            allocation=np.zeros(p, dtype=np.int64),
            makespan=0.0,
            algorithm="bisection",
        )
    if pack is None:
        pack = pack_speed_functions(speed_functions)
    alloc_at = (
        pack.allocations
        if pack is not None
        else (lambda c: allocations(speed_functions, c))
    )
    warm = region is not None
    if region is None:
        region = initial_bracket(speed_functions, n, allocator=alloc_at, pack=pack)
        probes = 1  # the figure-18 bracket probe
    else:
        region, probes = ensure_bracket(
            region, n, speed_functions, allocator=alloc_at, pack=pack
        )
    low_alloc = alloc_at(region.upper)
    high_alloc = alloc_at(region.lower)
    intersections = (probes + 2) * p  # bracket probes + the two initial lines
    iterations = 0
    trace: list[tuple[float, float]] = []

    while np.any(high_alloc - low_alloc >= 1.0):
        if iterations >= max_iterations:
            raise ConvergenceError(
                f"basic bisection did not converge within {max_iterations} "
                "steps; consider partition_modified()",
                iterations=iterations,
            )
        if region.width() <= _MIN_RELATIVE_WIDTH * region.upper:
            # The slope interval has collapsed to float precision while some
            # allocation interval still spans an integer (a numerically flat
            # graph segment); fine-tuning resolves the remainder.
            break
        mid = region.midpoint(mode)
        mid_alloc = alloc_at(mid)
        intersections += p
        total = float(mid_alloc.sum())
        if keep_trace:
            trace.append((mid, total))
        if total >= n:
            region = region.replace_lower(mid)
            high_alloc = mid_alloc
        else:
            region = region.replace_upper(mid)
            low_alloc = mid_alloc
        iterations += 1

    if refine == "greedy":
        alloc = refine_greedy(n, speed_functions, low_alloc, pack=pack)
    elif refine == "paper":
        alloc = refine_paper(n, speed_functions, low_alloc, high_alloc, pack=pack)
    else:
        raise ConfigurationError(f"unknown refine procedure {refine!r}")
    if obs.is_enabled():
        obs.record_solver(
            "bisection",
            iterations=iterations,
            intersections=intersections,
            probes=probes,
            warm=warm,
        )
    return PartitionResult(
        allocation=alloc,
        makespan=makespan(speed_functions, alloc, pack=pack),
        algorithm="bisection",
        iterations=iterations,
        intersections=intersections,
        slope=region.midpoint(mode),
        trace=trace,
        region=region,
    )


def partition_bisection_many(
    ns: Sequence[int],
    speed_functions: Sequence[SpeedFunction],
    *,
    mode: str = "tangent",
    refine: str = "greedy",
    max_iterations: int = _DEFAULT_MAX_ITERATIONS,
    region: SlopeRegion | None = None,
    pack: PiecewiseLinearSet | None = None,
) -> list[PartitionResult]:
    """Solve a whole batch of problem sizes in one lockstep sweep.

    Equivalent to ``[partition_bisection(n, ...) for n in ns]`` — each
    returned plan is bit-identical to its one-shot counterpart — but far
    cheaper for packed fleets, by two structural tricks:

    * **monotone bracketing**: sizes are processed in ascending order, so
      the optimal slope only moves downward; each size's starting bracket
      is repaired from its predecessor's in a few geometric probes instead
      of an independent figure-18 doubling search;
    * **lockstep bisection**: all still-unconverged sizes advance
      together, and their midpoint rays are intersected with the ``p``
      graphs in a single :meth:`PiecewiseLinearSet.allocations_many` call
      per step, paying the NumPy dispatch cost once per step instead of
      once per size per step.

    Results are returned in the order the sizes were given.  ``region``
    optionally seeds the smallest size's bracket (a converged region from
    a previous query); ``pack`` as in :func:`partition_bisection`.  Falls
    back to sequential solves when the fleet cannot be packed.
    """
    sizes = [int(n) for n in ns]
    if pack is None:
        pack = pack_speed_functions(speed_functions)
    if pack is None:  # generic fleet: no batched evaluator to exploit
        seq: dict[int, PartitionResult] = {}
        for n in sorted(set(sizes)):
            seq[n] = partition_bisection(
                n, speed_functions, mode=mode, refine=refine,
                max_iterations=max_iterations, region=region,
            )
            region = seq[n].region or region
        return [seq[n] for n in sizes]

    p = len(speed_functions)
    alloc_at = pack.allocations
    order = sorted(range(len(sizes)), key=lambda i: sizes[i])
    solved: dict[int, PartitionResult] = {}

    # Phase 1 — chained brackets, ascending (monotone slope sweep).
    pending: list[int] = []  # distinct sizes, ascending
    seen: set[int] = set()
    regions: list[SlopeRegion] = []
    probe_counts: list[int] = []
    warm_flags: list[bool] = []
    prev = region
    for idx in order:
        n = sizes[idx]
        if n in seen:
            continue
        seen.add(n)
        if n <= 0:
            solved[n] = partition_bisection(
                n, speed_functions, mode=mode, refine=refine, pack=pack
            )
            continue
        warm_flags.append(prev is not None)
        if prev is None:
            r = initial_bracket(speed_functions, n, allocator=alloc_at, pack=pack)
            probes = 1
        else:
            # The previous (smaller) size's bracket: its steep bound stays
            # valid because totals only grow as the slope falls; only the
            # shallow bound may need geometric expansion.
            r, probes = ensure_bracket(
                prev, n, speed_functions, allocator=alloc_at, pack=pack
            )
        pending.append(n)
        regions.append(r)
        probe_counts.append(probes)
        prev = r

    # Phase 2 — lockstep bisection over all pending sizes.
    if pending:
        q = len(pending)
        uppers = np.array([r.upper for r in regions])
        lowers = np.array([r.lower for r in regions])
        low_allocs = pack.allocations_many(uppers)
        high_allocs = pack.allocations_many(lowers)
        iterations = [0] * q
        intersections = [(probe_counts[i] + 2) * p for i in range(q)]
        batch_steps = 0
        active = [
            i
            for i in range(q)
            if np.any(high_allocs[i] - low_allocs[i] >= 1.0)
            and regions[i].width() > _MIN_RELATIVE_WIDTH * regions[i].upper
        ]
        while active:
            batch_steps += 1
            mids = np.array([regions[i].midpoint(mode) for i in active])
            mid_allocs = pack.allocations_many(mids)
            still = []
            for row, i in enumerate(active):
                if iterations[i] >= max_iterations:
                    raise ConvergenceError(
                        f"basic bisection did not converge within "
                        f"{max_iterations} steps; consider partition_modified()",
                        iterations=iterations[i],
                    )
                ma = mid_allocs[row]
                if float(ma.sum()) >= pending[i]:
                    regions[i] = regions[i].replace_lower(float(mids[row]))
                    high_allocs[i] = ma
                else:
                    regions[i] = regions[i].replace_upper(float(mids[row]))
                    low_allocs[i] = ma
                iterations[i] += 1
                intersections[i] += p
                if np.any(high_allocs[i] - low_allocs[i] >= 1.0) and (
                    regions[i].width() > _MIN_RELATIVE_WIDTH * regions[i].upper
                ):
                    still.append(i)
            active = still

        # Phase 3 — fine-tune each converged size (identical to one-shot).
        for i, n in enumerate(pending):
            if refine == "greedy":
                alloc = refine_greedy(n, speed_functions, low_allocs[i], pack=pack)
            elif refine == "paper":
                alloc = refine_paper(
                    n, speed_functions, low_allocs[i], high_allocs[i], pack=pack
                )
            else:
                raise ConfigurationError(f"unknown refine procedure {refine!r}")
            solved[n] = PartitionResult(
                allocation=alloc,
                makespan=makespan(speed_functions, alloc, pack=pack),
                algorithm="bisection",
                iterations=iterations[i],
                intersections=intersections[i],
                slope=regions[i].midpoint(mode),
                region=regions[i],
            )
        if obs.is_enabled():
            obs.record_batch(sizes=len(pending), steps=batch_steps)
            for i in range(len(pending)):
                obs.record_solver(
                    "bisection",
                    iterations=iterations[i],
                    intersections=intersections[i],
                    probes=probe_counts[i],
                    warm=warm_flags[i],
                )

    return [solved[n] for n in sizes]

"""Hierarchical partitioning: networks of networks of heterogeneous computers.

Global HNOCs are naturally two-level — sites (labs, clusters) connected by
a wide-area network, heterogeneous machines inside each site.  The
functional model composes beautifully across such levels:

    give a *group* of processors ``x`` elements and split them optimally
    inside the group; the group's makespan ``T_G(x)`` is strictly
    increasing, so the **composite speed function** ``s_G(x) = x / T_G(x)``
    has strictly decreasing ``g(x) = 1/T_G(x)`` — it is itself a valid
    member of the functional family.

:func:`group_speed_function` materialises that composite (the optimal
within-group slope at each sampled size is found directly on the slope
axis — no integer work), and :func:`partition_hierarchical` runs the
two-level scheme: partition across the composites, then within each group.
The test-suite confirms the two-level result matches the flat partition of
all processors at once — optimal substructure made executable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import InfeasiblePartitionError
from .options import reject_unknown_options
from .geometry import total_allocation
from .partition import partition
from .result import PartitionResult
from .speed_function import PiecewiseLinearSpeedFunction, SpeedFunction

__all__ = ["group_speed_function", "HierarchicalResult", "partition_hierarchical"]


def _optimal_slope(
    members: Sequence[SpeedFunction], x: float, *, iterations: int = 120
) -> float:
    """Slope of the group's optimal line for a (continuous) total of ``x``.

    Solves ``total_allocation(c) = x`` by bisection; ``1/c`` is the
    group's optimal makespan for ``x`` elements.
    """
    capacity = sum(sf.max_size for sf in members)
    if x >= capacity:
        raise InfeasiblePartitionError(
            f"group capacity {capacity:g} cannot hold {x:g} elements"
        )
    # Bracket: a steep slope under-allocates, a shallow one reaches x.
    hi = max(float(sf.g(min(1.0, sf.max_size))) for sf in members)
    lo = hi
    for _ in range(200):
        if total_allocation(members, lo) >= x:
            break
        lo *= 0.5
    else:  # pragma: no cover - capacity check above prevents this
        raise InfeasiblePartitionError("could not bracket the group slope")
    for _ in range(iterations):
        mid = 0.5 * (hi + lo)
        if total_allocation(members, mid) >= x:
            lo = mid
        else:
            hi = mid
    return 0.5 * (hi + lo)


def group_speed_function(
    members: Sequence[SpeedFunction],
    *,
    num: int = 96,
    min_fraction: float = 1e-6,
) -> PiecewiseLinearSpeedFunction:
    """Composite speed function of a processor group.

    Samples ``s_G(x) = x * c*(x)`` (with ``c*`` the optimal within-group
    slope) on a logarithmic grid up to just below the group capacity and
    returns the piecewise-linear composite.  ``g(x) = c*(x)`` is
    decreasing by construction, so the result always validates.
    """
    if len(members) == 0:
        raise InfeasiblePartitionError("a group needs at least one member")
    capacity = float(sum(sf.max_size for sf in members))
    if not np.isfinite(capacity):
        raise InfeasiblePartitionError(
            "composite groups require finite member memory bounds"
        )
    if num < 2:
        raise InfeasiblePartitionError(f"num must be >= 2, got {num}")
    xs = np.geomspace(max(capacity * min_fraction, 1.0), capacity * (1 - 1e-9), num)
    speeds = np.array([x * _optimal_slope(members, float(x)) for x in xs])
    return PiecewiseLinearSpeedFunction(xs, speeds)


@dataclass
class HierarchicalResult:
    """Outcome of a two-level partition.

    Attributes
    ----------
    group_totals:
        Elements assigned to each group (sums to ``n``).
    allocations:
        Per-group integer allocations over that group's members.
    makespan:
        ``max`` over all processors of their execution time.
    """

    group_totals: np.ndarray
    allocations: list[np.ndarray]
    makespan: float

    def flat_allocation(self) -> np.ndarray:
        """All member allocations concatenated in group order."""
        if not self.allocations:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(self.allocations)


def partition_hierarchical(
    n: int,
    groups: Sequence[Sequence[SpeedFunction]],
    *,
    algorithm: str = "combined",
    samples_per_group: int = 96,
    **extra,
) -> HierarchicalResult:
    """Two-level partition: across groups, then within each group.

    Parameters
    ----------
    n:
        Total number of elements.
    groups:
        One sequence of member speed functions per site/cluster.
    algorithm:
        Partitioning algorithm used at both levels.
    samples_per_group:
        Sampling resolution of each composite function.
    """
    reject_unknown_options("hierarchical", extra)
    if not groups:
        raise InfeasiblePartitionError("at least one group is required")
    composites = [
        group_speed_function(g, num=samples_per_group) for g in groups
    ]
    top: PartitionResult = partition(n, composites, algorithm=algorithm)
    allocations: list[np.ndarray] = []
    worst = 0.0
    for members, total in zip(groups, top.allocation):
        if total == 0:
            allocations.append(np.zeros(len(members), dtype=np.int64))
            continue
        inner = partition(int(total), members, algorithm=algorithm)
        allocations.append(inner.allocation)
        worst = max(worst, inner.makespan)
    return HierarchicalResult(
        group_totals=top.allocation,
        allocations=allocations,
        makespan=worst,
    )

"""The combined partitioning algorithm (section 2, figure 15).

The basic bisection is the fastest when the optimal line lies in a region
where the speed graphs have "polynomial" slopes (the common real-life
case, figure 13), but can degrade badly in the flat tails of the graphs.
The modified algorithm is shape-insensitive but pays an extra factor of
``p``.  The paper proposes running the basic step while the region looks
benign and switching to the modified algorithm otherwise.

The switch condition implemented here follows the paper's figure 15 plus a
robustness refinement (documented in DESIGN.md):

* **flat-tail test** — after each basic step, if the new dividing line
  intersects one or more graphs where the graph is locally horizontal
  (relative derivative below ``flat_tol``) while those intersections still
  move by whole elements, the region is in a flat tail: switch.
* **stall test** — if ``stall_limit`` consecutive basic steps fail to
  shrink the total allocation uncertainty ``sum_i (u_i - l_i)`` by at least
  ``stall_factor``, the basic bisection is making no geometric progress:
  switch.

Either test firing hands the current (already narrowed) region to
:func:`~repro.core.modified.partition_modified`, so no work is repeated.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import obs
from ..exceptions import ConfigurationError, ConvergenceError
from .options import reject_unknown_options
from .geometry import SlopeRegion, allocations, ensure_bracket, initial_bracket
from .vectorized import PiecewiseLinearSet, pack_speed_functions
from .modified import partition_modified
from .refine import makespan, refine_greedy, refine_paper
from .result import PartitionResult
from .speed_function import SpeedFunction

__all__ = ["partition_combined"]

_DEFAULT_MAX_ITERATIONS = 20_000


def _relative_derivative(sf: SpeedFunction, x: float) -> float:
    """Dimensionless local slope ``s'(x) * x / s(x)`` by finite difference.

    Zero means the graph is locally horizontal (a flat tail or plateau).
    """
    if x <= 0:
        return 0.0
    h = max(x * 1e-3, 1e-9)
    x1 = min(x + h, sf.max_size)
    x0 = max(x - h, 0.0)
    if x1 <= x0:
        return 0.0
    s = sf.speed(x)
    if s <= 0:
        return 0.0
    return float((sf.speed(x1) - sf.speed(x0)) / (x1 - x0) * x / s)


def partition_combined(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    *,
    mode: str = "tangent",
    refine: str = "greedy",
    max_iterations: int = _DEFAULT_MAX_ITERATIONS,
    keep_trace: bool = False,
    flat_tol: float = 1e-3,
    stall_limit: int = 8,
    stall_factor: float = 0.75,
    region: SlopeRegion | None = None,
    pack: PiecewiseLinearSet | None = None,
    **extra,
) -> PartitionResult:
    """Partition ``n`` elements, switching basic -> modified when useful.

    See :func:`~repro.core.bisection.partition_bisection` for the common
    parameters (including the warm-start ``region`` and the reusable
    ``pack``).  ``flat_tol``, ``stall_limit`` and ``stall_factor`` tune
    the switch heuristics described in the module docstring.
    """
    reject_unknown_options("combined", extra)
    p = len(speed_functions)
    if n == 0:
        return PartitionResult(
            allocation=np.zeros(p, dtype=np.int64),
            makespan=0.0,
            algorithm="combined",
        )
    if pack is None:
        pack = pack_speed_functions(speed_functions)
    alloc_at = (
        pack.allocations
        if pack is not None
        else (lambda c: allocations(speed_functions, c))
    )
    warm = region is not None
    if region is None:
        region = initial_bracket(speed_functions, n, allocator=alloc_at, pack=pack)
        probes = 1
    else:
        region, probes = ensure_bracket(
            region, n, speed_functions, allocator=alloc_at, pack=pack
        )
    low_alloc = alloc_at(region.upper)
    high_alloc = alloc_at(region.lower)
    intersections = (probes + 2) * p
    iterations = 0
    stalled = 0
    trace: list[tuple[float, float]] = []
    switch = False

    while np.any(high_alloc - low_alloc >= 1.0):
        if iterations >= max_iterations:
            raise ConvergenceError(
                f"combined algorithm did not converge within {max_iterations} steps",
                iterations=iterations,
            )
        uncertainty_before = float(np.sum(high_alloc - low_alloc))
        mid = region.midpoint(mode)
        mid_alloc = alloc_at(mid)
        intersections += p
        total = float(mid_alloc.sum())
        if keep_trace:
            trace.append((mid, total))
        if total >= n:
            region = region.replace_lower(mid)
            high_alloc = mid_alloc
        else:
            region = region.replace_upper(mid)
            low_alloc = mid_alloc
        iterations += 1

        # Flat-tail test: the dividing line crosses a locally horizontal
        # graph while that processor's allocation is still undecided.
        moving = high_alloc - low_alloc >= 1.0
        if np.any(moving):
            for i in np.nonzero(moving)[0]:
                if abs(_relative_derivative(speed_functions[i], float(mid_alloc[i]))) < flat_tol:
                    switch = True
                    break
        # Stall test: geometric progress dried up.
        uncertainty_after = float(np.sum(high_alloc - low_alloc))
        if uncertainty_after > stall_factor * uncertainty_before:
            stalled += 1
        else:
            stalled = 0
        if stalled >= stall_limit:
            switch = True
        if switch:
            break

    if switch and np.any(high_alloc - low_alloc >= 1.0):
        if obs.is_enabled():
            obs.record_solver(
                "combined",
                iterations=iterations,
                intersections=intersections,
                probes=probes,
                warm=warm,
                switched=True,
            )
        sub = partition_modified(
            n,
            speed_functions,
            refine=refine,
            keep_trace=keep_trace,
            region=region,
            pack=pack,
        )
        return PartitionResult(
            allocation=sub.allocation,
            makespan=sub.makespan,
            algorithm="combined",
            iterations=iterations + sub.iterations,
            intersections=intersections + sub.intersections - 3 * p,
            slope=sub.slope,
            trace=trace + sub.trace,
            region=sub.region,
        )

    if refine == "greedy":
        alloc = refine_greedy(n, speed_functions, low_alloc, pack=pack)
    elif refine == "paper":
        alloc = refine_paper(n, speed_functions, low_alloc, high_alloc, pack=pack)
    else:
        raise ConfigurationError(f"unknown refine procedure {refine!r}")
    if obs.is_enabled():
        obs.record_solver(
            "combined",
            iterations=iterations,
            intersections=intersections,
            probes=probes,
            warm=warm,
        )
    return PartitionResult(
        allocation=alloc,
        makespan=makespan(speed_functions, alloc, pack=pack),
        algorithm="combined",
        iterations=iterations,
        intersections=intersections,
        slope=region.midpoint(mode),
        trace=trace,
        region=region,
    )

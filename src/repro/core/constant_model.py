"""Single-number (constant) performance model baselines.

Every prior model the paper surveys (normalised processor speed, normalised
cycle time, per-machine computation time) represents a processor by a single
positive number and distributes elements in proportion to it.  This module
implements those baselines:

* :func:`partition_constant_naive` — the straightforward ``O(p^2)``
  algorithm referenced from Beaumont et al. [6];
* :func:`partition_constant` — the ``O(p log p)`` heap-based variant that
  [6] obtains with ad-hoc data structures;
* :func:`partition_even` — the homogeneous even split the paper recommends
  when a badly chosen single number would otherwise produce a
  worse-than-even distribution.

These functions accept plain positive numbers.  To evaluate the *quality*
of a constant-model distribution under the true functional behaviour, pass
the resulting allocation to the simulator in :mod:`repro.simulate`, or use
:func:`single_number_speeds` to derive the numbers the paper's experiments
use (speed measured at one fixed problem size).
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from ..exceptions import InfeasiblePartitionError
from .options import reject_unknown_options
from .result import PartitionResult
from .speed_function import SpeedFunction

__all__ = [
    "partition_constant",
    "partition_constant_naive",
    "partition_even",
    "single_number_speeds",
]


def _as_number(entry, n: int, p: int, probe_size: float | None) -> float:
    """One speed entry as a plain number.

    :class:`~repro.core.speed_function.SpeedFunction` entries are sampled
    at ``probe_size`` (default: the even share ``n / p``, the size a
    homogeneous distribution would assign) — exactly how the paper's
    experiments derive the single numbers from one fixed benchmark run.
    """
    if isinstance(entry, SpeedFunction):
        probe = float(probe_size) if probe_size is not None else n / max(p, 1)
        probe = min(max(probe, 1.0), entry.max_size)
        return float(entry.speed(probe))
    return float(entry)


def _check_inputs(
    n: int,
    speeds: "Sequence[float | SpeedFunction]",
    probe_size: float | None = None,
) -> np.ndarray:
    if n < 0:
        raise InfeasiblePartitionError(f"problem size must be non-negative, got {n}")
    if len(speeds) == 0:
        raise InfeasiblePartitionError("speeds must be a non-empty 1-D sequence")
    try:
        s = np.array(
            [_as_number(entry, n, len(speeds), probe_size) for entry in speeds],
            dtype=float,
        )
    except TypeError:
        raise InfeasiblePartitionError(
            "speeds must be a 1-D sequence of numbers or SpeedFunctions"
        ) from None
    if s.ndim != 1 or s.size == 0:
        raise InfeasiblePartitionError("speeds must be a non-empty 1-D sequence")
    if np.any(s <= 0) or not np.all(np.isfinite(s)):
        raise InfeasiblePartitionError("all speeds must be positive finite numbers")
    return s


def partition_constant(
    n: int,
    speeds: "Sequence[float | SpeedFunction]",
    *,
    probe_size: float | None = None,
    **extra,
) -> PartitionResult:
    """Distribute ``n`` elements proportionally to constant speeds.

    Allocates ``floor(n * s_i / sum(s))`` to each processor, then assigns the
    remaining ``< p`` elements one at a time to the processor that would
    finish soonest after receiving it (a min-heap on ``(x_i+1)/s_i``).  This
    is the ``O(p log p)`` variant and produces a makespan-optimal integer
    allocation for the constant model.

    ``speeds`` entries may be plain positive numbers or
    :class:`~repro.core.speed_function.SpeedFunction` objects; the latter
    are sampled at ``probe_size`` (default: the even share ``n/p``), so
    the constant-model partitioners accept the same input type as the
    functional-model ones.
    """
    reject_unknown_options("constant", extra)
    s = _check_inputs(n, speeds, probe_size)
    share = n * s / s.sum()
    alloc = np.floor(share).astype(np.int64)
    deficit = int(n - alloc.sum())
    heap = [(float((alloc[i] + 1) / s[i]), i) for i in range(s.size)]
    heapq.heapify(heap)
    for _ in range(deficit):
        _, i = heapq.heappop(heap)
        alloc[i] += 1
        heapq.heappush(heap, (float((alloc[i] + 1) / s[i]), i))
    return PartitionResult(
        allocation=alloc,
        makespan=float((alloc / s).max()) if n else 0.0,
        algorithm="constant",
        iterations=deficit,
        intersections=0,
    )


def partition_constant_naive(
    n: int,
    speeds: "Sequence[float | SpeedFunction]",
    *,
    probe_size: float | None = None,
    **extra,
) -> PartitionResult:
    """The naive ``O(p^2)`` proportional algorithm of [6].

    Identical output to :func:`partition_constant` (including the
    number-or-:class:`~repro.core.speed_function.SpeedFunction` input
    overload); kept as a faithful baseline implementation (each leftover
    element triggers a linear scan over all processors).
    """
    reject_unknown_options("constant-naive", extra)
    s = _check_inputs(n, speeds, probe_size)
    alloc = np.floor(n * s / s.sum()).astype(np.int64)
    for _ in range(int(n - alloc.sum())):
        # Linear scan: the processor finishing soonest after one more element.
        finish = (alloc + 1) / s
        alloc[int(np.argmin(finish))] += 1
    return PartitionResult(
        allocation=alloc,
        makespan=float((alloc / s).max()) if n else 0.0,
        algorithm="constant-naive",
        iterations=0,
        intersections=0,
    )


def partition_even(n: int, p: int) -> PartitionResult:
    """Even distribution: ``n`` elements over ``p`` identical shares.

    The paper notes that when the single numbers are measured at the wrong
    problem size, the proportional distribution can be *inversely*
    proportional to the true speeds, in which case an even split is the
    safer choice.
    """
    if p <= 0:
        raise InfeasiblePartitionError(f"number of processors must be positive, got {p}")
    if n < 0:
        raise InfeasiblePartitionError(f"problem size must be non-negative, got {n}")
    base, extra = divmod(n, p)
    alloc = np.full(p, base, dtype=np.int64)
    alloc[:extra] += 1
    return PartitionResult(
        allocation=alloc,
        makespan=float(alloc.max()),  # time units of 1/speed with unit speed
        algorithm="even",
    )


def single_number_speeds(
    speed_functions: Sequence[SpeedFunction], probe_size: float
) -> np.ndarray:
    """Constant-model speeds measured at one fixed problem size.

    This reproduces how the paper's experiments obtain the single numbers:
    every processor runs the *same* benchmark size (e.g. multiplication of
    two dense 500x500 matrices) and reports its speed there — regardless of
    the size it will actually be assigned.  The returned array feeds
    :func:`partition_constant`.
    """
    return np.array(
        [sf.speed(min(probe_size, sf.max_size)) for sf in speed_functions],
        dtype=float,
    )

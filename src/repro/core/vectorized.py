"""Vectorised ray intersections for heterogeneous speed-function sets.

The partitioning algorithms spend essentially all their time intersecting
one ray with ``p`` speed graphs, ``O(log n)`` times.  The generic path
loops over ``p`` Python objects; this module packs the whole fleet into
padded 2-D arrays and resolves the whole ray in a handful of NumPy
operations (a fixed-depth branchless binary search over the knot slopes).

:func:`pack_speed_functions` builds the shared pack (or returns ``None``
when the fast path does not apply); callers that answer many queries over
the same fleet — most notably :mod:`repro.planner` — construct it once and
hand it to every algorithm call through their ``pack=`` parameter.
:func:`make_allocator` remains the one-shot entry point: it returns the
vectorised fast path when it applies and the plain loop otherwise, so the
algorithms stay representation-agnostic.  The figure-21 cost benchmark
exercises this path at ``p = 1080``.

Besides ray intersections the pack also evaluates per-processor speeds and
execution times for whole allocation vectors (:meth:`PiecewiseLinearSet.speeds`
/ :meth:`PiecewiseLinearSet.times`), bit-compatible with the per-object
``np.interp`` path, which lets the fine-tuning step batch its finish-time
evaluations.  :attr:`PiecewiseLinearSet.fingerprint` is a stable content
hash of the knot arrays used as a cache key by the planner.

Compilation protocol
--------------------
Every :class:`~repro.core.speed_function.SpeedFunction` may lower itself to
a :class:`~repro.core.speed_function.KnotRow` via ``as_knots()``: a
piecewise-linear *compute* curve plus three orthogonal decorations the
pack evaluates on top of the shared knot arrays —

``scale``
    speeds multiplied by a constant.  Queries divide their ray slope by
    the per-row scale instead of touching the knot arrays, so
    :meth:`PiecewiseLinearSet.rescaled` re-keys a pack in ``O(p)``
    (``adapt``'s EWMA drift corrections keep warm packs across updates).
``alpha`` / ``beta``
    the communication model ``t(x) = x/s(x) + alpha + beta*x``; the pack
    searches the *effective* slopes ``1/t(x_k)`` and solves the
    comm-adjusted crossing on the selected segment in closed form (one
    quadratic) instead of the per-object 200-step bisection.
``x_cap`` / ``s_cap``
    domain truncation: ray answers clamp to ``min(x, x_cap)`` *after* the
    base solve (exactly the per-object ``min(base.intersect_ray(c), cap)``
    semantics), and speeds freeze at ``s_cap``.

Conformance classes (verified by ``repro.verify`` differential cases and
the hypothesis bit-identity suite):

========================  =============================================
model                     compiled result vs per-object path
========================  =============================================
piecewise linear          bit-identical
constant                  bit-identical (``min(s0/c, max_size)``)
step (dense knots)        bit-identical (drop segments resolve to the
                          boundary exactly)
truncated(any exact)      bit-identical (post-solve ``min`` with the cap)
scaled(any exact)         bit-identical (slope divided by the scale, the
                          same operation the wrapper applies)
analytic, tabulated       bit-identical once tabulated (raw analytic
                          models do not compile — 200-step bisection has
                          no closed form)
comm-aware(any)           1e-9 class: closed-form segment solve versus
                          the object's 1e-12-relative bisection; nested
                          ``scaled`` factors fold into the knot speeds
nested scaled(scaled)     1e-9 class: one fused division versus two
========================  =============================================
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Callable, Sequence

import numpy as np

from .speed_function import KnotRow, SpeedFunction

__all__ = [
    "PiecewiseLinearSet",
    "make_allocator",
    "pack_speed_functions",
    "packing_disabled",
]

#: When set, :func:`pack_speed_functions` refuses to pack — the honest
#: per-object baseline for benchmarks and differential conformance runs.
_PACKING_DISABLED = False


@contextmanager
def packing_disabled():
    """Force the per-object path while the context is active.

    Algorithms that auto-pack (``partition_bisection`` and friends) fall
    back to the plain Python loop inside this context, which is what the
    vectorisation benchmarks and ``verify.differential`` use as the
    oracle.  Not thread-safe; intended for benchmarks and tests.
    """
    global _PACKING_DISABLED
    saved = _PACKING_DISABLED
    _PACKING_DISABLED = True
    try:
        yield
    finally:
        _PACKING_DISABLED = saved


def _record_pack(outcome: str, blocked_by: str | None = None) -> None:
    """Count pack attempts on the obs registry (satellite: visible fallbacks)."""
    from .. import obs

    if not obs.is_enabled():
        return
    if outcome == "fast_path":
        obs.get_registry().counter(
            "core.pack.fast_path",
            help="fleets compiled into the vectorised pack",
        ).inc()
    else:
        obs.get_registry().counter(
            "core.pack.fallback",
            labels={"blocked_by": blocked_by or "unknown"},
            help="fleets that fell back to the per-object path",
        ).inc()


class PiecewiseLinearSet:
    """Padded-array pack of many compiled speed functions.

    Rows are processors; columns are knots, right-padded by repeating each
    row's last knot (degenerate zero-length segments that the search never
    selects, because the padded ray slopes are strictly below any query
    that reaches them).  Rows carry the :class:`KnotRow` decorations —
    per-row ``scale``, comm terms ``alpha``/``beta`` and truncation caps —
    evaluated lazily on top of the shared knot arrays, each gated on a
    fleet-level flag so a pure piecewise-linear fleet executes exactly the
    original array expressions.
    """

    def __init__(
        self,
        functions: Sequence[SpeedFunction],
        rows: Sequence[KnotRow] | None = None,
    ):
        if rows is None:
            rows = [sf.as_knots() for sf in functions]
            missing = [i for i, r in enumerate(rows) if r is None]
            if missing:
                raise ValueError(
                    f"speed_functions[{missing[0]}] "
                    f"({type(functions[missing[0]]).__name__}) does not compile"
                )
        p = len(rows)
        widths = [r.num_knots for r in rows]
        m = max(widths)
        xs = np.empty((p, m))
        ss = np.empty((p, m))
        for i, r in enumerate(rows):
            k = r.num_knots
            xs[i, :k] = r.sizes
            ss[i, :k] = r.speeds
            xs[i, k:] = r.sizes[-1]
            ss[i, k:] = r.speeds[-1]
        self._xs = xs
        self._ss = ss
        self._widths = np.asarray(widths, dtype=np.int64)
        # Row decorations.
        self._scale = np.array([r.scale for r in rows])
        self._alpha = np.array([r.alpha for r in rows])
        self._beta = np.array([r.beta for r in rows])
        self._comm_mask = (self._alpha > 0) | (self._beta > 0)
        self._has_scale = bool(np.any(self._scale != 1.0))
        self._has_comm = bool(np.any(self._comm_mask))
        self._exact = np.array([r.exact for r in rows], dtype=bool)
        # Effective domain bound per row (the truncation cap when present)
        # and the inner (compute) speed there.
        knot_last_x = np.array([float(r.sizes[-1]) for r in rows])
        knot_last_s = np.array([float(r.speeds[-1]) for r in rows])
        caps = np.array(
            [np.inf if r.x_cap is None else float(r.x_cap) for r in rows]
        )
        self._has_trunc = bool(np.any(caps < knot_last_x))
        self._x_knot_last = knot_last_x
        self._x_last = np.minimum(caps, knot_last_x)
        self._s_last = np.where(
            caps < knot_last_x,
            np.array(
                [0.0 if r.s_cap is None else float(r.s_cap) for r in rows]
            ),
            knot_last_s,
        )
        # Effective ray slopes at each knot.  Pure rows: g = s/x.  Comm
        # rows: g' = 1/t(x_k) with t = x/s + alpha + beta*x, strictly
        # decreasing, bounded above by 1/alpha.
        with np.errstate(divide="ignore", invalid="ignore"):
            gs = ss / xs
            if self._has_comm:
                t_k = (
                    xs / ss
                    + self._alpha[:, None]
                    + self._beta[:, None] * xs
                )
                gs = np.where(self._comm_mask[:, None], 1.0 / t_k, gs)
        # Make padded slots unreachable: strictly below every real slope.
        pad = np.arange(m)[None, :] >= np.asarray(widths)[:, None]
        gs = np.where(pad, -np.inf, gs)
        self._gs = gs
        self._g_first = gs[:, 0]
        self._g_last = gs[np.arange(p), self._widths - 1]
        self._s_first = ss[:, 0]
        # Per-segment line parameters s = a + b*x (column j: segment j->j+1).
        # Unbounded rows put their last knot at infinity: their pad
        # segments produce nan parameters (inf - inf), but the search can
        # only land there when the shallow override fires, so the values
        # are never read.  Flat segments force the intercept to the knot
        # speed rather than risk 0 * inf.
        with np.errstate(divide="ignore", invalid="ignore"):
            dx = np.diff(xs, axis=1)
            b = np.where(dx > 0, np.diff(ss, axis=1) / np.where(dx > 0, dx, 1.0), 0.0)
            intercept = np.where(b != 0, ss[:, :-1] - b * xs[:, :-1], ss[:, :-1])
        # Step-model drop segments: zero the line so the segment solve
        # yields 0, which the [x0, x1] clip then lifts to the left
        # boundary — the exact ``sup`` answer for a ray crossing a
        # vertical speed drop.  (Comm rows: A=0, B=1, C=0 resolves the
        # quadratic to 0 with the same clip.)
        for i, r in enumerate(rows):
            if r.drops is not None and np.any(r.drops):
                d = np.asarray(r.drops, dtype=bool)
                b[i, : d.size][d] = 0.0
                intercept[i, : d.size][d] = 0.0
        self._seg_slope = b
        self._seg_intercept = intercept
        self._depth = max(int(np.ceil(np.log2(max(m, 2)))) + 1, 1)
        self._m = m
        self._rows = np.arange(p)
        self._fingerprint: str | None = None
        # Shared across rescaled() clones so the expensive knot digest is
        # computed once per knot set, not once per scale vector.
        self._static_digest_box: list[bytes | None] = [None]
        _record_pack_build()

    @property
    def p(self) -> int:
        return int(self._rows.size)

    @property
    def max_sizes(self) -> np.ndarray:
        """Per-processor memory bounds (caps applied); read-only."""
        v = self._x_last.view()
        v.flags.writeable = False
        return v

    @property
    def exact(self) -> bool:
        """True when every row evaluates bit-identically to its object."""
        return bool(np.all(self._exact))

    @property
    def scales(self) -> np.ndarray:
        """Per-row speed scale factors; read-only."""
        v = self._scale.view()
        v.flags.writeable = False
        return v

    def _static_digest(self) -> bytes:
        """Digest of everything except the scale vector (shared by clones)."""
        if self._static_digest_box[0] is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(np.asarray(self._xs.shape, dtype=np.int64).tobytes())
            h.update(self._widths.tobytes())
            h.update(np.ascontiguousarray(self._xs).tobytes())
            h.update(np.ascontiguousarray(self._ss).tobytes())
            h.update(self._alpha.tobytes())
            h.update(self._beta.tobytes())
            h.update(self._x_last.tobytes())
            self._static_digest_box[0] = h.digest()
        return self._static_digest_box[0]

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the packed knot arrays and decorations.

        Two packs built from speed functions with identical knots (and
        identical scale/comm/cap decorations) produce the same
        fingerprint, so it can key plan caches across fleet
        reconstructions.  Computed lazily and memoised; a
        :meth:`rescaled` clone re-hashes only its ``O(p)`` scale vector
        on top of the memoised knot digest.
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(self._static_digest())
            h.update(self._scale.tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def rescaled(self, factors: Sequence[float]) -> "PiecewiseLinearSet":
        """A pack with per-row speeds multiplied by ``factors`` — in ``O(p)``.

        All knot arrays, segment parameters and search structures are
        shared with ``self``; only the scale vector (and the fingerprint)
        are new.  This is the drift-correction hot path: ``adapt``'s EWMA
        updates rescale a fleet every observation, and rebuilding the
        ``O(p*m)`` pack each time would dominate the replan.

        Comm rows cannot be rescaled in place (the comm terms do not
        commute with a post-hoc speed scale): attempting it raises
        ``ValueError``.
        """
        f = np.asarray(factors, dtype=float)
        if f.shape != (self.p,):
            raise ValueError(
                f"factors must have shape ({self.p},), got {f.shape}"
            )
        if np.any(f <= 0):
            raise ValueError("scale factors must be positive")
        if self._has_comm and np.any(f[self._comm_mask] != 1.0):
            raise ValueError(
                "comm-aware rows cannot be rescaled in place; rebuild the pack"
            )
        clone = object.__new__(PiecewiseLinearSet)
        clone.__dict__.update(self.__dict__)
        clone._scale = self._scale * f
        clone._has_scale = bool(np.any(clone._scale != 1.0))
        # One scale layer over an unscaled row performs exactly the
        # wrapper's slope division; stacking factors fuses two divisions
        # into one and drops to the 1e-9 class.
        clone._exact = self._exact & ((f == 1.0) | (self._scale == 1.0))
        clone._fingerprint = None
        _record_pack_rescale()
        return clone

    # ------------------------------------------------------------------
    # Ray intersections
    # ------------------------------------------------------------------
    def allocations(self, slope: float) -> np.ndarray:
        """Size coordinates of the ray's intersection with every graph."""
        gs = self._gs
        # Scaled rows divide the query slope instead of their knots — the
        # exact operation _ScaledSpeedFunction.intersect_ray applies.
        cq = slope / self._scale if self._has_scale else slope
        # Branchless binary search for k = max{j : g[j] >= slope} per row.
        lo = np.zeros(self.p, dtype=np.int64)
        hi = np.full(self.p, self._m - 1, dtype=np.int64)
        for _ in range(self._depth):
            mid = (lo + hi + 1) >> 1
            cond = gs[self._rows, mid] >= cq
            lo = np.where(cond, mid, lo)
            hi = np.where(cond, hi, mid - 1)
        k = np.minimum(lo, self._m - 2)
        a = self._seg_intercept[self._rows, k]
        b = self._seg_slope[self._rows, k]
        denom = cq - b
        with np.errstate(divide="ignore", invalid="ignore"):
            x = np.where(denom > 0, a / np.where(denom > 0, denom, 1.0), np.inf)
        x0 = self._xs[self._rows, k]
        x1 = self._xs[self._rows, np.minimum(k + 1, self._m - 1)]
        x = np.clip(x, x0, x1)
        # Case 1: steeper than the first knot's ray -> constant extension.
        steep = cq >= self._g_first
        x = np.where(steep, self._s_first / cq, x)
        # Case 2: shallower than the last knot's ray -> clamp at the bound.
        x = np.where(cq <= self._g_last, self._x_knot_last, x)
        if self._has_comm:
            x = self._comm_allocations(slope, a, b, x0, x1, steep, cq, x)
        if self._has_trunc:
            x = np.minimum(x, self._x_last)
        if self._has_comm:
            priced = (
                self._comm_mask
                & (self._alpha > 0)
                & (1.0 / slope <= self._alpha)
            )
            x = np.where(priced, 0.0, x)
        return x

    def _comm_allocations(self, slope, a, b, x0, x1, steep, cq, x):
        """Closed-form comm crossings overlaid on the comm rows.

        Solves ``x/(a+bx) + alpha + beta*x = T`` (``T = 1/slope``) on the
        searched segment: ``A x^2 + B x + C = 0`` with ``A = beta*b``,
        ``B = 1 + alpha*b + beta*a - T*b``, ``C = a*(alpha - T)``; the
        upward crossing is ``(-B + sqrt(B^2-4AC)) / (2A)`` for either
        sign of ``A``, evaluated through the conjugate form
        ``2C / (-B - sqrt(B^2-4AC))`` when ``B > 0`` — algebraically the
        same root, but immune to the catastrophic ``-B + disc``
        cancellation that otherwise loses the crossing entirely at very
        shallow slopes (huge ``T``) over a declining segment.
        """
        T = 1.0 / slope
        aa, bb = self._alpha, self._beta
        A = bb * b
        B = 1.0 + aa * b + bb * a - T * b
        C = a * (aa - T)
        disc = np.sqrt(np.maximum(B * B - 4.0 * A * C, 0.0))
        nzA = A != 0
        stable = nzA & (B > 0)
        with np.errstate(divide="ignore", invalid="ignore"):
            xq = np.where(
                nzA,
                (-B + disc) / np.where(nzA, 2.0 * A, 1.0),
                np.where(B > 0, -C / np.where(B != 0, B, 1.0), x1),
            )
            xq = np.where(
                stable,
                2.0 * C / np.where(stable, -B - disc, 1.0),
                xq,
            )
        xq = np.clip(xq, x0, x1)
        # Constant-extension region: t(x) = x/s0 + alpha + beta*x = T.
        xq = np.where(
            steep, (T - aa) / (1.0 / self._s_first + bb), xq
        )
        xq = np.where(cq <= self._g_last, self._x_knot_last, xq)
        return np.where(self._comm_mask, xq, x)

    def allocations_many(self, slopes: np.ndarray) -> np.ndarray:
        """Ray intersections for a whole batch of slopes at once.

        Returns a ``(len(slopes), p)`` array whose row ``r`` is bit-identical
        to ``allocations(slopes[r])`` — the arithmetic is the same expression
        broadcast over the batch axis, so batched solvers (the planner's
        lockstep sweep) produce exactly the per-query results while paying
        the NumPy dispatch overhead once per step instead of once per query.
        """
        c = np.asarray(slopes, dtype=float)[:, None]  # (q, 1)
        q = c.shape[0]
        gs = self._gs
        rows = self._rows
        cq = c / self._scale[None, :] if self._has_scale else c
        if q * self.p * self._m <= 32_000_000:
            # Each row of ``gs`` is non-increasing (the strict-decrease
            # invariant, -inf padding), so the searched index is just the
            # count of entries at/above the slope, minus one — two large
            # vector operations instead of a dispatch-heavy search loop.
            # Identical k to the binary search, hence bit-identical output.
            count = (gs[None, :, :] >= np.asarray(cq)[:, :, None]).sum(axis=2)
            k = np.minimum(np.maximum(count - 1, 0), self._m - 2)
        else:
            lo = np.zeros((q, self.p), dtype=np.int64)
            hi = np.full((q, self.p), self._m - 1, dtype=np.int64)
            for _ in range(self._depth):
                mid = (lo + hi + 1) >> 1
                cond = gs[rows, mid] >= cq
                lo = np.where(cond, mid, lo)
                hi = np.where(cond, hi, mid - 1)
            k = np.minimum(lo, self._m - 2)
        a = self._seg_intercept[rows, k]
        b = self._seg_slope[rows, k]
        denom = cq - b
        with np.errstate(divide="ignore", invalid="ignore"):
            x = np.where(denom > 0, a / np.where(denom > 0, denom, 1.0), np.inf)
        x0 = self._xs[rows, k]
        x1 = self._xs[rows, np.minimum(k + 1, self._m - 1)]
        x = np.clip(x, x0, x1)
        steep = cq >= self._g_first
        x = np.where(steep, self._s_first / cq, x)
        x = np.where(cq <= self._g_last, self._x_knot_last, x)
        if self._has_comm:
            T = 1.0 / c
            aa, bb = self._alpha, self._beta
            A = bb * b
            B = 1.0 + aa * b + bb * a - T * b
            C = a * (aa - T)
            disc = np.sqrt(np.maximum(B * B - 4.0 * A * C, 0.0))
            nzA = A != 0
            stable = nzA & (B > 0)
            with np.errstate(divide="ignore", invalid="ignore"):
                xq = np.where(
                    nzA,
                    (-B + disc) / np.where(nzA, 2.0 * A, 1.0),
                    np.where(B > 0, -C / np.where(B != 0, B, 1.0), x1),
                )
                xq = np.where(
                    stable,
                    2.0 * C / np.where(stable, -B - disc, 1.0),
                    xq,
                )
            xq = np.clip(xq, x0, x1)
            xq = np.where(steep, (T - aa) / (1.0 / self._s_first + bb), xq)
            xq = np.where(cq <= self._g_last, self._x_knot_last, xq)
            x = np.where(self._comm_mask, xq, x)
        if self._has_trunc:
            x = np.minimum(x, self._x_last)
        if self._has_comm:
            priced = (
                self._comm_mask
                & (self._alpha > 0)
                & (1.0 / c <= self._alpha)
            )
            x = np.where(priced, 0.0, x)
        return x

    def total(self, slope: float) -> float:
        return float(self.allocations(slope).sum())

    # ------------------------------------------------------------------
    # Speeds and times
    # ------------------------------------------------------------------
    def _inner_speeds(self, x: np.ndarray) -> np.ndarray:
        """Compute-curve speeds by row (no scale or comm applied).

        Bit-compatible with the scalar path
        ``np.interp(x[i], knot_sizes, knot_speeds)`` used by
        :meth:`PiecewiseLinearSpeedFunction.speed`: the same segment is
        selected and the same ``s0 + (x-x0) * (s1-s0)/(x1-x0)`` arithmetic
        is applied, with the same clamping to the first/last (or cap)
        speeds outside the knot range.
        """
        x = np.asarray(x, dtype=float)
        xs, ss, rows = self._xs, self._ss, self._rows
        # Branchless binary search for j = max{col : xs[col] <= x} per row.
        # Padded columns repeat the last knot size, so for x below the bound
        # they are never selected; x at/above the bound is masked below.
        lo = np.zeros(self.p, dtype=np.int64)
        hi = np.full(self.p, self._m - 1, dtype=np.int64)
        for _ in range(self._depth):
            mid = (lo + hi + 1) >> 1
            cond = xs[rows, mid] <= x
            lo = np.where(cond, mid, lo)
            hi = np.where(cond, hi, mid - 1)
        j = np.minimum(lo, self._m - 2)
        dx = xs[rows, j + 1] - xs[rows, j]
        with np.errstate(divide="ignore", invalid="ignore"):
            slope = np.where(
                dx > 0,
                (ss[rows, j + 1] - ss[rows, j]) / np.where(dx > 0, dx, 1.0),
                0.0,
            )
        out = slope * (x - xs[rows, j]) + ss[rows, j]
        out = np.where(x <= xs[rows, 0], self._s_first, out)
        out = np.where(x >= self._x_last, self._s_last, out)
        return out

    def speeds(self, x: np.ndarray) -> np.ndarray:
        """Per-processor speeds at per-processor sizes ``x`` (one pass).

        ``x[i]`` is evaluated on row ``i``, with the row's decorations
        applied: scale multiplies the interpolated speed, comm rows report
        the effective speed ``x / t(x)``, capped rows freeze at the cap
        speed.  Bit-compatible with the per-object path for exact rows.
        """
        x = np.asarray(x, dtype=float)
        if not self._has_comm:
            out = self._inner_speeds(x)
            if self._has_scale:
                out = self._scale * out
            return out
        xc = np.minimum(x, self._x_last)
        inner = self._inner_speeds(xc)
        with np.errstate(divide="ignore", invalid="ignore"):
            # Mirror CommAwareSpeedFunction.speed term by term:
            # t = base.time(xc) + where(xc>0, alpha + beta*xc, 0).
            tb = np.where(xc > 0, xc / inner, 0.0)
            t = tb + np.where(xc > 0, self._alpha + self._beta * xc, 0.0)
            s_comm = np.where(x > 0, x / t, 0.0)
        s_comm = np.where((self._alpha == 0.0) & (x <= 0), inner, s_comm)
        out = np.where(self._comm_mask, s_comm, inner)
        if self._has_scale:
            out = self._scale * out
        return out

    def times(self, x: np.ndarray) -> np.ndarray:
        """Per-processor execution times at allocations ``x`` (one pass).

        Matches :meth:`SpeedFunction.time` semantics element-wise:
        ``times(0) == 0`` and ``times(x) == inf`` beyond the memory bound.
        Comm rows return the total (compute plus communication) time, the
        quantity their ``time`` override reports.
        """
        x = np.asarray(x, dtype=float)
        xc = np.minimum(x, self._x_last)
        s = self._inner_speeds(xc)
        if self._has_scale:
            s = self._scale * s
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(x > 0, x / s, 0.0)
            if self._has_comm:
                tb = np.where(xc > 0, xc / s, 0.0)
                tcomm = tb + np.where(
                    xc > 0, self._alpha + self._beta * xc, 0.0
                )
                t = np.where(self._comm_mask, tcomm, t)
        return np.where(x > self._x_last, np.inf, t)

    def time_one(self, i: int, x: float) -> float:
        """Scalar :meth:`times` for row ``i`` — the heap-refinement probe.

        Bit-identical to ``times(v)[i]`` with ``v[i] == x``; used by the
        fine-tuning heaps to evaluate one candidate finish time without
        paying a whole-fleet array pass.
        """
        x = float(x)
        x_last = float(self._x_last[i])
        if x > x_last:
            return float("inf")
        if x <= 0:
            return 0.0
        xc = min(x, x_last)
        w = int(self._widths[i])
        s = float(np.interp(xc, self._xs[i, :w], self._ss[i, :w]))
        if xc <= float(self._xs[i, 0]):
            s = float(self._s_first[i])
        if xc >= x_last:
            s = float(self._s_last[i])
        if self._has_scale:
            s = float(self._scale[i]) * s
        if self._has_comm and bool(self._comm_mask[i]):
            tb = xc / s if xc > 0 else 0.0
            extra = (
                float(self._alpha[i]) + float(self._beta[i]) * xc
                if xc > 0
                else 0.0
            )
            return tb + extra
        return x / s


def _record_pack_build() -> None:
    from .. import obs

    if obs.is_enabled():
        obs.get_registry().counter(
            "core.pack.build", help="full O(p*m) pack constructions"
        ).inc()


def _record_pack_rescale() -> None:
    from .. import obs

    if obs.is_enabled():
        obs.get_registry().counter(
            "core.pack.rescale", help="O(p) scale-vector pack clones"
        ).inc()


def pack_speed_functions(
    speed_functions: Sequence[SpeedFunction],
) -> PiecewiseLinearSet | None:
    """Pack a fleet into a shared :class:`PiecewiseLinearSet`, if possible.

    Every member is lowered through the compilation protocol
    (:meth:`SpeedFunction.as_knots`); mixed fleets of piecewise-linear,
    constant, step, truncated, comm-aware and scaled models all compile.
    Returns ``None`` when the fast path does not apply: fewer than two
    processors, any member whose ``as_knots`` returns ``None`` (raw
    analytic models, stacked comm decorations, unknown subclasses), or a
    degenerate fleet where every row has a single knot (no segments to
    search).  Fallbacks are recorded on the ``core.pack.fallback``
    counter, labelled by the blocking class, so they show up in
    ``repro stats`` instead of silently losing an order of magnitude.

    This is the hook that lets callers pack **once** per fleet and reuse
    the arrays across many partition calls through the algorithms'
    ``pack=`` parameter, instead of re-packing on every call.
    """
    if _PACKING_DISABLED:
        return None
    if len(speed_functions) < 2:
        _record_pack("fallback", "fleet_too_small")
        return None
    rows = []
    for sf in speed_functions:
        row = sf.as_knots()
        if row is None:
            _record_pack("fallback", type(sf).__name__)
            return None
        rows.append(row)
    if max(r.num_knots for r in rows) < 2:
        _record_pack("fallback", "degenerate_knots")
        return None
    _record_pack("fast_path")
    return PiecewiseLinearSet(speed_functions, rows=rows)


def make_allocator(
    speed_functions: Sequence[SpeedFunction],
) -> Callable[[float], np.ndarray]:
    """Fastest available ``slope -> allocations`` callable for a set.

    Uses :class:`PiecewiseLinearSet` when the whole fleet compiles through
    the knot protocol, and the generic per-object loop otherwise.
    One-shot convenience around :func:`pack_speed_functions`; repeated
    callers should pack once.
    """
    packed = pack_speed_functions(speed_functions)
    if packed is not None:
        return packed.allocations

    def generic(slope: float) -> np.ndarray:
        return np.array(
            [sf.intersect_ray(slope) for sf in speed_functions], dtype=float
        )

    return generic

"""Vectorised ray intersections for homogeneous speed-function sets.

The partitioning algorithms spend essentially all their time intersecting
one ray with ``p`` speed graphs, ``O(log n)`` times.  The generic path
loops over ``p`` Python objects; for the common case — every processor
modelled by a :class:`~repro.core.speed_function.PiecewiseLinearSpeedFunction`
(what the section-3.1 builder produces) — this module packs all knots into
padded 2-D arrays and resolves the whole ray in a handful of NumPy
operations (a fixed-depth branchless binary search over the knot slopes).

:func:`pack_speed_functions` builds the shared pack (or returns ``None``
when the fast path does not apply); callers that answer many queries over
the same fleet — most notably :mod:`repro.planner` — construct it once and
hand it to every algorithm call through their ``pack=`` parameter.
:func:`make_allocator` remains the one-shot entry point: it returns the
vectorised fast path when it applies and the plain loop otherwise, so the
algorithms stay representation-agnostic.  The figure-21 cost benchmark
exercises this path at ``p = 1080``.

Besides ray intersections the pack also evaluates per-processor speeds and
execution times for whole allocation vectors (:meth:`PiecewiseLinearSet.speeds`
/ :meth:`PiecewiseLinearSet.times`), bit-compatible with the per-object
``np.interp`` path, which lets the fine-tuning step batch its finish-time
evaluations.  :attr:`PiecewiseLinearSet.fingerprint` is a stable content
hash of the knot arrays used as a cache key by the planner.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Sequence

import numpy as np

from .speed_function import PiecewiseLinearSpeedFunction, SpeedFunction

__all__ = ["PiecewiseLinearSet", "make_allocator", "pack_speed_functions"]


class PiecewiseLinearSet:
    """Padded-array pack of many piecewise-linear speed functions.

    Rows are processors; columns are knots, right-padded by repeating each
    function's last knot (degenerate zero-length segments that the search
    never selects, because the padded ray slopes are strictly below any
    query that reaches them).
    """

    def __init__(self, functions: Sequence[PiecewiseLinearSpeedFunction]):
        p = len(functions)
        widths = [sf.num_knots for sf in functions]
        m = max(widths)
        xs = np.empty((p, m))
        ss = np.empty((p, m))
        for i, sf in enumerate(functions):
            k = sf.num_knots
            xs[i, :k] = sf.knot_sizes
            ss[i, :k] = sf.knot_speeds
            xs[i, k:] = sf.knot_sizes[-1]
            ss[i, k:] = sf.knot_speeds[-1]
        self._xs = xs
        self._ss = ss
        self._widths = np.asarray(widths, dtype=np.int64)
        with np.errstate(divide="ignore"):
            gs = ss / xs
        # Make padded slots unreachable: strictly below every real slope.
        pad = np.arange(m)[None, :] >= np.asarray(widths)[:, None]
        gs = np.where(pad, -np.inf, gs)
        self._gs = gs
        self._g_first = gs[:, 0]
        self._g_last = np.array([sf._gs[-1] for sf in functions])
        self._x_last = np.array([sf.knot_sizes[-1] for sf in functions])
        self._s_first = ss[:, 0]
        self._s_last = ss[:, -1]
        # Per-segment line parameters s = a + b*x (column j: segment j->j+1).
        dx = np.diff(xs, axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            b = np.where(dx > 0, np.diff(ss, axis=1) / np.where(dx > 0, dx, 1.0), 0.0)
        self._seg_slope = b
        self._seg_intercept = ss[:, :-1] - b * xs[:, :-1]
        self._depth = max(int(np.ceil(np.log2(max(m, 2)))) + 1, 1)
        self._m = m
        self._rows = np.arange(p)
        self._fingerprint: str | None = None

    @property
    def p(self) -> int:
        return int(self._rows.size)

    @property
    def max_sizes(self) -> np.ndarray:
        """Per-processor memory bounds (the last knot sizes); read-only."""
        v = self._x_last.view()
        v.flags.writeable = False
        return v

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the packed knot arrays.

        Two packs built from speed functions with identical knots produce
        the same fingerprint, so it can key plan caches across fleet
        reconstructions.  Computed lazily and memoised.
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(np.asarray(self._xs.shape, dtype=np.int64).tobytes())
            h.update(self._widths.tobytes())
            h.update(np.ascontiguousarray(self._xs).tobytes())
            h.update(np.ascontiguousarray(self._ss).tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def allocations(self, slope: float) -> np.ndarray:
        """Size coordinates of the ray's intersection with every graph."""
        gs = self._gs
        # Branchless binary search for k = max{j : g[j] >= slope} per row.
        lo = np.zeros(self.p, dtype=np.int64)
        hi = np.full(self.p, self._m - 1, dtype=np.int64)
        for _ in range(self._depth):
            mid = (lo + hi + 1) >> 1
            cond = gs[self._rows, mid] >= slope
            lo = np.where(cond, mid, lo)
            hi = np.where(cond, hi, mid - 1)
        k = np.minimum(lo, self._m - 2)
        a = self._seg_intercept[self._rows, k]
        b = self._seg_slope[self._rows, k]
        denom = slope - b
        with np.errstate(divide="ignore", invalid="ignore"):
            x = np.where(denom > 0, a / np.where(denom > 0, denom, 1.0), np.inf)
        x0 = self._xs[self._rows, k]
        x1 = self._xs[self._rows, np.minimum(k + 1, self._m - 1)]
        x = np.clip(x, x0, x1)
        # Case 1: steeper than the first knot's ray -> constant extension.
        steep = slope >= self._g_first
        x = np.where(steep, self._s_first / slope, x)
        # Case 2: shallower than the last knot's ray -> clamp at the bound.
        shallow = slope <= self._g_last
        x = np.where(shallow, self._x_last, x)
        return x

    def allocations_many(self, slopes: np.ndarray) -> np.ndarray:
        """Ray intersections for a whole batch of slopes at once.

        Returns a ``(len(slopes), p)`` array whose row ``r`` is bit-identical
        to ``allocations(slopes[r])`` — the arithmetic is the same expression
        broadcast over the batch axis, so batched solvers (the planner's
        lockstep sweep) produce exactly the per-query results while paying
        the NumPy dispatch overhead once per step instead of once per query.
        """
        c = np.asarray(slopes, dtype=float)[:, None]  # (q, 1)
        q = c.shape[0]
        gs = self._gs
        rows = self._rows
        if q * self.p * self._m <= 32_000_000:
            # Each row of ``gs`` is non-increasing (the strict-decrease
            # invariant, -inf padding), so the searched index is just the
            # count of entries at/above the slope, minus one — two large
            # vector operations instead of a dispatch-heavy search loop.
            # Identical k to the binary search, hence bit-identical output.
            count = (gs[None, :, :] >= c[:, :, None]).sum(axis=2)
            k = np.minimum(np.maximum(count - 1, 0), self._m - 2)
        else:
            lo = np.zeros((q, self.p), dtype=np.int64)
            hi = np.full((q, self.p), self._m - 1, dtype=np.int64)
            for _ in range(self._depth):
                mid = (lo + hi + 1) >> 1
                cond = gs[rows, mid] >= c
                lo = np.where(cond, mid, lo)
                hi = np.where(cond, hi, mid - 1)
            k = np.minimum(lo, self._m - 2)
        a = self._seg_intercept[rows, k]
        b = self._seg_slope[rows, k]
        denom = c - b
        with np.errstate(divide="ignore", invalid="ignore"):
            x = np.where(denom > 0, a / np.where(denom > 0, denom, 1.0), np.inf)
        x0 = self._xs[rows, k]
        x1 = self._xs[rows, np.minimum(k + 1, self._m - 1)]
        x = np.clip(x, x0, x1)
        x = np.where(c >= self._g_first, self._s_first / c, x)
        x = np.where(c <= self._g_last, self._x_last, x)
        return x

    def total(self, slope: float) -> float:
        return float(self.allocations(slope).sum())

    def speeds(self, x: np.ndarray) -> np.ndarray:
        """Per-processor speeds at per-processor sizes ``x`` (one pass).

        ``x[i]`` is evaluated on row ``i``.  Bit-compatible with the scalar
        path ``np.interp(x[i], knot_sizes, knot_speeds)`` used by
        :meth:`PiecewiseLinearSpeedFunction.speed`: the same segment is
        selected and the same ``s0 + (x-x0) * (s1-s0)/(x1-x0)`` arithmetic
        is applied, with the same clamping to the first/last knot speeds
        outside the knot range.
        """
        x = np.asarray(x, dtype=float)
        xs, ss, rows = self._xs, self._ss, self._rows
        # Branchless binary search for j = max{col : xs[col] <= x} per row.
        # Padded columns repeat the last knot size, so for x below the bound
        # they are never selected; x at/above the bound is masked below.
        lo = np.zeros(self.p, dtype=np.int64)
        hi = np.full(self.p, self._m - 1, dtype=np.int64)
        for _ in range(self._depth):
            mid = (lo + hi + 1) >> 1
            cond = xs[rows, mid] <= x
            lo = np.where(cond, mid, lo)
            hi = np.where(cond, hi, mid - 1)
        j = np.minimum(lo, self._m - 2)
        dx = xs[rows, j + 1] - xs[rows, j]
        with np.errstate(divide="ignore", invalid="ignore"):
            slope = np.where(
                dx > 0,
                (ss[rows, j + 1] - ss[rows, j]) / np.where(dx > 0, dx, 1.0),
                0.0,
            )
        out = slope * (x - xs[rows, j]) + ss[rows, j]
        out = np.where(x <= xs[rows, 0], self._s_first, out)
        out = np.where(x >= self._x_last, self._s_last, out)
        return out

    def times(self, x: np.ndarray) -> np.ndarray:
        """Per-processor execution times ``x_i / s_i(x_i)`` (one pass).

        Matches :meth:`SpeedFunction.time` semantics element-wise:
        ``times(0) == 0`` and ``times(x) == inf`` beyond the memory bound.
        """
        x = np.asarray(x, dtype=float)
        s = self.speeds(np.minimum(x, self._x_last))
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(x > 0, x / s, 0.0)
        return np.where(x > self._x_last, np.inf, t)


def pack_speed_functions(
    speed_functions: Sequence[SpeedFunction],
) -> PiecewiseLinearSet | None:
    """Pack a fleet into a shared :class:`PiecewiseLinearSet`, if possible.

    Returns ``None`` when the fast path does not apply: fewer than two
    processors, any non-piecewise-linear member (subclasses may override
    behaviour, so only exact :class:`PiecewiseLinearSpeedFunction` members
    qualify), or a degenerate fleet where every function has a single knot
    (no segments to search).

    This is the hook that lets callers pack **once** per fleet and reuse
    the arrays across many partition calls through the algorithms'
    ``pack=`` parameter, instead of re-packing on every call.
    """
    if len(speed_functions) >= 2 and all(
        type(sf) is PiecewiseLinearSpeedFunction for sf in speed_functions
    ):
        if max(sf.num_knots for sf in speed_functions) >= 2:
            return PiecewiseLinearSet(speed_functions)  # type: ignore[arg-type]
    return None


def make_allocator(
    speed_functions: Sequence[SpeedFunction],
) -> Callable[[float], np.ndarray]:
    """Fastest available ``slope -> allocations`` callable for a set.

    Uses :class:`PiecewiseLinearSet` when every function is exactly a
    piecewise-linear one (subclasses may override behaviour and fall back
    to the generic loop).  One-shot convenience around
    :func:`pack_speed_functions`; repeated callers should pack once.
    """
    packed = pack_speed_functions(speed_functions)
    if packed is not None:
        return packed.allocations

    def generic(slope: float) -> np.ndarray:
        return np.array(
            [sf.intersect_ray(slope) for sf in speed_functions], dtype=float
        )

    return generic

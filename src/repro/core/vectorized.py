"""Vectorised ray intersections for homogeneous speed-function sets.

The partitioning algorithms spend essentially all their time intersecting
one ray with ``p`` speed graphs, ``O(log n)`` times.  The generic path
loops over ``p`` Python objects; for the common case — every processor
modelled by a :class:`~repro.core.speed_function.PiecewiseLinearSpeedFunction`
(what the section-3.1 builder produces) — this module packs all knots into
padded 2-D arrays and resolves the whole ray in a handful of NumPy
operations (a fixed-depth branchless binary search over the knot slopes).

:func:`make_allocator` is the internal entry point: it returns the
vectorised fast path when it applies and the plain loop otherwise, so the
algorithms stay representation-agnostic.  The figure-21 cost benchmark
exercises this path at ``p = 1080``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .speed_function import PiecewiseLinearSpeedFunction, SpeedFunction

__all__ = ["PiecewiseLinearSet", "make_allocator"]


class PiecewiseLinearSet:
    """Padded-array pack of many piecewise-linear speed functions.

    Rows are processors; columns are knots, right-padded by repeating each
    function's last knot (degenerate zero-length segments that the search
    never selects, because the padded ray slopes are strictly below any
    query that reaches them).
    """

    def __init__(self, functions: Sequence[PiecewiseLinearSpeedFunction]):
        p = len(functions)
        widths = [sf.num_knots for sf in functions]
        m = max(widths)
        xs = np.empty((p, m))
        ss = np.empty((p, m))
        for i, sf in enumerate(functions):
            k = sf.num_knots
            xs[i, :k] = sf.knot_sizes
            ss[i, :k] = sf.knot_speeds
            xs[i, k:] = sf.knot_sizes[-1]
            ss[i, k:] = sf.knot_speeds[-1]
        self._xs = xs
        self._ss = ss
        with np.errstate(divide="ignore"):
            gs = ss / xs
        # Make padded slots unreachable: strictly below every real slope.
        pad = np.arange(m)[None, :] >= np.asarray(widths)[:, None]
        gs = np.where(pad, -np.inf, gs)
        self._gs = gs
        self._g_first = gs[:, 0]
        self._g_last = np.array([sf._gs[-1] for sf in functions])
        self._x_last = np.array([sf.knot_sizes[-1] for sf in functions])
        self._s_first = ss[:, 0]
        # Per-segment line parameters s = a + b*x (column j: segment j->j+1).
        dx = np.diff(xs, axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            b = np.where(dx > 0, np.diff(ss, axis=1) / np.where(dx > 0, dx, 1.0), 0.0)
        self._seg_slope = b
        self._seg_intercept = ss[:, :-1] - b * xs[:, :-1]
        self._depth = max(int(np.ceil(np.log2(max(m, 2)))) + 1, 1)
        self._m = m
        self._rows = np.arange(p)

    @property
    def p(self) -> int:
        return int(self._rows.size)

    def allocations(self, slope: float) -> np.ndarray:
        """Size coordinates of the ray's intersection with every graph."""
        gs = self._gs
        # Branchless binary search for k = max{j : g[j] >= slope} per row.
        lo = np.zeros(self.p, dtype=np.int64)
        hi = np.full(self.p, self._m - 1, dtype=np.int64)
        for _ in range(self._depth):
            mid = (lo + hi + 1) >> 1
            cond = gs[self._rows, mid] >= slope
            lo = np.where(cond, mid, lo)
            hi = np.where(cond, hi, mid - 1)
        k = np.minimum(lo, self._m - 2)
        a = self._seg_intercept[self._rows, k]
        b = self._seg_slope[self._rows, k]
        denom = slope - b
        with np.errstate(divide="ignore", invalid="ignore"):
            x = np.where(denom > 0, a / np.where(denom > 0, denom, 1.0), np.inf)
        x0 = self._xs[self._rows, k]
        x1 = self._xs[self._rows, np.minimum(k + 1, self._m - 1)]
        x = np.clip(x, x0, x1)
        # Case 1: steeper than the first knot's ray -> constant extension.
        steep = slope >= self._g_first
        x = np.where(steep, self._s_first / slope, x)
        # Case 2: shallower than the last knot's ray -> clamp at the bound.
        shallow = slope <= self._g_last
        x = np.where(shallow, self._x_last, x)
        return x

    def total(self, slope: float) -> float:
        return float(self.allocations(slope).sum())


def make_allocator(
    speed_functions: Sequence[SpeedFunction],
) -> Callable[[float], np.ndarray]:
    """Fastest available ``slope -> allocations`` callable for a set.

    Uses :class:`PiecewiseLinearSet` when every function is exactly a
    piecewise-linear one (subclasses may override behaviour and fall back
    to the generic loop).
    """
    if len(speed_functions) >= 2 and all(
        type(sf) is PiecewiseLinearSpeedFunction for sf in speed_functions
    ):
        packed = PiecewiseLinearSet(speed_functions)  # type: ignore[arg-type]
        return packed.allocations

    def generic(slope: float) -> np.ndarray:
        return np.array(
            [sf.intersect_ray(slope) for sf in speed_functions], dtype=float
        )

    return generic

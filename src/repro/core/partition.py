"""High-level entry point for set partitioning under the functional model.

Most users should call :func:`partition`::

    from repro import PartitionOptions, PiecewiseLinearSpeedFunction, partition

    sfs = [PiecewiseLinearSpeedFunction([1e4, 1e6, 1e8], [120.0, 100.0, 5.0]),
           PiecewiseLinearSpeedFunction([1e4, 1e6, 1e8], [300.0, 280.0, 90.0])]
    result = partition(10_000_000, sfs)
    result.allocation   # elements per processor, sums to n
    result.makespan     # modelled parallel time

``algorithm`` selects between the paper's algorithms; the default
``"combined"`` matches the paper's recommendation for real-life problems.
Options are typed: pass a :class:`~repro.core.options.PartitionOptions`
(or the equivalent loose keywords) and the front door forwards exactly
the subset the selected algorithm supports, raising a
:class:`~repro.exceptions.ConfigurationError` that names the algorithm
when an option cannot be honoured.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

from ..exceptions import ConfigurationError, InfeasiblePartitionError
from .bisection import partition_bisection
from .combined import partition_combined
from .exact import partition_exact
from .modified import partition_modified
from .options import PartitionOptions
from .result import PartitionResult
from .speed_function import SpeedFunction, validate_speed_functions

__all__ = ["partition", "ALGORITHMS", "SUPPORTED_OPTIONS"]

#: Registry of algorithm names accepted by :func:`partition`.
ALGORITHMS: dict[str, Callable[..., PartitionResult]] = {
    "bisection": partition_bisection,
    "modified": partition_modified,
    "combined": partition_combined,
    "exact": partition_exact,
}

#: Core :class:`PartitionOptions` fields each algorithm can honour.
SUPPORTED_OPTIONS: dict[str, frozenset[str]] = {
    "bisection": frozenset(
        {"mode", "refine", "max_iterations", "keep_trace", "region", "pack"}
    ),
    "combined": frozenset(
        {"mode", "refine", "max_iterations", "keep_trace", "region", "pack"}
    ),
    "modified": frozenset(
        {"refine", "max_iterations", "keep_trace", "region", "pack"}
    ),
    "exact": frozenset(),
}


def apply_bounds(
    speed_functions: Sequence[SpeedFunction], bounds: Sequence[float]
) -> list[SpeedFunction]:
    """Truncate speed graphs at per-processor element bounds ``b_i``.

    Implements the general problem statement's memory bounds by wrapping
    each function in a :class:`~repro.core.bounded.TruncatedSpeedFunction`
    (``math.inf`` disables a bound).  Raises
    :class:`~repro.exceptions.InfeasiblePartitionError` when the bounds
    are malformed.
    """
    from .bounded import TruncatedSpeedFunction  # deferred: bounded imports us

    if len(bounds) != len(speed_functions):
        raise InfeasiblePartitionError(
            f"got {len(bounds)} bounds for {len(speed_functions)} processors"
        )
    out: list[SpeedFunction] = []
    for sf, b in zip(speed_functions, bounds):
        out.append(sf if math.isinf(b) else TruncatedSpeedFunction(sf, b))
    return out


def partition(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    *,
    algorithm: str = "combined",
    options: PartitionOptions | None = None,
    validate: bool = False,
    **kwargs: Any,
) -> PartitionResult:
    """Partition an ``n``-element set over heterogeneous processors.

    Parameters
    ----------
    n:
        Number of elements.  The number of elements assigned to each
        processor will be proportional to its speed *at the size it is
        actually assigned* — the defining property of the functional model.
    speed_functions:
        One :class:`~repro.core.speed_function.SpeedFunction` per processor.
        Each function's ``max_size`` acts as that processor's memory bound
        ``b_i`` from the general problem statement.
    algorithm:
        One of ``"combined"`` (default), ``"bisection"``, ``"modified"``,
        ``"exact"``.
    options:
        Typed :class:`~repro.core.options.PartitionOptions`.  The core
        options (``mode``, ``refine``, ``region``, ``pack``, ...) may
        equally be given as loose keywords — but not both at once.  An
        option the selected algorithm cannot honour raises a
        :class:`~repro.exceptions.ConfigurationError` naming it.
    validate:
        When true, re-check the single-intersection invariant of every
        speed function before partitioning (``options.validate`` does the
        same).
    **kwargs:
        Algorithm-specific extras (e.g. ``flat_tol=`` for ``"combined"``,
        ``slope_iterations=`` for ``"exact"``); unknown keywords are
        rejected by the algorithm with a uniform ``ConfigurationError``.

    Returns
    -------
    PartitionResult
        ``result.allocation`` sums to exactly ``n``.
    """
    try:
        algo = ALGORITHMS[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(ALGORITHMS)}"
        ) from None
    option_fields = PartitionOptions.field_names()
    if options is None:
        core = {k: kwargs.pop(k) for k in list(kwargs) if k in option_fields}
        options = PartitionOptions(**core)
    else:
        overlap = sorted(set(kwargs) & option_fields)
        if overlap:
            raise ConfigurationError(
                "core options were given both via options= and as keywords: "
                + ", ".join(overlap)
            )
    if validate or options.validate:
        validate_speed_functions(speed_functions)
    sfs: Sequence[SpeedFunction] = speed_functions
    bounded = options.bounds is not None
    if bounded:
        sfs = apply_bounds(speed_functions, options.bounds)
        capacity = sum(sf.max_size for sf in sfs)
        if capacity < n:
            raise InfeasiblePartitionError(
                f"combined bounds ({capacity:g}) cannot store {n} elements"
            )
    call_kwargs = options.algorithm_kwargs(algorithm, SUPPORTED_OPTIONS[algorithm])
    result = algo(n, sfs, **call_kwargs, **kwargs)
    if bounded:
        result.algorithm = f"{result.algorithm}+bounded"
    return result

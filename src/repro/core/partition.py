"""High-level entry point for set partitioning under the functional model.

Most users should call :func:`partition`::

    from repro import PiecewiseLinearSpeedFunction, partition

    sfs = [PiecewiseLinearSpeedFunction([1e4, 1e6, 1e8], [120.0, 100.0, 5.0]),
           PiecewiseLinearSpeedFunction([1e4, 1e6, 1e8], [300.0, 280.0, 90.0])]
    result = partition(10_000_000, sfs)
    result.allocation   # elements per processor, sums to n
    result.makespan     # modelled parallel time

``algorithm`` selects between the paper's algorithms; the default
``"combined"`` matches the paper's recommendation for real-life problems.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..exceptions import ConfigurationError
from .bisection import partition_bisection
from .combined import partition_combined
from .exact import partition_exact
from .modified import partition_modified
from .result import PartitionResult
from .speed_function import SpeedFunction, validate_speed_functions

__all__ = ["partition", "ALGORITHMS"]

#: Registry of algorithm names accepted by :func:`partition`.
ALGORITHMS: dict[str, Callable[..., PartitionResult]] = {
    "bisection": partition_bisection,
    "modified": partition_modified,
    "combined": partition_combined,
    "exact": partition_exact,
}


def partition(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    *,
    algorithm: str = "combined",
    validate: bool = False,
    **kwargs,
) -> PartitionResult:
    """Partition an ``n``-element set over heterogeneous processors.

    Parameters
    ----------
    n:
        Number of elements.  The number of elements assigned to each
        processor will be proportional to its speed *at the size it is
        actually assigned* — the defining property of the functional model.
    speed_functions:
        One :class:`~repro.core.speed_function.SpeedFunction` per processor.
        Each function's ``max_size`` acts as that processor's memory bound
        ``b_i`` from the general problem statement.
    algorithm:
        One of ``"combined"`` (default), ``"bisection"``, ``"modified"``,
        ``"exact"``.
    validate:
        When true, re-check the single-intersection invariant of every
        speed function before partitioning.
    **kwargs:
        Forwarded to the selected algorithm (``mode=``, ``refine=``,
        ``keep_trace=``, ...).

    Returns
    -------
    PartitionResult
        ``result.allocation`` sums to exactly ``n``.
    """
    try:
        algo = ALGORITHMS[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(ALGORITHMS)}"
        ) from None
    if validate:
        validate_speed_functions(speed_functions)
    return algo(n, speed_functions, **kwargs)

"""Communication-aware partitioning (the paper's future-work extension).

Section 1 defers communication cost to future research but sketches the
ingredients: a per-processor-pair start-up time and transmission rate
(the Bhat et al. [13] model).  For distributions whose communication
overlaps across processors (each processor receives its own data over its
own link, as on a switched network), the extension fits the existing
geometric framework exactly:

the total time of processor ``i`` holding ``x`` elements becomes

.. math::  t_i(x) = x / s_i(x) + \\alpha_i + \\beta_i x

(compute + link start-up + transfer).  Define the *effective speed*
``s'_i(x) = x / t_i(x)``.  Then ``g'(x) = s'(x)/x = 1/t_i(x)`` is strictly
decreasing (``t_i`` is strictly increasing), so :class:`CommAwareSpeedFunction`
is a valid :class:`~repro.core.speed_function.SpeedFunction` and every
partitioning algorithm in the library balances *compute plus
communication* with no further changes.

One genuine difference from pure compute curves: ``g'`` is bounded above
by ``1/alpha`` — a sufficiently steep ray misses the graph entirely, which
geometrically encodes "for very small assignments the start-up dominates
and the processor is not worth using".  ``intersect_ray`` returns 0 in
that regime (the ``sup``-of-empty-set convention), and the bisection
algorithms then naturally assign such processors nothing.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ConfigurationError
from .speed_function import KnotRow, SpeedFunction

__all__ = ["CommAwareSpeedFunction"]


class CommAwareSpeedFunction(SpeedFunction):
    """Effective speed of a processor including its link cost.

    Parameters
    ----------
    base:
        The compute-only speed function.
    startup_s:
        Link start-up latency ``alpha`` (seconds), charged once per run.
    seconds_per_element:
        Transfer cost ``beta`` (seconds per element), e.g.
        ``bytes_per_element / link_rate``.
    """

    def __init__(
        self,
        base: SpeedFunction,
        *,
        startup_s: float = 0.0,
        seconds_per_element: float = 0.0,
    ):
        if startup_s < 0 or seconds_per_element < 0:
            raise ConfigurationError(
                "startup_s and seconds_per_element must be non-negative"
            )
        self._base = base
        self._alpha = float(startup_s)
        self._beta = float(seconds_per_element)
        self.max_size = base.max_size

    @property
    def base(self) -> SpeedFunction:
        """The compute-only speed function."""
        return self._base

    def total_time(self, x):
        """Compute-plus-communication time at allocation ``x``."""
        x_arr = np.asarray(x, dtype=float)
        out = self._base.time(x_arr) + np.where(
            x_arr > 0, self._alpha + self._beta * x_arr, 0.0
        )
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(out)
        return out

    # -- SpeedFunction interface -------------------------------------------
    def speed(self, x):
        x_arr = np.asarray(x, dtype=float)
        t = self.total_time(np.minimum(x_arr, self.max_size))
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(x_arr > 0, x_arr / np.asarray(t, dtype=float), 0.0)
        # speed(0) is conventionally the zero-size limit x/t -> 0 when
        # alpha > 0; report the base speed instead so plots stay sensible.
        if self._alpha == 0:
            out = np.where(x_arr > 0, out, self._base.speed(x_arr))
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(out)
        return out

    def time(self, x):
        """Override: the execution time *is* the total time here."""
        x_arr = np.asarray(x, dtype=float)
        out = np.where(
            x_arr > self.max_size, math.inf, self.total_time(np.minimum(x_arr, self.max_size))
        )
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(out)
        return out

    def g(self, x):
        """``g'(x) = 1/t(x)`` — strictly decreasing, bounded by ``1/alpha``."""
        x_arr = np.asarray(x, dtype=float)
        t = np.asarray(self.total_time(x_arr), dtype=float)
        with np.errstate(divide="ignore"):
            out = np.where(x_arr > 0, 1.0 / t, math.inf if self._alpha == 0 else 1.0 / self._alpha)
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(out)
        return out

    def intersect_ray(self, slope: float) -> float:
        if slope <= 0:
            raise ValueError(f"ray slope must be positive, got {slope!r}")
        # Solve 1/t(x) = slope, i.e. t(x) = 1/slope, by bisection on the
        # strictly increasing t.
        target = 1.0 / slope
        if self._alpha > 0 and target <= self._alpha:
            # Even an empty assignment would cost more than the budget the
            # ray implies: the processor is priced out.
            return 0.0
        hi = self.max_size
        if self.total_time(hi) <= target:
            return float(hi)
        lo = 0.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.total_time(mid) <= target:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-12 * max(hi, 1.0):
                break
        # Return the inner endpoint: t(lo) <= target holds by construction,
        # so g(lo) >= slope exactly (sup semantics), whereas the midpoint
        # can overshoot by half the final bracket width.
        return float(lo)

    def as_knots(self) -> KnotRow | None:
        """Compile by decorating the compute row with ``alpha``/``beta``.

        The pack keeps the *compute* knots and solves the comm-adjusted
        crossing ``x/s(x) + alpha + beta*x = 1/c`` per segment in closed
        form (a quadratic), instead of this class's 200-iteration scalar
        bisection — so compiled allocations agree with the per-object path
        only to the bisection's 1e-12 relative tolerance, and the row is
        flagged ``exact=False`` (the documented 1e-9 conformance class).
        A scale carried by the compute row is folded into the knot speeds
        here: comm terms do not commute with post-hoc rescaling, so a
        comm row can never be rescaled in place.  Stacked comm decorations
        fall back to the per-object path.
        """
        from dataclasses import replace

        row = self._base.as_knots()
        if row is None or row.alpha != 0.0 or row.beta != 0.0:
            return None
        if row.scale != 1.0:
            row = replace(
                row,
                speeds=row.speeds * row.scale,
                s_cap=None if row.s_cap is None else row.s_cap * row.scale,
                scale=1.0,
            )
        return replace(
            row, alpha=self._alpha, beta=self._beta, exact=False
        )

    def __repr__(self) -> str:
        return (
            f"CommAwareSpeedFunction({self._base!r}, startup={self._alpha:g}s, "
            f"per_element={self._beta:g}s)"
        )

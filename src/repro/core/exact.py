"""Reference optimal integer partitioner via binary search on the makespan.

The paper notes that an "ideal" shape-insensitive ``O(p log n)`` bisection
algorithm is an open challenge.  This module provides the closest practical
thing: a makespan binary search used throughout the test-suite as ground
truth and in the ablation benchmarks as an upper baseline.

The idea: an allocation with makespan at most ``T`` gives every processor at
most ``x_i(T)`` elements, where ``x_i(T)`` is the largest integer with
``t_i(x) <= T``.  Because ``t_i(x) <= T`` is equivalent to ``g_i(x) >= 1/T``
and ``g`` is strictly decreasing, ``x_i(T) = floor(intersect_ray(1/T))`` —
one ray intersection per processor.  ``T`` is feasible iff
``sum_i x_i(T) >= n``; feasibility is monotone in ``T``, so a binary search
on the ray slope ``c = 1/T`` finds the optimal makespan to float precision
in ``O(p log n log(1/eps))``.  The final allocation floors ``x_i(T*)`` and
sheds any surplus from the processors currently finishing last (which can
only reduce the makespan).
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from ..exceptions import ConvergenceError, InfeasiblePartitionError
from .options import reject_unknown_options
from .geometry import initial_bracket
from .vectorized import make_allocator
from .refine import makespan
from .result import PartitionResult
from .speed_function import SpeedFunction

__all__ = ["partition_exact"]

_SLOPE_ITERATIONS = 120


def _floor_allocations(alloc_at, slope: float, cap: float) -> np.ndarray:
    # Clamp before flooring: a processor with an unbounded (or huge)
    # memory limit can report a real allocation far beyond 2**63 at a
    # shallow slope, and floor().astype(int64) would overflow to
    # INT64_MIN — turning the integer feasibility predicate negative and
    # mislabelling feasible instances infeasible.  No processor ever
    # needs more than the n being partitioned, so n is an exact cap.
    return np.floor(np.minimum(alloc_at(slope), cap)).astype(np.int64)


def partition_exact(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    *,
    slope_iterations: int = _SLOPE_ITERATIONS,
    **extra,
) -> PartitionResult:
    """Makespan-optimal integer partition of ``n`` elements.

    Raises :class:`~repro.exceptions.InfeasiblePartitionError` when ``n``
    exceeds the combined memory bounds.
    """
    reject_unknown_options("exact", extra)
    p = len(speed_functions)
    if n == 0:
        return PartitionResult(
            allocation=np.zeros(p, dtype=np.int64),
            makespan=0.0,
            algorithm="exact",
        )
    alloc_at = make_allocator(speed_functions)
    region = initial_bracket(speed_functions, n, allocator=alloc_at)  # also validates feasibility
    intersections = 3 * p
    # Bracket in slope space for the *integer* feasibility predicate.
    c_hi = region.upper  # steep: sum of floors <= n (usually infeasible)
    c_lo = region.lower  # shallow: sum of reals >= n, floors may fall short
    cap = float(n)
    for _ in range(200):
        alloc_lo = _floor_allocations(alloc_at, c_lo, cap)
        intersections += p
        if int(alloc_lo.sum()) >= n:
            break
        c_lo *= 0.5
    else:
        raise InfeasiblePartitionError(
            f"cannot reach an integer total of {n}; memory bounds saturate below it"
        )
    iterations = 0
    for _ in range(slope_iterations):
        mid = 0.5 * (c_hi + c_lo)
        if not (c_lo < mid < c_hi):
            break
        alloc_mid = _floor_allocations(alloc_at, mid, cap)
        intersections += p
        iterations += 1
        if int(alloc_mid.sum()) >= n:
            c_lo = mid
            alloc_lo = alloc_mid
        else:
            c_hi = mid
    alloc = alloc_lo.copy()
    surplus = int(alloc.sum()) - n
    if surplus < 0:  # pragma: no cover - guarded by the bracketing loop
        raise ConvergenceError("makespan search lost feasibility", iterations)
    if surplus:
        # Shed the surplus from the processors finishing last; each removal
        # weakly decreases the makespan.
        heap = [
            (-float(sf.time(int(alloc[i]))), i)
            for i, sf in enumerate(speed_functions)
            if alloc[i] > 0
        ]
        heapq.heapify(heap)
        for _ in range(surplus):
            _, i = heapq.heappop(heap)
            alloc[i] -= 1
            if alloc[i] > 0:
                heapq.heappush(
                    heap, (-float(speed_functions[i].time(int(alloc[i]))), i)
                )
    return PartitionResult(
        allocation=alloc,
        makespan=makespan(speed_functions, alloc),
        algorithm="exact",
        iterations=iterations,
        intersections=intersections,
        slope=c_lo,
    )

"""Reference optimal integer partitioner via binary search on the makespan.

The paper notes that an "ideal" shape-insensitive ``O(p log n)`` bisection
algorithm is an open challenge.  This module provides the closest practical
thing: a makespan binary search used throughout the test-suite as ground
truth and in the ablation benchmarks as an upper baseline.

The idea: an allocation with makespan at most ``T`` gives every processor at
most ``x_i(T)`` elements, where ``x_i(T)`` is the largest integer with
``t_i(x) <= T``.  Because ``t_i(x) <= T`` is equivalent to ``g_i(x) >= 1/T``
and ``g`` is strictly decreasing, ``x_i(T) = floor(intersect_ray(1/T))`` —
one ray intersection per processor.  ``T`` is feasible iff
``sum_i x_i(T) >= n``; feasibility is monotone in ``T``, so a binary search
on the ray slope ``c = 1/T`` finds the optimal makespan to float precision
in ``O(p log n log(1/eps))``.  The final allocation floors ``x_i(T*)`` and
sheds any surplus from the processors currently finishing last (which can
only reduce the makespan).
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from ..exceptions import ConvergenceError, InfeasiblePartitionError
from .options import reject_unknown_options
from .geometry import allocations, initial_bracket
from .vectorized import PiecewiseLinearSet, pack_speed_functions
from .refine import makespan
from .result import PartitionResult
from .speed_function import SpeedFunction

__all__ = ["partition_exact"]

_SLOPE_ITERATIONS = 120

#: Slopes evaluated per batched probe of the shallow-slope feasibility ladder.
_LADDER_CHUNK = 8


def _floor_allocations(alloc_at, slope: float, cap: float) -> np.ndarray:
    # Clamp before flooring: a processor with an unbounded (or huge)
    # memory limit can report a real allocation far beyond 2**63 at a
    # shallow slope, and floor().astype(int64) would overflow to
    # INT64_MIN — turning the integer feasibility predicate negative and
    # mislabelling feasible instances infeasible.  No processor ever
    # needs more than the n being partitioned, so n is an exact cap.
    return np.floor(np.minimum(alloc_at(slope), cap)).astype(np.int64)


def partition_exact(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    *,
    slope_iterations: int = _SLOPE_ITERATIONS,
    pack: PiecewiseLinearSet | None = None,
    **extra,
) -> PartitionResult:
    """Makespan-optimal integer partition of ``n`` elements.

    ``pack`` optionally supplies the shared
    :class:`~repro.core.vectorized.PiecewiseLinearSet` of the same
    functions (built per call when omitted and possible); it batches the
    shallow-slope feasibility ladder and the surplus-shedding heap probes
    with bit-identical results.

    Raises :class:`~repro.exceptions.InfeasiblePartitionError` when ``n``
    exceeds the combined memory bounds.
    """
    reject_unknown_options("exact", extra)
    p = len(speed_functions)
    if n == 0:
        return PartitionResult(
            allocation=np.zeros(p, dtype=np.int64),
            makespan=0.0,
            algorithm="exact",
        )
    if pack is None:
        pack = pack_speed_functions(speed_functions)
    alloc_at = (
        pack.allocations
        if pack is not None
        else (lambda c: allocations(speed_functions, c))
    )
    region = initial_bracket(
        speed_functions, n, allocator=alloc_at, pack=pack
    )  # also validates feasibility
    intersections = 3 * p
    # Bracket in slope space for the *integer* feasibility predicate.
    c_hi = region.upper  # steep: sum of floors <= n (usually infeasible)
    c_lo = region.lower  # shallow: sum of reals >= n, floors may fall short
    cap = float(n)
    alloc_lo = None
    if pack is not None:
        # Batched halving ladder: the slopes c_lo * 0.5**k are bitwise the
        # sequence the sequential loop visits (exact halvings), and the
        # reported intersection count is the sequential one.
        k = 0
        while k < 200 and alloc_lo is None:
            width = min(_LADDER_CHUNK, 200 - k)
            slopes = c_lo * 0.5 ** np.arange(width)
            floors = np.floor(
                np.minimum(pack.allocations_many(slopes), cap)
            ).astype(np.int64)
            hits = np.nonzero(floors.sum(axis=1) >= n)[0]
            if hits.size:
                j = int(hits[0])
                alloc_lo = floors[j]
                c_lo = float(slopes[j])
                intersections += (k + j + 1) * p
            else:
                k += width
                c_lo = float(slopes[-1] * 0.5)
        if alloc_lo is None:
            raise InfeasiblePartitionError(
                f"cannot reach an integer total of {n}; memory bounds "
                "saturate below it"
            )
    else:
        for _ in range(200):
            alloc_lo = _floor_allocations(alloc_at, c_lo, cap)
            intersections += p
            if int(alloc_lo.sum()) >= n:
                break
            c_lo *= 0.5
        else:
            raise InfeasiblePartitionError(
                f"cannot reach an integer total of {n}; memory bounds saturate below it"
            )
    iterations = 0
    for _ in range(slope_iterations):
        mid = 0.5 * (c_hi + c_lo)
        if not (c_lo < mid < c_hi):
            break
        alloc_mid = _floor_allocations(alloc_at, mid, cap)
        intersections += p
        iterations += 1
        if int(alloc_mid.sum()) >= n:
            c_lo = mid
            alloc_lo = alloc_mid
        else:
            c_hi = mid
    alloc = alloc_lo.copy()
    surplus = int(alloc.sum()) - n
    if surplus < 0:  # pragma: no cover - guarded by the bracketing loop
        raise ConvergenceError("makespan search lost feasibility", iterations)
    if surplus:
        # Shed the surplus from the processors finishing last; each removal
        # weakly decreases the makespan.  The pack evaluates all initial
        # finish times in one pass and re-probes one row per pop.
        if pack is not None:
            t_all = pack.times(alloc.astype(float))
            heap = [
                (-float(t_all[i]), int(i)) for i in np.nonzero(alloc > 0)[0]
            ]
        else:
            heap = [
                (-float(sf.time(int(alloc[i]))), i)
                for i, sf in enumerate(speed_functions)
                if alloc[i] > 0
            ]
        heapq.heapify(heap)
        for _ in range(surplus):
            _, i = heapq.heappop(heap)
            alloc[i] -= 1
            if alloc[i] > 0:
                t = (
                    pack.time_one(i, int(alloc[i]))
                    if pack is not None
                    else float(speed_functions[i].time(int(alloc[i])))
                )
                heapq.heappush(heap, (-t, i))
    return PartitionResult(
        allocation=alloc,
        makespan=makespan(speed_functions, alloc, pack=pack),
        algorithm="exact",
        iterations=iterations,
        intersections=intersections,
        slope=c_lo,
    )

"""Fine-tuning: turning a continuous line solution into an integer allocation.

The bisection algorithms stop once the region between the two bounding lines
contains no line through integer points of the graphs (section 2); the
remaining job is to pick integer allocations ``x_i`` with ``sum(x_i) == n``
that minimise the parallel execution time ``max_i x_i / s_i(x_i)``.

Two procedures are provided:

:func:`refine_greedy` (default)
    Floor the allocations of the steeper bounding line (whose total is
    <= n), then hand out the remaining elements one at a time, always to
    the processor whose finish time after receiving one more element is
    smallest.  Because each processor's execution time is an increasing
    function of its allocation (the paper's standing assumption
    ``t_x >= t_y`` for ``x >= y``), this greedy is optimal for the min-max
    objective; the test-suite brute-force-verifies this on small instances.
    With a binary heap the cost is ``O(p + d*log p)`` where ``d < 2p`` after
    a converged bisection, matching the paper's ``O(p log p)`` fine-tuning
    bound.

:func:`refine_paper`
    The literal procedure of the paper (figure 9): collect the ``2p``
    integer candidate points adjacent to the two bounding lines, evaluate
    their execution times, sort, and pick the ``p`` best consistent with
    ``sum == n``.  Falls back to :func:`refine_greedy` when the candidate
    set cannot reach the required total (which the paper's description
    leaves implicit).
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..exceptions import InfeasiblePartitionError
from .speed_function import SpeedFunction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .vectorized import PiecewiseLinearSet

__all__ = ["makespan", "refine_greedy", "refine_paper"]


def makespan(
    speed_functions: Sequence[SpeedFunction],
    allocation: Sequence[int],
    *,
    pack: "PiecewiseLinearSet | None" = None,
) -> float:
    """Parallel execution time of an allocation: ``max_i t_i(x_i)``.

    ``pack`` optionally supplies the shared
    :class:`~repro.core.vectorized.PiecewiseLinearSet` of the same
    functions, replacing the ``p`` per-object time evaluations with one
    vectorised pass (bit-identical results).
    """
    if pack is not None:
        return float(
            pack.times(np.asarray(allocation, dtype=np.int64).astype(float)).max()
        )
    return float(
        max(
            sf.time(int(x))
            for sf, x in zip(speed_functions, allocation, strict=True)
        )
    )


def _clip_to_bounds(
    speed_functions: Sequence[SpeedFunction], allocation: np.ndarray
) -> np.ndarray:
    bounds = np.array(
        [
            sf.max_size if math.isinf(sf.max_size) else math.floor(sf.max_size)
            for sf in speed_functions
        ],
        dtype=float,
    )
    return np.minimum(allocation, bounds)


def refine_greedy(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    base_allocation: Sequence[float],
    *,
    pack: "PiecewiseLinearSet | None" = None,
) -> np.ndarray:
    """Optimal integer completion of a fractional under-allocation.

    Parameters
    ----------
    n:
        Total number of elements to distribute.
    speed_functions:
        One speed function per processor.
    base_allocation:
        Fractional allocations whose floors sum to at most ``n`` (typically
        the intersections with the steeper bounding line).  Values are
        floored and clipped to each processor's memory bound.
    pack:
        Optional shared :class:`~repro.core.vectorized.PiecewiseLinearSet`
        of the same functions.  When given, the initial floor/heap build
        evaluates all ``p`` finish times in one vectorised pass instead of
        ``p`` per-object Python calls; the result is bit-identical (the
        heap pops in strict ``(time, index)`` order either way).

    Returns
    -------
    numpy.ndarray
        Integer allocations summing to exactly ``n``.

    Raises
    ------
    InfeasiblePartitionError
        If the floors already exceed ``n`` or the memory bounds make the
        total unreachable.
    """
    base = np.floor(np.asarray(base_allocation, dtype=float))
    if pack is not None:
        bounds = pack.max_sizes
        base = np.minimum(base, np.floor(bounds))
    else:
        bounds = np.array([sf.max_size for sf in speed_functions], dtype=float)
        base = _clip_to_bounds(speed_functions, base)
    base = np.maximum(base, 0.0)
    alloc = base.astype(np.int64)
    deficit = int(n) - int(alloc.sum())
    if deficit < 0:
        raise InfeasiblePartitionError(
            f"base allocation already sums to {alloc.sum()} > n={n}"
        )
    if deficit == 0:
        return alloc
    if pack is not None:
        return _handout_batched(n, alloc, deficit, bounds, pack, speed_functions)
    # Min-heap keyed by the finish time each processor would have *after*
    # receiving one more element.
    heap = []
    for i, sf in enumerate(speed_functions):
        if alloc[i] + 1 <= bounds[i]:
            heapq.heappush(heap, (float(sf.time(alloc[i] + 1)), i))
    return _handout_heap(n, alloc, deficit, bounds, heap, speed_functions)


def _handout_heap(n, alloc, deficit, bounds, heap, speed_functions, pack=None):
    """The classic one-element-at-a-time greedy handout (reference path)."""
    for _ in range(deficit):
        if not heap:
            raise InfeasiblePartitionError(
                f"memory bounds prevent allocating all {n} elements"
            )
        _, i = heapq.heappop(heap)
        alloc[i] += 1
        if alloc[i] + 1 <= bounds[i]:
            t = (
                pack.time_one(i, int(alloc[i]) + 1)
                if pack is not None
                else float(speed_functions[i].time(alloc[i] + 1))
            )
            heapq.heappush(heap, (t, i))
    return alloc


#: Give up on round batching once this many rounds made little progress.
_MAX_SLOW_ROUNDS = 4


def _handout_batched(n, alloc, deficit, bounds, pack, speed_functions):
    """Exact batched simulation of the greedy heap handout.

    The heap pops candidates in ``(finish time, index)`` order, where each
    processor contributes the increasing sequence ``t_i(a_i+1), t_i(a_i+2),
    ...`` — a k-way merge.  A whole *prefix* of the sorted first candidates
    can therefore be handed one element each in a single vectorised round,
    as long as no selected processor's **second** candidate is cheaper than
    a later first candidate in the prefix: the prefix of length ``j`` is
    popped one-each by the heap iff ``u[s+1] >= min(second[0..s])`` never
    fails for ``s < j`` (tuples compared lexicographically; we use the
    strict float comparison, which is conservative on exact time ties and
    therefore never batches more than the heap would pop).

    Each round costs two vectorised time evaluations regardless of ``p``;
    in the common post-bisection state (all processors within one element
    of optimal) one or two rounds finish the whole deficit.  Pathological
    tie patterns fall back to the reference heap, so the result is always
    exactly the heap's.
    """
    slow_rounds = 0
    while deficit > 0:
        candidate = alloc + 1
        eligible = candidate <= bounds
        if not eligible.any():
            raise InfeasiblePartitionError(
                f"memory bounds prevent allocating all {n} elements"
            )
        t1 = np.where(eligible, pack.times(candidate.astype(float)), np.inf)
        order = np.argsort(t1, kind="stable")  # value ties fall back to index
        m = min(deficit, int(eligible.sum()))
        sel = order[:m]
        # times() is inf beyond the bound, so a processor with no second
        # candidate never constrains the prefix — exactly like the heap,
        # which simply has nothing to push for it.
        second = pack.times((alloc + 2).astype(float))[sel]
        u = t1[sel]
        good = u[1:] < np.minimum.accumulate(second)[:-1]
        j = 1 + (int(np.argmin(good)) if not good.all() else good.size)
        alloc[sel[:j]] += 1
        deficit -= j
        if j < max(1, m // 4):
            slow_rounds += 1
            if slow_rounds >= _MAX_SLOW_ROUNDS and deficit > 0:
                # Tie-heavy instance: finish with the reference heap.
                t_next = pack.times((alloc + 1).astype(float))
                heap = [
                    (float(t_next[i]), int(i))
                    for i in np.nonzero(alloc + 1 <= bounds)[0]
                ]
                heapq.heapify(heap)
                return _handout_heap(
                    n, alloc, deficit, bounds, heap, speed_functions, pack=pack
                )
    return alloc


def refine_paper(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    lower_allocation: Sequence[float],
    upper_allocation: Sequence[float],
    *,
    pack: "PiecewiseLinearSet | None" = None,
) -> np.ndarray:
    """The paper's 2p-candidate fine-tuning (figure 9).

    ``lower_allocation`` are the intersections with the steeper line (total
    <= n) and ``upper_allocation`` with the shallower line (total >= n).
    For each processor the two integer candidates are ``floor`` of the
    former and ``ceil`` of the latter; the procedure upgrades the cheapest
    processors (by execution time at the upgraded size, mirroring the
    paper's sort of the ``2p`` times) until the total reaches ``n``.
    ``pack`` batches the initial finish-time evaluations as in
    :func:`refine_greedy`.
    """
    if pack is not None:
        bounds_floor = np.floor(pack.max_sizes)
        low = np.floor(np.asarray(lower_allocation, dtype=float))
        low = np.maximum(np.minimum(low, bounds_floor), 0.0).astype(np.int64)
        high = np.ceil(np.asarray(upper_allocation, dtype=float))
        high = np.maximum(np.minimum(high, bounds_floor), 0.0).astype(np.int64)
    else:
        low = np.floor(np.asarray(lower_allocation, dtype=float))
        low = np.maximum(_clip_to_bounds(speed_functions, low), 0.0).astype(np.int64)
        high = np.ceil(np.asarray(upper_allocation, dtype=float))
        high = np.maximum(_clip_to_bounds(speed_functions, high), 0.0).astype(np.int64)
    high = np.maximum(high, low)
    total_low = int(low.sum())
    total_high = int(high.sum())
    if not (total_low <= n <= total_high):
        # The candidate lattice cannot express the target total (possible
        # with clamped bounds); defer to the always-correct greedy.
        return refine_greedy(n, speed_functions, low, pack=pack)
    # Upgrade processors from low to high one unit at a time, cheapest
    # resulting execution time first — the "choose the p best of the 2p
    # execution times" step expressed as a heap.
    alloc = low.copy()
    if pack is not None:
        upgradeable = np.nonzero(alloc < high)[0]
        times = pack.times((alloc + 1).astype(float))
        heap = [(float(times[i]), int(i)) for i in upgradeable]
        heapq.heapify(heap)
    else:
        heap = []
        for i, sf in enumerate(speed_functions):
            if alloc[i] < high[i]:
                heapq.heappush(heap, (float(sf.time(alloc[i] + 1)), i))
    deficit = n - total_low
    for _ in range(deficit):
        _, i = heapq.heappop(heap)
        alloc[i] += 1
        if alloc[i] < high[i]:
            # Candidate finish times come off the pack when one is
            # available (one scalar interpolation, no object dispatch),
            # keeping every heap key on the same evaluation path as the
            # vectorised initial build.
            t = (
                pack.time_one(int(i), int(alloc[i]) + 1)
                if pack is not None
                else float(speed_functions[i].time(alloc[i] + 1))
            )
            heapq.heappush(heap, (t, i))
    return alloc

"""Core of the reproduction: the functional performance model and the
geometric set-partitioning algorithms of Lastovetsky & Reddy (IPPS 2004).
"""

from .band import SpeedBand
from .bisection import partition_bisection, partition_bisection_many
from .bounded import partition_bounded
from .combined import partition_combined
from .comm_aware import CommAwareSpeedFunction
from .constant_model import (
    partition_constant,
    partition_constant_naive,
    partition_even,
    single_number_speeds,
)
from .exact import partition_exact
from .geometry import (
    SlopeRegion,
    allocations,
    ensure_bracket,
    initial_bracket,
    total_allocation,
)
from .hierarchical import HierarchicalResult, group_speed_function, partition_hierarchical
from .modified import partition_modified
from .multidim import SpeedSurface, partition_2d_fixed
from .options import PartitionOptions
from .partition import ALGORITHMS, SUPPORTED_OPTIONS, partition
from .rectangles import Rectangle, RectanglePartition, partition_rectangles
from .refine import makespan, refine_greedy, refine_paper
from .result import PartitionResult
from .step_model import StepSpeedFunction
from .speed_function import (
    AnalyticSpeedFunction,
    ConstantSpeedFunction,
    KnotRow,
    PiecewiseLinearSpeedFunction,
    SpeedFunction,
    validate_speed_functions,
)
from .vectorized import PiecewiseLinearSet, make_allocator, pack_speed_functions
from .weighted import WeightedPartitionResult, partition_weighted

__all__ = [
    "ALGORITHMS",
    "SUPPORTED_OPTIONS",
    "AnalyticSpeedFunction",
    "CommAwareSpeedFunction",
    "HierarchicalResult",
    "ConstantSpeedFunction",
    "KnotRow",
    "PartitionOptions",
    "PartitionResult",
    "PiecewiseLinearSet",
    "PiecewiseLinearSpeedFunction",
    "Rectangle",
    "RectanglePartition",
    "SlopeRegion",
    "SpeedBand",
    "SpeedFunction",
    "SpeedSurface",
    "StepSpeedFunction",
    "WeightedPartitionResult",
    "allocations",
    "ensure_bracket",
    "group_speed_function",
    "initial_bracket",
    "make_allocator",
    "makespan",
    "pack_speed_functions",
    "partition",
    "partition_2d_fixed",
    "partition_bisection",
    "partition_bisection_many",
    "partition_bounded",
    "partition_combined",
    "partition_constant",
    "partition_constant_naive",
    "partition_even",
    "partition_even",
    "partition_exact",
    "partition_hierarchical",
    "partition_modified",
    "partition_rectangles",
    "partition_weighted",
    "refine_greedy",
    "refine_paper",
    "single_number_speeds",
    "total_allocation",
    "validate_speed_functions",
]

"""The modified (solution-space) bisection algorithm (section 2, figs 10-12).

The basic algorithm bisects the *angular region* between two lines; its step
count therefore depends on how fast the optimal slope decays with ``n``.
The modified algorithm instead bisects the *space of solutions*: the
discrete set of lines through the origin that pass through a point of some
speed graph with an integer size coordinate.

Each step:

1. find the processor whose graph carries the most candidate lines inside
   the current region — i.e. the most integer sizes between its two
   bounding intersections;
2. split that processor's size interval at its midpoint ``(v+w)/2`` (the
   paper prints ``(v-w)/2``, an obvious typo) and draw the line through the
   origin and ``(mid, s(mid))``;
3. keep the half-region containing the optimal line.

Every ``p`` consecutive steps at least halve the total number of candidate
lines (the pigeonhole argument of figure 12), so at most ``p * log2(n)``
steps are needed and the overall complexity is ``O(p^2 log n)`` —
independent of the shapes of the speed graphs.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .. import obs
from ..exceptions import ConfigurationError, ConvergenceError
from .options import reject_unknown_options
from .geometry import SlopeRegion, allocations, ensure_bracket, initial_bracket
from .vectorized import PiecewiseLinearSet, pack_speed_functions
from .refine import makespan, refine_greedy, refine_paper
from .result import PartitionResult
from .speed_function import SpeedFunction

__all__ = ["partition_modified"]

_DEFAULT_MAX_ITERATIONS = 100_000


def _integer_counts(low: np.ndarray, high: np.ndarray) -> np.ndarray:
    """Number of integer sizes strictly inside each ``[low_i, high_i]``.

    Counts integers ``k`` with ``low_i < k < high_i`` — candidate
    intersection sizes that would distinguish two different solution lines
    within the region.
    """
    lo = np.floor(low) + 1.0
    hi = np.ceil(high) - 1.0
    # Cap below 2**53 so the float->int64 cast cannot overflow when an
    # unbounded processor reports an astronomically wide interval (the
    # cap only matters for the argmax over processors, where any two
    # capped counts compare equal — and both are far past convergence).
    return np.minimum(np.maximum(hi - lo + 1.0, 0.0), 2.0**53).astype(np.int64)


def partition_modified(
    n: int,
    speed_functions: Sequence[SpeedFunction],
    *,
    refine: str = "greedy",
    max_iterations: int = _DEFAULT_MAX_ITERATIONS,
    keep_trace: bool = False,
    region: SlopeRegion | None = None,
    pack: PiecewiseLinearSet | None = None,
    **extra,
) -> PartitionResult:
    """Partition ``n`` elements with the modified bisection algorithm.

    Parameters mirror :func:`~repro.core.bisection.partition_bisection`
    (including warm-start ``region`` repair and the reusable ``pack``);
    there is no ``mode`` because the split point is chosen on a speed graph
    rather than in slope space.
    """
    reject_unknown_options("modified", extra)
    p = len(speed_functions)
    if n == 0:
        return PartitionResult(
            allocation=np.zeros(p, dtype=np.int64),
            makespan=0.0,
            algorithm="modified",
        )
    if pack is None:
        pack = pack_speed_functions(speed_functions)
    alloc_at = (
        pack.allocations
        if pack is not None
        else (lambda c: allocations(speed_functions, c))
    )
    warm = region is not None
    if region is None:
        region = initial_bracket(speed_functions, n, allocator=alloc_at, pack=pack)
        probes = 1
    else:
        region, probes = ensure_bracket(
            region, n, speed_functions, allocator=alloc_at, pack=pack
        )
    low_alloc = alloc_at(region.upper)
    high_alloc = alloc_at(region.lower)
    intersections = (probes + 2) * p
    iterations = 0
    trace: list[tuple[float, float]] = []

    while np.any(high_alloc - low_alloc >= 1.0):
        if iterations >= max_iterations:
            raise ConvergenceError(
                f"modified bisection did not converge within {max_iterations} steps",
                iterations=iterations,
            )
        if region.upper - region.lower <= 1e-15 * region.upper:
            # The slope interval collapsed to float precision while some
            # allocation interval still spans integers: a graph segment lies
            # exactly on a ray through the origin (constant g), so every
            # allocation on it has the same execution time.  Fine-tuning
            # resolves the remainder.
            break
        counts = _integer_counts(low_alloc, high_alloc)
        if counts.sum() == 0:
            # No candidate line separates the bounds any more; the remaining
            # >=1-wide intervals touch integers only at their endpoints.
            break
        i = int(np.argmax(counts))
        mid_x = 0.5 * (low_alloc[i] + high_alloc[i])
        slope = speed_functions[i].g(mid_x)
        # Keep the dividing line strictly inside the region; degenerate
        # clamped intersections could push it onto a boundary.
        if not (region.lower < slope < region.upper) or not math.isfinite(slope):
            slope = region.midpoint("tangent")
        mid_alloc = alloc_at(slope)
        intersections += p
        total = float(mid_alloc.sum())
        if keep_trace:
            trace.append((slope, total))
        if total >= n:
            region = region.replace_lower(slope)
            high_alloc = mid_alloc
        else:
            region = region.replace_upper(slope)
            low_alloc = mid_alloc
        iterations += 1

    if refine == "greedy":
        alloc = refine_greedy(n, speed_functions, low_alloc, pack=pack)
    elif refine == "paper":
        alloc = refine_paper(n, speed_functions, low_alloc, high_alloc, pack=pack)
    else:
        raise ConfigurationError(f"unknown refine procedure {refine!r}")
    if obs.is_enabled():
        obs.record_solver(
            "modified",
            iterations=iterations,
            intersections=intersections,
            probes=probes,
            warm=warm,
        )
    return PartitionResult(
        allocation=alloc,
        makespan=makespan(speed_functions, alloc, pack=pack),
        algorithm="modified",
        iterations=iterations,
        intersections=intersections,
        slope=region.midpoint("tangent"),
        trace=trace,
        region=region,
    )

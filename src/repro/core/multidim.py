"""Multi-parameter problem sizes: the surface-to-curve reduction.

Section 3.1 of the paper explains that for the matrix applications the
problem size has *two* parameters ``(n1, n2)`` and the speed of a processor
is geometrically a surface ``s = f(n1, n2)``.  When one parameter is fixed
(``n2 = n`` for striped matrix multiplication, ``n1 = n`` for the LU column
panels), the surface reduces to a curve and the 1-D set-partitioning
algorithm applies directly.  This module implements that reduction:

* :class:`SpeedSurface` — a bilinear-interpolated speed surface built from
  measurements on a rectangular grid of ``(n1, n2)`` sizes;
* :func:`partition_2d_fixed` — slice every processor's surface at the fixed
  parameter, re-parameterise by total element count ``x = n1 * n2``, and run
  the ordinary partitioner.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .partition import partition
from .result import PartitionResult
from .speed_function import PiecewiseLinearSpeedFunction

__all__ = ["SpeedSurface", "partition_2d_fixed"]


class SpeedSurface:
    """Processor speed as a function of a two-parameter problem size.

    Parameters
    ----------
    n1_grid, n2_grid:
        Strictly increasing positive sample coordinates.
    speeds:
        2-D array, ``speeds[i, j]`` is the speed at ``(n1_grid[i],
        n2_grid[j])`` in elements per second (element count ``n1 * n2``).
    """

    def __init__(
        self,
        n1_grid: Sequence[float],
        n2_grid: Sequence[float],
        speeds: np.ndarray,
    ):
        g1 = np.asarray(n1_grid, dtype=float)
        g2 = np.asarray(n2_grid, dtype=float)
        sp = np.asarray(speeds, dtype=float)
        if g1.ndim != 1 or g2.ndim != 1:
            raise ConfigurationError("grids must be 1-D")
        if np.any(np.diff(g1) <= 0) or np.any(np.diff(g2) <= 0):
            raise ConfigurationError("grids must be strictly increasing")
        if np.any(g1 <= 0) or np.any(g2 <= 0):
            raise ConfigurationError("grid coordinates must be positive")
        if sp.shape != (g1.size, g2.size):
            raise ConfigurationError(
                f"speeds shape {sp.shape} does not match grids "
                f"({g1.size}, {g2.size})"
            )
        if np.any(sp < 0):
            raise ConfigurationError("speeds must be non-negative")
        self._g1 = g1
        self._g2 = g2
        self._sp = sp

    @property
    def n1_grid(self) -> np.ndarray:
        v = self._g1.view()
        v.flags.writeable = False
        return v

    @property
    def n2_grid(self) -> np.ndarray:
        v = self._g2.view()
        v.flags.writeable = False
        return v

    def speed(self, n1, n2) -> np.ndarray:
        """Bilinear interpolation of the speed at ``(n1, n2)`` (clamped)."""
        a = np.clip(np.asarray(n1, dtype=float), self._g1[0], self._g1[-1])
        b = np.clip(np.asarray(n2, dtype=float), self._g2[0], self._g2[-1])
        a, b = np.broadcast_arrays(a, b)
        i = np.clip(np.searchsorted(self._g1, a, side="right") - 1, 0, self._g1.size - 2)
        j = np.clip(np.searchsorted(self._g2, b, side="right") - 1, 0, self._g2.size - 2)
        x0, x1 = self._g1[i], self._g1[i + 1]
        y0, y1 = self._g2[j], self._g2[j + 1]
        tx = np.where(x1 > x0, (a - x0) / (x1 - x0), 0.0)
        ty = np.where(y1 > y0, (b - y0) / (y1 - y0), 0.0)
        s00 = self._sp[i, j]
        s10 = self._sp[i + 1, j]
        s01 = self._sp[i, j + 1]
        s11 = self._sp[i + 1, j + 1]
        return (
            s00 * (1 - tx) * (1 - ty)
            + s10 * tx * (1 - ty)
            + s01 * (1 - tx) * ty
            + s11 * tx * ty
        )

    def slice_fixed_n2(self, n2: float) -> PiecewiseLinearSpeedFunction:
        """Reduce the surface to a curve over element count with fixed ``n2``.

        The resulting 1-D function maps ``x = n1 * n2`` (total elements of
        an ``n1 x n2`` task) to the interpolated speed — exactly the
        reduction ``s = f(n1, n2) -> s = f(n1, n)`` of section 3.1.
        """
        speeds = self.speed(self._g1, np.full_like(self._g1, n2))
        sizes = self._g1 * float(n2)
        return PiecewiseLinearSpeedFunction(sizes, np.asarray(speeds, dtype=float))

    def slice_fixed_n1(self, n1: float) -> PiecewiseLinearSpeedFunction:
        """Reduce with the first parameter fixed (LU panel orientation)."""
        speeds = self.speed(np.full_like(self._g2, n1), self._g2)
        sizes = self._g2 * float(n1)
        return PiecewiseLinearSpeedFunction(sizes, np.asarray(speeds, dtype=float))


def partition_2d_fixed(
    total_elements: int,
    surfaces: Sequence[SpeedSurface],
    fixed_value: float,
    *,
    fixed_param: str = "n2",
    algorithm: str = "combined",
    **kwargs,
) -> PartitionResult:
    """Partition a two-parameter problem with one parameter fixed.

    Parameters
    ----------
    total_elements:
        Total number of elements to distribute, e.g. ``n * n`` for striping
        an ``n x n`` matrix over rows.
    surfaces:
        One :class:`SpeedSurface` per processor.
    fixed_value:
        Value of the fixed parameter (the matrix dimension ``n``).
    fixed_param:
        ``"n2"`` (stripe rows, MM orientation) or ``"n1"`` (stripe columns,
        LU orientation).
    algorithm, **kwargs:
        Forwarded to :func:`~repro.core.partition.partition`.

    Returns
    -------
    PartitionResult
        Allocations are in *elements*; divide by ``fixed_value`` for row or
        column counts.
    """
    if fixed_param == "n2":
        sfs = [s.slice_fixed_n2(fixed_value) for s in surfaces]
    elif fixed_param == "n1":
        sfs = [s.slice_fixed_n1(fixed_value) for s in surfaces]
    else:
        raise ConfigurationError(
            f"fixed_param must be 'n1' or 'n2', got {fixed_param!r}"
        )
    result = partition(total_elements, sfs, algorithm=algorithm, **kwargs)
    result.algorithm = f"{result.algorithm}+2d"
    return result

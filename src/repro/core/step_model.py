"""Piecewise-constant speed functions (the Drozdowski-Wolniewicz model).

The paper's closest prior work [19] models hierarchical memory with a
*piecewise constant* dependence of speed on problem size: full speed while
the task fits a memory level, a lower constant after each boundary.  The
paper argues this suits carefully designed applications on dedicated
systems, while common applications need the smooth functional model.

:class:`StepSpeedFunction` implements that model inside this library's
framework so the two can be compared head-to-head (see
``benchmarks/bench_ablation_step_model.py``): a non-increasing step
function satisfies the single-intersection invariant (``g(x) = s/x`` falls
within every flat segment and drops across boundaries), so all the
geometric partitioning algorithms accept it unchanged.  Ray intersections
use the ``sup {x : s(x) >= slope * x}`` convention, which lands on the
segment interior when the ray crosses a flat run and on the boundary when
it passes through a speed drop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import InvalidSpeedFunctionError
from .speed_function import KnotRow, PiecewiseLinearSpeedFunction, SpeedFunction

__all__ = ["StepSpeedFunction"]


class StepSpeedFunction(SpeedFunction):
    """Non-increasing piecewise-constant speed function.

    Parameters
    ----------
    boundaries:
        Strictly increasing positive sizes ``b_1 < ... < b_m``; the
        function equals ``speeds[i]`` on ``(b_{i-1}, b_i]`` (with
        ``b_0 = 0``) and ``b_m`` is the memory bound.
    speeds:
        Strictly decreasing positive speeds, one per segment — e.g. the
        in-cache, in-memory and in-swap rates of [19].
    """

    def __init__(self, boundaries: Sequence[float], speeds: Sequence[float]):
        bs = np.asarray(boundaries, dtype=float)
        ss = np.asarray(speeds, dtype=float)
        if bs.ndim != 1 or ss.ndim != 1 or bs.size != ss.size:
            raise InvalidSpeedFunctionError(
                "boundaries and speeds must be 1-D sequences of equal length"
            )
        if bs.size == 0:
            raise InvalidSpeedFunctionError("at least one segment is required")
        if np.any(bs <= 0) or np.any(np.diff(bs) <= 0):
            raise InvalidSpeedFunctionError(
                "boundaries must be positive and strictly increasing"
            )
        if np.any(ss <= 0):
            raise InvalidSpeedFunctionError("segment speeds must be positive")
        if np.any(np.diff(ss) >= 0):
            raise InvalidSpeedFunctionError(
                "segment speeds must strictly decrease (a speed *increase* "
                "at a memory boundary would let a ray cross the graph twice)"
            )
        self._bs = bs
        self._ss = ss
        self.max_size = float(bs[-1])

    # -- accessors ----------------------------------------------------------
    @property
    def boundaries(self) -> np.ndarray:
        v = self._bs.view()
        v.flags.writeable = False
        return v

    @property
    def segment_speeds(self) -> np.ndarray:
        v = self._ss.view()
        v.flags.writeable = False
        return v

    @property
    def num_segments(self) -> int:
        return int(self._bs.size)

    # -- SpeedFunction interface ------------------------------------------------
    def speed(self, x):
        x_arr = np.asarray(x, dtype=float)
        idx = np.searchsorted(self._bs, np.minimum(x_arr, self.max_size), side="left")
        idx = np.clip(idx, 0, self._bs.size - 1)
        out = self._ss[idx]
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(out)
        return out

    def intersect_ray(self, slope: float) -> float:
        if slope <= 0:
            raise ValueError(f"ray slope must be positive, got {slope!r}")
        # Largest x with s(x) >= slope * x.  On segment i the condition is
        # x <= s_i / slope; the candidate within the segment is
        # min(b_i, s_i/slope), valid if it exceeds the left edge b_{i-1}.
        best = 0.0
        left = 0.0
        for b, s in zip(self._bs, self._ss):
            candidate = min(float(b), s / slope)
            if candidate > left:
                best = candidate
            left = float(b)
        if best <= 0.0:
            # Even the first segment's flat run lies below the ray at its
            # left edge; the intersection degenerates to an arbitrarily
            # small size.  Return the exact crossing on the first plateau.
            best = self._ss[0] / slope
        return float(min(best, self.max_size))

    def as_knots(self) -> KnotRow:
        """Dense knot lowering: flat runs plus one-ulp-wide drop segments.

        Each boundary ``b_i`` contributes the knot ``(b_i, s_i)`` (the
        left-continuous ``sup`` value the per-object path reports) and,
        when another segment follows, the knot ``(nextafter(b_i), s_{i+1})``
        starting the next flat run one ulp later.  The connecting "drop"
        segments are marked so the pack resolves rays crossing them to
        exactly ``b_i`` instead of interpolating across the huge synthetic
        slope.  ``g`` stays strictly decreasing across the interleaved
        knots, so the row is a valid piecewise-linear curve.
        """
        bs, ss = self._bs, self._ss
        if bs.size == 1:
            # A single segment is a constant on (0, b]: use the two-knot
            # constant lowering (exact ``min(s/c, b)`` semantics).
            return KnotRow(
                sizes=np.array([bs[0] * 0.5, bs[0]]),
                speeds=np.array([ss[0], ss[0]]),
            )
        m = bs.size
        sizes = np.empty(2 * m - 1)
        speeds = np.empty(2 * m - 1)
        sizes[0::2] = bs
        speeds[0::2] = ss
        sizes[1::2] = np.nextafter(bs[:-1], np.inf)
        speeds[1::2] = ss[1:]
        drops = np.zeros(2 * m - 2, dtype=bool)
        drops[0::2] = True
        return KnotRow(sizes=sizes, speeds=speeds, drops=drops)

    def check_single_intersection(self, sizes=()) -> None:
        """Exact validation from the construction invariants."""
        # Construction already guarantees the invariant; re-run it so a
        # mutated instance would be caught.
        if np.any(np.diff(self._ss) >= 0) or np.any(np.diff(self._bs) <= 0):
            raise InvalidSpeedFunctionError("step function invariants violated")

    # -- conversions ----------------------------------------------------------
    @classmethod
    def from_memory_levels(
        cls,
        level_elements: Sequence[float],
        level_speeds: Sequence[float],
        capacity: float,
    ) -> "StepSpeedFunction":
        """Build from memory-level capacities, the [19] parameterisation.

        ``level_elements`` are the cumulative capacities of each level
        (cache, main memory, ...); ``capacity`` closes the last (swap)
        segment.
        """
        bs = list(level_elements) + [capacity]
        return cls(bs, level_speeds)

    def to_piecewise_linear(
        self, *, transition: float = 1e-6
    ) -> PiecewiseLinearSpeedFunction:
        """Smooth the steps into a (steep) piecewise-linear function.

        ``transition`` is the relative width of each jump.  Useful for
        comparing the two model families on identical machinery.
        """
        xs: list[float] = []
        ss: list[float] = []
        left = self._bs[0] * transition
        for i, (b, s) in enumerate(zip(self._bs, self._ss)):
            xs.append(left)
            ss.append(float(s))
            xs.append(float(b))
            ss.append(float(s))
            left = float(b) * (1.0 + transition)
        return PiecewiseLinearSpeedFunction.from_points(zip(xs, ss))

    def __repr__(self) -> str:
        return (
            f"StepSpeedFunction({self.num_segments} segments, "
            f"max_size={self.max_size:g})"
        )

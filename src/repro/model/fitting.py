"""Band statistics and model-quality diagnostics.

Helpers around the model builder: estimating a fluctuation band's width
schedule from repeated noisy measurements (the paper's future-work
"additional parameter that reflects the level of workload fluctuations"),
and quantifying how far a fitted model strays from the ground truth.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.band import SpeedBand, linear_width_schedule
from ..core.speed_function import PiecewiseLinearSpeedFunction, SpeedFunction
from ..exceptions import ConfigurationError, MeasurementError

__all__ = ["estimate_band", "relative_deviation", "max_relative_deviation"]


def estimate_band(
    measure: Callable[[float], float],
    sizes: Sequence[float],
    *,
    repeats: int = 12,
) -> SpeedBand:
    """Estimate a machine's fluctuation band from repeated measurements.

    At each size the benchmark runs ``repeats`` times; the midline is the
    per-size mean, and the relative width (peak-to-peak spread over the
    mean) is fitted by a linear schedule over size — the shape the paper
    observes (~40 % shrinking to ~6 %).

    Returns a :class:`~repro.core.band.SpeedBand` over a piecewise-linear
    midline through the per-size means.
    """
    xs = np.asarray(sorted(float(s) for s in sizes), dtype=float)
    if xs.size < 2:
        raise ConfigurationError("need at least two sizes to estimate a band")
    if repeats < 2:
        raise ConfigurationError(f"repeats must be >= 2, got {repeats}")
    means = np.empty(xs.size)
    widths = np.empty(xs.size)
    for k, x in enumerate(xs):
        samples = np.array([float(measure(x)) for _ in range(repeats)])
        if np.any(samples < 0) or not np.all(np.isfinite(samples)):
            raise MeasurementError(f"invalid benchmark samples at size {x:g}")
        mean = float(samples.mean())
        if mean <= 0:
            raise MeasurementError(f"non-positive mean speed at size {x:g}")
        means[k] = mean
        widths[k] = float(samples.max() - samples.min()) / mean
    # Linear fit of width against size, clamped to a sane range.
    coeffs = np.polyfit(xs, widths, 1)
    w_small = float(np.clip(np.polyval(coeffs, xs[0]), 0.0, 0.95))
    w_large = float(np.clip(np.polyval(coeffs, xs[-1]), 0.0, 0.95))
    midline = PiecewiseLinearSpeedFunction(
        *_repair(xs, means)
    )
    if w_small >= w_large:
        schedule = linear_width_schedule(w_small, w_large, xs[0], xs[-1])
    else:
        # Fluctuations that (unusually) grow with size: fall back to the
        # conservative constant width.
        from ..core.band import constant_width_schedule

        schedule = constant_width_schedule(max(w_small, w_large))
    return SpeedBand(midline, schedule)


def _repair(xs: np.ndarray, ss: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    from .builder import repair_monotone_g

    return repair_monotone_g(xs, ss)


def relative_deviation(
    model: SpeedFunction, truth: SpeedFunction, sizes: Sequence[float]
) -> np.ndarray:
    """Pointwise relative error ``|model - truth| / truth`` on a grid."""
    xs = np.asarray(list(sizes), dtype=float)
    t = np.asarray(truth.speed(xs), dtype=float)
    m = np.asarray(model.speed(xs), dtype=float)
    if np.any(t <= 0):
        raise ConfigurationError("ground-truth speed must be positive on the grid")
    return np.abs(m - t) / t


def max_relative_deviation(
    model: SpeedFunction, truth: SpeedFunction, sizes: Sequence[float]
) -> float:
    """Largest relative error of the model over the grid."""
    return float(relative_deviation(model, truth, sizes).max())

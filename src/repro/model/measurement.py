"""Benchmark measurement harness.

Two measurement paths feed the model builder:

* **real measurements** — actually run a NumPy kernel on this host, time
  it (best-of-``repeats``, matching the paper's "repeated several times,
  with an averaging of the results" small-scale experiments) and convert
  to MFlops with the paper's formula ``speed = MF * n^3 / time``;
* **simulated measurements** — query a simulated machine's ground-truth
  band: the speed at size ``x`` is drawn from the machine's fluctuation
  band, which is how the reproduction "benchmarks" the Table 1/2 machines
  it cannot physically run on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs.timing import best_of
from ..core.band import SpeedBand
from ..core.speed_function import SpeedFunction
from ..exceptions import ConfigurationError, MeasurementError
from ..kernels import flops as _flops
from ..kernels.arrayops import array_ops
from ..kernels.lu import lu_factor
from ..kernels.matmul import matmul_blocked, matmul_poor, matmul_reference

__all__ = [
    "Measurement",
    "time_callable",
    "measure_mm_speed",
    "measure_lu_speed",
    "measure_arrayops_speed",
    "SimulatedBenchmark",
]


@dataclass(frozen=True)
class Measurement:
    """One benchmark observation.

    Attributes
    ----------
    size:
        Problem size in elements.
    seconds:
        Wall time of the kernel run (best of the repeats).
    speed:
        Absolute speed in MFlops.
    """

    size: float
    seconds: float
    speed: float


def time_callable(
    fn: Callable[[], object], *, repeats: int = 3, warmup: int = 1
) -> float:
    """Best-of-``repeats`` wall time of ``fn`` after ``warmup`` calls.

    The minimum is the standard robust estimator for compute kernels (any
    positive noise only ever slows a run down).  The timing loop itself is
    :func:`repro.obs.timing.best_of` — the one shared implementation —
    wrapped here in the measurement-harness error semantics.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    best = best_of(fn, repeats=repeats, warmup=warmup).seconds
    if best <= 0:
        raise MeasurementError("kernel ran faster than the clock resolution")
    return best


_MM_KERNELS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "reference": matmul_reference,
    "blocked": matmul_blocked,
    "poor": matmul_poor,
}


def measure_mm_speed(
    n1: int,
    n2: int | None = None,
    *,
    kernel: str = "reference",
    repeats: int = 3,
    rng: np.random.Generator | None = None,
) -> Measurement:
    """Measured MM speed on this host: ``A1 (n1 x n2) @ B1 (n2 x n1)``.

    With ``n2`` omitted the benchmark is square (the paper's Tables 3/4
    compare square against non-square of equal element count).  Speed uses
    ``2 * n1^2 * n2`` flops; size is the element count ``n1 * n2``
    (per stored input matrix, matching the tables' "size of matrix").
    """
    if n2 is None:
        n2 = n1
    if n1 <= 0 or n2 <= 0:
        raise ConfigurationError("matrix dimensions must be positive")
    try:
        fn = _MM_KERNELS[kernel]
    except KeyError:
        raise ConfigurationError(
            f"unknown MM kernel {kernel!r}; known: {sorted(_MM_KERNELS)}"
        ) from None
    rng = rng or np.random.default_rng(0)
    a = rng.standard_normal((n1, n2))
    b = rng.standard_normal((n2, n1))
    seconds = time_callable(lambda: fn(a, b), repeats=repeats)
    return Measurement(
        size=float(n1) * n2,
        seconds=seconds,
        speed=_flops.mflops(_flops.mm_flops_rect(n1, n2), seconds),
    )


def measure_lu_speed(
    n1: int,
    n2: int | None = None,
    *,
    block: int = 64,
    repeats: int = 3,
    rng: np.random.Generator | None = None,
) -> Measurement:
    """Measured LU speed on this host for a dense ``n1 x n2`` matrix."""
    if n2 is None:
        n2 = n1
    if n1 <= 0 or n2 <= 0:
        raise ConfigurationError("matrix dimensions must be positive")
    rng = rng or np.random.default_rng(0)
    # Diagonal dominance keeps the panel pivoting benign for timing runs.
    a = rng.standard_normal((n1, n2))
    k = min(n1, n2)
    a[np.arange(k), np.arange(k)] += float(max(n1, n2))
    seconds = time_callable(lambda: lu_factor(a, block=block), repeats=repeats)
    return Measurement(
        size=float(n1) * n2,
        seconds=seconds,
        speed=_flops.mflops(_flops.lu_flops_rect(n1, n2), seconds),
    )


def measure_arrayops_speed(
    n: int, *, repeats: int = 3, rng: np.random.Generator | None = None
) -> Measurement:
    """Measured streaming-kernel speed on this host over ``n`` elements."""
    if n <= 0:
        raise ConfigurationError("array length must be positive")
    rng = rng or np.random.default_rng(0)
    a = rng.standard_normal(n)
    seconds = time_callable(lambda: array_ops(a), repeats=repeats)
    return Measurement(
        size=float(n),
        seconds=seconds,
        speed=_flops.mflops(_flops.arrayops_flops(n), seconds),
    )


class SimulatedBenchmark:
    """Benchmark interface over a simulated machine.

    Wraps a ground-truth :class:`~repro.core.band.SpeedBand` (or bare
    :class:`~repro.core.speed_function.SpeedFunction`) and pretends to "run"
    the kernel at a given size: the returned speed is the band midline
    perturbed by a uniformly drawn position inside the band, drawn fresh
    for every call — the transient-load noise a real benchmark would see.

    Every call increments :attr:`experiments`, the cost metric the paper
    reports for building speed functions (5 points per machine sufficed).
    """

    def __init__(
        self,
        model: SpeedBand | SpeedFunction,
        rng: np.random.Generator | None = None,
    ):
        if isinstance(model, SpeedBand):
            self._band: SpeedBand | None = model
            self._sf = model.midline
        else:
            self._band = None
            self._sf = model
        self._rng = rng or np.random.default_rng(0)
        #: Number of benchmark invocations so far.
        self.experiments = 0

    @property
    def max_size(self) -> float:
        """Largest measurable problem size."""
        return self._sf.max_size

    def measure(self, size: float) -> float:
        """One benchmark run at ``size`` elements: returns speed (MFlops)."""
        if size <= 0:
            raise MeasurementError(f"problem size must be positive, got {size!r}")
        if size > self._sf.max_size:
            raise MeasurementError(
                f"problem of size {size:g} exceeds the machine capacity "
                f"{self._sf.max_size:g}"
            )
        self.experiments += 1
        mid = float(self._sf.speed(size))
        if self._band is None:
            return mid
        w = float(np.asarray(self._band.width_at(size)))
        lam = float(self._rng.uniform(-0.5, 0.5))
        return max(mid * (1.0 + lam * w), 0.0)

    def __call__(self, size: float) -> float:
        return self.measure(size)

"""Experimental model building: benchmarks -> piecewise speed functions."""

from .adaptive import AdaptiveModel, simplify_model

from .builder import (
    DEFAULT_EPSILON,
    BuiltModel,
    ModelBuildOptions,
    build_piecewise_model,
    repair_monotone_g,
    speeds_close,
    within_band,
)
from .fitting import estimate_band, max_relative_deviation, relative_deviation
from .measurement import (
    Measurement,
    SimulatedBenchmark,
    measure_arrayops_speed,
    measure_lu_speed,
    measure_mm_speed,
    time_callable,
)
from .online import FleetRefit, MachineRefit, OnlineBandRefitter

__all__ = [
    "AdaptiveModel",
    "BuiltModel",
    "DEFAULT_EPSILON",
    "FleetRefit",
    "MachineRefit",
    "Measurement",
    "ModelBuildOptions",
    "OnlineBandRefitter",
    "SimulatedBenchmark",
    "build_piecewise_model",
    "estimate_band",
    "max_relative_deviation",
    "measure_arrayops_speed",
    "measure_lu_speed",
    "measure_mm_speed",
    "relative_deviation",
    "repair_monotone_g",
    "simplify_model",
    "speeds_close",
    "time_callable",
    "within_band",
]

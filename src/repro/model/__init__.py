"""Experimental model building: benchmarks -> piecewise speed functions."""

from .adaptive import AdaptiveModel, simplify_model

from .builder import DEFAULT_EPSILON, BuiltModel, build_piecewise_model, repair_monotone_g
from .fitting import estimate_band, max_relative_deviation, relative_deviation
from .measurement import (
    Measurement,
    SimulatedBenchmark,
    measure_arrayops_speed,
    measure_lu_speed,
    measure_mm_speed,
    time_callable,
)

__all__ = [
    "AdaptiveModel",
    "BuiltModel",
    "DEFAULT_EPSILON",
    "Measurement",
    "SimulatedBenchmark",
    "build_piecewise_model",
    "estimate_band",
    "max_relative_deviation",
    "measure_arrayops_speed",
    "measure_lu_speed",
    "measure_mm_speed",
    "relative_deviation",
    "repair_monotone_g",
    "simplify_model",
    "time_callable",
]

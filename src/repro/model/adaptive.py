"""Online maintenance of fitted speed functions.

The paper closes with "the problems of efficient building and maintaining
of our model ... are subjects of our current research".  This module
implements the natural maintenance loop a deployment needs:

* every production run yields a free observation ``(size, realised speed)``;
* :class:`AdaptiveModel` checks it against the current band, blends
  out-of-band observations into the piecewise function (inserting or
  adjusting a knot, then restoring the ``g``-monotonicity invariant), and
* tracks *drift*: a streak of out-of-band observations signals that the
  machine's behaviour changed (new permanent workload, memory upgrade)
  and the model should be rebuilt from scratch.

:func:`simplify_model` prunes knots whose removal keeps the function
within a tolerance — keeping models small as observations accumulate.
"""

from __future__ import annotations

import numpy as np

from ..core.speed_function import PiecewiseLinearSpeedFunction
from ..exceptions import ConfigurationError
from .builder import repair_monotone_g

__all__ = ["AdaptiveModel", "simplify_model"]


def simplify_model(
    function: PiecewiseLinearSpeedFunction, *, eps: float = 0.05
) -> PiecewiseLinearSpeedFunction:
    """Drop knots whose removal changes the function by at most ``eps``.

    Greedy single pass: an interior knot is removed when the chord between
    its neighbours stays within relative ``eps`` of the current value at
    that knot.  Endpoints are always kept.  The result satisfies the same
    validity invariants (removing a knot from a valid function keeps ``g``
    monotone at the surviving knots; the new chord's intercept lies
    between the old segments' intercepts).
    """
    if not (0 < eps < 1):
        raise ConfigurationError(f"eps must be in (0, 1), got {eps!r}")
    xs = list(map(float, function.knot_sizes))
    ss = list(map(float, function.knot_speeds))
    keep = [True] * len(xs)
    i = 0
    while i + 2 < len(xs):
        left = i
        mid = i + 1
        right = i + 2
        # Chord value at the middle knot.
        frac = (xs[mid] - xs[left]) / (xs[right] - xs[left])
        chord = ss[left] + frac * (ss[right] - ss[left])
        scale = max(abs(ss[mid]), 1e-12 * max(ss))
        if abs(chord - ss[mid]) <= eps * scale:
            del xs[mid], ss[mid]
        else:
            i += 1
    out_xs, out_ss = repair_monotone_g(np.asarray(xs), np.asarray(ss))
    return PiecewiseLinearSpeedFunction(out_xs, out_ss)


class AdaptiveModel:
    """A speed-function model that learns from production observations.

    Parameters
    ----------
    function:
        The initial fitted model (from the section-3.1 builder).
    tolerance:
        Relative band half-width; observations within it are "explained"
        and ignored.
    smoothing:
        Weight of a new out-of-band observation against the current model
        value when updating (1.0 = trust the observation completely).
    drift_limit:
        Number of *consecutive* out-of-band observations after which
        :attr:`needs_rebuild` is raised.
    max_knots:
        The model is simplified back under this size when updates push the
        knot count above it.
    """

    def __init__(
        self,
        function: PiecewiseLinearSpeedFunction,
        *,
        tolerance: float = 0.05,
        smoothing: float = 0.5,
        drift_limit: int = 5,
        max_knots: int = 64,
    ):
        if not (0 < tolerance < 1):
            raise ConfigurationError(f"tolerance must be in (0, 1), got {tolerance!r}")
        if not (0 < smoothing <= 1):
            raise ConfigurationError(f"smoothing must be in (0, 1], got {smoothing!r}")
        if drift_limit < 1 or max_knots < 2:
            raise ConfigurationError("drift_limit >= 1 and max_knots >= 2 required")
        self._function = function
        self._tolerance = float(tolerance)
        self._smoothing = float(smoothing)
        self._drift_limit = int(drift_limit)
        self._max_knots = int(max_knots)
        #: Consecutive out-of-band observations.
        self.drift_streak = 0
        #: Total observations seen / absorbed.
        self.observations = 0
        self.updates = 0

    @property
    def function(self) -> PiecewiseLinearSpeedFunction:
        """The current model."""
        return self._function

    @property
    def needs_rebuild(self) -> bool:
        """True once drift has persisted for ``drift_limit`` observations."""
        return self.drift_streak >= self._drift_limit

    def observe(self, size: float, speed: float) -> bool:
        """Feed one production observation; returns True if the model changed.

        ``size`` must lie inside the model's domain; ``speed`` must be
        non-negative.
        """
        if not (0 < size <= self._function.max_size):
            raise ConfigurationError(
                f"observation size {size!r} outside the model domain "
                f"(0, {self._function.max_size:g}]"
            )
        if speed < 0 or not np.isfinite(speed):
            raise ConfigurationError(f"invalid observed speed {speed!r}")
        self.observations += 1
        predicted = float(self._function.speed(size))
        scale = max(abs(predicted), 1e-12)
        if abs(speed - predicted) <= self._tolerance * scale:
            self.drift_streak = 0
            return False
        self.drift_streak += 1
        blended = (1 - self._smoothing) * predicted + self._smoothing * speed
        xs = np.asarray(self._function.knot_sizes, dtype=float)
        ss = np.asarray(self._function.knot_speeds, dtype=float)
        # Update the nearest knot if one is within 1% of the size; else
        # insert a new knot.
        idx = int(np.argmin(np.abs(xs - size)))
        if abs(xs[idx] - size) <= 0.01 * size:
            ss = ss.copy()
            ss[idx] = blended
        else:
            pos = int(np.searchsorted(xs, size))
            xs = np.insert(xs, pos, float(size))
            ss = np.insert(ss, pos, blended)
        xs, ss = repair_monotone_g(xs, ss)
        function = PiecewiseLinearSpeedFunction(xs, ss)
        eps = self._tolerance / 2
        while function.num_knots > self._max_knots and eps < 0.5:
            function = simplify_model(function, eps=eps)
            eps *= 2
        self._function = function
        self.updates += 1
        return True

    def reset_drift(self) -> None:
        """Clear the drift streak (call after an external rebuild)."""
        self.drift_streak = 0
